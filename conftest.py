"""Repo-root pytest configuration shared by ``tests/`` and ``benchmarks/``."""

from __future__ import annotations


def pytest_configure(config):
    """Register a no-op ``timeout`` marker when pytest-timeout is absent.

    The CI stress job installs pytest-timeout as a deadlock watchdog;
    local runs without the plugin must still accept the marker (it
    simply has no effect — the in-test ``join(timeout)`` guards remain).
    Lives at the repo root so one definition covers the test suite and
    the benchmark suite alike.
    """
    if not config.pluginmanager.hasplugin("timeout"):
        config.addinivalue_line(
            "markers",
            "timeout(seconds): deadlock watchdog "
            "(no-op without pytest-timeout)",
        )
