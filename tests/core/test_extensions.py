"""Tests for the optional/extension features beyond the paper's core:
manager statistics, capped cache GMRs, second-chance RRR maintenance,
row-placement options and blind-row vacuuming."""

import pytest

from repro import ObjectBase, Strategy
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_cuboid,
    create_vertex,
)
from repro.errors import GMRDefinitionError


class TestManagerStats:
    def test_forward_hits_and_computes(self, geometry_db):
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        stats = db.gmr_manager.stats
        before = stats.snapshot()
        fixture.cuboids[0].volume()      # hit
        fixture.cuboids[0].volume()      # hit
        delta = stats.delta(before)
        assert delta.forward_hits == 2
        assert delta.forward_computes == 0

    def test_invalidation_counters(self, geometry_db):
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        stats = db.gmr_manager.stats
        before = stats.snapshot()
        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        delta = stats.delta(before)
        assert delta.invalidate_calls == 12
        assert delta.rematerializations == 12

    def test_lazy_defers_visible_in_stats(self, geometry_db):
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")], strategy=Strategy.LAZY)
        stats = db.gmr_manager.stats
        before = stats.snapshot()
        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        assert stats.delta(before).rematerializations == 0
        fixture.cuboids[0].volume()
        assert stats.delta(before).rematerializations == 1
        assert stats.delta(before).forward_computes == 1

    def test_compensation_counter(self, geometry_db):
        from repro.domains.geometry import increase_total

        db, fixture = geometry_db
        db.materialize([("Workpieces", "total_volume")])
        db.gmr_manager.register_compensation(
            "Workpieces", "insert", ("Workpieces", "total_volume"), increase_total
        )
        before = db.gmr_manager.stats.snapshot()
        fixture.workpieces.insert(fixture.cuboids[2])
        delta = db.gmr_manager.stats.delta(before)
        assert delta.compensations == 1
        assert delta.rematerializations == 0


class TestCappedCacheGMR:
    def test_capacity_requires_incomplete(self, point_db):
        with pytest.raises(GMRDefinitionError):
            point_db.materialize([("Point", "norm")], capacity=5)

    def test_capacity_must_be_positive(self, point_db):
        with pytest.raises(GMRDefinitionError):
            point_db.materialize(
                [("Point", "norm")], complete=False, capacity=0
            )

    def test_lru_eviction(self, point_db):
        points = [
            point_db.new("Point", X=float(i), Y=0.0) for i in range(6)
        ]
        gmr = point_db.materialize(
            [("Point", "norm")], complete=False, capacity=3
        )
        for point in points[:3]:
            point.norm()
        assert len(gmr) == 3
        points[3].norm()  # evicts points[0]
        assert len(gmr) == 3
        assert gmr.evictions == 1
        assert gmr.lookup((points[0].oid,)) is None
        assert gmr.lookup((points[3].oid,)) is not None

    def test_access_refreshes_recency(self, point_db):
        points = [
            point_db.new("Point", X=float(i), Y=0.0) for i in range(4)
        ]
        gmr = point_db.materialize(
            [("Point", "norm")], complete=False, capacity=2
        )
        points[0].norm()
        points[1].norm()
        points[0].norm()  # 1 becomes LRU
        points[2].norm()  # evicts 1
        assert gmr.lookup((points[0].oid,)) is not None
        assert gmr.lookup((points[1].oid,)) is None

    def test_evicted_entries_recomputed_on_demand(self, point_db):
        points = [
            point_db.new("Point", X=3.0 * (i + 1), Y=4.0 * (i + 1))
            for i in range(4)
        ]
        point_db.materialize([("Point", "norm")], complete=False, capacity=2)
        values = [point.norm() for point in points]
        assert values == [5.0, 10.0, 15.0, 20.0]
        # points[0] was evicted; recomputation still yields its value.
        assert points[0].norm() == 5.0

    def test_cache_stays_consistent_under_updates(self, point_db):
        points = [
            point_db.new("Point", X=float(i + 1), Y=0.0) for i in range(5)
        ]
        gmr = point_db.materialize(
            [("Point", "norm")], complete=False, capacity=3
        )
        for point in points:
            point.norm()
        points[-1].set_X(100.0)
        assert points[-1].norm() == 100.0
        assert gmr.check_consistency(point_db) == []


class TestSecondChanceRRR:
    def _setup(self, strategy=Strategy.IMMEDIATE):
        db = ObjectBase()
        build_geometry_schema(db)
        fixture = build_figure2_database(db)
        gmr = db.materialize([("Cuboid", "volume")], strategy=strategy)
        db.gmr_manager.rrr_policy = "second_chance"
        return db, fixture, gmr

    def test_immediate_remat_unmarks(self):
        db, fixture, gmr = self._setup()
        c1 = fixture.cuboids[0]
        v1 = db.objects.get(c1.oid).data["V1"]
        db.handle(v1).set_X(3.0)
        # The entry was marked and then re-inserted by the remat: unmarked.
        assert not db.gmr_manager.rrr.is_marked(v1, "Cuboid.volume", (c1.oid,))
        assert gmr.check_consistency(db) == []

    def test_lazy_keeps_mark_until_reaccess(self):
        db, fixture, gmr = self._setup(strategy=Strategy.LAZY)
        c1 = fixture.cuboids[0]
        v1 = db.objects.get(c1.oid).data["V1"]
        db.handle(v1).set_X(3.0)
        assert db.gmr_manager.rrr.is_marked(v1, "Cuboid.volume", (c1.oid,))
        c1.volume()  # rematerializes and unmarks
        assert not db.gmr_manager.rrr.is_marked(v1, "Cuboid.volume", (c1.oid,))
        assert gmr.check_consistency(db) == []

    def test_stale_marked_entry_dropped_on_second_round(self):
        db, fixture, gmr = self._setup(strategy=Strategy.LAZY)
        c1 = fixture.cuboids[0]
        v1 = db.objects.get(c1.oid).data["V1"]
        handle = db.handle(v1)
        handle.set_X(3.0)   # round 1: mark
        handle.set_X(4.0)   # round 2: marked entry is a leftover → removed
        assert db.gmr_manager.rrr.args_of(v1, "Cuboid.volume") == set()
        assert "Cuboid.volume" not in db.objects.get(v1).obj_dep_fct
        assert gmr.check_consistency(db) == []

    def test_policies_reach_same_final_state(self):
        """Differential check: remove vs. second-chance maintenance end
        in identical GMR extensions after the same update sequence."""
        results = {}
        for policy in ("remove", "second_chance"):
            db = ObjectBase()
            build_geometry_schema(db)
            fixture = build_figure2_database(db)
            gmr = db.materialize([("Cuboid", "volume")])
            db.gmr_manager.rrr_policy = policy
            fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
            fixture.cuboids[1].rotate("y", 0.3)
            fixture.cuboids[2].translate(create_vertex(db, 1.0, 1.0, 1.0))
            assert gmr.check_consistency(db) == []
            results[policy] = sorted(
                (row.args[0].value, round(row.results[0], 9))
                for row in gmr.rows()
            )
        assert results["remove"] == results["second_chance"]


class TestRowPlacement:
    def test_with_arguments_places_rows_on_object_pages(self, geometry_db):
        db, fixture = geometry_db
        gmr = db.materialize(
            [("Cuboid", "volume")], row_placement="with_arguments"
        )
        cuboid_pages = {
            db.objects.get(cuboid.oid).placement.page_id
            for cuboid in fixture.cuboids
        }
        row_pages = {row.placement.page_id for row in gmr.rows()}
        # Rows share the Cuboid segment, i.e. its open page.
        assert gmr.store.row_segment == "Cuboid"
        assert gmr.check_consistency(db) == []

    def test_separate_is_default(self, geometry_db):
        db, _ = geometry_db
        gmr = db.materialize([("Cuboid", "volume")])
        assert gmr.store.row_segment == "gmr:<<volume>>"

    def test_unknown_placement_rejected(self, geometry_db):
        db, _ = geometry_db
        with pytest.raises(GMRDefinitionError):
            db.materialize([("Cuboid", "volume")], row_placement="wherever")


class TestVacuum:
    def test_vacuum_removes_blind_rows(self, geometry_db):
        db, fixture = geometry_db
        gmr = db.materialize([("Cuboid", "volume")], strategy=Strategy.LAZY)
        victim = fixture.cuboids[0]
        victim.scale(create_vertex(db, 2.0, 1.0, 1.0))  # lazily invalidated
        oid = victim.oid
        db.delete(victim)
        # The lazily-invalidated row may linger (its RRR entries were
        # consumed by the invalidation) — vacuum sweeps it.
        removed = db.gmr_manager.vacuum(gmr)
        assert gmr.lookup((oid,)) is None
        assert gmr.is_complete(db)

    def test_vacuum_all_gmrs(self, geometry_db):
        db, _ = geometry_db
        db.materialize([("Cuboid", "volume")])
        assert db.gmr_manager.vacuum() == 0
