"""The generalized maintenance engine (delta patches, Defs. 5.4/5.5).

Covers the redesigned API (``db.define_delta``, the kw-only
``MaterializationConfig(maintenance=...)`` axis), the self-maintainable
aggregates with their support state, the fallback lattice
(delta → compensate → invalidate) and the crash-recovery story.
"""

import os

import pytest

from repro import ObjectBase, Strategy
from repro.core.delta import avg_of, count_members, min_of, sum_of
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    define_geometry_deltas,
    increase_total,
)
from repro.errors import CompensationError
from repro.observe.config import MaterializationConfig


def _delta_db(**overrides):
    config = MaterializationConfig(maintenance="delta", **overrides)
    db = ObjectBase(config=config)
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    return db, fixture


@pytest.fixture
def delta_setting():
    db, fixture = _delta_db()
    gmr = db.materialize([("Workpieces", "total_volume")])
    define_geometry_deltas(db)
    return db, fixture, gmr


ARGS_FID = "Workpieces.total_volume"


class TestConfigSurface:
    def test_maintenance_modes_validated(self):
        for mode in ("recompute", "compensate", "delta"):
            assert MaterializationConfig(maintenance=mode).maintenance == mode
        with pytest.raises(ValueError):
            MaterializationConfig(maintenance="bogus")

    def test_manager_reports_mode(self, delta_setting):
        db, _, _ = delta_setting
        assert db.gmr_manager.maintenance == "delta"

    def test_default_mode_is_compensate(self):
        db = ObjectBase()
        build_geometry_schema(db)
        db.materialize([("Workpieces", "total_volume")])
        assert db.gmr_manager.maintenance == "compensate"


class TestDefineDeltaLegality:
    def test_unmaterialized_function_rejected(self):
        db, _ = _delta_db()
        with pytest.raises(CompensationError):
            db.define_delta(
                ("Workpieces", "total_volume"),
                aggregate=sum_of(lambda c: c.volume()),
            )

    def test_non_argument_type_rejected(self, delta_setting):
        """The paper's Cuboid.scale / total_volume counterexample, on
        the new declaration surface."""
        db, _, _ = delta_setting
        with pytest.raises(CompensationError):
            db.define_delta(
                ("Workpieces", "total_volume"),
                on={("Cuboid", "scale"): lambda old, update: old},
            )

    def test_empty_declaration_rejected(self, delta_setting):
        db, _, _ = delta_setting
        with pytest.raises(CompensationError):
            db.define_delta(("Workpieces", "total_volume"))

    def test_aggregate_needs_collection_argument(self):
        db, _ = _delta_db()
        db.materialize([("Cuboid", "volume")])
        with pytest.raises(CompensationError):
            db.define_delta(
                ("Cuboid", "volume"), aggregate=sum_of(lambda c: c.volume())
            )


class TestSumAggregate:
    def test_insert_and_remove_patch_without_invalidation(self, delta_setting):
        db, fixture, gmr = delta_setting
        stats = db.gmr_manager.stats
        remats0 = stats.rematerializations
        key = (fixture.workpieces.oid,)

        fixture.workpieces.insert(fixture.cuboids[2])
        assert gmr.result(key, ARGS_FID) == (pytest.approx(600.0), True)
        fixture.workpieces.remove(fixture.cuboids[0])
        assert gmr.result(key, ARGS_FID) == (pytest.approx(300.0), True)

        assert stats.delta_patches == 2
        assert stats.delta_fallbacks == 0
        assert stats.rematerializations == remats0  # patched, not recomputed
        assert gmr.check_consistency(db) == []

    def test_patch_notes_via_delta(self, delta_setting):
        db, fixture, _ = delta_setting
        fixture.workpieces.insert(fixture.cuboids[2])
        note = db.gmr_manager._row_notes[(ARGS_FID, (fixture.workpieces.oid,))]
        assert "via=delta" in note


class TestCountAndAvg:
    def _materialize_extra(self, db):
        def member_count(self):
            total = 0
            for _ in self:
                total = total + 1
            return total

        def avg_volume(self):
            total, n = 0.0, 0
            for cuboid in self:
                total, n = total + cuboid.volume(), n + 1
            return total / n if n else 0.0

        db.define_operation("Workpieces", "member_count", [], "int", member_count)
        db.define_operation("Workpieces", "avg_volume", [], "float", avg_volume)
        return db.materialize(
            [("Workpieces", "member_count"), ("Workpieces", "avg_volume")]
        )

    def test_count_patches_stateless(self):
        db, fixture = _delta_db()
        gmr = self._materialize_extra(db)
        db.define_delta(("Workpieces", "member_count"), aggregate=count_members())
        key = (fixture.workpieces.oid,)
        fixture.workpieces.insert(fixture.cuboids[2])
        assert gmr.result(key, "Workpieces.member_count") == (3, True)
        fixture.workpieces.remove(fixture.cuboids[0])
        assert gmr.result(key, "Workpieces.member_count") == (2, True)
        assert db.gmr_manager.stats.delta_patches == 2
        assert gmr.check_consistency(db) == []

    def test_avg_seeds_then_maintains_support_state(self):
        db, fixture = _delta_db()
        gmr = self._materialize_extra(db)
        db.define_delta(
            ("Workpieces", "avg_volume"),
            aggregate=avg_of(lambda c: c.volume()),
        )
        key = (fixture.workpieces.oid,)
        fid = "Workpieces.avg_volume"
        assert gmr.support_state(key, fid) is None
        # volumes: 300, 200 → insert 100 → avg 200
        fixture.workpieces.insert(fixture.cuboids[2])
        assert gmr.result(key, fid) == (pytest.approx(200.0), True)
        state = gmr.support_state(key, fid)
        assert state == {"sum": pytest.approx(600.0), "n": 3}
        fixture.workpieces.remove(fixture.cuboids[1])
        assert gmr.result(key, fid) == (pytest.approx(200.0), True)
        assert gmr.support_state(key, fid)["n"] == 2
        assert gmr.check_consistency(db) == []


class TestMinWithSupport:
    def _setting(self):
        db, fixture = _delta_db()

        def min_volume(self):
            best = None
            for cuboid in self:
                value = cuboid.volume()
                if best is None or value < best:
                    best = value
            return best if best is not None else 0.0

        db.define_operation("Workpieces", "min_volume", [], "float", min_volume)
        gmr = db.materialize([("Workpieces", "min_volume")])
        db.define_delta(
            ("Workpieces", "min_volume"),
            aggregate=min_of(lambda c: c.volume()),
        )
        return db, fixture, gmr, "Workpieces.min_volume"

    def test_insert_better_takes_over(self):
        db, fixture, gmr, fid = self._setting()
        key = (fixture.workpieces.oid,)
        fixture.workpieces.insert(fixture.cuboids[2])  # volume 100 < 200
        assert gmr.result(key, fid) == (pytest.approx(100.0), True)
        assert gmr.support_state(key, fid) == {"support": 1}
        assert gmr.check_consistency(db) == []

    def test_remove_last_witness_rederives_forward(self):
        """Delete/Rederive: no invalidation wave, a member scan instead."""
        db, fixture, gmr, fid = self._setting()
        stats = db.gmr_manager.stats
        key = (fixture.workpieces.oid,)
        fixture.workpieces.remove(fixture.cuboids[1])  # the 200 minimum
        assert gmr.result(key, fid) == (pytest.approx(300.0), True)
        assert stats.delta_rederivations == 1
        assert stats.delta_patches == 1
        assert stats.delta_fallbacks == 0
        assert gmr.check_consistency(db) == []

    def test_remove_non_witness_keeps_support(self):
        db, fixture, gmr, fid = self._setting()
        key = (fixture.workpieces.oid,)
        fixture.workpieces.insert(fixture.cuboids[2])  # min now 100
        fixture.workpieces.remove(fixture.cuboids[0])  # 300 leaves
        assert gmr.result(key, fid) == (pytest.approx(100.0), True)
        assert db.gmr_manager.stats.delta_rederivations == 0
        assert gmr.check_consistency(db) == []


class TestFallbackLattice:
    def test_raising_handler_falls_back_to_invalidation(self, delta_setting):
        db, fixture, gmr = delta_setting

        def broken(old, update):
            raise RuntimeError("boom")

        db.define_delta(
            ("Workpieces", "total_volume"),
            on={("Workpieces", "insert"): broken},
        )
        # The explicit handler outranks the aggregate for its key: it
        # raises, and the entry falls down the lattice to the wave.
        fixture.workpieces.insert(fixture.cuboids[2])
        key = (fixture.workpieces.oid,)
        value, valid = gmr.result(key, ARGS_FID)
        stats = db.gmr_manager.stats
        assert stats.delta_fallbacks >= 1
        # IMMEDIATE strategy: the wave rematerialized right away.
        assert valid and value == pytest.approx(600.0)
        assert gmr.check_consistency(db) == []

    def test_epoch_conflict_discards_patch(self, delta_setting):
        """A write epoch moving under the patch (sharded engines racing)
        discards the patch — never a stale row."""
        db, fixture, gmr = delta_setting

        def racing(old, update, _db=db):
            _db._write_epoch += 1  # simulate a concurrent shard commit
            return old  # deliberately stale

        db.define_delta(
            ("Workpieces", "total_volume"),
            on={("Workpieces", "insert"): racing},
        )
        fallbacks0 = db.gmr_manager.stats.delta_fallbacks
        fixture.workpieces.insert(fixture.cuboids[2])
        key = (fixture.workpieces.oid,)
        value, valid = gmr.result(key, ARGS_FID)
        assert db.gmr_manager.stats.delta_fallbacks == fallbacks0 + 1
        assert valid and value == pytest.approx(600.0)  # wave healed it
        assert gmr.check_consistency(db) == []

    def test_error_entry_never_resurrected(self, delta_setting):
        db, fixture, gmr = delta_setting
        key = (fixture.workpieces.oid,)
        gmr.mark_error(key, ARGS_FID)
        assert gmr.entry_state(key, ARGS_FID) == "error"
        fixture.workpieces.insert(fixture.cuboids[2])
        # The patch must not write a result into an ERROR entry; the
        # entry is handed to the retry scheduler instead.
        assert gmr.entry_state(key, ARGS_FID) == "error"
        assert db.gmr_manager.stats.delta_patches == 0
        assert db.gmr_manager.stats.delta_fallbacks >= 1


class TestModeDispatch:
    def test_recompute_mode_ignores_declared_handlers(self):
        db = ObjectBase(config=MaterializationConfig(maintenance="recompute"))
        build_geometry_schema(db)
        fixture = build_figure2_database(db)
        gmr = db.materialize([("Workpieces", "total_volume")])
        with pytest.warns(DeprecationWarning):
            db.gmr_manager.register_compensation(
                "Workpieces", "insert", ("Workpieces", "total_volume"),
                increase_total,
            )
        assert not db.gmr_manager.has_compensation("Workpieces", "insert")
        fixture.workpieces.insert(fixture.cuboids[2])
        stats = db.gmr_manager.stats
        assert stats.compensations == 0 and stats.delta_patches == 0
        assert stats.invalidate_calls >= 1
        value, valid = gmr.result((fixture.workpieces.oid,), ARGS_FID)
        assert valid and value == pytest.approx(600.0)

    def test_compensate_mode_runs_legacy_action(self):
        db = ObjectBase()  # maintenance="compensate" is the default
        build_geometry_schema(db)
        fixture = build_figure2_database(db)
        gmr = db.materialize([("Workpieces", "total_volume")])
        with pytest.warns(DeprecationWarning):
            db.gmr_manager.register_compensation(
                "Workpieces", "insert", ("Workpieces", "total_volume"),
                increase_total,
            )
        fixture.workpieces.insert(fixture.cuboids[2])
        stats = db.gmr_manager.stats
        assert stats.compensations == 1 and stats.delta_patches == 0
        assert gmr.result((fixture.workpieces.oid,), ARGS_FID) == (
            pytest.approx(600.0),
            True,
        )

    def test_delta_mode_adopts_legacy_action(self):
        """register_compensation keeps working under maintenance="delta"
        — routed through the engine as an adopted handler."""
        db, fixture = _delta_db()
        gmr = db.materialize([("Workpieces", "total_volume")])
        with pytest.warns(DeprecationWarning):
            db.gmr_manager.register_compensation(
                "Workpieces", "insert", ("Workpieces", "total_volume"),
                increase_total,
            )
        fixture.workpieces.insert(fixture.cuboids[2])
        stats = db.gmr_manager.stats
        assert stats.delta_patches == 1 and stats.compensations == 0
        assert gmr.result((fixture.workpieces.oid,), ARGS_FID) == (
            pytest.approx(600.0),
            True,
        )
        assert gmr.check_consistency(db) == []


class TestDeterministicTables:
    def test_compensation_entries_sorted(self):
        db = ObjectBase()
        build_geometry_schema(db)
        build_figure2_database(db)
        db.materialize(
            [("Workpieces", "total_volume"), ("Workpieces", "total_weight")]
        )
        action = lambda workpieces, cuboid, old: old  # noqa: E731
        with pytest.warns(DeprecationWarning):
            for update_op, target in (
                ("remove", "total_weight"),
                ("insert", "total_volume"),
                ("remove", "total_volume"),
                ("insert", "total_weight"),
            ):
                db.gmr_manager.register_compensation(
                    "Workpieces", update_op, ("Workpieces", target), action
                )
        keys = [
            (entry.update_type, entry.update_op, entry.fid)
            for entry in db.gmr_manager.compensations.entries()
        ]
        assert keys == sorted(keys)

    def test_delta_registry_entries_sorted(self, delta_setting):
        db, _, _ = delta_setting
        fids = [spec.fid for spec in db.gmr_manager.deltas.entries()]
        assert fids == sorted(fids)


class TestRecovery:
    def test_support_state_survives_checkpoint_recover(self, tmp_path):
        """Counting-algorithm support survives checkpoint → crash →
        recover, so post-recovery patches keep working without a scan."""
        from repro.persistence import checkpoint, recover

        def make(db):
            def min_volume(self):
                best = None
                for cuboid in self:
                    value = cuboid.volume()
                    if best is None or value < best:
                        best = value
                return best if best is not None else 0.0

            db.define_operation(
                "Workpieces", "min_volume", [], "float", min_volume
            )

        db, fixture = _delta_db()
        make(db)
        gmr = db.materialize([("Workpieces", "min_volume")])
        db.define_delta(
            ("Workpieces", "min_volume"),
            aggregate=min_of(lambda c: c.volume()),
        )
        key = (fixture.workpieces.oid,)
        fid = "Workpieces.min_volume"
        fixture.workpieces.insert(fixture.cuboids[2])  # min 100, support 1
        assert gmr.support_state(key, fid) == {"support": 1}

        path = os.path.join(tmp_path, "checkpoint.json")
        checkpoint(db, path)
        db.close()

        fresh = ObjectBase(config=MaterializationConfig(maintenance="delta"))
        build_geometry_schema(fresh)
        make(fresh)
        recover(fresh, path, None)
        recovered = fresh.gmr_manager.gmr_of("Workpieces.min_volume")
        assert recovered.support_state(key, fid) == {"support": 1}
        assert recovered.result(key, fid) == (pytest.approx(100.0), True)

        # Deltas are runtime declarations — re-declare and keep patching
        # from the recovered support state.
        fresh.define_delta(
            ("Workpieces", "min_volume"),
            aggregate=min_of(lambda c: c.volume()),
        )
        workpieces = fresh.handle(key[0])
        cuboid = fresh.handle(fixture.cuboids[2].oid)
        workpieces.remove(cuboid)  # last witness → forward rederive
        assert recovered.result(key, fid) == (pytest.approx(200.0), True)
        assert fresh.gmr_manager.stats.delta_rederivations == 1
        assert recovered.check_consistency(fresh) == []

    def test_recovery_without_declarations_downgrades_safely(self, tmp_path):
        """WAL/checkpoint replay without re-declared deltas must not
        leave stale rows: updates invalidate instead of patching."""
        from repro.persistence import checkpoint, recover

        db, fixture = _delta_db()
        gmr = db.materialize([("Workpieces", "total_volume")])
        define_geometry_deltas(db)
        fixture.workpieces.insert(fixture.cuboids[2])
        path = os.path.join(tmp_path, "checkpoint.json")
        checkpoint(db, path)
        db.close()

        fresh = ObjectBase(config=MaterializationConfig(maintenance="delta"))
        build_geometry_schema(fresh)
        recover(fresh, path, None)
        recovered = fresh.gmr_manager.gmr_of("Workpieces.total_volume")
        key = (fixture.workpieces.oid,)
        workpieces = fresh.handle(key[0])
        # Checkpoints round-trip the manager counters; only the *new*
        # update matters here, so compare against the recovered baseline.
        patches0 = fresh.gmr_manager.stats.delta_patches
        workpieces.remove(fresh.handle(fixture.cuboids[0].oid))
        assert fresh.gmr_manager.stats.delta_patches == patches0
        value, valid = recovered.result(key, ARGS_FID)
        assert valid and value == pytest.approx(300.0)
        assert recovered.check_consistency(fresh) == []


class TestStrategies:
    @pytest.mark.parametrize("strategy", [Strategy.LAZY, Strategy.DEFERRED])
    def test_patch_keeps_entry_valid_under_lazy_strategies(self, strategy):
        """A patched entry stays VALID even under strategies that would
        otherwise leave it invalid until the next access."""
        db, fixture = _delta_db()
        gmr = db.materialize([("Workpieces", "total_volume")], strategy=strategy)
        db.quiesce(10.0)
        define_geometry_deltas(db)
        key = (fixture.workpieces.oid,)
        fixture.workpieces.insert(fixture.cuboids[2])
        assert gmr.entry_state(key, ARGS_FID) == "valid"
        assert gmr.result(key, ARGS_FID) == (pytest.approx(600.0), True)
        assert db.gmr_manager.stats.delta_patches == 1
