"""ManagerStats: the batch/scheduler counters and snapshot/delta
arithmetic under interleaved workloads."""

from __future__ import annotations

from dataclasses import fields

from repro import InstrumentationLevel, ObjectBase, Strategy
from repro.core.manager import ManagerStats
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_vertex,
)


def _build(strategy=Strategy.IMMEDIATE):
    db = ObjectBase(level=InstrumentationLevel.OBJ_DEP)
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    gmr = db.materialize([("Cuboid", "volume")], strategy=strategy)
    return db, fixture, gmr


def test_new_counters_exist_and_start_at_zero():
    stats = ManagerStats()
    for name in (
        "batched_invalidations",
        "rrr_probes_saved",
        "batch_flushes",
        "scheduler_revalidations",
    ):
        assert getattr(stats, name) == 0


def test_snapshot_covers_every_field():
    """snapshot()/delta() are built from vars(), so any newly added
    counter participates automatically — guard that invariant."""
    stats = ManagerStats()
    for index, field in enumerate(fields(ManagerStats)):
        setattr(stats, field.name, index + 1)
    copy = stats.snapshot()
    assert vars(copy) == vars(stats)
    copy.invalidate_calls += 10
    assert stats.invalidate_calls != copy.invalidate_calls  # independent


def test_delta_subtracts_fieldwise():
    before = ManagerStats(invalidate_calls=3, rrr_probes_saved=1)
    after = ManagerStats(
        invalidate_calls=10, rrr_probes_saved=5, batch_flushes=2
    )
    delta = after.delta(before)
    assert delta.invalidate_calls == 7
    assert delta.rrr_probes_saved == 4
    assert delta.batch_flushes == 2
    assert delta.forward_hits == 0


def test_batch_counters_under_interleaved_workload():
    """Interleave two 'clients' — one batching updates, one querying —
    and check the counters decompose cleanly via snapshot/delta."""
    db, fixture, gmr = _build()
    manager = db.gmr_manager
    updater_hot = fixture.cuboids[0]

    total_before = manager.stats.snapshot()
    for round_number in range(3):
        update_before = manager.stats.snapshot()
        with db.batch():
            for _ in range(4):  # 4 touches of one object per round
                updater_hot.scale(create_vertex(db, 1.01, 1.0, 1.0))
        update_delta = manager.stats.delta(update_before)
        assert update_delta.batch_flushes == 1
        assert update_delta.batched_invalidations > 0
        assert update_delta.rrr_probes_saved > 0
        # The interleaved querying client: pure reads move only the
        # forward counters, never the batch counters.
        query_before = manager.stats.snapshot()
        for cuboid in fixture.cuboids:
            cuboid.volume()
        query_delta = manager.stats.delta(query_before)
        assert query_delta.forward_hits + query_delta.forward_computes == len(
            fixture.cuboids
        )
        assert query_delta.batched_invalidations == 0
        assert query_delta.rrr_probes_saved == 0
        assert query_delta.batch_flushes == 0

    total_delta = manager.stats.delta(total_before)
    assert total_delta.batch_flushes == 3
    # Coalescing saved at least (touches - 1) probes per distinct object
    # per round for the repeatedly scaled cuboid.
    assert total_delta.rrr_probes_saved >= 3
    assert gmr.check_consistency(db) == []


def test_probes_saved_counts_forget_folding():
    db, fixture, _gmr = _build()
    manager = db.gmr_manager
    victim = fixture.cuboids[0]
    before = manager.stats.snapshot()
    with db.batch():
        victim.scale(create_vertex(db, 1.5, 1.0, 1.0))  # pending inv
        db.delete(victim)  # folds into the forget
    delta = manager.stats.delta(before)
    assert delta.rrr_probes_saved >= 1
    assert delta.batch_flushes == 1


def test_scheduler_revalidations_counter():
    db, fixture, gmr = _build(Strategy.DEFERRED)
    manager = db.gmr_manager
    for cuboid in fixture.cuboids:
        cuboid.scale(create_vertex(db, 1.5, 1.0, 1.0))
    before = manager.stats.snapshot()
    drained = manager.scheduler.revalidate(max_entries=2)
    delta = manager.stats.delta(before)
    assert drained == 2
    assert delta.scheduler_revalidations == 2
    assert delta.rematerializations == 2
    manager.scheduler.revalidate()
    assert manager.stats.scheduler_revalidations == len(fixture.cuboids)
    assert gmr.check_consistency(db) == []


def test_unbatched_runs_leave_batch_counters_untouched():
    db, fixture, _gmr = _build()
    manager = db.gmr_manager
    fixture.cuboids[0].scale(create_vertex(db, 1.5, 1.0, 1.0))
    assert manager.stats.batched_invalidations == 0
    assert manager.stats.rrr_probes_saved == 0
    assert manager.stats.batch_flushes == 0
    assert manager.stats.invalidate_calls > 0
