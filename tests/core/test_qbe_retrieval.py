"""Tests for the QBE-style tabular GMR retrieval of Sec. 3.2."""

import pytest

from repro import Strategy
from repro.errors import GMRDefinitionError


@pytest.fixture
def gmr_setting(geometry_db):
    db, fixture = geometry_db
    gmr = db.materialize([("Cuboid", "volume"), ("Cuboid", "weight")])
    return db, fixture, gmr


class TestForwardRetrieval:
    def test_forward_query_shape(self, gmr_setting):
        """The paper's first table row: all arguments given, results ?"""
        db, fixture, gmr = gmr_setting
        rows = gmr.retrieve(
            {"O1": fixture.cuboids[0].oid, "volume": "?", "weight": "?"}
        )
        assert rows == [
            {"volume": pytest.approx(300.0), "weight": pytest.approx(2358.0)}
        ]

    def test_single_result_column(self, gmr_setting):
        db, fixture, gmr = gmr_setting
        rows = gmr.retrieve({"O1": fixture.cuboids[1].oid, "volume": "?"})
        assert rows == [{"volume": pytest.approx(200.0)}]

    def test_missing_argument_yields_empty(self, gmr_setting):
        from repro.gom.oid import Oid

        db, _, gmr = gmr_setting
        assert gmr.retrieve({"O1": Oid(9999), "volume": "?"}) == []


class TestBackwardRetrieval:
    def test_backward_range_query_shape(self, gmr_setting):
        """The paper's second row: ranges on results, arguments ?"""
        db, fixture, gmr = gmr_setting
        rows = gmr.retrieve(
            {"O1": "?", "volume": (150.0, 250.0), "weight": (1000.0, 2000.0)}
        )
        assert rows == [{"O1": fixture.cuboids[1].oid}]

    def test_open_ended_range(self, gmr_setting):
        db, fixture, gmr = gmr_setting
        rows = gmr.retrieve({"O1": "?", "volume": (150.0, None)})
        assert {row["O1"] for row in rows} == {
            fixture.cuboids[0].oid,
            fixture.cuboids[1].oid,
        }

    def test_exact_result_match(self, gmr_setting):
        db, fixture, gmr = gmr_setting
        rows = gmr.retrieve({"O1": "?", "volume": 100.0})
        assert rows == [{"O1": fixture.cuboids[2].oid}]


class TestDontCareAndMixed:
    def test_dont_care_returns_everything(self, gmr_setting):
        db, _, gmr = gmr_setting
        rows = gmr.retrieve({"O1": "?"})
        assert len(rows) == 3

    def test_question_marks_on_both_sides(self, gmr_setting):
        db, fixture, gmr = gmr_setting
        rows = gmr.retrieve({"O1": "?", "volume": "?", "weight": (1500.0, 1600.0)})
        assert rows == [
            {"O1": fixture.cuboids[1].oid, "volume": pytest.approx(200.0)}
        ]

    def test_no_question_marks_returns_empty_records(self, gmr_setting):
        db, _, gmr = gmr_setting
        rows = gmr.retrieve({"volume": (150.0, None)})
        assert rows == [{}, {}]

    def test_unknown_column_rejected(self, gmr_setting):
        db, _, gmr = gmr_setting
        with pytest.raises(GMRDefinitionError):
            gmr.retrieve({"O9": "?"})
        with pytest.raises(GMRDefinitionError):
            gmr.retrieve({"ghost": "?"})


class TestValidity:
    def test_invalid_results_do_not_participate(self, geometry_db):
        """Invalid entries are never returned for a result condition
        (queries needing completeness revalidate first)."""
        db, fixture, = geometry_db[0], geometry_db[1]
        gmr = db.materialize([("Cuboid", "volume")], strategy=Strategy.LAZY)
        from repro.domains.geometry import create_vertex

        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        rows = gmr.retrieve({"O1": "?", "volume": (0.0, None)})
        assert {row["O1"] for row in rows} == {
            fixture.cuboids[1].oid,
            fixture.cuboids[2].oid,
        }

    def test_dont_care_keeps_invalid_rows(self, geometry_db):
        db, fixture = geometry_db
        gmr = db.materialize([("Cuboid", "volume")], strategy=Strategy.LAZY)
        from repro.domains.geometry import create_vertex

        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        rows = gmr.retrieve({"O1": "?"})  # no condition on volume
        assert len(rows) == 3


class TestBinaryGMR:
    def test_two_argument_columns(self, geometry_db):
        from repro.domains.geometry import create_robot

        db, fixture = geometry_db
        robot_a = create_robot(db, "A", (100.0, 0.0, 0.0))
        robot_b = create_robot(db, "B", (0.0, 100.0, 0.0))
        gmr = db.materialize([("Cuboid", "distance")])
        rows = gmr.retrieve({"O1": "?", "O2": robot_a.oid, "distance": "?"})
        assert len(rows) == 3
        assert all(row["O2"] if "O2" in row else True for row in rows)
        fixed = gmr.retrieve(
            {"O1": fixture.cuboids[0].oid, "O2": robot_b.oid, "distance": "?"}
        )
        assert len(fixed) == 1
