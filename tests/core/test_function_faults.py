"""The function-fault matrix, quarantine transparency, and recovery.

Acceptance tests of the fault-tolerance pipeline:

* a parametrized matrix injecting a raise or a stall at every call
  index of a fixed workload, across IMMEDIATE / LAZY / DEFERRED — after
  every fault the Def. 3.2 / Sec. 5.2 oracle must hold;
* Sec. 3.2 transparency under quarantine: while the breaker is open a
  forward query answers by direct evaluation, byte-identical to the
  unmaterialized function — including on a base recovered from a
  checkpoint taken while quarantined;
* breaker / ERROR / retry state round-tripping through
  checkpoint → crash → recover.
"""

import time

import pytest

from repro import ObjectBase, Strategy, checkpoint, recover, verify_recovery
from repro.core.breaker import BreakerState
from repro.errors import FunctionExecutionError
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_vertex,
)

from tests._faults import FlakyFunction, check_consistency


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def build_double_schema(db) -> None:
    db.define_tuple_type("T", {"A": "float"})
    db.define_operation("T", "double", [], "float", lambda self: self.A * 2)


# -- the fault matrix --------------------------------------------------------------

STRATEGIES = [Strategy.IMMEDIATE, Strategy.LAZY, Strategy.DEFERRED]
#: Call indices 0..7 cover every body invocation the workload makes on
#: any strategy (the longest trace is IMMEDIATE's; larger indices mean
#: the fault never fires, which the harness tolerates as a clean run).
CALL_INDICES = range(8)


def run_workload(db, fixture, manager) -> None:
    """A fixed mix of updates, forward queries, backward queries and a
    scheduler drain.  Updates must never raise; queries may surface
    ``FunctionExecutionError`` for an entry that is genuinely broken."""
    fid = "Cuboid.volume"
    fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
    for cuboid in fixture.cuboids[:2]:
        try:
            cuboid.volume()
        except FunctionExecutionError:
            pass
    fixture.cuboids[1].scale(create_vertex(db, 1.0, 3.0, 1.0))
    try:
        manager.backward_query(fid)
    except FunctionExecutionError:
        pass
    time.sleep(0.06)  # let backoff deadlines ripen (real clock)
    manager.scheduler.revalidate()


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
@pytest.mark.parametrize("kind", ["raise", "stall"])
@pytest.mark.parametrize("index", CALL_INDICES)
def test_fault_matrix_preserves_consistency(strategy, kind, index):
    db = ObjectBase()
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    manager_gmr = db.materialize([("Cuboid", "volume")], strategy=strategy)
    manager = db.gmr_manager
    policy = manager.fault_policy
    policy.base_delay = 0.01
    policy.max_delay = 0.02
    if kind == "stall":
        policy.call_budget = 0.01
        flaky = FlakyFunction(
            db, "Cuboid", "volume", stall_at={index}, stall_seconds=0.03
        )
    else:
        flaky = FlakyFunction(db, "Cuboid", "volume", fail_at={index})

    run_workload(db, fixture, manager)
    assert check_consistency(db, injectors=[flaky]) == []

    # Drain what is left with the pristine body: everything heals.
    flaky.restore()
    time.sleep(0.06)
    manager.scheduler.revalidate()
    assert check_consistency(db) == []
    del manager_gmr


# -- quarantine transparency (Sec. 3.2) --------------------------------------------


def test_quarantined_forward_queries_equal_direct_evaluation():
    db = ObjectBase()
    build_double_schema(db)
    obj = db.new("T", A=5.0)
    gmr = db.materialize([("T", "double")], strategy=Strategy.LAZY)
    manager = db.gmr_manager
    clock = FakeClock()
    manager.clock = clock
    policy = manager.fault_policy
    policy.failure_threshold = 3
    policy.cooldown = 30.0
    fid = "T.double"

    # Three consecutive failures open the breaker.
    flaky = FlakyFunction(db, "T", "double", fail_at={0, 1, 2})
    obj.set_A(6.0)
    for _ in range(3):
        with pytest.raises(FunctionExecutionError):
            obj.double()
    assert manager.breaker.state(fid) is BreakerState.OPEN
    assert manager.stats.breaker_opens == 1
    assert gmr.entry_state((obj.oid,), fid) == "error"

    # While open, queries degrade to direct evaluation (the body is
    # healthy again — the fail indices are consumed) and the GMR row
    # stays untouched.
    before = manager.stats.degraded_forward_calls
    assert obj.double() == 12.0
    info = gmr.function(fid)
    assert obj.double() == db.call_function(info, (obj.oid,))
    assert manager.stats.degraded_forward_calls == before + 2
    assert gmr.entry_state((obj.oid,), fid) == "error"
    # Updates while quarantined are mark-only: no body invocation.
    calls = flaky.calls
    obj.set_A(7.0)
    assert flaky.calls == calls
    assert obj.double() == 14.0  # degraded read tracks the update

    # After the cooldown the next query doubles as the half-open probe;
    # its success closes the breaker and re-validates the entry.
    clock.advance(policy.cooldown)
    assert obj.double() == 14.0
    assert manager.breaker.state(fid) is BreakerState.CLOSED
    assert manager.stats.breaker_closes == 1
    assert gmr.entry_state((obj.oid,), fid) == "valid"
    assert check_consistency(db, injectors=[flaky]) == []


def test_failed_probe_reopens_and_queries_stay_degraded():
    db = ObjectBase()
    build_double_schema(db)
    obj = db.new("T", A=5.0)
    db.materialize([("T", "double")], strategy=Strategy.LAZY)
    manager = db.gmr_manager
    clock = FakeClock()
    manager.clock = clock
    policy = manager.fault_policy
    policy.failure_threshold = 2
    policy.cooldown = 10.0
    FlakyFunction(db, "T", "double", fail_at={0, 1, 2})

    obj.set_A(6.0)
    for _ in range(2):
        with pytest.raises(FunctionExecutionError):
            obj.double()
    clock.advance(policy.cooldown)
    # The probe (fail index 2) fails: breaker re-opens with a fresh
    # cooldown, and the very next query degrades again.
    with pytest.raises(FunctionExecutionError):
        obj.double()
    assert manager.breaker.state("T.double") is BreakerState.OPEN
    assert obj.double() == 12.0  # degraded, healthy body
    assert manager.stats.degraded_forward_calls == 1


# -- durability of the fault-tolerance state ---------------------------------------


def test_breaker_and_error_state_survive_checkpoint_recover(tmp_path):
    db = ObjectBase()
    build_double_schema(db)
    obj = db.new("T", A=5.0)
    db.materialize([("T", "double")], strategy=Strategy.LAZY)
    manager = db.gmr_manager
    clock = FakeClock()
    manager.clock = clock
    policy = manager.fault_policy
    policy.failure_threshold = 3
    policy.cooldown = 30.0
    fid = "T.double"

    FlakyFunction(db, "T", "double", fail_at=set(range(10)))
    obj.set_A(6.0)
    for _ in range(3):
        with pytest.raises(FunctionExecutionError):
            obj.double()
    assert manager.breaker.quarantined(fid)

    path = str(tmp_path / "checkpoint.json")
    checkpoint(db, path)

    fresh = ObjectBase()
    build_double_schema(fresh)  # pristine body: no injection installed
    recover(fresh, path)
    recovered = fresh.gmr_manager
    # The crash did not resurrect the function as healthy.
    assert recovered.breaker.state(fid) is BreakerState.OPEN
    assert not recovered.breaker.probe_eligible(fid)
    gmr = recovered.gmrs()[0]
    assert gmr.entry_state((obj.oid,), fid) == "error"
    assert recovered.scheduler.attempts(fid, (obj.oid,)) == 1
    assert recovered.scheduler.pending() == 1
    assert recovered.stats.guard_failures == manager.stats.guard_failures

    # Forward queries on the recovered base degrade to direct
    # evaluation, byte-identical to the unmaterialized answer.
    handle = fresh.handle(obj.oid)
    before = recovered.stats.degraded_forward_calls
    assert handle.double() == 12.0
    assert handle.double() == fresh.call_function(
        gmr.function(fid), (obj.oid,)
    )
    assert recovered.stats.degraded_forward_calls == before + 2
    assert gmr.entry_state((obj.oid,), fid) == "error"


def test_fault_state_round_trips_differentially():
    """``verify_recovery``: the full checkpoint → WAL-tail → recover
    cycle reproduces breaker, ERROR flags, retry attempts and stats
    bit-for-bit (modulo clock-dependent deadlines, which the digest
    excludes by construction)."""
    db = ObjectBase()
    build_double_schema(db)
    obj = db.new("T", A=5.0)
    db.materialize([("T", "double")], strategy=Strategy.LAZY)
    manager = db.gmr_manager
    policy = manager.fault_policy
    policy.failure_threshold = 2
    flaky = FlakyFunction(db, "T", "double", fail_at=set(range(10)))
    obj.set_A(6.0)
    for _ in range(2):
        with pytest.raises(FunctionExecutionError):
            obj.double()
    assert manager.breaker.quarantined("T.double")

    def rebuild(fresh):
        build_double_schema(fresh)
        fresh.gmr_manager.fault_policy.failure_threshold = 2

    recovered = verify_recovery(
        db,
        rebuild,
        mutate=lambda base: base.set_attr(obj.oid, "A", 7.0),
    )
    assert recovered.gmr_manager.breaker.quarantined("T.double")
    flaky.restore()
