"""Error-path and edge-case tests across the materialization stack."""

import pytest

from repro import ObjectBase, Strategy
from repro.errors import (
    EncapsulationError,
    FunctionExecutionError,
    GMRDefinitionError,
    ReproError,
    TypeCheckError,
)


class TestFailingFunctionBodies:
    def test_population_failure_degrades_to_error(self, db):
        db.define_tuple_type("T", {"A": "float"})

        def bad(self):
            raise ValueError("domain error")

        db.define_operation("T", "bad", [], "float", bad)
        obj = db.new("T", A=1.0)
        # Population runs under the execution guard: the failing entry
        # lands in the ERROR state instead of unwinding materialize().
        gmr = db.materialize([("T", "bad")])
        assert gmr.entry_state((obj.oid,), "T.bad") == "error"
        assert db.gmr_manager.stats.guard_failures >= 1
        # Accessing it surfaces the failure, wrapping the user error.
        with pytest.raises(FunctionExecutionError) as excinfo:
            obj.bad()
        assert isinstance(excinfo.value.cause, ValueError)

    def test_partial_failure_leaves_other_rows_valid(self, db):
        db.define_tuple_type("T", {"A": "float"})

        def picky(self):
            if self.A < 0:
                raise ValueError("negative")
            return self.A * 2

        db.define_operation("T", "picky", [], "float", picky)
        good = db.new("T", A=1.0)
        bad = db.new("T", A=-1.0)
        gmr = db.materialize([("T", "picky")])
        # The failed entry is ERROR, not wrong; the good one is served.
        assert gmr.entry_state((good.oid,), "T.picky") == "valid"
        assert gmr.entry_state((bad.oid,), "T.picky") == "error"
        assert good.picky() == 2.0
        assert gmr.check_consistency(db) == []

    def test_update_time_failure_does_not_unwind_update(self, db):
        db.define_tuple_type("T", {"A": "float"})

        def touchy(self):
            if self.A > 100:
                raise ValueError("overflow")
            return self.A

        db.define_operation("T", "touchy", [], "float", touchy)
        obj = db.new("T", A=1.0)
        gmr = db.materialize([("T", "touchy")])
        # The immediate rematerialization fails, but the update itself
        # completes: the entry degrades to ERROR and a retry is queued.
        obj.set_A(1000.0)
        raw = db.objects.get(obj.oid)
        assert raw.data["A"] == 1000.0
        assert gmr.entry_state((obj.oid,), "T.touchy") == "error"
        assert gmr.check_consistency(db) == []
        # A later successful update heals the entry.
        obj.set_A(2.0)
        assert obj.touchy() == 2.0
        assert gmr.entry_state((obj.oid,), "T.touchy") == "valid"

    def test_lazy_failure_surfaces_on_access(self, db):
        db.define_tuple_type("T", {"A": "float"})

        def touchy(self):
            if self.A > 100:
                raise ValueError("overflow")
            return self.A

        db.define_operation("T", "touchy", [], "float", touchy)
        obj = db.new("T", A=1.0)
        db.materialize([("T", "touchy")], strategy=Strategy.LAZY)
        obj.set_A(1000.0)  # no failure yet: lazily invalidated
        with pytest.raises(FunctionExecutionError) as excinfo:
            obj.touchy()
        assert isinstance(excinfo.value.cause, ValueError)


class TestDefinitionErrors:
    def test_materialize_unknown_operation(self, db):
        db.define_tuple_type("T", {"A": "float"})
        with pytest.raises(ReproError):
            db.materialize([("T", "ghost")])

    def test_materialize_unknown_type(self, db):
        with pytest.raises(ReproError):
            db.materialize([("Ghost", "f")])

    def test_operation_on_deleted_object(self, point_db):
        point = point_db.new("Point", X=1.0, Y=1.0)
        point_db.materialize([("Point", "norm")])
        point_db.delete(point)
        with pytest.raises(ReproError):
            point.norm()

    def test_backward_query_unknown_fid(self, point_db):
        point_db.materialize([("Point", "norm")])
        with pytest.raises(GMRDefinitionError):
            point_db.gmr_manager.backward_query("Point.ghost", 0, 1)


class TestEncapsulationUnderMaterialization:
    def test_materialization_bypasses_public_clause(self, db):
        """The GMR manager evaluates bodies internally — the public
        clause applies to clients, not to the machinery."""
        db.define_tuple_type("Sealed", {"A": "float"}, public=["f"])

        def f(self):
            return self.A * 2  # reads the non-public attribute

        db.define_operation("Sealed", "f", [], "float", f)
        obj = db.new("Sealed", A=3.0)
        gmr = db.materialize([("Sealed", "f")])
        assert obj.f() == 6.0
        with pytest.raises(EncapsulationError):
            obj.A

    def test_compensation_receives_handles(self, geometry_db):
        """CA bodies get handles (not raw OIDs) for object arguments."""
        db, fixture = geometry_db
        db.materialize([("Workpieces", "total_volume")])
        seen = []

        def ca(workpieces, new_cuboid, old):
            seen.append((workpieces.type_name, new_cuboid.type_name))
            return old + new_cuboid.volume()

        db.gmr_manager.register_compensation(
            "Workpieces", "insert", ("Workpieces", "total_volume"), ca
        )
        fixture.workpieces.insert(fixture.cuboids[2])
        assert seen == [("Workpieces", "Cuboid")]


class TestTypeSafetyUnderMaterialization:
    def test_wrong_argument_type_to_materialized_function(self, geometry_db):
        db, fixture = geometry_db
        from repro.domains.geometry import create_robot

        create_robot(db, "R", (1.0, 1.0, 1.0))
        db.materialize([("Cuboid", "distance")])
        with pytest.raises(TypeCheckError):
            fixture.cuboids[0].distance(fixture.iron)  # Material ≠ Robot
