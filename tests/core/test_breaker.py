"""Unit tests for the fault-tolerance building blocks.

Covers the error taxonomy (FunctionExecutionError / FunctionTimeoutError
/ FunctionQuarantinedError), the exponential-backoff schedule math
(deadlines, attempt caps, jitter bounds under a seeded RNG), the
execution guard's conversion contract, and the circuit breaker's
open → half-open → close transitions including persistence.
"""

import pytest

from repro.core.breaker import BreakerState, CircuitBreaker
from repro.core.guard import (
    ExecutionGuard,
    FaultPolicy,
    backoff_delay,
    jittered_delay,
)
from repro.errors import (
    FunctionExecutionError,
    FunctionQuarantinedError,
    FunctionTimeoutError,
    MaterializationError,
)
from repro.util.rng import DeterministicRng


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestErrorTaxonomy:
    def test_execution_error_wraps_cause(self):
        cause = ValueError("boom")
        error = FunctionExecutionError("T.f", (1,), cause=cause)
        assert error.fid == "T.f"
        assert error.args_tuple == (1,)
        assert error.cause is cause
        assert isinstance(error, MaterializationError)
        assert "T.f" in str(error)
        assert "boom" in str(error)

    def test_timeout_is_an_execution_error(self):
        error = FunctionTimeoutError("T.f", (), elapsed=0.2, budget=0.1)
        assert isinstance(error, FunctionExecutionError)
        assert error.elapsed == 0.2
        assert error.budget == 0.1
        assert "budget" in str(error)

    def test_quarantined_error(self):
        error = FunctionQuarantinedError("T.f")
        assert error.fid == "T.f"
        assert isinstance(error, MaterializationError)
        assert "quarantined" in str(error)
        # Quarantine denial is not an execution failure: callers that
        # retry on FunctionExecutionError must not catch it by accident.
        assert not isinstance(error, FunctionExecutionError)


class TestBackoffMath:
    def test_exponential_doubling_capped(self):
        policy = FaultPolicy(base_delay=0.05, max_delay=1.0)
        delays = [backoff_delay(policy, attempt) for attempt in range(1, 8)]
        assert delays[:5] == pytest.approx([0.05, 0.1, 0.2, 0.4, 0.8])
        assert delays[5] == 1.0
        assert delays[6] == 1.0  # capped, not doubling forever

    def test_attempt_numbers_are_one_based(self):
        with pytest.raises(ValueError):
            backoff_delay(FaultPolicy(), 0)

    def test_jitter_bounds_under_seeded_rng(self):
        policy = FaultPolicy(base_delay=0.1, max_delay=10.0, jitter=0.25)
        rng = DeterministicRng(42)
        for attempt in range(1, 8):
            base = backoff_delay(policy, attempt)
            for _ in range(50):
                delay = jittered_delay(policy, attempt, rng)
                assert base * 0.75 <= delay <= base * 1.25

    def test_zero_jitter_is_exact(self):
        policy = FaultPolicy(jitter=0.0)
        rng = DeterministicRng(0)
        assert jittered_delay(policy, 3, rng) == backoff_delay(policy, 3)

    def test_seeded_schedule_is_reproducible(self):
        policy = FaultPolicy(jitter=0.1)
        first = [
            jittered_delay(policy, attempt, rng)
            for rng in [DeterministicRng(7)]
            for attempt in range(1, 6)
        ]
        second = [
            jittered_delay(policy, attempt, rng)
            for rng in [DeterministicRng(7)]
            for attempt in range(1, 6)
        ]
        assert first == second


class TestExecutionGuard:
    def test_success_passes_value_through(self):
        guard = ExecutionGuard(FaultPolicy())
        value, failure = guard.timed("f", (), lambda: 42)
        assert value == 42
        assert failure is None

    def test_exception_converted_to_failure_value(self):
        guard = ExecutionGuard(FaultPolicy())
        value, failure = guard.timed("f", (1,), lambda: 1 / 0)
        assert value is None
        assert isinstance(failure, FunctionExecutionError)
        assert isinstance(failure.cause, ZeroDivisionError)
        assert failure.args_tuple == (1,)

    def test_budget_overrun_detected_post_hoc(self):
        clock = FakeClock()
        guard = ExecutionGuard(FaultPolicy(call_budget=0.1), clock=clock)

        def slow():
            clock.advance(0.5)
            return "late result"

        value, failure = guard.timed("f", (), slow)
        # The overrunning call's value is discarded entirely.
        assert value is None
        assert isinstance(failure, FunctionTimeoutError)
        assert failure.elapsed == pytest.approx(0.5)
        assert failure.budget == 0.1

    def test_within_budget_is_fine(self):
        clock = FakeClock()
        guard = ExecutionGuard(FaultPolicy(call_budget=1.0), clock=clock)

        def quick():
            clock.advance(0.2)
            return "ok"

        value, failure = guard.timed("f", (), quick)
        assert value == "ok"
        assert failure is None

    def test_base_exception_passes_through(self):
        guard = ExecutionGuard(FaultPolicy())

        def interrupted():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            guard.timed("f", (), interrupted)


class TestBreakerTransitions:
    def make(self, **overrides) -> tuple[CircuitBreaker, FakeClock]:
        clock = FakeClock()
        policy = FaultPolicy(failure_threshold=3, cooldown=10.0, **overrides)
        return CircuitBreaker(policy, clock=clock), clock

    def test_closed_allows(self):
        breaker, _ = self.make()
        decision = breaker.acquire("f")
        assert decision.allowed
        assert not decision.probe
        assert breaker.state("f") is BreakerState.CLOSED
        assert not breaker.quarantined("f")

    def test_opens_after_consecutive_threshold(self):
        breaker, _ = self.make()
        assert not breaker.record_failure("f")
        assert not breaker.record_failure("f")
        assert breaker.record_failure("f")  # third in a row opens
        assert breaker.state("f") is BreakerState.OPEN
        assert breaker.quarantined("f")
        assert not breaker.acquire("f").allowed

    def test_success_resets_the_streak(self):
        breaker, _ = self.make()
        breaker.record_failure("f")
        breaker.record_failure("f")
        breaker.record_success("f")
        assert breaker.failures("f") == 0
        assert not breaker.record_failure("f")  # streak restarted

    def test_half_open_probe_success_closes(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure("f")
        assert not breaker.probe_eligible("f")
        clock.advance(10.0)
        assert breaker.probe_eligible("f")
        decision = breaker.acquire("f")
        assert decision.allowed and decision.probe
        assert breaker.state("f") is BreakerState.HALF_OPEN
        assert breaker.record_success("f")  # True: this closed it
        assert breaker.state("f") is BreakerState.CLOSED
        assert not breaker.quarantined("f")

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure("f")
        clock.advance(10.0)
        assert breaker.acquire("f").probe
        assert breaker.record_failure("f")  # True: re-opened
        assert breaker.state("f") is BreakerState.OPEN
        # The cooldown restarted from the probe failure.
        assert breaker.seconds_until_probe("f") == pytest.approx(10.0)

    def test_seconds_until_probe_counts_down(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure("f")
        clock.advance(4.0)
        assert breaker.seconds_until_probe("f") == pytest.approx(6.0)
        clock.advance(6.0)
        assert breaker.seconds_until_probe("f") == 0.0

    def test_per_fid_isolation(self):
        breaker, _ = self.make()
        for _ in range(3):
            breaker.record_failure("f")
        assert breaker.quarantined("f")
        assert not breaker.quarantined("g")
        assert breaker.acquire("g").allowed
        assert breaker.quarantined_fids() == ["f"]

    def test_trip_and_reset(self):
        breaker, _ = self.make()
        breaker.trip("f")
        assert breaker.state("f") is BreakerState.OPEN
        breaker.reset("f")
        assert breaker.state("f") is BreakerState.CLOSED
        assert breaker.failures("f") == 0

    def test_dump_restore_carries_remaining_cooldown(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure("f")
        clock.advance(4.0)
        state = breaker.dump_state()
        assert state["fids"]["f"]["state"] == "open"
        assert state["fids"]["f"]["cooldown_remaining"] == pytest.approx(6.0)

        restored_clock = FakeClock()
        restored = CircuitBreaker(breaker.policy, clock=restored_clock)
        restored.restore_state(state)
        assert restored.quarantined("f")
        assert restored.seconds_until_probe("f") == pytest.approx(6.0)
        restored_clock.advance(6.0)
        assert restored.probe_eligible("f")

    def test_half_open_dumps_as_open(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure("f")
        clock.advance(10.0)
        breaker.acquire("f")  # half-opens
        state = breaker.dump_state()
        # An in-flight probe cannot survive a checkpoint: re-opened.
        assert state["fids"]["f"]["state"] == "open"

    def test_pristine_entries_are_not_dumped(self):
        breaker, _ = self.make()
        breaker.acquire("f")
        breaker.record_failure("g")
        breaker.record_success("g")  # streak cleared, history kept
        state = breaker.dump_state()
        assert "f" not in state["fids"]
        assert state["fids"]["g"]["total_failures"] == 1
