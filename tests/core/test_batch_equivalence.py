"""Differential update-equivalence suite for the batching pipeline.

Batched maintenance (``with db.batch(): ...``) is a pure performance
optimisation: coalescing notifications and replaying them at the flush
must never change what ends up in a GMR.  This suite runs update scripts
through

(a) an **unbatched** object base,
(b) a **batched** object base flushing at fixed script boundaries, and
(c) a naive **recompute-everything oracle** (direct evaluation of the
    function bodies against the final physical state),

and asserts that (a) and (b) agree on the GMR extension — values *and*
validity flags (Defs. 3.2–3.4) — at every flush boundary, and that
forward queries after the last flush agree with (c), for every
instrumentation level × strategy combination.

A stateful Hypothesis machine additionally interleaves batch scopes,
flushes, queries and extension adaptations (mid-batch ``create`` /
``delete`` of argument objects, Sec. 4.2) in arbitrary order against a
mirrored unbatched object base.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
    run_state_machine_as_test,
)

from repro import InstrumentationLevel, ObjectBase, Strategy
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_cuboid,
    create_vertex,
)

LEVELS = [
    InstrumentationLevel.NAIVE,
    InstrumentationLevel.SCHEMA_DEP,
    InstrumentationLevel.OBJ_DEP,
    InstrumentationLevel.INFO_HIDING,
]
STRATEGIES = [
    Strategy.IMMEDIATE,
    Strategy.LAZY,
    Strategy.DEFERRED,
    Strategy.SNAPSHOT,
]

#: A fixed update script covering every rewritten elementary update —
#: attribute writes, operation invocations, and extension adaptations
#: (create/delete), with repeated touches of the same object so the
#: batched run actually coalesces.
_SCRIPT = [
    ("scale", 0, 1.5),
    ("scale", 0, 1.1),
    ("rotate", 1, 0.7),
    ("set_vertex", 0, 2.5),
    ("set_mat", 1, 0.0),
    ("create", 3, 2.0),
    ("scale", 3, 1.25),
    ("query", 0, 0.0),
    ("translate", 2, 1.5),
    ("delete", 1, 0.0),
    ("scale", 2, 0.9),
    ("set_vertex", 2, 4.0),
    ("create", 4, 3.0),
    ("delete", 4, 0.0),
    ("rotate", 0, 1.2),
]

_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["scale", "rotate", "translate", "set_mat", "set_vertex",
             "create", "delete", "query"]
        ),
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=0.5, max_value=1.8),
    ),
    max_size=15,
)


class _Harness:
    """One object base replaying the shared op vocabulary."""

    def __init__(
        self, level: InstrumentationLevel, strategy: Strategy
    ) -> None:
        self.strategy = strategy
        self.db = ObjectBase(level=level)
        build_geometry_schema(self.db)
        self.fixture = build_figure2_database(self.db)
        self.gmr = self.db.materialize(
            [("Cuboid", "volume"), ("Cuboid", "weight")], strategy=strategy
        )
        self.cuboids = list(self.fixture.cuboids)
        self.queried: list[float] = []

    def apply(self, op: tuple) -> None:
        code, selector, magnitude = op
        db, fixture = self.db, self.fixture
        cuboid = (
            self.cuboids[selector % len(self.cuboids)]
            if self.cuboids
            else None
        )
        if code == "scale" and cuboid is not None:
            cuboid.scale(create_vertex(db, magnitude, 1.0, 1.0))
        elif code == "rotate" and cuboid is not None:
            cuboid.rotate("xyz"[selector % 3], magnitude)
        elif code == "translate" and cuboid is not None:
            cuboid.translate(create_vertex(db, magnitude, 0.0, -magnitude))
        elif code == "set_mat" and cuboid is not None:
            cuboid.set_Mat(fixture.gold if selector % 2 else fixture.iron)
        elif code == "set_vertex" and cuboid is not None:
            vertex = db.objects.get(cuboid.oid).data[f"V{1 + selector % 8}"]
            db.handle(vertex).set_Y(magnitude * 3.0)
        elif code == "create":
            self.cuboids.append(
                create_cuboid(
                    db,
                    dims=(magnitude, 1.0, 1.0),
                    material=fixture.iron,
                    cuboid_id=50 + selector,
                )
            )
        elif code == "delete" and len(self.cuboids) > 1 and cuboid is not None:
            self.cuboids.remove(cuboid)
            db.delete(cuboid)
        elif code == "query" and cuboid is not None:
            self.queried.append(round(cuboid.volume(), 9))

    def state(self):
        """The GMR extension: args, validity flags, and the values of
        *valid* entries (invalid values are recomputed on access, so
        their stored bytes are not part of the observable state)."""
        return sorted(
            (
                row.args[0].value,
                tuple(row.valid),
                tuple(
                    round(value, 9) if valid else None
                    for value, valid in zip(row.results, row.valid)
                ),
            )
            for row in self.gmr.rows()
        )

    def check_consistency(self):
        """Def. 3.2 consistency — inapplicable to snapshot GMRs, which
        deliberately serve stale values between refreshes."""
        if self.strategy is Strategy.SNAPSHOT:
            return []
        return self.gmr.check_consistency(self.db)

    def forward_results(self):
        """Forward-query every surviving cuboid (forces recomputation of
        invalid entries)."""
        return [
            (round(c.volume(), 9), round(c.weight(), 9))
            for c in self.cuboids
        ]

    def oracle_results(self):
        """The naive recompute-everything oracle: evaluate the real
        function bodies against the current physical state, bypassing
        the GMR entirely."""
        db = self.db
        volume = db.functions.register("Cuboid", "volume")
        weight = db.functions.register("Cuboid", "weight")
        out = []
        for cuboid in self.cuboids:
            out.append(
                (
                    round(db.call_function(volume, (cuboid.oid,)), 9),
                    round(db.call_function(weight, (cuboid.oid,)), 9),
                )
            )
        return out


def _boundary_states(level, strategy, ops, *, batch_size):
    """Replay ``ops`` and capture the GMR state at each flush boundary.

    ``batch_size=None`` replays unbatched (capturing at the same
    boundaries); otherwise each chunk runs inside one batch scope.
    """
    harness = _Harness(level, strategy)
    states = []
    chunk_edge = batch_size or 4
    for start in range(0, len(ops), chunk_edge):
        chunk = ops[start : start + chunk_edge]
        if batch_size is None:
            for op in chunk:
                harness.apply(op)
        else:
            with harness.db.batch():
                for op in chunk:
                    harness.apply(op)
        states.append(harness.state())
    return harness, states


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
@pytest.mark.parametrize("level", LEVELS, ids=lambda lv: lv.name)
def test_batched_equals_unbatched_every_level_and_strategy(level, strategy):
    plain, plain_states = _boundary_states(
        level, strategy, _SCRIPT, batch_size=None
    )
    batched, batched_states = _boundary_states(
        level, strategy, _SCRIPT, batch_size=4
    )
    assert batched_states == plain_states
    assert batched.queried == plain.queried
    assert batched.check_consistency() == []
    # The batched run must have actually coalesced something on this
    # script (repeated touches of the same cuboids).  Snapshot GMRs
    # register no update dependencies, so only the unconditional NAIVE
    # notifications produce coalescable traffic for them.
    assert batched.db.gmr_manager.stats.batched_invalidations > 0
    if strategy is not Strategy.SNAPSHOT:
        assert batched.db.gmr_manager.stats.rrr_probes_saved > 0
    # (c) the recompute-everything oracle agrees with forward queries.
    # Snapshot GMRs serve deliberately stale values until refreshed.
    if strategy is Strategy.SNAPSHOT:
        assert batched.forward_results() == plain.forward_results()
        batched.db.gmr_manager.refresh_snapshot(batched.gmr)
    assert batched.forward_results() == batched.oracle_results()


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
def test_deferred_drain_matches_unbatched_revalidation(strategy):
    """After a full scheduler drain / revalidation sweep both runs are
    fully valid and value-identical."""
    plain, _ = _boundary_states(
        InstrumentationLevel.OBJ_DEP, strategy, _SCRIPT, batch_size=None
    )
    batched, _ = _boundary_states(
        InstrumentationLevel.OBJ_DEP, strategy, _SCRIPT, batch_size=6
    )
    if strategy is Strategy.SNAPSHOT:
        for harness in (plain, batched):
            harness.db.gmr_manager.refresh_snapshot(harness.gmr)
    else:
        for harness in (plain, batched):
            harness.db.gmr_manager.scheduler.revalidate()
            harness.db.gmr_manager.revalidate(harness.gmr)
    assert batched.state() == plain.state()
    for args, valid, _values in batched.state():
        assert all(valid), f"invalid entry left for {args}"


@given(ops=_OPS, batch_size=st.integers(min_value=1, max_value=6))
@settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_batched_equals_unbatched_property(ops, batch_size):
    """Hypothesis: arbitrary scripts, OBJ_DEP, immediate and lazy."""
    for strategy in (Strategy.IMMEDIATE, Strategy.LAZY):
        plain, plain_states = _boundary_states(
            InstrumentationLevel.OBJ_DEP, strategy, ops, batch_size=None
        )
        batched, batched_states = _boundary_states(
            InstrumentationLevel.OBJ_DEP, strategy, ops, batch_size=batch_size
        )
        # Boundary capture uses chunk size 4 on the unbatched side, so
        # only the final states are directly comparable here.
        assert (batched_states or [[]])[-1] == (plain_states or [[]])[-1]
        assert batched.queried == plain.queried
        assert batched.gmr.check_consistency(batched.db) == []
        assert batched.forward_results() == batched.oracle_results()


def test_queries_inside_a_batch_force_a_flush():
    harness = _Harness(InstrumentationLevel.OBJ_DEP, Strategy.IMMEDIATE)
    manager = harness.db.gmr_manager
    cuboid = harness.cuboids[0]
    with harness.db.batch():
        harness.apply(("scale", 0, 2.0))
        assert manager.stats.batch_flushes == 0
        value = cuboid.volume()  # forward query: must see the update
        assert manager.stats.batch_flushes == 1
    assert value == pytest.approx(harness.oracle_results()[0][0])
    assert manager.stats.batch_flushes == 1  # exit flush found no events


def test_backward_query_inside_a_batch_forces_a_flush():
    harness = _Harness(InstrumentationLevel.OBJ_DEP, Strategy.LAZY)
    manager = harness.db.gmr_manager
    fid = harness.gmr.fids[0]
    with harness.db.batch():
        harness.apply(("scale", 0, 2.0))
        results = dict(
            (args[0].value, value)
            for value, args in manager.backward_query(fid)
        )
        assert manager.stats.batch_flushes == 1
    oracle = {
        c.oid.value: round(v, 9)
        for c, (v, _w) in zip(harness.cuboids, harness.oracle_results())
    }
    assert {k: round(v, 9) for k, v in results.items()} == oracle


def test_nested_batches_flush_once_at_the_outermost_exit():
    harness = _Harness(InstrumentationLevel.OBJ_DEP, Strategy.IMMEDIATE)
    manager = harness.db.gmr_manager
    with harness.db.batch() as outer:
        with harness.db.batch():
            harness.apply(("scale", 0, 1.5))
            harness.apply(("scale", 0, 1.5))
        assert manager.stats.batch_flushes == 0  # inner exit: no flush
    assert manager.stats.batch_flushes == 1
    assert outer.notifications > 0
    assert outer.probes_saved > 0


def test_batch_flushes_even_when_the_body_raises():
    harness = _Harness(InstrumentationLevel.OBJ_DEP, Strategy.IMMEDIATE)
    with pytest.raises(RuntimeError):
        with harness.db.batch():
            harness.apply(("scale", 0, 2.0))
            raise RuntimeError("updater died")
    # The physical update had already been applied, so the flush must
    # have happened: the GMR reflects the post-update state.
    assert harness.gmr.check_consistency(harness.db) == []
    assert harness.forward_results() == harness.oracle_results()


def test_create_then_delete_inside_one_batch_cancels_out():
    harness = _Harness(InstrumentationLevel.OBJ_DEP, Strategy.IMMEDIATE)
    before = harness.state()
    with harness.db.batch():
        harness.apply(("create", 5, 2.0))
        harness.apply(("delete", len(harness.cuboids) - 1, 0.0))
    assert harness.state() == before
    assert harness.gmr.check_consistency(harness.db) == []


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
@pytest.mark.parametrize("level", LEVELS, ids=lambda l: l.name)
def test_invalidate_then_delete_in_one_batch(level, strategy):
    """Update an object, then delete it, inside a single batch.

    Found by the stateful machine: a lazy invalidation consumes the RRR
    entry, so the unbatched run's forget_object never finds the row and
    leaves it behind as a blind invalid row (Sec. 4.2) — the grouped
    flush must reproduce that, not eagerly remove the row."""
    plain = _Harness(level, strategy)
    batched = _Harness(level, strategy)
    script = [("set_mat", 0, 0.0), ("delete", 0, 0.0)]
    for op in script:
        plain.apply(op)
    with batched.db.batch():
        for op in script:
            batched.apply(op)
    assert batched.state() == plain.state()
    assert batched.check_consistency() == []


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
@pytest.mark.parametrize("level", LEVELS, ids=lambda l: l.name)
def test_create_update_delete_in_one_batch(level, strategy):
    """Create an object, update it, delete another, then delete it —
    all inside a single batch.

    Found by the stateful machine: the queue elides the create+delete
    pair, but sequentially the adaptation materialized the row, the
    lazy invalidation consumed its RRR entries, and the delete walked
    away — leaving a blind invalid row the flush must synthesize.  The
    unrelated delete in between strands the invalidation behind a
    coalescing barrier, so the fold must reach across it."""
    plain = _Harness(level, strategy)
    batched = _Harness(level, strategy)
    script = [
        ("create", 0, 1.0),
        ("set_mat", 3, 0.0),
        ("delete", 0, 0.0),
        ("delete", 2, 0.0),
    ]
    for op in script:
        plain.apply(op)
    with batched.db.batch():
        for op in script:
            batched.apply(op)
    assert batched.state() == plain.state()
    assert batched.check_consistency() == []


class BatchEquivalenceMachine(RuleBasedStateMachine):
    """Mirror every operation into a batched and an unbatched base.

    The batched base keeps a batch scope open between ``flush`` rules;
    the unbatched base applies everything eagerly.  At every flush
    boundary both GMR extensions (values and validity flags) must agree.
    """

    @initialize(
        level=st.sampled_from(LEVELS), strategy=st.sampled_from(STRATEGIES)
    )
    def setup(self, level, strategy):
        self.plain = _Harness(level, strategy)
        self.batched = _Harness(level, strategy)
        self.scope = self.batched.db.batch()
        self.scope.__enter__()
        self.in_batch = True

    def _mirror(self, op):
        self.plain.apply(op)
        self.batched.apply(op)

    @rule(selector=st.integers(0, 7), magnitude=st.floats(0.5, 1.8))
    def update(self, selector, magnitude):
        self._mirror(("scale", selector, magnitude))

    @rule(selector=st.integers(0, 7), magnitude=st.floats(0.5, 1.8))
    def rotate(self, selector, magnitude):
        self._mirror(("rotate", selector, magnitude))

    @rule(selector=st.integers(0, 7), magnitude=st.floats(0.5, 4.0))
    def set_vertex(self, selector, magnitude):
        self._mirror(("set_vertex", selector, magnitude))

    @rule(selector=st.integers(0, 7))
    def set_material(self, selector):
        self._mirror(("set_mat", selector, 0.0))

    @rule(selector=st.integers(0, 7), magnitude=st.floats(0.5, 1.8))
    def create_argument_object(self, selector, magnitude):
        self._mirror(("create", selector, magnitude))

    @rule(selector=st.integers(0, 7))
    def delete_argument_object(self, selector):
        self._mirror(("delete", selector, 0.0))

    @rule(selector=st.integers(0, 7))
    def query(self, selector):
        self._mirror(("query", selector, 0.0))

    @precondition(lambda self: getattr(self, "in_batch", False))
    @rule()
    def flush(self):
        self.scope.__exit__(None, None, None)
        self.in_batch = False
        assert self.batched.state() == self.plain.state()
        assert self.batched.check_consistency() == []
        self.scope = self.batched.db.batch()
        self.scope.__enter__()
        self.in_batch = True

    @invariant()
    def mirrored_populations_agree(self):
        if not hasattr(self, "plain"):
            return
        assert [c.oid.value for c in self.batched.cuboids] == [
            c.oid.value for c in self.plain.cuboids
        ]

    def teardown(self):
        if getattr(self, "in_batch", False):
            self.scope.__exit__(None, None, None)
            assert self.batched.state() == self.plain.state()
            assert self.batched.queried == self.plain.queried


def test_stateful_batch_equivalence():
    run_state_machine_as_test(
        BatchEquivalenceMachine,
        settings=settings(
            max_examples=20,
            stateful_step_count=15,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        ),
    )
