"""The revalidation scheduler (the paper's "load falls below a
predefined threshold" rematerialization case, Sec. 4.1).

``DEFERRED`` invalidations mark entries invalid exactly like ``LAZY``
and additionally queue them on the manager's
:class:`~repro.core.scheduler.RevalidationScheduler`; an idle-time
``revalidate()`` drain brings the hottest entries back first under a
row or time budget.
"""

from __future__ import annotations

import pytest

from repro import InstrumentationLevel, ObjectBase, Strategy
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_vertex,
)


@pytest.fixture
def deferred_db():
    db = ObjectBase(level=InstrumentationLevel.OBJ_DEP)
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    gmr = db.materialize([("Cuboid", "volume")], strategy=Strategy.DEFERRED)
    return db, fixture, gmr


def _invalidate_all(db, fixture):
    for cuboid in fixture.cuboids:
        cuboid.scale(create_vertex(db, 1.5, 1.0, 1.0))


def test_deferred_invalidation_queues_entries(deferred_db):
    db, fixture, gmr = deferred_db
    scheduler = db.gmr_manager.scheduler
    assert scheduler.pending() == 0
    _invalidate_all(db, fixture)
    assert scheduler.pending() == len(fixture.cuboids)
    fid = gmr.fids[0]
    for cuboid in fixture.cuboids:
        _, valid = gmr.result((cuboid.oid,), fid)
        assert not valid


def test_reinvalidating_a_queued_entry_does_not_duplicate(deferred_db):
    db, fixture, _gmr = deferred_db
    scheduler = db.gmr_manager.scheduler
    cuboid = fixture.cuboids[0]
    cuboid.scale(create_vertex(db, 1.5, 1.0, 1.0))
    cuboid.scale(create_vertex(db, 1.5, 1.0, 1.0))
    assert scheduler.pending() == 1


def test_drain_restores_validity_and_counts(deferred_db):
    db, fixture, gmr = deferred_db
    manager = db.gmr_manager
    _invalidate_all(db, fixture)
    drained = manager.scheduler.revalidate()
    assert drained == len(fixture.cuboids)
    assert manager.stats.scheduler_revalidations == drained
    assert manager.scheduler.pending() == 0
    fid = gmr.fids[0]
    for cuboid in fixture.cuboids:
        _, valid = gmr.result((cuboid.oid,), fid)
        assert valid
    assert gmr.check_consistency(db) == []


def test_row_budget_bounds_the_drain(deferred_db):
    db, fixture, _gmr = deferred_db
    manager = db.gmr_manager
    _invalidate_all(db, fixture)
    assert manager.scheduler.revalidate(max_entries=2) == 2
    assert manager.scheduler.pending() == len(fixture.cuboids) - 2
    assert manager.scheduler.revalidate() == len(fixture.cuboids) - 2


def test_zero_time_budget_drains_nothing(deferred_db):
    db, fixture, _gmr = deferred_db
    manager = db.gmr_manager
    _invalidate_all(db, fixture)
    assert manager.scheduler.revalidate(time_budget=0.0) == 0
    assert manager.scheduler.pending() == len(fixture.cuboids)


def test_hot_functions_drain_first():
    """Priority: entries of frequently forward-queried functions are
    revalidated before entries of cold functions."""
    db = ObjectBase(level=InstrumentationLevel.OBJ_DEP)
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    volume = db.materialize([("Cuboid", "volume")], strategy=Strategy.DEFERRED)
    weight = db.materialize([("Cuboid", "weight")], strategy=Strategy.DEFERRED)
    manager = db.gmr_manager
    hot = fixture.cuboids[0]
    for _ in range(5):
        hot.volume()  # volume becomes the hot function
    _invalidate_all(db, fixture)  # queues volume AND weight entries
    assert manager.scheduler.pending() == 2 * len(fixture.cuboids)
    drained = manager.scheduler.revalidate(max_entries=len(fixture.cuboids))
    assert drained == len(fixture.cuboids)
    volume_fid, weight_fid = volume.fids[0], weight.fids[0]
    for cuboid in fixture.cuboids:
        _, volume_valid = volume.result((cuboid.oid,), volume_fid)
        _, weight_valid = weight.result((cuboid.oid,), weight_fid)
        assert volume_valid, "hot function should drain first"
        assert not weight_valid, "cold function should still be queued"


def test_equal_frequency_drains_stalest_first(deferred_db):
    db, fixture, gmr = deferred_db
    manager = db.gmr_manager
    first, second = fixture.cuboids[0], fixture.cuboids[1]
    first.scale(create_vertex(db, 1.5, 1.0, 1.0))  # invalidated earlier
    second.scale(create_vertex(db, 1.5, 1.0, 1.0))
    assert manager.scheduler.revalidate(max_entries=1) == 1
    fid = gmr.fids[0]
    _, first_valid = gmr.result((first.oid,), fid)
    _, second_valid = gmr.result((second.oid,), fid)
    assert first_valid and not second_valid


def test_entries_revalidated_on_demand_are_skipped_for_free(deferred_db):
    db, fixture, _gmr = deferred_db
    manager = db.gmr_manager
    cuboid = fixture.cuboids[0]
    cuboid.scale(create_vertex(db, 1.5, 1.0, 1.0))
    assert manager.scheduler.pending() == 1
    cuboid.volume()  # forward query recomputes the entry on demand
    before = manager.stats.snapshot()
    assert manager.scheduler.revalidate() == 0
    delta = manager.stats.delta(before)
    assert delta.rematerializations == 0
    assert delta.scheduler_revalidations == 0
    assert manager.scheduler.pending() == 0


def test_rows_of_deleted_objects_are_dropped_not_recomputed(deferred_db):
    db, fixture, gmr = deferred_db
    manager = db.gmr_manager
    cuboid = fixture.cuboids[0]
    cuboid.scale(create_vertex(db, 1.5, 1.0, 1.0))
    assert manager.scheduler.pending() == 1
    db.delete(cuboid)
    before = manager.stats.snapshot()
    assert manager.scheduler.revalidate() == 0
    assert manager.stats.delta(before).rematerializations == 0
    assert gmr.lookup((cuboid.oid,)) is None


def test_backward_query_completes_validity_without_the_scheduler(deferred_db):
    """DEFERRED behaves like LAZY for backward queries: validity is
    completed eagerly, and the queued entries then drain for free."""
    db, fixture, gmr = deferred_db
    manager = db.gmr_manager
    _invalidate_all(db, fixture)
    results = manager.backward_query(gmr.fids[0])
    assert len(results) == len(fixture.cuboids)
    before = manager.stats.snapshot()
    assert manager.scheduler.revalidate() == 0
    assert manager.stats.delta(before).rematerializations == 0


def test_clear_empties_the_queue(deferred_db):
    db, fixture, _gmr = deferred_db
    manager = db.gmr_manager
    _invalidate_all(db, fixture)
    manager.scheduler.clear()
    assert manager.scheduler.pending() == 0
    assert manager.scheduler.revalidate() == 0


def test_force_invalidate_all_feeds_the_scheduler(deferred_db):
    db, fixture, gmr = deferred_db
    manager = db.gmr_manager
    manager.force_invalidate_all(gmr)
    assert manager.scheduler.pending() == len(fixture.cuboids)
    assert manager.scheduler.revalidate() == len(fixture.cuboids)
    assert gmr.check_consistency(db) == []
