"""Manager-level execution-guard tests.

The tentpole's contract: nothing a user function does (raise, stall)
may unwind a maintenance loop or leave the GMR inconsistent.  Failing
entries land in the ERROR validity state, bounded backed-off retries
heal them, and the rest of the invalidation wave always completes —
including the regression for the pre-guard bug where one failing entry
abandoned the remaining popped RRR entries of an IMMEDIATE wave.
"""

import pytest

from repro import ObjectBase, Strategy
from repro.core.breaker import BreakerState
from repro.errors import FunctionExecutionError, FunctionTimeoutError
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_robot,
    create_vertex,
)

from tests._faults import FlakyFunction, InjectedFault, check_consistency


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_double_db() -> ObjectBase:
    db = ObjectBase()
    db.define_tuple_type("T", {"A": "float"})
    db.define_operation("T", "double", [], "float", lambda self: self.A * 2)
    return db


def use_fake_clock(db) -> FakeClock:
    clock = FakeClock()
    db.gmr_manager.clock = clock
    return clock


class TestImmediateWaveRegression:
    def test_one_failure_does_not_abandon_the_wave(self):
        """Regression: an exception from one ``_rematerialize`` inside
        ``invalidate()``'s per-fid loop used to unwind the whole wave,
        losing the remaining popped RRR entries — those entries stayed
        *valid* with stale results (a Def. 3.2 violation) and their RRR
        rows were gone, so later updates never found them again."""
        db = ObjectBase()
        build_geometry_schema(db)
        fixture = build_figure2_database(db)
        robot = create_robot(db, "R1", (10.0, 10.0, 10.0))
        gmr = db.materialize(
            [("Cuboid", "distance")], strategy=Strategy.IMMEDIATE
        )
        assert len(gmr) == 3  # 3 cuboids x 1 robot
        clock = use_fake_clock(db)
        manager = db.gmr_manager

        # Populate made 3 calls with the pristine body; the flaky body
        # fails exactly the first rematerialization of the update wave.
        flaky = FlakyFunction(db, "Cuboid", "distance", fail_at={0})
        before = manager.stats.snapshot()
        # All 3 rows reference the robot's Pos vertex: one update pops
        # one fid with an args_set of 3.
        robot.Pos.set_X(0.0)
        delta = manager.stats.delta(before)

        fid = "Cuboid.distance"
        states = [
            gmr.entry_state((cuboid.oid, robot.oid), fid)
            for cuboid in fixture.cuboids
        ]
        # The wave completed: exactly the injected entry is ERROR, the
        # other two were rematerialized against the new position.
        assert sorted(states) == ["error", "valid", "valid"]
        assert delta.guard_failures == 1
        assert delta.retries_scheduled == 1
        assert delta.entries_invalidated == 3
        # No stale-valid rows, RRR and ObjDepFct in lockstep.
        assert check_consistency(db, injectors=[flaky]) == []

        # The scheduled retry heals the entry once its backoff elapses.
        clock.advance(1.0)
        drained = manager.scheduler.revalidate()
        assert drained == 1
        assert manager.stats.retry_successes == 1
        assert all(
            gmr.entry_state((cuboid.oid, robot.oid), fid) == "valid"
            for cuboid in fixture.cuboids
        )
        assert check_consistency(db, injectors=[flaky]) == []

    def test_updates_never_raise_through_the_guard(self):
        db = make_double_db()
        obj = db.new("T", A=1.0)
        gmr = db.materialize([("T", "double")], strategy=Strategy.IMMEDIATE)
        flaky = FlakyFunction(db, "T", "double", fail_at=set(range(100)))
        # Every rematerialization fails, yet the updates all succeed.
        for value in (2.0, 3.0, 4.0):
            obj.set_A(value)
        assert db.objects.get(obj.oid).data["A"] == 4.0
        assert gmr.entry_state((obj.oid,), "T.double") == "error"
        assert check_consistency(db, injectors=[flaky]) == []


class TestErrorState:
    def test_error_entry_heals_on_successful_recompute(self):
        db = make_double_db()
        obj = db.new("T", A=1.0)
        gmr = db.materialize([("T", "double")], strategy=Strategy.LAZY)
        flaky = FlakyFunction(db, "T", "double", fail_at={0})
        obj.set_A(5.0)
        with pytest.raises(FunctionExecutionError) as excinfo:
            obj.double()
        assert isinstance(excinfo.value.cause, InjectedFault)
        assert gmr.entry_state((obj.oid,), "T.double") == "error"
        assert gmr.error_args("T.double") == {(obj.oid,)}
        assert gmr.has_errors("T.double")
        # Second attempt (index 1) is healthy: the flag clears.
        assert obj.double() == 10.0
        assert gmr.entry_state((obj.oid,), "T.double") == "valid"
        assert not gmr.has_errors("T.double")

    def test_error_rendered_in_extension_table(self):
        db = make_double_db()
        obj = db.new("T", A=1.0)
        gmr = db.materialize([("T", "double")], strategy=Strategy.LAZY)
        FlakyFunction(db, "T", "double", fail_at={0})
        obj.set_A(5.0)
        with pytest.raises(FunctionExecutionError):
            obj.double()
        assert "E" in gmr.extension_table()

    def test_failed_first_materialization_creates_error_row(self):
        """A brand-new combination whose very first computation fails
        still gets a row — the ERROR must be observable and the retry
        must have a target."""
        db = make_double_db()
        db.materialize([("T", "double")], strategy=Strategy.IMMEDIATE)
        FlakyFunction(db, "T", "double", fail_at={0})
        obj = db.new("T", A=1.0)  # extension adaptation fails
        gmr = db.gmr_manager.gmrs()[0]
        assert gmr.entry_state((obj.oid,), "T.double") == "error"

    def test_stall_detected_against_call_budget(self):
        db = make_double_db()
        obj = db.new("T", A=3.0)
        gmr = db.materialize([("T", "double")], strategy=Strategy.LAZY)
        manager = db.gmr_manager
        manager.fault_policy.call_budget = 0.01
        flaky = FlakyFunction(
            db, "T", "double", stall_at={0}, stall_seconds=0.05
        )
        obj.set_A(4.0)
        with pytest.raises(FunctionTimeoutError):
            obj.double()
        assert manager.stats.guard_timeouts == 1
        # The stalling call's (correct) value was discarded: ERROR.
        assert gmr.entry_state((obj.oid,), "T.double") == "error"
        assert check_consistency(db, injectors=[flaky]) == []
        assert obj.double() == 8.0  # next call is fast again


class TestRetryBackoff:
    def test_backoff_deadline_and_attempt_accounting(self):
        db = make_double_db()
        obj = db.new("T", A=1.0)
        db.materialize([("T", "double")], strategy=Strategy.LAZY)
        manager = db.gmr_manager
        clock = use_fake_clock(db)
        policy = manager.fault_policy
        policy.failure_threshold = 1000  # keep the breaker out of this
        # Index 0 is the forward query, 1 the first retry; the second
        # retry (index 2) succeeds.
        flaky = FlakyFunction(db, "T", "double", fail_at={0, 1})
        key = ("T.double", (obj.oid,))

        obj.set_A(5.0)
        with pytest.raises(FunctionExecutionError):
            obj.double()
        assert manager.scheduler.attempts(*key) == 1
        delayed = manager.scheduler.delayed_entries()
        assert len(delayed) == 1
        eligible_at, fid, args = delayed[0]
        assert (fid, args) == key
        low = policy.base_delay * (1 - policy.jitter)
        high = policy.base_delay * (1 + policy.jitter)
        assert low <= eligible_at - clock.now <= high

        # Not ripe yet: the drain promotes nothing.
        assert manager.scheduler.revalidate() == 0
        # Ripe, but the retry fails again: attempt 2, doubled delay.
        clock.advance(high + 0.001)
        assert manager.scheduler.revalidate() == 0
        assert manager.scheduler.attempts(*key) == 2
        (eligible_at, _, _), = manager.scheduler.delayed_entries()
        base2 = policy.base_delay * 2
        assert base2 * (1 - policy.jitter) <= eligible_at - clock.now
        assert eligible_at - clock.now <= base2 * (1 + policy.jitter)

        # Third attempt succeeds (fail indices exhausted) and clears
        # the attempt counter.
        clock.advance(base2 * 2)
        assert manager.scheduler.revalidate() == 1
        assert manager.scheduler.attempts(*key) == 0
        assert manager.stats.retry_successes == 1
        assert obj.double() == 10.0

    def test_retries_exhausted_after_max_attempts(self):
        db = make_double_db()
        obj = db.new("T", A=1.0)
        gmr = db.materialize([("T", "double")], strategy=Strategy.LAZY)
        manager = db.gmr_manager
        clock = use_fake_clock(db)
        policy = manager.fault_policy
        policy.max_attempts = 3
        policy.failure_threshold = 1000
        FlakyFunction(db, "T", "double", fail_at=set(range(1000)))

        obj.set_A(5.0)
        with pytest.raises(FunctionExecutionError):
            obj.double()
        for _ in range(policy.max_attempts + 2):
            clock.advance(policy.max_delay * 2)
            manager.scheduler.revalidate()
        assert manager.stats.retries_exhausted == 1
        # The queue gave up: nothing pending, the entry stays ERROR.
        assert manager.scheduler.pending() == 0
        assert gmr.entry_state((obj.oid,), "T.double") == "error"

    def test_retry_state_round_trips_through_scheduler_dump(self):
        db = make_double_db()
        obj = db.new("T", A=1.0)
        db.materialize([("T", "double")], strategy=Strategy.LAZY)
        manager = db.gmr_manager
        use_fake_clock(db)
        manager.fault_policy.failure_threshold = 1000
        FlakyFunction(db, "T", "double", fail_at={0, 1})
        obj.set_A(5.0)
        with pytest.raises(FunctionExecutionError):
            obj.double()
        state = manager.scheduler.dump_state()
        # Dump hands out the immutable tuples directly (no per-entry
        # list copies on the checkpoint path).
        assert state["attempts"] == [("T.double", (obj.oid,), 1)]
        assert len(state["delayed"]) == 1

        manager.scheduler.clear()
        assert manager.scheduler.pending() == 0
        manager.scheduler.restore_state(state)
        assert manager.scheduler.attempts("T.double", (obj.oid,)) == 1
        assert manager.scheduler.pending() == 1


class TestDisabledPolicy:
    def test_disabled_policy_restores_seed_behaviour(self):
        db = make_double_db()
        obj = db.new("T", A=1.0)
        gmr = db.materialize([("T", "double")], strategy=Strategy.IMMEDIATE)
        db.gmr_manager.fault_policy.enabled = False
        FlakyFunction(db, "T", "double", fail_at={0})
        # Ungated: the user-code error unwinds the update, the entry is
        # plain-invalid (no ERROR diagnosis, no retry scheduled).
        with pytest.raises(InjectedFault):
            obj.set_A(5.0)
        assert gmr.entry_state((obj.oid,), "T.double") == "invalid"
        assert db.gmr_manager.stats.guard_failures == 0
        assert db.gmr_manager.scheduler.pending() == 0
