"""Reverse Reference Relation tests (Def. 4.1), incl. the Figure 3 example."""

import pytest

from repro import ObjectBase
from repro.core.rrr import ReverseReferenceRelation
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_robot,
)
from repro.gom.oid import Oid


class TestRelationBasics:
    def test_insert_and_lookup(self):
        rrr = ReverseReferenceRelation()
        first = rrr.insert(Oid(1), "f", (Oid(1),))
        assert first is True
        assert rrr.args_of(Oid(1), "f") == {(Oid(1),)}
        assert len(rrr) == 1

    def test_insert_is_idempotent(self):
        rrr = ReverseReferenceRelation()
        rrr.insert(Oid(1), "f", (Oid(1),))
        rrr.insert(Oid(1), "f", (Oid(1),))
        assert len(rrr) == 1

    def test_second_args_for_same_fct(self):
        rrr = ReverseReferenceRelation()
        first = rrr.insert(Oid(1), "f", (Oid(1),))
        second = rrr.insert(Oid(1), "f", (Oid(2),))
        assert first is True and second is False
        assert len(rrr) == 2

    def test_remove_signals_last_entry(self):
        rrr = ReverseReferenceRelation()
        rrr.insert(Oid(1), "f", (Oid(1),))
        rrr.insert(Oid(1), "f", (Oid(2),))
        assert rrr.remove(Oid(1), "f", (Oid(1),)) is False
        assert rrr.remove(Oid(1), "f", (Oid(2),)) is True
        assert len(rrr) == 0

    def test_remove_missing(self):
        rrr = ReverseReferenceRelation()
        assert rrr.remove(Oid(1), "f", ()) is False

    def test_pop_args(self):
        rrr = ReverseReferenceRelation()
        rrr.insert(Oid(1), "f", (Oid(1),))
        rrr.insert(Oid(1), "f", (Oid(2),))
        rrr.insert(Oid(1), "g", (Oid(1),))
        popped = rrr.pop_args(Oid(1), "f")
        assert popped == {(Oid(1),), (Oid(2),)}
        assert rrr.fids_of(Oid(1)) == {"g"}

    def test_pop_object(self):
        rrr = ReverseReferenceRelation()
        rrr.insert(Oid(1), "f", (Oid(1),))
        rrr.insert(Oid(1), "g", (Oid(2),))
        rrr.insert(Oid(2), "f", (Oid(2),))
        popped = rrr.pop_object(Oid(1))
        assert set(popped) == {"f", "g"}
        assert len(rrr) == 1
        assert not rrr.has_entries(Oid(1))

    def test_triples_iteration(self):
        rrr = ReverseReferenceRelation()
        rrr.insert(Oid(1), "f", (Oid(1),))
        rrr.insert(Oid(2), "f", (Oid(1), Oid(2)))
        assert sorted(rrr.triples(), key=repr) == sorted(
            [(Oid(1), "f", (Oid(1),)), (Oid(2), "f", (Oid(1), Oid(2)))],
            key=repr,
        )


class TestPaperFigure3:
    """Figure 3: the RRR for ⟨⟨volume, weight⟩⟩ and ⟨⟨distance⟩⟩."""

    @pytest.fixture
    def setting(self):
        db = ObjectBase()
        build_geometry_schema(db)
        fixture = build_figure2_database(db)
        robots = [
            create_robot(db, "R2", (100.0, 0.0, 0.0)),
            create_robot(db, "C3PO", (0.0, 100.0, 0.0)),
        ]
        db.materialize([("Cuboid", "volume"), ("Cuboid", "weight")])
        db.materialize([("Cuboid", "distance")])
        return db, fixture, robots

    def test_cuboid_entries(self, setting):
        db, fixture, robots = setting
        rrr = db.gmr_manager.rrr
        c1 = fixture.cuboids[0]
        # id1 influences volume(id1), weight(id1) and both distances.
        assert rrr.args_of(c1.oid, "Cuboid.volume") == {(c1.oid,)}
        assert rrr.args_of(c1.oid, "Cuboid.weight") == {(c1.oid,)}
        assert rrr.args_of(c1.oid, "Cuboid.distance") == {
            (c1.oid, robots[0].oid),
            (c1.oid, robots[1].oid),
        }

    def test_material_entries(self, setting):
        """Materials influence weight but not volume (Fig. 3: id77, id99)."""
        db, fixture, _ = setting
        rrr = db.gmr_manager.rrr
        iron = fixture.iron
        c1, c2, _ = fixture.cuboids
        assert rrr.args_of(iron.oid, "Cuboid.weight") == {(c1.oid,), (c2.oid,)}
        assert rrr.args_of(iron.oid, "Cuboid.volume") == set()
        gold = fixture.gold
        assert rrr.args_of(gold.oid, "Cuboid.weight") == {
            (fixture.cuboids[2].oid,)
        }

    def test_robot_entries(self, setting):
        """Each robot influences the distance of every cuboid."""
        db, fixture, robots = setting
        rrr = db.gmr_manager.rrr
        robot = robots[1]
        expected = {(cuboid.oid, robot.oid) for cuboid in fixture.cuboids}
        assert rrr.args_of(robot.oid, "Cuboid.distance") == expected

    def test_vertex_entries_cover_used_corners(self, setting):
        """Vertices used by the materialization carry reverse references."""
        db, fixture, _ = setting
        rrr = db.gmr_manager.rrr
        c1 = fixture.cuboids[0]
        v1 = db.objects.get(c1.oid).data["V1"]
        assert rrr.args_of(v1, "Cuboid.volume") == {(c1.oid,)}
        # V3 is not touched by volume (only V1, V2, V4, V5).
        v3 = db.objects.get(c1.oid).data["V3"]
        assert rrr.args_of(v3, "Cuboid.volume") == set()

    def test_objdepfct_lockstep(self, setting):
        """ObjDepFct mirrors the RRR (Sec. 5.2)."""
        db, fixture, robots = setting
        rrr = db.gmr_manager.rrr
        for obj in db.objects.iter_objects():
            assert obj.obj_dep_fct == rrr.fids_of(obj.oid)
