"""Unit tests of the storage health state machine (repro.core.health).

The integration half — WAL faults actually driving the transitions —
lives in ``tests/storage/test_storage_faults.py``; here the machine is
exercised in isolation with an injectable clock.
"""

from __future__ import annotations

import pytest

from repro.core.health import STATE_CODES, HealthMonitor, HealthState
from repro.errors import StorageUnavailableError


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _make(cooldown: float = 1.0):
    clock = FakeClock()
    monitor = HealthMonitor(rearm_cooldown=cooldown, clock=clock)
    return monitor, clock


def test_initial_state_is_healthy_and_writable():
    monitor, _ = _make()
    assert monitor.state is HealthState.HEALTHY
    assert monitor.writable
    assert not monitor.read_only
    assert monitor.io_errors == 0
    assert monitor.reason is None
    monitor.require_writable()  # does not raise


def test_io_error_degrades_and_counts():
    monitor, _ = _make()
    monitor.record_io_error(OSError("disk on fire"), site="wal.append")
    assert monitor.state is HealthState.DEGRADED_READ_ONLY
    assert monitor.read_only and not monitor.writable
    assert monitor.io_errors == 1
    assert "wal.append" in monitor.reason
    with pytest.raises(StorageUnavailableError, match="degraded_read_only"):
        monitor.require_writable()


def test_probe_cooldown_uses_clock():
    monitor, clock = _make(cooldown=1.0)
    monitor.record_io_error(OSError("x"), site="wal.append")
    assert not monitor.probe_eligible()
    clock.advance(0.5)
    assert not monitor.probe_eligible()
    clock.advance(0.6)
    assert monitor.probe_eligible()


def test_failed_probe_restarts_cooldown():
    monitor, clock = _make(cooldown=1.0)
    monitor.record_io_error(OSError("x"), site="wal.append")
    clock.advance(2.0)
    assert monitor.probe_eligible()
    # The probe append failed again: still degraded, window restarted.
    monitor.record_io_error(OSError("y"), site="wal.append")
    assert monitor.state is HealthState.DEGRADED_READ_ONLY
    assert monitor.io_errors == 2
    assert not monitor.probe_eligible()
    clock.advance(1.1)
    assert monitor.probe_eligible()


def test_rearm_returns_to_healthy():
    monitor, _ = _make()
    monitor.record_io_error(OSError("x"), site="wal.append")
    monitor.rearm()
    assert monitor.state is HealthState.HEALTHY
    assert monitor.reason is None
    # The error count is lifetime, not per-episode.
    assert monitor.io_errors == 1
    monitor.rearm()  # idempotent from HEALTHY


def test_failed_is_terminal():
    monitor, clock = _make()
    monitor.fail("wal.repair: truncate refused")
    assert monitor.state is HealthState.FAILED
    with pytest.raises(StorageUnavailableError, match="failed"):
        monitor.require_writable()
    with pytest.raises(StorageUnavailableError, match="re-armed"):
        monitor.rearm()
    # No probe path out of FAILED, however long we wait.
    clock.advance(3600.0)
    assert not monitor.probe_eligible()
    # Further errors count but cannot change the state.
    monitor.record_io_error(OSError("x"), site="checkpoint")
    assert monitor.state is HealthState.FAILED
    assert monitor.io_errors == 1
    monitor.fail("again")  # idempotent


def test_transition_and_io_error_hooks():
    monitor, _ = _make()
    transitions: list[tuple] = []
    counts: list[int] = []
    monitor.on_transition = lambda event, old, new, reason: transitions.append(
        (event, old, new, reason)
    )
    monitor.on_io_error = lambda total: counts.append(total)

    monitor.record_io_error(OSError("x"), site="wal.append")
    monitor.rearm()
    monitor.record_io_error(OSError("y"), site="wal.append")
    monitor.fail("repair refused")

    events = [(event, old.value, new.value) for event, old, new, _ in transitions]
    assert events == [
        ("degrade", "healthy", "degraded_read_only"),
        ("rearm", "degraded_read_only", "healthy"),
        ("degrade", "healthy", "degraded_read_only"),
        ("fail", "degraded_read_only", "failed"),
    ]
    assert counts == [1, 2]


def test_state_codes_are_monotone_severity():
    assert STATE_CODES[HealthState.HEALTHY] == 0
    assert STATE_CODES[HealthState.DEGRADED_READ_ONLY] == 1
    assert STATE_CODES[HealthState.FAILED] == 2


def test_dump_restore_round_trip():
    monitor, _ = _make()
    monitor.record_io_error(OSError("x"), site="wal.append")
    snapshot = monitor.dump_state()

    fresh = HealthMonitor()
    fresh.restore_state(snapshot)
    assert fresh.state is HealthState.DEGRADED_READ_ONLY
    assert fresh.io_errors == 1
    assert "wal.append" in fresh.reason
    # Restoring a degraded state starts the probe window afresh.
    fresh.rearm_cooldown = 0.0
    assert fresh.probe_eligible()


def test_failed_cannot_resurrect_via_restore():
    monitor, _ = _make()
    monitor.fail("truncate refused")
    snapshot = monitor.dump_state()

    fresh = HealthMonitor()
    fresh.restore_state(snapshot)
    assert fresh.state is HealthState.FAILED
    with pytest.raises(StorageUnavailableError):
        fresh.rearm()


def test_restore_defaults_to_healthy_for_old_documents():
    fresh = HealthMonitor()
    fresh.restore_state({})
    assert fresh.state is HealthState.HEALTHY
    assert fresh.io_errors == 0
