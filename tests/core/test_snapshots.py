"""Snapshot-GMR tests (the Adiba/Lindsay related-work mode)."""

import pytest

from repro import ObjectBase, Strategy
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_cuboid,
    create_vertex,
)
from repro.errors import GMRDefinitionError


@pytest.fixture
def setting():
    db = ObjectBase()
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    gmr = db.materialize([("Cuboid", "volume")], strategy=Strategy.SNAPSHOT)
    return db, fixture, gmr


class TestSnapshotSemantics:
    def test_initial_population(self, setting):
        db, fixture, gmr = setting
        assert len(gmr) == 3
        assert fixture.cuboids[0].volume() == pytest.approx(300.0)

    def test_updates_leave_snapshot_stale(self, setting):
        """Snapshots waive Def. 3.2 between refreshes: reads are stale."""
        db, fixture, gmr = setting
        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        # The forward query still answers with the snapshot value.
        assert fixture.cuboids[0].volume() == pytest.approx(300.0)

    def test_snapshot_registers_no_dependencies(self, setting):
        db, _, _ = setting
        assert db.gmr_manager.schema_dep_fct("Vertex", "X") == frozenset()
        assert len(db.gmr_manager.rrr) == 0

    def test_updates_cost_nothing(self, setting):
        db, fixture, _ = setting
        before = db.gmr_manager.stats.snapshot()
        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        delta = db.gmr_manager.stats.delta(before)
        assert delta.invalidate_calls == 0
        assert delta.rematerializations == 0

    def test_new_objects_invisible_until_refresh(self, setting):
        db, fixture, gmr = setting
        new = create_cuboid(db, dims=(2, 2, 2), material=fixture.iron)
        assert len(gmr) == 3
        # ... but a forward query on it still answers (computed fresh).
        assert new.volume() == pytest.approx(8.0)
        assert len(gmr) == 3

    def test_backward_queries_read_the_snapshot(self, setting):
        db, fixture, gmr = setting
        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        matches = db.gmr_manager.backward_query("Cuboid.volume", 250.0, 350.0)
        # Still the old value 300.0 — the snapshot discipline.
        assert [args for _, args in matches] == [(fixture.cuboids[0].oid,)]


class TestRefresh:
    def test_refresh_recomputes_everything(self, setting):
        db, fixture, gmr = setting
        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        new = create_cuboid(db, dims=(2, 2, 2), material=fixture.iron)
        count = db.gmr_manager.refresh_snapshot(gmr)
        assert count == 4
        assert gmr.check_consistency(db) == []
        assert fixture.cuboids[0].volume() == pytest.approx(600.0)
        value, valid = gmr.result((new.oid,), "Cuboid.volume")
        assert valid and value == pytest.approx(8.0)

    def test_refresh_drops_deleted_objects(self, setting):
        db, fixture, gmr = setting
        db.delete(fixture.cuboids[0])
        assert len(gmr) == 3  # stale until refresh
        db.gmr_manager.refresh_snapshot(gmr)
        assert len(gmr) == 2
        assert gmr.is_complete(db)

    def test_refresh_rejected_for_non_snapshot(self, geometry_db):
        db, _ = geometry_db
        gmr = db.materialize([("Cuboid", "volume")])
        with pytest.raises(GMRDefinitionError):
            db.gmr_manager.refresh_snapshot(gmr)

    def test_snapshot_vs_maintained_gmr(self):
        """Side by side: the maintained GMR tracks updates, the snapshot
        answers from the past until refreshed."""
        db = ObjectBase()
        build_geometry_schema(db)
        fixture = build_figure2_database(db)
        snap = db.materialize(
            [("Cuboid", "volume")], strategy=Strategy.SNAPSHOT, name="snap"
        )
        live = db.materialize([("Cuboid", "weight")], name="live")
        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        # live weight followed the update; snapshot volume did not.
        assert live.result(
            (fixture.cuboids[0].oid,), "Cuboid.weight"
        )[0] == pytest.approx(600.0 * 7.86)
        assert snap.result(
            (fixture.cuboids[0].oid,), "Cuboid.volume"
        )[0] == pytest.approx(300.0)
