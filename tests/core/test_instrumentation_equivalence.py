"""Differential property test: instrumentation levels are equivalent.

The paper's refinements (Figure 4 → Figure 5 → information hiding) are
*performance* optimisations: they must never change what ends up in the
GMR.  This test replays identical random operation sequences under every
notifying instrumentation level (and both RRR policies) and asserts the
final GMR extensions are value-identical.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import InstrumentationLevel, ObjectBase, Strategy
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_cuboid,
    create_vertex,
)

_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["scale", "rotate", "translate", "set_mat", "set_vertex",
             "create", "delete", "query"]
        ),
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=0.5, max_value=1.8),
    ),
    max_size=15,
)


def _run(level: InstrumentationLevel, ops, *, rrr_policy: str = "remove"):
    db = ObjectBase(level=level)
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    gmr = db.materialize([("Cuboid", "volume"), ("Cuboid", "weight")])
    db.gmr_manager.rrr_policy = rrr_policy
    cuboids = list(fixture.cuboids)
    for code, selector, magnitude in ops:
        cuboid = cuboids[selector % len(cuboids)] if cuboids else None
        if code == "scale" and cuboid is not None:
            cuboid.scale(create_vertex(db, magnitude, 1.0, 1.0))
        elif code == "rotate" and cuboid is not None:
            cuboid.rotate("xyz"[selector % 3], magnitude)
        elif code == "translate" and cuboid is not None:
            cuboid.translate(create_vertex(db, magnitude, 0.0, -magnitude))
        elif code == "set_mat" and cuboid is not None:
            cuboid.set_Mat(fixture.gold if selector % 2 else fixture.iron)
        elif code == "set_vertex" and cuboid is not None:
            vertex = db.objects.get(cuboid.oid).data[f"V{1 + selector % 8}"]
            db.handle(vertex).set_Y(magnitude * 3.0)
        elif code == "create":
            cuboids.append(
                create_cuboid(
                    db,
                    dims=(magnitude, 1.0, 1.0),
                    material=fixture.iron,
                    cuboid_id=50 + selector,
                )
            )
        elif code == "delete" and len(cuboids) > 1 and cuboid is not None:
            cuboids.remove(cuboid)
            db.delete(cuboid)
        elif code == "query" and cuboid is not None:
            cuboid.volume()
            cuboid.weight()
    assert gmr.check_consistency(db) == []
    return sorted(
        (
            row.args[0].value,
            round(row.results[0], 9),
            round(row.results[1], 9),
        )
        for row in gmr.rows()
    )


@given(ops=_OPS)
@settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_all_notifying_levels_agree(ops):
    reference = _run(InstrumentationLevel.NAIVE, ops)
    assert _run(InstrumentationLevel.SCHEMA_DEP, ops) == reference
    assert _run(InstrumentationLevel.OBJ_DEP, ops) == reference


@given(ops=_OPS)
@settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_rrr_policies_agree(ops):
    reference = _run(InstrumentationLevel.OBJ_DEP, ops, rrr_policy="remove")
    second = _run(InstrumentationLevel.OBJ_DEP, ops, rrr_policy="second_chance")
    assert second == reference
