"""GMR-level tests (Defs. 3.1-3.4), including the paper's §3 example."""

import pytest

from repro import ObjectBase, Strategy
from repro.core.gmr import GMR
from repro.errors import GMRDefinitionError


class TestDefinition:
    def test_arity(self, point_db):
        gmr = point_db.materialize([("Point", "norm"), ("Point", "manhattan")])
        # Def. 3.1: arity n + 2m.
        assert gmr.arity == 1 + 2 * 2

    def test_name(self, point_db):
        gmr = point_db.materialize([("Point", "norm")])
        assert gmr.name == "<<norm>>"

    def test_functions_must_share_argument_types(self, db):
        db.define_tuple_type("A", {"X": "float"})
        db.define_tuple_type("B", {"X": "float"})
        db.define_operation("A", "f", [], "float", lambda self: self.X)
        db.define_operation("B", "g", [], "float", lambda self: self.X)
        with pytest.raises(GMRDefinitionError):
            db.materialize([("A", "f"), ("B", "g")])

    def test_function_in_only_one_gmr(self, point_db):
        point_db.materialize([("Point", "norm")])
        with pytest.raises(GMRDefinitionError):
            point_db.materialize([("Point", "norm")], name="again")

    def test_void_function_rejected(self, db):
        db.define_tuple_type("T", {"A": "float"})
        db.define_operation("T", "u", [], "void", lambda self: None)
        with pytest.raises(GMRDefinitionError):
            db.materialize([("T", "u")])

    def test_unknown_column(self, point_db):
        gmr = point_db.materialize([("Point", "norm")])
        with pytest.raises(GMRDefinitionError):
            gmr.column_of("Point.ghost")

    def test_string_fid_spec(self, point_db):
        gmr = point_db.materialize(["Point.norm"])
        assert gmr.fids == ["Point.norm"]

    def test_bad_string_spec(self, point_db):
        with pytest.raises(GMRDefinitionError):
            point_db.materialize(["norm"])


class TestPaperExtensionExample:
    """The ⟨⟨volume, weight⟩⟩ table of Sec. 3 over the Figure 2 database."""

    def test_paper_extension_example(self, geometry_db):
        db, fixture = geometry_db
        gmr = db.materialize([("Cuboid", "volume"), ("Cuboid", "weight")])
        c1, c2, c3 = fixture.cuboids
        expected = {
            c1.oid: (300.0, 2358.0),
            c2.oid: (200.0, 1572.0),
            c3.oid: (100.0, 1900.0),
        }
        for cuboid_oid, (volume, weight) in expected.items():
            row = gmr.lookup((cuboid_oid,))
            assert row is not None
            assert row.results[0] == pytest.approx(volume)
            assert row.results[1] == pytest.approx(weight)
            assert row.valid == [True, True]

    def test_extension_is_consistent_valid_complete(self, geometry_db):
        db, _ = geometry_db
        gmr = db.materialize([("Cuboid", "volume"), ("Cuboid", "weight")])
        assert gmr.check_consistency(db) == []
        assert gmr.is_valid("Cuboid.volume")
        assert gmr.is_valid("Cuboid.weight")
        assert gmr.is_fully_valid()
        assert gmr.is_complete(db)

    def test_extension_table_rendering(self, geometry_db):
        db, _ = geometry_db
        gmr = db.materialize([("Cuboid", "volume"), ("Cuboid", "weight")])
        table = gmr.extension_table()
        assert "<<volume, weight>>" in table
        assert "300" in table
        assert "True" in table


class TestValidity:
    def test_invalidation_breaks_fj_validity_only(self, geometry_db):
        db, fixture = geometry_db
        gmr = db.materialize(
            [("Cuboid", "volume"), ("Cuboid", "weight")],
            strategy=Strategy.LAZY,
        )
        fixture.cuboids[0].set_Mat(fixture.gold)  # only weight depends on Mat
        assert gmr.is_valid("Cuboid.volume")
        assert not gmr.is_valid("Cuboid.weight")

    def test_consistency_means_valid_entries_correct(self, geometry_db):
        """Def. 3.2: invalid entries may be stale, valid ones never."""
        db, fixture = geometry_db
        gmr = db.materialize([("Cuboid", "volume")], strategy=Strategy.LAZY)
        from repro.domains.geometry import create_vertex

        fixture.cuboids[0].scale(create_vertex(db, 2.0, 2.0, 2.0))
        # Stale value still stored, but flagged invalid → still consistent.
        row = gmr.lookup((fixture.cuboids[0].oid,))
        assert row.results[0] == pytest.approx(300.0)
        assert row.valid[0] is False
        assert gmr.check_consistency(db) == []

    def test_incomplete_gmr(self, point_db):
        point_db.new("Point", X=3.0, Y=4.0)
        gmr = point_db.materialize([("Point", "norm")], complete=False)
        assert len(gmr) == 0
        assert not gmr.is_complete(point_db)

    def test_incomplete_gmr_fills_on_access(self, point_db):
        point = point_db.new("Point", X=3.0, Y=4.0)
        gmr = point_db.materialize([("Point", "norm")], complete=False)
        assert point.norm() == 5.0
        assert len(gmr) == 1
        assert gmr.is_complete(point_db)

    def test_result_accessor(self, point_db):
        point = point_db.new("Point", X=3.0, Y=4.0)
        gmr = point_db.materialize([("Point", "norm")])
        value, valid = gmr.result((point.oid,), "Point.norm")
        assert value == 5.0 and valid is True
        with pytest.raises(GMRDefinitionError):
            gmr.result(("ghost",), "Point.norm")


class TestSharedGMR:
    """Functions sharing argument types may share one GMR (Sec. 3.1)."""

    def test_single_update_invalidates_both_when_relevant(self, point_db):
        point = point_db.new("Point", X=3.0, Y=4.0)
        gmr = point_db.materialize(
            [("Point", "norm"), ("Point", "manhattan")], strategy=Strategy.LAZY
        )
        point.set_X(6.0)
        row = gmr.lookup((point.oid,))
        assert row.valid == [False, False]

    def test_results_stored_in_same_row(self, point_db):
        point = point_db.new("Point", X=3.0, Y=4.0)
        gmr = point_db.materialize([("Point", "norm"), ("Point", "manhattan")])
        row = gmr.lookup((point.oid,))
        assert row.results == [5.0, 7.0]
