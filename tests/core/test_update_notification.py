"""Tests for the update-notification mechanism details of Sec. 4.3.

The paper argues for schema rewrite over object-manager adaptation
because (a) uninvolved users must not be penalized and (b) the manager
must learn about updates *immediately* so applications that update and
then query see consistent results.  These tests pin both properties,
plus the exact rewritten-operation semantics of Figures 4 and 5.
"""

import pytest

from repro import InstrumentationLevel, ObjectBase, Strategy
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_vertex,
)


class TestImmediatePropagation:
    def test_update_then_query_sees_new_state(self, geometry_db):
        """The motivating requirement: modify, then read the materialized
        result — no deferred-store window may expose a stale value."""
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        c1 = fixture.cuboids[0]
        for factor in (2.0, 0.5, 3.0):
            c1.scale(create_vertex(db, factor, 1.0, 1.0))
            expected = 300.0
            # Recompute expected volume from raw state.
            raw = db.objects.get(c1.oid)
            v1 = db.objects.get(raw.data["V1"]).data
            v2 = db.objects.get(raw.data["V2"]).data
            v4 = db.objects.get(raw.data["V4"]).data
            v5 = db.objects.get(raw.data["V5"]).data
            length = sum((v1[c] - v2[c]) ** 2 for c in "XYZ") ** 0.5
            width = sum((v1[c] - v4[c]) ** 2 for c in "XYZ") ** 0.5
            height = sum((v1[c] - v5[c]) ** 2 for c in "XYZ") ** 0.5
            assert c1.volume() == pytest.approx(length * width * height)

    def test_lazy_update_then_query_also_consistent(self, geometry_db):
        db, fixture = geometry_db
        db.materialize([("Cuboid", "weight")], strategy=Strategy.LAZY)
        c1 = fixture.cuboids[0]
        c1.set_Mat(fixture.gold)
        assert c1.weight() == pytest.approx(300.0 * 19.0)


class TestFigure4Semantics:
    def test_naive_delete_always_notifies(self):
        """Figure 4's delete' invokes forget_object unconditionally."""
        db = ObjectBase(level=InstrumentationLevel.NAIVE)
        build_geometry_schema(db)
        fixture = build_figure2_database(db)
        db.materialize([("Cuboid", "volume")])
        calls = []
        manager = db.gmr_manager
        original = manager.forget_object
        manager.forget_object = lambda oid: (calls.append(oid), original(oid))[1]
        lone = create_vertex(db, 1.0, 1.0, 1.0)  # uninvolved object
        db.delete(lone)
        assert calls == [lone.oid]

    def test_objdep_delete_checks_marking_first(self, geometry_db):
        """Figure 5's delete' consults ObjDepFct before the manager."""
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        calls = []
        manager = db.gmr_manager
        original = manager.forget_object
        manager.forget_object = lambda oid: (calls.append(oid), original(oid))[1]
        lone = create_vertex(db, 1.0, 1.0, 1.0)
        db.delete(lone)
        assert calls == []  # unmarked: the manager is never bothered
        db.delete(fixture.cuboids[0])
        assert calls  # marked: forget_object ran

    def test_uninvolved_types_unpenalized_under_objdep(self, geometry_db):
        """The paper's Cylinder/Pyramid concern: clients of Vertex that
        are not involved in any materialization pay no manager calls."""
        db, fixture = geometry_db
        db.define_tuple_type("Pyramid", {"Apex": "Vertex"})
        db.materialize([("Cuboid", "volume")])
        apex = create_vertex(db, 0.0, 0.0, 5.0)
        db.new("Pyramid", Apex=apex)
        before = db.gmr_manager.stats.snapshot()
        apex.set_Z(7.0)  # a Vertex update — SchemaDepFct(Vertex.set_Z) ≠ {}
        delta = db.gmr_manager.stats.delta(before)
        assert delta.invalidate_calls == 0


class TestCreateNotification:
    def test_create_under_info_hiding(self, strict_geometry_db):
        from repro.domains.geometry import create_cuboid

        db, fixture = strict_geometry_db
        gmr = db.materialize([("Cuboid", "volume")])
        new = create_cuboid(db, dims=(2, 2, 2), material=fixture.iron)
        row = gmr.lookup((new.oid,))
        assert row is not None and row.results[0] == pytest.approx(8.0)
        # Strict marking: only the cuboid itself carries the dependency.
        marked = [
            obj.type_name
            for obj in db.objects.iter_objects()
            if "Cuboid.volume" in obj.obj_dep_fct
        ]
        assert set(marked) == {"Cuboid"}

    def test_create_non_argument_type_is_cheap(self, geometry_db):
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        before = db.gmr_manager.stats.snapshot()
        create_vertex(db, 1.0, 2.0, 3.0)
        delta = db.gmr_manager.stats.delta(before)
        assert delta.rows_created == 0
        assert delta.rematerializations == 0
