"""Compensating-action tests (Defs. 5.4, 5.5 and the paper's examples)."""

import pytest

from repro import ObjectBase, Strategy
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_cuboid,
    create_vertex,
    decrease_total,
    increase_total,
)
from repro.errors import CompensationError


@pytest.fixture
def setting():
    db = ObjectBase()
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    gmr = db.materialize([("Workpieces", "total_volume")])
    return db, fixture, gmr


class TestRegistration:
    def test_register_for_argument_type(self, setting):
        db, _, _ = setting
        entry = db.gmr_manager.register_compensation(
            "Workpieces", "insert", ("Workpieces", "total_volume"), increase_total
        )
        assert entry.update_type == "Workpieces"
        assert db.gmr_manager.has_compensation("Workpieces", "insert")
        assert db.gmr_manager.compensated_fct("Workpieces", "insert") == {
            "Workpieces.total_volume"
        }

    def test_register_for_non_argument_type_rejected(self, setting):
        """The paper's Cuboid.scale / total_volume counterexample."""
        db, _, _ = setting
        with pytest.raises(CompensationError):
            db.gmr_manager.register_compensation(
                "Cuboid", "scale", ("Workpieces", "total_volume"), increase_total
            )

    def test_register_for_unmaterialized_function_rejected(self, setting):
        db, _, _ = setting
        with pytest.raises(CompensationError):
            db.gmr_manager.register_compensation(
                "Workpieces", "insert", ("Workpieces", "total_weight"),
                increase_total,
            )

    def test_ca_table_entries(self, setting):
        db, _, _ = setting
        db.gmr_manager.register_compensation(
            "Workpieces", "insert", ("Workpieces", "total_volume"), increase_total
        )
        entries = db.gmr_manager.compensations.entries()
        assert len(entries) == 1
        assert entries[0].name == "increase_total"


class TestInsertCompensation:
    """The paper's increase_total example."""

    def test_insert_compensates_without_recompute(self, setting):
        db, fixture, gmr = setting
        db.gmr_manager.register_compensation(
            "Workpieces", "insert", ("Workpieces", "total_volume"), increase_total
        )
        old_total = fixture.workpieces.total_volume()
        new = create_cuboid(db, dims=(2, 2, 2), material=fixture.iron)

        evaluations = []
        original = db.call_function
        def counting(info, args):
            evaluations.append(info.fid)
            return original(info, args)
        db.call_function = counting

        fixture.workpieces.insert(new)
        # The CA ran (evaluating the new cuboid's volume) but the full
        # total_volume body never did.
        assert "Workpieces.total_volume" not in evaluations
        db.call_function = original
        row = gmr.lookup((fixture.workpieces.oid,))
        assert row.valid[0] is True
        assert row.results[0] == pytest.approx(old_total + 8.0)
        assert gmr.check_consistency(db) == []

    def test_remove_compensation(self, setting):
        db, fixture, gmr = setting
        db.gmr_manager.register_compensation(
            "Workpieces", "remove", ("Workpieces", "total_volume"), decrease_total
        )
        old_total = fixture.workpieces.total_volume()
        victim = fixture.cuboids[0]
        victim_volume = victim.volume()
        fixture.workpieces.remove(victim)
        row = gmr.lookup((fixture.workpieces.oid,))
        assert row.valid[0] is True
        assert row.results[0] == pytest.approx(old_total - victim_volume)
        assert gmr.check_consistency(db) == []

    def test_compensation_extends_rrr_to_new_dependencies(self, setting):
        db, fixture, gmr = setting
        db.gmr_manager.register_compensation(
            "Workpieces", "insert", ("Workpieces", "total_volume"), increase_total
        )
        new = create_cuboid(db, dims=(2, 2, 2), material=fixture.iron)
        fixture.workpieces.insert(new)
        # The inserted cuboid now influences the total — a later scale
        # must invalidate (and here immediately rematerialize) the total.
        assert "Workpieces.total_volume" in db.objects.get(new.oid).obj_dep_fct
        new.scale(create_vertex(db, 2.0, 1.0, 1.0))
        assert gmr.check_consistency(db) == []

    def test_uncompensated_update_still_invalidates(self, setting):
        """Only the registered update operation is compensated."""
        db, fixture, gmr = setting
        db.gmr_manager.register_compensation(
            "Workpieces", "insert", ("Workpieces", "total_volume"), increase_total
        )
        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        assert gmr.check_consistency(db) == []
        assert gmr.lookup((fixture.workpieces.oid,)).results[0] == pytest.approx(
            fixture.workpieces.total_volume()
        )

    def test_invalid_entry_not_compensated(self, setting):
        """Compensation only patches *valid* results; invalid ones wait
        for their regular rematerialization."""
        db, fixture, _ = setting
        db.gmr_manager.register_compensation(
            "Workpieces", "insert", ("Workpieces", "total_volume"), increase_total
        )
        gmr = db.gmr_manager.gmr("<<total_volume>>")
        gmr.mark_invalid((fixture.workpieces.oid,), "Workpieces.total_volume")
        new = create_cuboid(db, dims=(2, 2, 2), material=fixture.iron)
        fixture.workpieces.insert(new)
        row = gmr.lookup((fixture.workpieces.oid,))
        assert row.valid[0] is False  # untouched by the CA
        # The next access recomputes the correct value.
        assert fixture.workpieces.total_volume() == pytest.approx(
            sum(cuboid.volume() for cuboid in fixture.workpieces)
        )


class TestDeclaredOperationCompensation:
    """CAs on declared public operations (the Fig. 15 matrix pattern)."""

    def test_add_project_compensation(self, company_db):
        from repro.domains.company import increase_matrix

        db, fixture = company_db
        gmr = db.materialize([("Company", "matrix")])
        db.gmr_manager.register_compensation(
            "Company", "add_project", ("Company", "matrix"), increase_matrix
        )
        staff = db.new_collection("Employees", fixture.employees[:3])
        project = db.new("Project", PName="NEW", Programmers=staff)

        recomputed = []
        original = db.call_function
        def counting(info, args):
            recomputed.append(info.fid)
            return original(info, args)
        db.call_function = counting
        fixture.company.add_project(project)
        db.call_function = original

        assert "Company.matrix" not in recomputed
        row = gmr.lookup((fixture.company.oid,))
        assert row.valid[0] is True
        assert gmr.check_consistency(db) == []
        lines = fixture.company.matrix()
        assert any(line.proj == project for line in lines)
