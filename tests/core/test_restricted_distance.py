"""Stress tests for the Sec. 6 distance example: a two-argument
restriction predicate whose truth depends on mutable coordinates."""

import pytest

from repro import ObjectBase, RestrictionSpec, Strategy, Variable
from repro.domains.geometry import (
    build_geometry_schema,
    create_cuboid,
    create_material,
)


def distance_spec():
    predicate = Variable("c1").ne(Variable("c2")) & (
        Variable("c1", ("V1", "X")) <= Variable("c2", ("V1", "X"))
    )
    return RestrictionSpec(predicate=predicate, var_names=("c1", "c2"))


@pytest.fixture
def setting():
    db = ObjectBase()
    build_geometry_schema(db)
    iron = create_material(db, "Iron", 7.86)
    cuboids = [
        create_cuboid(db, origin=(float(i * 10), 0.0, 0.0), dims=(1, 1, 1),
                      material=iron, cuboid_id=i)
        for i in range(3)
    ]
    gmr = db.materialize(
        [("Cuboid", "distance_to")], restriction=distance_spec()
    )
    return db, cuboids, gmr


class TestPopulation:
    def test_only_ordered_pairs(self, setting):
        """With distinct V1.X, exactly one orientation per pair stores."""
        db, cuboids, gmr = setting
        assert len(gmr) == 3  # (0,1), (0,2), (1,2)
        for args in gmr.args():
            c1, c2 = args
            x1 = db.objects.get(db.objects.get(c1).data["V1"]).data["X"]
            x2 = db.objects.get(db.objects.get(c2).data["V1"]).data["X"]
            assert c1 != c2 and x1 <= x2

    def test_complete_and_consistent(self, setting):
        db, _, gmr = setting
        assert gmr.is_complete(db)
        assert gmr.check_consistency(db) == []


class TestPredicateFlips:
    def test_moving_a_cuboid_reorients_pairs(self, setting):
        """Translating cuboid 0 past cuboid 2 flips pair orientations."""
        db, cuboids, gmr = setting
        from repro.domains.geometry import create_vertex

        cuboids[0].translate(create_vertex(db, 100.0, 0.0, 0.0))
        # Now the order along X is 1 < 2 < 0.
        assert gmr.is_complete(db)
        assert gmr.check_consistency(db) == []
        args = set(gmr.args())
        assert (cuboids[1].oid, cuboids[0].oid) in args
        assert (cuboids[2].oid, cuboids[0].oid) in args
        assert (cuboids[0].oid, cuboids[1].oid) not in args

    def test_distance_values_follow_updates(self, setting):
        db, cuboids, gmr = setting
        from repro.domains.geometry import create_vertex

        cuboids[1].translate(create_vertex(db, 5.0, 0.0, 0.0))
        assert gmr.check_consistency(db) == []
        assert gmr.is_complete(db)

    def test_new_cuboid_joins_all_pairs(self, setting):
        db, cuboids, gmr = setting
        iron = db.handle(db.objects.get(cuboids[0].oid).data["Mat"])
        new = create_cuboid(db, origin=(15.0, 0.0, 0.0), dims=(1, 1, 1),
                            material=iron, cuboid_id=9)
        # New order along X: 0(0) < 10(1) < 15(new) < 20(2) → 6 pairs.
        assert len(gmr) == 6
        assert gmr.is_complete(db)

    def test_delete_removes_pairs(self, setting):
        db, cuboids, gmr = setting
        db.delete(cuboids[1])
        assert len(gmr) == 1
        assert gmr.is_complete(db)

    def test_lazy_restricted_gmr(self):
        db = ObjectBase()
        build_geometry_schema(db)
        iron = create_material(db, "Iron", 7.86)
        cuboids = [
            create_cuboid(db, origin=(float(i * 10), 0.0, 0.0), dims=(1, 1, 1),
                          material=iron, cuboid_id=i)
            for i in range(3)
        ]
        gmr = db.materialize(
            [("Cuboid", "distance_to")],
            restriction=distance_spec(),
            strategy=Strategy.LAZY,
        )
        from repro.domains.geometry import create_vertex

        cuboids[0].translate(create_vertex(db, 3.0, 0.0, 0.0))
        # Predicate maintenance is always eager (rows appear/disappear);
        # the function values revalidate lazily.
        assert gmr.is_complete(db)
        assert gmr.check_consistency(db) == []
        db.gmr_manager.revalidate(gmr)
        assert gmr.is_fully_valid()
        assert gmr.check_consistency(db) == []
