"""Creation/deletion of argument objects (Sec. 4.2) and retrieval."""

import pytest

from repro import ObjectBase, Strategy
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_cuboid,
    create_robot,
)
from repro.errors import GMRDefinitionError


class TestNewObject:
    def test_new_argument_object_gets_row(self, geometry_db):
        db, fixture = geometry_db
        gmr = db.materialize([("Cuboid", "volume")])
        new = create_cuboid(db, dims=(2, 3, 4), material=fixture.iron)
        row = gmr.lookup((new.oid,))
        assert row is not None
        assert row.results[0] == pytest.approx(24.0)
        assert gmr.is_complete(db)

    def test_incomplete_gmr_ignores_new_objects(self, geometry_db):
        db, fixture = geometry_db
        gmr = db.materialize([("Cuboid", "volume")], complete=False)
        create_cuboid(db, dims=(2, 3, 4), material=fixture.iron)
        assert len(gmr) == 0

    def test_new_object_in_binary_gmr(self, geometry_db):
        db, fixture = geometry_db
        robot = create_robot(db, "R1", (10.0, 0.0, 0.0))
        gmr = db.materialize([("Cuboid", "distance")])
        assert len(gmr) == 3
        new_cuboid = create_cuboid(db, dims=(1, 1, 1), material=fixture.iron)
        assert len(gmr) == 4
        new_robot = create_robot(db, "R2", (0.0, 10.0, 0.0))
        assert len(gmr) == 8
        assert gmr.is_complete(db)

    def test_subtype_instance_joins_supertype_gmr(self, point_db):
        point_db.define_tuple_type("Point3", {"Z": "float"}, supertype="Point")
        point_db.new("Point", X=3.0, Y=4.0)
        gmr = point_db.materialize([("Point", "norm")])
        assert len(gmr) == 1
        point_db.new("Point3", X=1.0, Y=0.0, Z=5.0)
        assert len(gmr) == 2
        assert gmr.is_complete(point_db)


class TestForgetObject:
    def test_deleting_argument_removes_row(self, geometry_db):
        db, fixture = geometry_db
        gmr = db.materialize([("Cuboid", "volume")])
        victim = fixture.cuboids[0]
        db.delete(victim)
        assert gmr.lookup((victim.oid,)) is None
        assert len(gmr) == 2
        assert gmr.is_complete(db)

    def test_deleting_argument_cleans_its_rrr(self, geometry_db):
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        victim = fixture.cuboids[0]
        oid = victim.oid
        db.delete(victim)
        assert not db.gmr_manager.rrr.has_entries(oid)

    def test_deleting_influencer_keeps_blind_refs_lazily(self, geometry_db):
        """Deleting a *non-argument* influencer (a vertex) removes only
        its own entries; other objects' entries stay until touched."""
        db, fixture = geometry_db
        gmr = db.materialize([("Cuboid", "volume")])
        c1 = fixture.cuboids[0]
        v1_oid = db.objects.get(c1.oid).data["V1"]
        db.delete(v1_oid)
        # The vertex is not an argument, so the row survives.
        assert gmr.lookup((c1.oid,)) is not None
        assert not db.gmr_manager.rrr.has_entries(v1_oid)

    def test_delete_in_binary_gmr_removes_all_combinations(self, geometry_db):
        db, fixture = geometry_db
        create_robot(db, "R1", (1.0, 2.0, 3.0))
        robot2 = create_robot(db, "R2", (4.0, 5.0, 6.0))
        gmr = db.materialize([("Cuboid", "distance")])
        assert len(gmr) == 6
        db.delete(robot2)
        assert len(gmr) == 3
        assert gmr.is_complete(db)


class TestForwardRetrieval:
    def test_materialized_invocation_served_from_gmr(self, geometry_db):
        """Sec. 3.2: invocations map to forward queries — the function
        body is not re-evaluated when the entry is valid."""
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        c1 = fixture.cuboids[0]
        with db.trace() as tracer:
            assert c1.volume() == pytest.approx(300.0)
        # No vertex was touched: the value came from the GMR.
        vertex_oids = {
            db.objects.get(c1.oid).data[f"V{i}"] for i in range(1, 9)
        }
        assert not (tracer.objects & vertex_oids)

    def test_unmaterialized_invocation_evaluates(self, geometry_db):
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        c1 = fixture.cuboids[0]
        with db.trace() as tracer:
            c1.weight()  # weight is NOT materialized
        assert (fixture.iron.oid in tracer.objects)

    def test_retrieve_forward_unknown_fid(self, geometry_db):
        db, _ = geometry_db
        db.materialize([("Cuboid", "volume")])
        with pytest.raises(GMRDefinitionError):
            db.gmr_manager.retrieve_forward("Cuboid.ghost", ())

    def test_nested_function_uses_real_body_during_materialization(
        self, geometry_db
    ):
        """The modified (traced) versions run during materialization, so
        ⟨⟨weight⟩⟩ depends on vertices even though volume is materialized."""
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        db.materialize([("Cuboid", "weight")])
        c1 = fixture.cuboids[0]
        v1 = db.objects.get(c1.oid).data["V1"]
        assert db.gmr_manager.rrr.args_of(v1, "Cuboid.weight") == {(c1.oid,)}


class TestBackwardRetrieval:
    def test_range_query(self, geometry_db):
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        matches = db.gmr_manager.backward_query("Cuboid.volume", 150.0, 250.0)
        assert [args[0] for _, args in matches] == [fixture.cuboids[1].oid]

    def test_open_ended_range(self, geometry_db):
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        matches = db.gmr_manager.backward_query("Cuboid.volume", 150.0, None)
        assert len(matches) == 2

    def test_exclusive_bounds(self, geometry_db):
        db, _ = geometry_db
        db.materialize([("Cuboid", "volume")])
        matches = db.gmr_manager.backward_query(
            "Cuboid.volume", 100.0, 300.0, include_low=False, include_high=False
        )
        assert len(matches) == 1


class TestGMRManagerIntrospection:
    def test_gmr_registry(self, geometry_db):
        db, _ = geometry_db
        gmr = db.materialize([("Cuboid", "volume")])
        manager = db.gmr_manager
        assert manager.gmr("<<volume>>") is gmr
        assert manager.gmr_of("Cuboid.volume") is gmr
        assert manager.gmr_of("Cuboid.ghost") is None
        assert gmr in manager.gmrs()
        with pytest.raises(GMRDefinitionError):
            manager.gmr("<<nothing>>")

    def test_duplicate_gmr_name_rejected(self, geometry_db):
        db, _ = geometry_db
        db.materialize([("Cuboid", "volume")], name="geo")
        with pytest.raises(GMRDefinitionError):
            db.materialize([("Cuboid", "weight")], name="geo")

    def test_is_materialized_op(self, geometry_db):
        db, _ = geometry_db
        db.materialize([("Cuboid", "volume")])
        manager = db.gmr_manager
        assert manager.is_materialized_op("Cuboid", "volume")
        assert not manager.is_materialized_op("Cuboid", "weight")
