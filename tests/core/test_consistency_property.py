"""Property-based system test: the consistency invariant (Def. 3.2).

Drives the geometry application with random operation sequences —
geometric transformations, attribute updates, membership changes, object
creation/deletion and interleaved forward/backward queries — under every
combination of rematerialization strategy and instrumentation level, and
asserts after the run:

* every GMR extension is *consistent* (valid entries hold true results),
* every complete GMR is *complete* w.r.t. the surviving extension,
* the RRR and the per-object ``ObjDepFct`` markings stay in lockstep.

This is the load-bearing correctness test of the whole system: any
missed invalidation, stale row or leaked reverse reference shows up here.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import InstrumentationLevel, ObjectBase, Strategy
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_cuboid,
    create_vertex,
)

_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "scale",
                "rotate",
                "translate",
                "set_value",
                "set_mat",
                "set_vertex",
                "create",
                "delete",
                "wp_insert",
                "wp_remove",
                "rename_material",
                "respec_material",
                "q_forward",
                "q_backward",
                "q_total",
            ]
        ),
        st.integers(min_value=0, max_value=7),   # object selector
        st.floats(min_value=0.5, max_value=2.0), # magnitude
    ),
    max_size=25,
)

_STRICT_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "scale",
                "rotate",
                "translate",
                "set_value",
                "create",
                "delete",
                "wp_insert",
                "wp_remove",
                "q_forward",
                "q_backward",
                "q_total",
            ]
        ),
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=0.5, max_value=2.0),
    ),
    max_size=25,
)


class _Driver:
    """Applies operation codes to a live geometry database."""

    def __init__(self, level: InstrumentationLevel, strategy: Strategy, strict: bool):
        self.db = ObjectBase(level=level)
        build_geometry_schema(self.db, strict_cuboids=strict)
        self.fixture = build_figure2_database(self.db)
        self.cuboids = list(self.fixture.cuboids)
        self.strict = strict
        self.gmrs = [
            self.db.materialize(
                [("Cuboid", "volume"), ("Cuboid", "weight")], strategy=strategy
            ),
            self.db.materialize(
                [("Workpieces", "total_volume")], strategy=strategy
            ),
            self.db.materialize(
                [("Valuables", "total_value")], strategy=strategy
            ),
        ]

    def pick(self, selector: int):
        if not self.cuboids:
            return None
        return self.cuboids[selector % len(self.cuboids)]

    def apply(self, code: str, selector: int, magnitude: float) -> None:
        db, fixture = self.db, self.fixture
        cuboid = self.pick(selector)
        if code == "scale" and cuboid is not None:
            cuboid.scale(create_vertex(db, magnitude, 1.0, magnitude))
        elif code == "rotate" and cuboid is not None:
            cuboid.rotate("xyz"[selector % 3], magnitude)
        elif code == "translate" and cuboid is not None:
            cuboid.translate(create_vertex(db, magnitude, -magnitude, 0.0))
        elif code == "set_value" and cuboid is not None:
            cuboid.set_Value(magnitude * 10.0)
        elif code == "set_mat" and cuboid is not None:
            material = fixture.iron if selector % 2 else fixture.gold
            cuboid.set_Mat(material)
        elif code == "set_vertex" and cuboid is not None:
            vertex_oid = db.objects.get(cuboid.oid).data[f"V{1 + selector % 8}"]
            db.handle(vertex_oid).set_X(magnitude * 7.0)
        elif code == "create":
            new = create_cuboid(
                db,
                dims=(magnitude, 1.0, 2.0),
                material=fixture.iron if selector % 2 else fixture.gold,
                value=magnitude,
                cuboid_id=100 + selector,
            )
            self.cuboids.append(new)
        elif code == "delete" and len(self.cuboids) > 1 and cuboid is not None:
            fixture.workpieces.remove(cuboid)
            fixture.valuables.remove(cuboid)
            self.cuboids.remove(cuboid)
            db.delete(cuboid)
        elif code == "wp_insert" and cuboid is not None:
            fixture.workpieces.insert(cuboid)
        elif code == "wp_remove" and cuboid is not None:
            fixture.workpieces.remove(cuboid)
        elif code == "q_forward" and cuboid is not None:
            cuboid.volume()
            cuboid.weight()
        elif code == "q_backward":
            self.db.gmr_manager.backward_query(
                "Cuboid.volume", magnitude * 50.0, magnitude * 400.0
            )
        elif code == "q_total":
            fixture.workpieces.total_volume()
            fixture.valuables.total_value()
        elif code == "rename_material" and not self.strict:
            fixture.iron.set_Name("Iron" if selector % 2 else "Fe")
        elif code == "respec_material" and not self.strict:
            fixture.iron.set_SpecWeight(7.86 * magnitude)

    def check_invariants(self) -> None:
        for gmr in self.gmrs:
            violations = gmr.check_consistency(self.db)
            assert violations == [], violations
            # A lazily invalidated row whose argument object was later
            # deleted is a blind row the paper cleans up on next access;
            # run that sweep, then the extension must be exactly complete.
            self.db.gmr_manager.revalidate(gmr)
            assert gmr.is_complete(self.db)
            assert gmr.is_fully_valid()
            assert gmr.check_consistency(self.db) == []
        rrr = self.db.gmr_manager.rrr
        for obj in self.db.objects.iter_objects():
            assert obj.obj_dep_fct == rrr.fids_of(obj.oid)


_CONFIGS = [
    (InstrumentationLevel.NAIVE, Strategy.IMMEDIATE, False),
    (InstrumentationLevel.NAIVE, Strategy.LAZY, False),
    (InstrumentationLevel.SCHEMA_DEP, Strategy.IMMEDIATE, False),
    (InstrumentationLevel.SCHEMA_DEP, Strategy.LAZY, False),
    (InstrumentationLevel.OBJ_DEP, Strategy.IMMEDIATE, False),
    (InstrumentationLevel.OBJ_DEP, Strategy.LAZY, False),
]


@pytest.mark.parametrize("level,strategy,strict", _CONFIGS)
@given(ops=_OPS)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_operations_preserve_invariants(level, strategy, strict, ops):
    driver = _Driver(level, strategy, strict)
    for code, selector, magnitude in ops:
        driver.apply(code, selector, magnitude)
    driver.check_invariants()


@given(ops=_STRICT_OPS)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_info_hiding_preserves_invariants(ops):
    """The Sec. 5.3 configuration: strict Cuboid + InvalidatedFct sets."""
    driver = _Driver(InstrumentationLevel.INFO_HIDING, Strategy.IMMEDIATE, True)
    for code, selector, magnitude in ops:
        driver.apply(code, selector, magnitude)
    driver.check_invariants()


@given(ops=_STRICT_OPS)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_info_hiding_lazy_preserves_invariants(ops):
    driver = _Driver(InstrumentationLevel.INFO_HIDING, Strategy.LAZY, True)
    for code, selector, magnitude in ops:
        driver.apply(code, selector, magnitude)
    driver.check_invariants()
