"""SchemaDepFct / ObjDepFct tests (Defs. 5.1, 5.2 and the Sec. 5.2 example)."""

import pytest

from repro import ObjectBase
from repro.core.dependencies import DependencyIndex
from repro.core.function_registry import FunctionInfo
from repro.domains.geometry import build_figure2_database, build_geometry_schema


def info(fid, pairs):
    type_name, op_name = fid.split(".")
    return FunctionInfo(
        fid=fid,
        type_name=type_name,
        op_name=op_name,
        arg_types=(type_name,),
        result_type="float",
        relevant_attrs=None if pairs is None else frozenset(pairs),
    )


class TestDependencyIndex:
    def test_lookup_by_pair(self):
        index = DependencyIndex()
        index.add_function(info("T.f", {("T", "A")}))
        assert index.schema_dep_fct("T", "A") == {"T.f"}
        assert index.schema_dep_fct("T", "B") == frozenset()

    def test_multiple_functions_per_pair(self):
        index = DependencyIndex()
        index.add_function(info("T.f", {("T", "A")}))
        index.add_function(info("T.g", {("T", "A"), ("T", "B")}))
        assert index.schema_dep_fct("T", "A") == {"T.f", "T.g"}
        assert index.schema_dep_fct("T", "B") == {"T.g"}

    def test_unknown_relattr_is_always_relevant(self):
        index = DependencyIndex()
        index.add_function(info("T.opaque", None))
        index.add_function(info("T.f", {("T", "A")}))
        assert index.schema_dep_fct("T", "A") == {"T.f", "T.opaque"}
        assert index.schema_dep_fct("X", "Y") == {"T.opaque"}
        assert index.is_always_relevant("T.opaque")

    def test_remove_function(self):
        index = DependencyIndex()
        index.add_function(info("T.f", {("T", "A")}))
        index.remove_function("T.f")
        assert index.schema_dep_fct("T", "A") == frozenset()

    def test_relevant_attrs_accessor(self):
        index = DependencyIndex()
        index.add_function(info("T.f", {("T", "A")}))
        assert index.relevant_attrs("T.f") == {("T", "A")}
        assert index.relevant_attrs("T.missing") == frozenset()


class TestPaperSection51:
    """RelAttr(volume) and the derived SchemaDepFct sets."""

    @pytest.fixture
    def manager(self, geometry_db):
        db, _ = geometry_db
        db.materialize([("Cuboid", "volume"), ("Cuboid", "weight")])
        return db.gmr_manager

    def test_relattr_volume(self, manager):
        assert manager.relevant_attrs("Cuboid.volume") == {
            ("Cuboid", "V1"),
            ("Cuboid", "V2"),
            ("Cuboid", "V4"),
            ("Cuboid", "V5"),
            ("Vertex", "X"),
            ("Vertex", "Y"),
            ("Vertex", "Z"),
        }

    def test_schema_dep_fct_of_vertex_setters(self, manager):
        for attr in ("X", "Y", "Z"):
            assert manager.schema_dep_fct("Vertex", attr) == {
                "Cuboid.volume",
                "Cuboid.weight",
            }

    def test_schema_dep_fct_of_relevant_cuboid_setters(self, manager):
        for attr in ("V1", "V2", "V4", "V5"):
            assert "Cuboid.volume" in manager.schema_dep_fct("Cuboid", attr)

    def test_schema_dep_fct_of_irrelevant_setters(self, manager):
        assert manager.schema_dep_fct("Cuboid", "Value") == frozenset()
        assert manager.schema_dep_fct("Cuboid", "V3") == frozenset()

    def test_weight_also_depends_on_material(self, manager):
        assert manager.schema_dep_fct("Material", "SpecWeight") == {
            "Cuboid.weight"
        }
        assert manager.schema_dep_fct("Cuboid", "Mat") == {"Cuboid.weight"}


class TestPaperSection52Example:
    """The id31 example: ObjDepFct ∩ SchemaDepFct pins the invalidation."""

    def test_intersection(self):
        db = ObjectBase()
        build_geometry_schema(db)
        fixture = build_figure2_database(db)
        db.materialize([("Cuboid", "volume"), ("Cuboid", "weight")])
        db.materialize([("Workpieces", "total_volume"),
                        ("Workpieces", "total_weight")])
        db.materialize([("Valuables", "total_value")])
        manager = db.gmr_manager

        schema_dep = manager.schema_dep_fct("Vertex", "X")
        assert schema_dep == {
            "Cuboid.volume",
            "Cuboid.weight",
            "Workpieces.total_volume",
            "Workpieces.total_weight",
        }

        # id31 is a vertex of the gold cuboid (id3), which is a member of
        # Valuables but not Workpieces: its ObjDepFct holds volume/weight.
        c3 = fixture.cuboids[2]
        v31 = db.objects.get(c3.oid).data["V1"]
        obj_dep = db.objects.get(v31).obj_dep_fct
        assert obj_dep == {"Cuboid.volume", "Cuboid.weight"}
        assert obj_dep & schema_dep == {"Cuboid.volume", "Cuboid.weight"}

        # A vertex of a Workpieces member additionally carries the totals.
        c1 = fixture.cuboids[0]
        v11 = db.objects.get(c1.oid).data["V1"]
        assert db.objects.get(v11).obj_dep_fct == {
            "Cuboid.volume",
            "Cuboid.weight",
            "Workpieces.total_volume",
            "Workpieces.total_weight",
        }

    def test_membership_updates_hit_total_functions(self):
        db = ObjectBase()
        build_geometry_schema(db)
        build_figure2_database(db)
        db.materialize([("Workpieces", "total_volume")])
        manager = db.gmr_manager
        assert manager.schema_dep_fct("Workpieces", "__elements__") == {
            "Workpieces.total_volume"
        }


# ---------------------------------------------------------------------------
# Precompiled invalidation plans
# ---------------------------------------------------------------------------

from repro.core.dependencies import FidPlan, UpdatePlan
from repro.core.strategies import Strategy
from repro.observe.config import MaterializationConfig


class TestUpdatePlanCompilation:
    """FidPlan/UpdatePlan: the flattened per-(type, attr) hot path."""

    @pytest.fixture
    def db(self):
        db = ObjectBase()
        build_geometry_schema(db)
        build_figure2_database(db)
        yield db
        db.close()

    def test_plan_matches_schema_dep_fct(self, db):
        db.materialize([("Cuboid", "volume"), ("Cuboid", "weight")])
        manager = db.gmr_manager
        plan = manager.update_plan("Vertex", "X")
        assert plan is not None
        assert plan.fids == manager.schema_dep_fct("Vertex", "X")
        assert {entry.fid for entry in plan.entries} == set(plan.fids)

    def test_plan_entry_flags(self, db):
        db.materialize([("Cuboid", "volume")], strategy=Strategy.DEFERRED)
        manager = db.gmr_manager
        plan = manager.update_plan("Vertex", "X")
        (entry,) = plan.entries
        assert isinstance(entry, FidPlan)
        assert entry.fid == "Cuboid.volume"
        assert entry.marks_only and entry.deferred
        assert not entry.is_predicate
        assert entry.gmr is manager.gmr_of("Cuboid.volume")

    def test_predicate_fid_plan(self, db):
        db.query("range c:Cuboid materialize c.volume where c.Value <= 50")
        manager = db.gmr_manager
        plan = manager.update_plan("Cuboid", "Value")
        predicate_entries = [e for e in plan.entries if e.is_predicate]
        assert len(predicate_entries) == 1
        assert predicate_entries[0].gmr.predicate_fid == predicate_entries[0].fid

    def test_plan_is_cached(self, db):
        db.materialize([("Cuboid", "volume")])
        manager = db.gmr_manager
        first = manager.update_plan("Vertex", "X")
        second = manager.update_plan("Vertex", "X")
        assert first is second

    def test_empty_pair_compiles_to_empty_plan(self, db):
        db.materialize([("Cuboid", "volume")])
        plan = db.gmr_manager.update_plan("Cuboid", "Value")
        assert plan is not None
        assert plan.fids == frozenset()
        assert plan.entries == ()

    def test_disabled_by_config(self):
        db = ObjectBase(config=MaterializationConfig(invalidation_plans=False))
        build_geometry_schema(db)
        build_figure2_database(db)
        db.materialize([("Cuboid", "volume")])
        try:
            assert db.gmr_manager.update_plan("Vertex", "X") is None
        finally:
            db.close()


class TestPlanCacheInvalidation:
    @pytest.fixture
    def db(self):
        db = ObjectBase()
        build_geometry_schema(db)
        build_figure2_database(db)
        yield db
        db.close()

    def test_dependency_index_version_counter(self):
        index = DependencyIndex()
        start = index.version
        index.add_function(info("T.f", {("T", "A")}))
        index.add_pairs("T.f", {("T", "B")})
        assert index.version == start + 2
        index.remove_function("T.f")
        assert index.version == start + 3

    def test_new_materialization_refreshes_plans(self, db):
        db.materialize([("Cuboid", "volume")])
        manager = db.gmr_manager
        before = manager.update_plan("Vertex", "X")
        assert before.fids == {"Cuboid.volume"}
        db.materialize([("Cuboid", "weight")])
        after = manager.update_plan("Vertex", "X")
        assert after is not before
        assert after.fids == {"Cuboid.volume", "Cuboid.weight"}

    def test_schema_change_invalidates_plans(self, db):
        db.materialize([("Cuboid", "volume")])
        manager = db.gmr_manager
        before = manager.update_plan("Vertex", "X")
        db.define_tuple_type("Unrelated", {"A": "float"})
        after = manager.update_plan("Vertex", "X")
        assert after is not before
        assert after.fids == before.fids

    def test_direct_index_mutation_is_caught_by_epoch(self, db):
        db.materialize([("Cuboid", "volume")])
        manager = db.gmr_manager
        before = manager.update_plan("Vertex", "X")
        manager._deps.add_pairs("Cuboid.volume", {("Vertex", "W")})
        after = manager.update_plan("Vertex", "X")
        assert after is not before


class TestPlannedVsScannedEquivalence:
    """Fig. 7's update workload must behave identically on both paths."""

    def _run_workload(self, plans):
        db = ObjectBase(
            config=MaterializationConfig(invalidation_plans=plans)
        )
        build_geometry_schema(db)
        fixture = build_figure2_database(db)
        db.materialize([("Cuboid", "volume"), ("Cuboid", "weight")])
        db.materialize([("Workpieces", "total_volume")])
        cuboids = fixture.cuboids
        try:
            # The Fig. 7 mix: vertex moves (invalidating), value updates
            # (irrelevant), membership updates, and interleaved reads.
            for round_no in range(6):
                c = cuboids[round_no % len(cuboids)]
                v1 = db.objects.get(c.oid).data["V1"]
                db.set_attr(v1, "X", float(round_no))
                db.set_attr(c.oid, "Value", 10.0 + round_no)
                if round_no % 2:
                    db.set_attr(v1, "Y", -float(round_no))
            volumes = db.query("range c:Cuboid retrieve c.volume")
            weights = db.query("range c:Cuboid retrieve c.weight")
            totals = db.query("range w:Workpieces retrieve w.total_volume")
            stats = db.gmr_manager.stats.snapshot()
            violations = []
            for gmr in db.gmr_manager.gmrs():
                violations.extend(gmr.check_consistency(db))
            return {
                "volumes": sorted(volumes),
                "weights": sorted(weights),
                "totals": sorted(totals),
                "invalidations": (stats.invalidate_calls,
                                  stats.entries_invalidated),
                "violations": violations,
            }
        finally:
            db.close()

    def test_equivalence(self):
        planned = self._run_workload(True)
        scanned = self._run_workload(False)
        assert planned["violations"] == [] and scanned["violations"] == []
        assert planned == scanned
