"""GMR-manager invalidation tests: the Sec. 4.1 algorithms."""

import pytest

from repro import InstrumentationLevel, ObjectBase, Strategy
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_vertex,
)


def make_db(level=InstrumentationLevel.OBJ_DEP, strategy=Strategy.IMMEDIATE):
    db = ObjectBase(level=level)
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    gmr = db.materialize([("Cuboid", "volume")], strategy=strategy)
    return db, fixture, gmr


class TestImmediate:
    def test_update_rematerializes(self):
        db, fixture, gmr = make_db()
        c1 = fixture.cuboids[0]
        c1.scale(create_vertex(db, 2.0, 1.0, 1.0))
        row = gmr.lookup((c1.oid,))
        assert row.valid[0] is True
        assert row.results[0] == pytest.approx(600.0)

    def test_uninvolved_objects_untouched(self):
        db, fixture, gmr = make_db()
        c1, c2, _ = fixture.cuboids
        c1.scale(create_vertex(db, 2.0, 1.0, 1.0))
        assert gmr.lookup((c2.oid,)).results[0] == pytest.approx(200.0)

    def test_rrr_refreshed_after_remat(self):
        db, fixture, gmr = make_db()
        c1 = fixture.cuboids[0]
        rrr = db.gmr_manager.rrr
        before = rrr.args_of(c1.oid, "Cuboid.volume")
        c1.scale(create_vertex(db, 2.0, 1.0, 1.0))
        after = rrr.args_of(c1.oid, "Cuboid.volume")
        assert before == after == {(c1.oid,)}

    def test_irrelevant_attribute_does_not_invalidate(self):
        """Sec. 5.1: set_Value must not touch a materialized volume."""
        db, fixture, gmr = make_db()
        c1 = fixture.cuboids[0]
        calls = []
        manager = db.gmr_manager
        original = manager.invalidate
        manager.invalidate = lambda *a, **k: (calls.append(a), original(*a, **k))[1]
        c1.set_Value(123.50)
        assert calls == []
        assert gmr.lookup((c1.oid,)).valid[0] is True

    def test_relevant_attribute_on_other_function(self, geometry_db):
        """set_Mat invalidates weight but not volume (Sec. 5.1)."""
        db, fixture = geometry_db
        gmr = db.materialize(
            [("Cuboid", "volume"), ("Cuboid", "weight")], strategy=Strategy.LAZY
        )
        c1 = fixture.cuboids[0]
        c1.set_Mat(fixture.gold)
        row = gmr.lookup((c1.oid,))
        assert row.valid[gmr.column_of("Cuboid.volume")] is True
        assert row.valid[gmr.column_of("Cuboid.weight")] is False

    def test_vertex_update_invalidates_owner(self):
        db, fixture, gmr = make_db()
        c1 = fixture.cuboids[0]
        v2 = db.handle(db.objects.get(c1.oid).data["V2"])
        v2.set_X(100.0)
        row = gmr.lookup((c1.oid,))
        assert row.valid[0] is True  # immediate remat
        assert row.results[0] != pytest.approx(300.0)
        assert gmr.check_consistency(db) == []

    def test_innocent_vertex_update_is_cheap(self):
        """Sec. 5.2: a vertex outside any materialization never reaches
        the GMR manager under OBJ_DEP instrumentation."""
        db, fixture, gmr = make_db()
        lone_vertex = create_vertex(db, 1.0, 2.0, 3.0)
        calls = []
        manager = db.gmr_manager
        original = manager.invalidate
        manager.invalidate = lambda *a, **k: (calls.append(a), original(*a, **k))[1]
        lone_vertex.set_X(9.0)
        assert calls == []


class TestLazy:
    def test_update_marks_invalid_only(self):
        db, fixture, gmr = make_db(strategy=Strategy.LAZY)
        c1 = fixture.cuboids[0]
        c1.scale(create_vertex(db, 2.0, 1.0, 1.0))
        row = gmr.lookup((c1.oid,))
        assert row.valid[0] is False
        assert row.results[0] == pytest.approx(300.0)  # stale but flagged

    def test_access_revalidates(self):
        db, fixture, gmr = make_db(strategy=Strategy.LAZY)
        c1 = fixture.cuboids[0]
        c1.scale(create_vertex(db, 2.0, 1.0, 1.0))
        assert c1.volume() == pytest.approx(600.0)
        assert gmr.lookup((c1.oid,)).valid[0] is True

    def test_repeated_updates_invalidate_once(self):
        """Step 2 of lazy(o): removing the RRR entry blocks repeated
        invalidations of the same result (Sec. 4.1)."""
        db, fixture, gmr = make_db(strategy=Strategy.LAZY)
        c1 = fixture.cuboids[0]
        v1 = db.handle(db.objects.get(c1.oid).data["V1"])
        manager = db.gmr_manager
        counts = []
        original = manager.invalidate
        manager.invalidate = lambda *a, **k: counts.append(original(*a, **k))
        v1.set_X(1.0)
        v1.set_X(2.0)
        v1.set_X(3.0)
        # Only the first update finds an RRR entry and flips the flag; the
        # later ones never even call the manager (ObjDepFct was cleared).
        assert counts == [1]

    def test_revalidate_sweep(self):
        db, fixture, gmr = make_db(strategy=Strategy.LAZY)
        for cuboid in fixture.cuboids:
            cuboid.scale(create_vertex(db, 2.0, 2.0, 2.0))
        assert len(gmr.invalid_args("Cuboid.volume")) == 3
        recomputed = db.gmr_manager.revalidate(gmr)
        assert recomputed == 3
        assert gmr.is_valid("Cuboid.volume")
        assert gmr.check_consistency(db) == []

    def test_backward_query_forces_validity(self):
        db, fixture, gmr = make_db(strategy=Strategy.LAZY)
        c1 = fixture.cuboids[0]
        c1.scale(create_vertex(db, 2.0, 1.0, 1.0))
        matches = db.gmr_manager.backward_query("Cuboid.volume", 550.0, 650.0)
        assert [args for _, args in matches] == [(c1.oid,)]
        assert gmr.is_valid("Cuboid.volume")


class TestInstrumentationLevels:
    """All notifying levels preserve consistency; they differ in cost."""

    @pytest.mark.parametrize(
        "level",
        [
            InstrumentationLevel.NAIVE,
            InstrumentationLevel.SCHEMA_DEP,
            InstrumentationLevel.OBJ_DEP,
        ],
    )
    def test_consistency_after_updates(self, level):
        db, fixture, gmr = make_db(level=level)
        c1 = fixture.cuboids[0]
        c1.scale(create_vertex(db, 2.0, 1.0, 1.0))
        c1.set_Value(1.0)
        c1.translate(create_vertex(db, 1.0, 1.0, 1.0))
        assert gmr.check_consistency(db) == []
        assert gmr.is_complete(db)

    def test_none_level_lets_gmr_go_stale(self):
        """WithoutGMR instrumentation: updates bypass the manager."""
        db, fixture, gmr = make_db(level=InstrumentationLevel.NONE)
        c1 = fixture.cuboids[0]
        c1.scale(create_vertex(db, 2.0, 1.0, 1.0))
        row = gmr.lookup((c1.oid,))
        assert row.valid[0] is True  # stale: nobody told the manager
        assert gmr.check_consistency(db) != []

    def test_naive_notifies_for_every_object(self):
        """Figure 4: every update calls the manager, relevant or not."""
        db, fixture, gmr = make_db(level=InstrumentationLevel.NAIVE)
        calls = []
        manager = db.gmr_manager
        original = manager.invalidate
        manager.invalidate = lambda *a, **k: (calls.append(a), original(*a, **k))[1]
        fixture.cuboids[0].set_Value(5.0)  # irrelevant to volume
        assert len(calls) == 1

    def test_schema_dep_skips_irrelevant_updates(self):
        """Sec. 5.1: SchemaDepFct(set_Value) = {} → no manager call."""
        db, fixture, gmr = make_db(level=InstrumentationLevel.SCHEMA_DEP)
        calls = []
        manager = db.gmr_manager
        original = manager.invalidate
        manager.invalidate = lambda *a, **k: (calls.append(a), original(*a, **k))[1]
        fixture.cuboids[0].set_Value(5.0)
        assert calls == []
        # ... but a vertex update of an *uninvolved* vertex still calls
        # the manager (the penalty Sec. 5.2 removes).
        lone = create_vertex(db, 0.0, 0.0, 0.0)
        lone.set_X(1.0)
        assert len(calls) == 1

    def test_blind_reference_cleanup(self):
        """A leftover RRR entry whose row is gone is dropped silently."""
        db, fixture, gmr = make_db(strategy=Strategy.LAZY)
        c1 = fixture.cuboids[0]
        v1 = db.handle(db.objects.get(c1.oid).data["V1"])
        # Remove the row behind the manager's back to simulate a leftover.
        gmr.remove_row((c1.oid,))
        v1.set_X(42.0)  # invalidation hits a blind reference
        assert db.gmr_manager.rrr.args_of(v1.oid, "Cuboid.volume") == set()
