"""Restricted-GMR tests (Sec. 6): predicates and atomic restrictions."""

import pytest

from repro import (
    ObjectBase,
    RangeRestriction,
    RestrictionSpec,
    Strategy,
    ValueRestriction,
    Variable,
)
from repro.core.restricted import validate_atomic_restrictions
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_cuboid,
)
from repro.errors import AtomicArgumentError


@pytest.fixture
def iron_restricted(geometry_db):
    """⟨⟨volume, weight⟩⟩p with p ≡ c.Mat.Name = "Iron" (the Sec. 6 opener)."""
    db, fixture = geometry_db
    gmr = db.query(
        'range c: Cuboid materialize c.volume, c.weight '
        'where c.Mat.Name = "Iron"'
    )
    return db, fixture, gmr


class TestRestrictedPopulation:
    def test_only_matching_rows(self, iron_restricted):
        db, fixture, gmr = iron_restricted
        c1, c2, c3 = fixture.cuboids
        assert gmr.lookup((c1.oid,)) is not None
        assert gmr.lookup((c2.oid,)) is not None
        assert gmr.lookup((c3.oid,)) is None  # gold
        assert gmr.is_complete(db)

    def test_forward_query_outside_restriction_computes(self, iron_restricted):
        db, fixture, gmr = iron_restricted
        gold_cuboid = fixture.cuboids[2]
        assert gold_cuboid.volume() == pytest.approx(100.0)
        assert gmr.lookup((gold_cuboid.oid,)) is None  # still not cached

    def test_new_object_respects_predicate(self, iron_restricted):
        db, fixture, gmr = iron_restricted
        iron_cuboid = create_cuboid(db, dims=(1, 1, 1), material=fixture.iron)
        gold_cuboid = create_cuboid(db, dims=(1, 1, 1), material=fixture.gold)
        assert gmr.lookup((iron_cuboid.oid,)) is not None
        assert gmr.lookup((gold_cuboid.oid,)) is None
        assert gmr.is_complete(db)


class TestPredicateMaintenance:
    """Sec. 6.1: the predicate is materialized like a Boolean function."""

    def test_flip_into_restriction_inserts_row(self, iron_restricted):
        db, fixture, gmr = iron_restricted
        gold_cuboid = fixture.cuboids[2]
        gold_cuboid.set_Mat(fixture.iron)
        row = gmr.lookup((gold_cuboid.oid,))
        assert row is not None
        assert row.results[gmr.column_of("Cuboid.volume")] == pytest.approx(100.0)
        assert gmr.is_complete(db)

    def test_flip_out_of_restriction_removes_row(self, iron_restricted):
        db, fixture, gmr = iron_restricted
        iron_cuboid = fixture.cuboids[0]
        iron_cuboid.set_Mat(fixture.gold)
        assert gmr.lookup((iron_cuboid.oid,)) is None
        assert gmr.is_complete(db)

    def test_predicate_dependency_via_material_rename(self, iron_restricted):
        """Renaming the shared Material flips every referencing cuboid."""
        db, fixture, gmr = iron_restricted
        fixture.iron.set_Name("Steel")
        assert len(gmr) == 0
        fixture.iron.set_Name("Iron")
        assert len(gmr) == 2
        assert gmr.is_complete(db)

    def test_restricted_consistency_under_updates(self, iron_restricted):
        db, fixture, gmr = iron_restricted
        from repro.domains.geometry import create_vertex

        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        assert gmr.check_consistency(db) == []
        assert gmr.is_complete(db)


class TestAtomicRestrictions:
    def test_value_restriction(self):
        restriction = ValueRestriction((9.81, 3.7, 22.01))
        assert restriction.contains(9.81)
        assert not restriction.contains(1.0)
        assert set(restriction.values()) == {9.81, 3.7, 22.01}

    def test_range_restriction(self):
        restriction = RangeRestriction(2, 5)
        assert restriction.contains(3)
        assert not restriction.contains(6)
        assert restriction.values() == [2, 3, 4, 5]

    def test_empty_range_rejected(self):
        with pytest.raises(AtomicArgumentError):
            RangeRestriction(5, 2)

    def test_unrestricted_atomic_argument_rejected(self):
        with pytest.raises(AtomicArgumentError):
            validate_atomic_restrictions(("Cuboid", "float"), None)

    def test_float_requires_value_restriction(self):
        spec = RestrictionSpec(atomic={1: RangeRestriction(1, 3)})
        with pytest.raises(AtomicArgumentError):
            validate_atomic_restrictions(("Cuboid", "float"), spec)

    def test_int_may_be_range_restricted(self):
        spec = RestrictionSpec(atomic={1: RangeRestriction(1, 3)})
        validate_atomic_restrictions(("Cuboid", "int"), spec)

    def test_materializing_weight_per_gravity(self, geometry_db):
        """Sec. 6.2: weight(gravitation) value-restricted to the planets."""
        db, fixture = geometry_db

        def weight_at(self, gravitation):
            return self.volume() * self.Mat.SpecWeight * gravitation / 9.81

        db.define_operation(
            "Cuboid", "weight_at", ["float"], "float", weight_at
        )
        gravities = (9.81, 3.7, 22.01)
        gmr = db.materialize(
            [("Cuboid", "weight_at")],
            restriction=RestrictionSpec(
                atomic={1: ValueRestriction(gravities)}
            ),
        )
        assert len(gmr) == 3 * len(gravities)
        c1 = fixture.cuboids[0]
        row = gmr.lookup((c1.oid, 3.7))
        assert row.results[0] == pytest.approx(2358.0 * 3.7 / 9.81)
        assert gmr.is_complete(db)

    def test_atomic_gmr_forward_query_outside_values(self, geometry_db):
        db, fixture = geometry_db

        def weight_at(self, gravitation):
            return self.volume() * self.Mat.SpecWeight * gravitation / 9.81

        db.define_operation("Cuboid", "weight_at", ["float"], "float", weight_at)
        db.make_public("Cuboid", "weight_at")
        db.materialize(
            [("Cuboid", "weight_at")],
            restriction=RestrictionSpec(atomic={1: ValueRestriction((9.81,))}),
        )
        # 5.0 is not materialized: computed by the normal function.
        value = fixture.cuboids[0].weight_at(5.0)
        assert value == pytest.approx(2358.0 * 5.0 / 9.81)

    def test_atomic_gmr_maintained_under_updates(self, geometry_db):
        db, fixture = geometry_db

        def weight_at(self, gravitation):
            return self.volume() * self.Mat.SpecWeight * gravitation / 9.81

        db.define_operation("Cuboid", "weight_at", ["float"], "float", weight_at)
        gmr = db.materialize(
            [("Cuboid", "weight_at")],
            restriction=RestrictionSpec(atomic={1: ValueRestriction((9.81, 3.7))}),
        )
        from repro.domains.geometry import create_vertex

        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        assert gmr.check_consistency(db) == []

    def test_atomic_restriction_with_predicate(self, geometry_db):
        db, fixture = geometry_db

        def weight_at(self, gravitation):
            return self.volume() * self.Mat.SpecWeight * gravitation / 9.81

        db.define_operation("Cuboid", "weight_at", ["float"], "float", weight_at)
        predicate = Variable("c", ("Mat", "Name")).eq("Iron")
        gmr = db.materialize(
            [("Cuboid", "weight_at")],
            restriction=RestrictionSpec(
                predicate=predicate,
                var_names=("c", "g"),
                atomic={1: ValueRestriction((9.81,))},
            ),
        )
        assert len(gmr) == 2  # two iron cuboids × one gravity
