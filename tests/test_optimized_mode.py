"""``python -O`` smoke: the library must not lean on ``assert``.

Production invariants were moved from ``assert`` statements to typed
errors (``SchemaError`` / ``TransactionError`` / ``InternalError``)
because ``-O`` strips asserts — a guard that silently disappears under
optimization is no guard.  The smoke runs a representative workload in
a ``python -O`` subprocess and checks the typed error paths still fire.
"""

from __future__ import annotations

import os
import subprocess
import sys

SMOKE = r"""
import sys
assert not __debug__ or sys.exit("smoke must run under -O")

from repro import ObjectBase, Strategy
from repro.errors import QueryError
from repro.gom.transactions import TransactionError, TransactionScope

db = ObjectBase()
db.define_tuple_type("Point", {"X": "float", "Y": "float"})
db.define_operation(
    "Point", "norm", [], "float",
    lambda self: (self.X * self.X + self.Y * self.Y) ** 0.5,
)
points = [db.new("Point", X=float(i), Y=float(i + 1)) for i in range(5)]
gmr = db.materialize([("Point", "norm")], strategy=Strategy.DEFERRED)

# workload: updates, batch, transaction, queries, maintenance
points[0].set_X(9.0)
with db.batch():
    points[1].set_Y(3.0)
    points[2].set_X(7.0)
with db.transaction() as txn:
    points[3].set_X(5.0)
    txn.abort()
db.gmr_manager.scheduler.revalidate()
if points[3].X != 3.0:
    sys.exit("rollback lost under -O")
if gmr.check_consistency(db):
    sys.exit("consistency violated under -O")
rows = db.query("range p: Point retrieve p.X")
if not rows:
    sys.exit("query returned nothing under -O")
db.explain("range p: Point retrieve p.norm")

# typed error paths survive -O (an assert would have been stripped)
try:
    TransactionScope(db.transactions).update_count
    sys.exit("un-entered scope must raise TransactionError")
except TransactionError:
    pass
try:
    db.query("range p: Point retrieve p.")
    sys.exit("malformed query must raise QueryError")
except QueryError:
    pass

print("OK")
"""


def test_optimized_smoke():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-O", "-c", SMOKE],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, (
        f"-O smoke failed\nstdout: {proc.stdout}\nstderr: {proc.stderr}"
    )
    assert proc.stdout.strip() == "OK"
