"""Tests of the reporting helpers and the CLI entry point."""

import pytest

from repro.bench.reporting import shape_notes, summarize
from repro.bench.runner import FigureResult, MeasuredPoint, Series


@pytest.fixture
def result():
    winner = Series("WithGMR", [
        MeasuredPoint(0.0, 0.1, 1, 5, 1.0),
        MeasuredPoint(1.0, 0.1, 2, 5, 2.0),
    ])
    loser = Series("WithoutGMR", [
        MeasuredPoint(0.0, 0.4, 9, 40, 9.0),
        MeasuredPoint(1.0, 0.4, 9, 40, 9.0),
    ])
    return FigureResult("99", "synthetic", "Pup", [loser, winner])


class TestReporting:
    def test_summarize_contains_table_and_notes(self, result):
        text = summarize(result)
        assert "Figure 99" in text
        assert "WithGMR" in text
        assert "ordering" in text

    def test_shape_notes_report_dominance(self, result):
        notes = shape_notes(result)
        assert any("beats WithoutGMR over the whole sweep" in note for note in notes)

    def test_shape_notes_report_crossover(self):
        crossing = Series("WithGMR", [
            MeasuredPoint(0.0, 0.1, 1, 5, 1.0),
            MeasuredPoint(1.0, 0.1, 20, 5, 20.0),
        ])
        flat = Series("WithoutGMR", [
            MeasuredPoint(0.0, 0.4, 9, 40, 9.0),
            MeasuredPoint(1.0, 0.4, 9, 40, 9.0),
        ])
        notes = shape_notes(FigureResult("98", "t", "Pup", [flat, crossing]))
        assert any("break-even of WithGMR" in note for note in notes)

    def test_seconds_metric(self, result):
        text = summarize(result, metric="seconds")
        assert "[seconds]" in text


class TestCli:
    def test_figure_13_runs(self, capsys):
        from repro.bench.__main__ import main

        code = main(["--figure", "13"])
        captured = capsys.readouterr().out
        assert code == 0
        assert "Figure 13" in captured
        assert "Lazy" in captured

    def test_requires_figure_argument(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main([])

    def test_unknown_figure_rejected(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["--figure", "12"])

    def test_output_file(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        target = tmp_path / "report.md"
        main(["--figure", "13", "--output", str(target)])
        capsys.readouterr()
        assert "Figure 13" in target.read_text()
