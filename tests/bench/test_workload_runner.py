"""Tests of the benchmark harness itself."""

import pytest

from repro.bench.runner import (
    FigureResult,
    MeasuredPoint,
    ProgramVersion,
    Series,
    WITHOUT_GMR,
    WITH_GMR,
)
from repro.bench.workload import OperationMix
from repro.util.rng import DeterministicRng


class TestOperationMix:
    def test_pure_queries(self):
        mix = OperationMix(
            queries=[(1.0, "Q")], updates=[(1.0, "U")],
            update_probability=0.0, operations=50,
        )
        codes = list(mix.stream(DeterministicRng(1)))
        assert codes == ["Q"] * 50

    def test_pure_updates(self):
        mix = OperationMix(
            queries=[(1.0, "Q")], updates=[(1.0, "U")],
            update_probability=1.0, operations=50,
        )
        assert list(mix.stream(DeterministicRng(1))) == ["U"] * 50

    def test_mixed_ratio(self):
        mix = OperationMix(
            queries=[(1.0, "Q")], updates=[(1.0, "U")],
            update_probability=0.3, operations=5000,
        )
        codes = list(mix.stream(DeterministicRng(2)))
        assert 0.25 < codes.count("U") / len(codes) < 0.35

    def test_weighted_updates(self):
        mix = OperationMix(
            queries=[], updates=[(0.5, "I"), (0.5, "S")],
            update_probability=1.0, operations=1000,
        )
        codes = list(mix.stream(DeterministicRng(3)))
        assert 0.4 < codes.count("I") / len(codes) < 0.6

    def test_degenerate_profile_falls_back(self):
        # Pup = 1 with no updates: queries are drawn anyway.
        mix = OperationMix(
            queries=[(1.0, "Q")], updates=[],
            update_probability=1.0, operations=5,
        )
        assert list(mix.stream(DeterministicRng(1))) == ["Q"] * 5

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            OperationMix(queries=[], updates=[], update_probability=1.5,
                         operations=1)

    def test_same_seed_same_stream(self):
        mix = OperationMix(
            queries=[(0.5, "A"), (0.5, "B")], updates=[(1.0, "U")],
            update_probability=0.4, operations=100,
        )
        first = list(mix.stream(DeterministicRng(9)))
        second = list(mix.stream(DeterministicRng(9)))
        assert first == second


class TestFigureResult:
    def _result(self):
        cheap = Series("Cheap", [
            MeasuredPoint(0.0, 0.1, 1, 10, 1.0),
            MeasuredPoint(0.5, 0.1, 2, 10, 2.0),
            MeasuredPoint(1.0, 0.1, 9, 10, 9.0),
        ])
        dear = Series("Dear", [
            MeasuredPoint(0.0, 0.2, 5, 20, 5.0),
            MeasuredPoint(0.5, 0.2, 5, 20, 5.0),
            MeasuredPoint(1.0, 0.2, 5, 20, 5.0),
        ])
        return FigureResult("X", "test", "Pup", [cheap, dear])

    def test_crossover(self):
        result = self._result()
        assert result.crossover("Cheap", "Dear") == 1.0

    def test_no_crossover(self):
        result = self._result()
        assert result.crossover("Dear", "Dear") is None

    def test_series_lookup(self):
        result = self._result()
        assert result.series_by_name("Cheap").version == "Cheap"
        with pytest.raises(KeyError):
            result.series_by_name("Ghost")

    def test_totals(self):
        result = self._result()
        assert result.series_by_name("Cheap").total_cost() == pytest.approx(12.0)

    def test_table_contains_all_versions(self):
        text = self._result().to_table()
        assert "Cheap" in text and "Dear" in text and "Pup" in text

    def test_table_metrics(self):
        seconds = self._result().to_table(metric="seconds")
        assert "0.2" in seconds
        ios = self._result().to_table(metric="ios")
        assert "Figure X" in ios


class TestProgramVersions:
    def test_canonical_versions(self):
        assert WITHOUT_GMR.use_gmr is False
        assert WITH_GMR.use_gmr is True
        assert WITH_GMR.level.notifies


class TestCuboidApplication:
    @pytest.fixture
    def app(self):
        from repro.bench.cuboid import CuboidApplication, CuboidConfig

        return CuboidApplication(WITH_GMR, CuboidConfig(cuboids=30, seed=1))

    def test_population(self, app):
        assert len(app.cuboids) == 30
        assert len(app.gmr) == 30

    def test_all_operations_run(self, app):
        rng = DeterministicRng(4)
        for code in ("Qbw", "Qfw", "I", "D", "S", "R", "T"):
            app._DISPATCH[code](app, rng)
        assert app.gmr.check_consistency(app.db) == []

    def test_insert_then_forward_query(self, app):
        rng = DeterministicRng(4)
        app.u_insert(rng)
        assert len(app.gmr) == 31
        assert app.q_forward(rng) is not None

    def test_delete_keeps_gmr_complete(self, app):
        rng = DeterministicRng(4)
        app.u_delete(rng)
        assert len(app.gmr) == 29
        assert app.gmr.is_complete(app.db)

    def test_backward_query_counts(self, app):
        rng = DeterministicRng(4)
        count = app.q_backward(rng)
        assert isinstance(count, int)


class TestRankingApplication:
    @pytest.fixture
    def app(self):
        from repro.bench.company import CompanyConfig, RankingApplication
        from repro.bench.runner import IMMEDIATE

        config = CompanyConfig(
            departments=2, employees_per_department=5, projects=10,
            jobs_per_employee=3,
        )
        return RankingApplication(IMMEDIATE, config)

    def test_population(self, app):
        assert len(app.fixture.employees) == 10
        assert len(app.gmr) == 10

    def test_operations(self, app):
        rng = DeterministicRng(2)
        app.q_backward(rng)
        assert app.q_forward(rng) is not None
        app.u_promote(rng)
        app.u_new_employee(rng)
        assert len(app.gmr) == 11
        assert app.gmr.check_consistency(app.db) == []


class TestMatrixApplication:
    def test_compensated_version_stays_consistent(self):
        from repro.bench.company import CompanyConfig, MatrixApplication
        from repro.bench.runner import COMP_ACTION

        config = CompanyConfig(
            departments=2, employees_per_department=4, projects=8,
            jobs_per_employee=2,
        )
        app = MatrixApplication(COMP_ACTION, config)
        rng = DeterministicRng(3)
        app.u_new_project(rng)
        app.q_select(rng)
        app.u_new_project(rng)
        assert app.gmr.check_consistency(app.db) == []
