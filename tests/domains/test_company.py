"""Tests of the company domain schema (Sec. 7.2, Figure 12)."""

import pytest

from repro import ObjectBase, Strategy
from repro.domains.company import (
    add_random_project,
    build_company_schema,
    populate_company,
)
from repro.util.rng import DeterministicRng


class TestAssessmentAndRanking:
    @pytest.fixture
    def db(self):
        database = ObjectBase()
        build_company_schema(database)
        return database

    def make_employee(self, db, jobs):
        history = db.new_collection("Jobs")
        employee = db.new("Employee", Name="E", EmpNo=1, JobHistory=history)
        for loc, on_time, in_budget in jobs:
            project = db.new(
                "Project", PName="P", Programmers=db.new_collection("Employees")
            )
            job = db.new(
                "Job",
                Proj=project,
                LinesOfCode=loc,
                OnTime=on_time,
                WithinBudget=in_budget,
            )
            history.insert(job)
        return employee

    def test_assessment_components(self, db):
        employee = self.make_employee(db, [(2000, True, False)])
        job = next(iter(employee.JobHistory))
        assert job.assessment() == pytest.approx(3.0)

    def test_ranking_averages(self, db):
        employee = self.make_employee(
            db, [(1000, True, True), (3000, False, False)]
        )
        assert employee.ranking() == pytest.approx((3.0 + 3.0) / 2)

    def test_ranking_of_empty_history(self, db):
        employee = self.make_employee(db, [])
        assert employee.ranking() == 0.0

    def test_status_flip_changes_ranking(self, db):
        employee = self.make_employee(db, [(1000, False, False)])
        before = employee.ranking()
        job = next(iter(employee.JobHistory))
        job.set_OnTime(True)
        assert employee.ranking() == pytest.approx(before + 1.0)


class TestMatrix:
    @pytest.fixture
    def setting(self):
        database = ObjectBase()
        build_company_schema(database)
        fixture = populate_company(
            database,
            DeterministicRng(5),
            departments=2,
            employees_per_department=3,
            projects=4,
            jobs_per_employee=2,
        )
        return database, fixture

    def test_matrix_lines_nonempty(self, setting):
        db, fixture = setting
        lines = fixture.company.matrix()
        assert lines
        for line in lines:
            assert line.emps
            for employee in line.emps:
                assert line.proj.Programmers.contains(employee)
                assert line.dep.Emps.contains(employee)

    def test_matrix_covers_every_assignment(self, setting):
        db, fixture = setting
        lines = fixture.company.matrix()
        covered = {
            (line.dep.oid, line.proj.oid, employee.oid)
            for line in lines
            for employee in line.emps
        }
        for department in fixture.departments:
            for employee in department.Emps:
                for project in fixture.projects:
                    if project.Programmers.contains(employee):
                        assert (
                            department.oid,
                            project.oid,
                            employee.oid,
                        ) in covered

    def test_add_project_extends_matrix(self, setting):
        db, fixture = setting
        before = fixture.company.matrix()
        project = add_random_project(
            db, DeterministicRng(9), fixture.company, fixture.employees,
            programmers=2,
        )
        after = fixture.company.matrix()
        assert before < after  # strict superset
        assert any(line.proj == project for line in after)

    def test_drop_project_shrinks_matrix(self, setting):
        db, fixture = setting
        target = None
        for line in fixture.company.matrix():
            target = line.proj
            break
        fixture.company.drop_project(target)
        assert all(
            line.proj != target for line in fixture.company.matrix()
        )


class TestPopulation:
    def test_population_counts(self, company_db):
        db, fixture = company_db
        assert len(fixture.departments) == 3
        assert len(fixture.employees) == 12
        assert len(fixture.projects) == 10
        assert len(fixture.jobs) == 36

    def test_programmers_consistent_with_jobs(self, company_db):
        db, fixture = company_db
        for employee in fixture.employees:
            for job in employee.JobHistory:
                assert job.Proj.Programmers.contains(employee)

    def test_employee_numbers_unique(self, company_db):
        db, fixture = company_db
        numbers = [employee.EmpNo for employee in fixture.employees]
        assert len(numbers) == len(set(numbers))


class TestMaterializedCompany:
    def test_ranking_gmr(self, company_db):
        db, fixture = company_db
        gmr = db.materialize([("Employee", "ranking")])
        assert len(gmr) == len(fixture.employees)
        assert gmr.check_consistency(db) == []

    def test_promotion_invalidates_one_ranking(self, company_db):
        db, fixture = company_db
        gmr = db.materialize([("Employee", "ranking")], strategy=Strategy.LAZY)
        victim = fixture.employees[0]
        job = next(iter(victim.JobHistory))
        job.set_OnTime(not job.OnTime)
        invalid = gmr.invalid_args("Employee.ranking")
        assert invalid == {(victim.oid,)}

    def test_matrix_gmr_single_row(self, company_db):
        db, fixture = company_db
        gmr = db.materialize([("Company", "matrix")])
        assert len(gmr) == 1
        value, valid = gmr.result((fixture.company.oid,), "Company.matrix")
        assert valid and value == fixture.company.matrix()

    def test_matrix_invalidated_by_new_project(self, company_db):
        db, fixture = company_db
        gmr = db.materialize([("Company", "matrix")], strategy=Strategy.LAZY)
        add_random_project(
            db, DeterministicRng(1), fixture.company, fixture.employees
        )
        assert not gmr.is_valid("Company.matrix")
        assert gmr.check_consistency(db) == []
        # Access recomputes.
        lines = fixture.company.matrix()
        assert gmr.is_valid("Company.matrix")
        value, _ = gmr.result((fixture.company.oid,), "Company.matrix")
        assert value == lines
