"""Tests of the geometry domain schema (Figures 1 and 2)."""

import math

import pytest

from repro import ObjectBase
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_cuboid,
    create_robot,
    create_vertex,
)


class TestVertex:
    @pytest.fixture
    def db(self):
        database = ObjectBase()
        build_geometry_schema(database)
        return database

    def test_dist(self, db):
        a = create_vertex(db, 0.0, 0.0, 0.0)
        b = create_vertex(db, 3.0, 4.0, 0.0)
        assert a.dist(b) == pytest.approx(5.0)
        assert b.dist(a) == pytest.approx(5.0)

    def test_translate(self, db):
        v = create_vertex(db, 1.0, 2.0, 3.0)
        v.translate(create_vertex(db, 1.0, -1.0, 0.5))
        assert (v.X, v.Y, v.Z) == (2.0, 1.0, 3.5)

    def test_scale(self, db):
        v = create_vertex(db, 1.0, 2.0, 3.0)
        v.scale(create_vertex(db, 2.0, 0.5, 1.0))
        assert (v.X, v.Y, v.Z) == (2.0, 1.0, 3.0)

    def test_rotate_preserves_norm(self, db):
        v = create_vertex(db, 3.0, 4.0, 5.0)
        norm = (v.X**2 + v.Y**2 + v.Z**2) ** 0.5
        for axis in "xyz":
            v.rotate(0.7, axis)
        after = (v.X**2 + v.Y**2 + v.Z**2) ** 0.5
        assert after == pytest.approx(norm)


class TestCuboid:
    @pytest.fixture
    def setting(self):
        database = ObjectBase()
        build_geometry_schema(database)
        fixture = build_figure2_database(database)
        return database, fixture

    def test_figure2_dimensions(self, setting):
        _, fixture = setting
        c1 = fixture.cuboids[0]
        assert c1.length() == pytest.approx(10.0)
        assert c1.width() == pytest.approx(6.0)
        assert c1.height() == pytest.approx(5.0)

    def test_figure2_volumes_and_weights(self, setting):
        _, fixture = setting
        expected = [(300.0, 2358.0), (200.0, 1572.0), (100.0, 1900.0)]
        for cuboid, (volume, weight) in zip(fixture.cuboids, expected):
            assert cuboid.volume() == pytest.approx(volume)
            assert cuboid.weight() == pytest.approx(weight)

    def test_translate_preserves_volume(self, setting):
        db, fixture = setting
        c1 = fixture.cuboids[0]
        c1.translate(create_vertex(db, 5.0, -2.0, 1.0))
        assert c1.volume() == pytest.approx(300.0)

    def test_rotate_preserves_volume(self, setting):
        db, fixture = setting
        c1 = fixture.cuboids[0]
        c1.rotate("z", 1.0)
        assert c1.volume() == pytest.approx(300.0)

    def test_axis_aligned_scale_scales_volume(self, setting):
        db, fixture = setting
        c1 = fixture.cuboids[0]
        c1.scale(create_vertex(db, 2.0, 3.0, 1.0))
        assert c1.volume() == pytest.approx(300.0 * 6.0)

    def test_distance_to_robot(self, setting):
        db, fixture = setting
        robot = create_robot(db, "R", (105.0, 3.0, 2.5))
        c1 = fixture.cuboids[0]  # center at (5, 3, 2.5)
        assert c1.distance(robot) == pytest.approx(100.0)

    def test_pairwise_distance_symmetry(self, setting):
        db, fixture = setting
        c1, c2, _ = fixture.cuboids
        assert c1.distance_to(c2) == pytest.approx(c2.distance_to(c1))
        assert c1.distance_to(c1) == pytest.approx(0.0)

    def test_create_cuboid_vertex_layout(self, setting):
        db, fixture = setting
        cuboid = create_cuboid(
            db, origin=(1.0, 2.0, 3.0), dims=(4.0, 5.0, 6.0),
            material=fixture.iron,
        )
        v1, v7 = cuboid.V1, cuboid.V7
        assert (v1.X, v1.Y, v1.Z) == (1.0, 2.0, 3.0)
        assert (v7.X, v7.Y, v7.Z) == (5.0, 7.0, 9.0)


class TestCollections:
    def test_total_functions(self, geometry_db):
        db, fixture = geometry_db
        assert fixture.workpieces.total_volume() == pytest.approx(500.0)
        assert fixture.workpieces.total_weight() == pytest.approx(3930.0)
        assert fixture.valuables.total_value() == pytest.approx(89.90)

    def test_totals_follow_membership(self, geometry_db):
        db, fixture = geometry_db
        fixture.workpieces.insert(fixture.cuboids[2])
        assert fixture.workpieces.total_volume() == pytest.approx(600.0)
        fixture.workpieces.remove(fixture.cuboids[0])
        assert fixture.workpieces.total_volume() == pytest.approx(300.0)


class TestStrictVariant:
    def test_vertex_accessors_hidden(self, strict_geometry_db):
        from repro.errors import EncapsulationError

        db, fixture = strict_geometry_db
        with pytest.raises(EncapsulationError):
            fixture.cuboids[0].V1

    def test_public_operations_still_work(self, strict_geometry_db):
        db, fixture = strict_geometry_db
        c1 = fixture.cuboids[0]
        assert c1.volume() == pytest.approx(300.0)
        c1.scale(create_vertex(db, 2.0, 1.0, 1.0))
        assert c1.volume() == pytest.approx(600.0)

    def test_invalidated_fct_declarations(self, strict_geometry_db):
        db, _ = strict_geometry_db
        assert "Cuboid.volume" in db._invalidated_fct("Cuboid", "scale")
        assert "Cuboid.volume" not in db._invalidated_fct("Cuboid", "rotate")
        assert "Cuboid.distance" in db._invalidated_fct("Cuboid", "rotate")
