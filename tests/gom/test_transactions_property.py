"""Property test: aborting a transaction restores the observable state.

Random update sequences run inside a transaction that is then rolled
back; the test asserts the object state, the GMR extension and the
dependency markings all return to their pre-transaction values — under
both rematerialization strategies.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import ObjectBase, Strategy
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_cuboid,
    create_vertex,
)

_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["scale", "translate", "set_value", "set_mat", "set_vertex",
             "wp_insert", "wp_remove", "create", "query"]
        ),
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=0.6, max_value=1.7),
    ),
    max_size=15,
)


def _object_state(db):
    state = {}
    for obj in db.objects.iter_objects():
        data = dict(obj.data) if obj.data is not None else None
        elements = tuple(obj.elements) if obj.elements is not None else None
        state[obj.oid] = (obj.type_name, data, elements)
    return state


def _gmr_state(gmr, db):
    # Roll forward lazy invalidations so states compare by value.
    db.gmr_manager.revalidate(gmr)
    return sorted(
        (row.args, tuple(round(r, 9) for r in row.results))
        for row in gmr.rows()
    )


@pytest.mark.parametrize("strategy", [Strategy.IMMEDIATE, Strategy.LAZY])
@given(ops=_OPS)
@settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_abort_restores_everything(strategy, ops):
    db = ObjectBase()
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    gmr = db.materialize([("Cuboid", "volume")], strategy=strategy)

    objects_before = _object_state(db)
    gmr_before = _gmr_state(gmr, db)

    cuboids = list(fixture.cuboids)
    with db.transaction() as txn:
        for code, selector, magnitude in ops:
            cuboid = cuboids[selector % len(cuboids)]
            if code == "scale":
                cuboid.scale(create_vertex(db, magnitude, 1.0, 1.0))
            elif code == "translate":
                cuboid.translate(create_vertex(db, magnitude, 0.0, 0.0))
            elif code == "set_value":
                cuboid.set_Value(magnitude)
            elif code == "set_mat":
                cuboid.set_Mat(fixture.gold if selector % 2 else fixture.iron)
            elif code == "set_vertex":
                vertex = db.objects.get(cuboid.oid).data[f"V{1 + selector % 8}"]
                db.handle(vertex).set_Z(magnitude * 5.0)
            elif code == "wp_insert":
                fixture.workpieces.insert(cuboid)
            elif code == "wp_remove":
                fixture.workpieces.remove(cuboid)
            elif code == "create":
                cuboids.append(
                    create_cuboid(
                        db, dims=(magnitude, 1.0, 1.0), material=fixture.iron
                    )
                )
            elif code == "query":
                cuboid.volume()
        txn.abort()

    objects_after = _object_state(db)
    # Parameter vertices created *by the driver itself* for scale and
    # translate survive (they were created through create_vertex inside
    # the transaction and rolled back) — actually every created object is
    # removed, so the states must match exactly.
    assert objects_after == objects_before
    assert _gmr_state(gmr, db) == gmr_before
    assert gmr.check_consistency(db) == []
    assert gmr.is_complete(db)
    # ObjDepFct and the RRR stay in lockstep after the rollback storm.
    rrr = db.gmr_manager.rrr
    for obj in db.objects.iter_objects():
        assert obj.obj_dep_fct == rrr.fids_of(obj.oid)
