"""Tests for the public clause and strict encapsulation (Secs. 2, 5.3)."""

import pytest

from repro import InstrumentationLevel, ObjectBase
from repro.errors import EncapsulationError


@pytest.fixture
def db():
    database = ObjectBase()
    database.define_tuple_type(
        "Account",
        {"Balance": "float", "Pin": "int"},
        public=["Balance", "deposit"],
    )

    def deposit(self, amount):
        self.set_Balance(self.Balance + amount)

    def audit(self):
        return self.Pin

    database.define_operation("Account", "deposit", ["float"], "void", deposit)
    database.define_operation("Account", "audit", [], "int", audit)
    return database


class TestPublicClause:
    def test_public_reader_allowed(self, db):
        account = db.new("Account", Balance=10.0)
        assert account.Balance == 10.0

    def test_private_reader_rejected(self, db):
        account = db.new("Account", Pin=1234)
        with pytest.raises(EncapsulationError):
            account.Pin

    def test_private_writer_rejected(self, db):
        account = db.new("Account")
        with pytest.raises(EncapsulationError):
            account.set_Balance(99.0)

    def test_private_operation_rejected(self, db):
        account = db.new("Account")
        with pytest.raises(EncapsulationError):
            account.audit()

    def test_public_operation_may_use_private_members(self, db):
        account = db.new("Account", Balance=10.0)
        account.deposit(5.0)  # internally calls the private set_Balance
        assert account.Balance == 15.0

    def test_enforcement_can_be_disabled(self):
        database = ObjectBase(enforce_encapsulation=False)
        database.define_tuple_type("T", {"A": "float"}, public=[])
        obj = database.new("T", A=1.0)
        assert obj.A == 1.0


class TestStrictEncapsulation:
    def test_flag_propagates_to_subtypes(self, db):
        db.define_tuple_type("Savings", {}, supertype="Account")
        db.set_strict_encapsulation("Account")
        assert db._is_strict("Savings")
        assert db._is_strict("Account")

    def test_strict_receiver_marked_as_unit_under_trace(self):
        database = ObjectBase(level=InstrumentationLevel.INFO_HIDING)
        database.define_tuple_type("Inner", {"V": "float"})
        database.define_tuple_type(
            "Outer", {"Child": "Inner"}, public=["probe"]
        )

        def probe(self):
            return self.Child.V

        database.define_operation("Outer", "probe", [], "float", probe)
        database.set_strict_encapsulation("Outer")
        inner = database.new("Inner", V=4.0)
        outer = database.new("Outer", Child=inner)
        with database.trace() as tracer:
            with database.materialization_scope():
                assert outer.probe() == 4.0
        assert outer.oid in tracer.objects
        # The subobject is hidden behind the strict interface.
        assert inner.oid not in tracer.objects

    def test_non_strict_receiver_marks_subobjects(self):
        database = ObjectBase()
        database.define_tuple_type("Inner", {"V": "float"})
        database.define_tuple_type("Outer", {"Child": "Inner"})

        def probe(self):
            return self.Child.V

        database.define_operation("Outer", "probe", [], "float", probe)
        inner = database.new("Inner", V=4.0)
        outer = database.new("Outer", Child=inner)
        with database.trace() as tracer:
            outer.probe()
        assert inner.oid in tracer.objects
        assert ("Inner", "V") in tracer.attributes
