"""Transaction tests: rollback keeps every materialization consistent."""

import pytest

from repro import ObjectBase, Strategy
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_vertex,
)
from repro.gom.transactions import TransactionError


@pytest.fixture
def setting():
    db = ObjectBase()
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    gmr = db.materialize([("Cuboid", "volume")])
    return db, fixture, gmr


class TestCommit:
    def test_commit_keeps_changes(self, setting):
        db, fixture, gmr = setting
        with db.transaction():
            fixture.cuboids[0].set_Value(99.0)
        assert fixture.cuboids[0].Value == 99.0

    def test_commit_keeps_materializations(self, setting):
        db, fixture, gmr = setting
        with db.transaction():
            fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        assert fixture.cuboids[0].volume() == pytest.approx(600.0)
        assert gmr.check_consistency(db) == []

    def test_update_count(self, setting):
        db, fixture, _ = setting
        with db.transaction() as txn:
            fixture.cuboids[0].set_Value(1.0)
            fixture.cuboids[0].set_Value(2.0)
            assert txn.update_count == 2


class TestRollback:
    def test_exception_rolls_back_attribute(self, setting):
        db, fixture, gmr = setting
        before = fixture.cuboids[0].Value
        with pytest.raises(RuntimeError):
            with db.transaction():
                fixture.cuboids[0].set_Value(99.0)
                raise RuntimeError("boom")
        assert fixture.cuboids[0].Value == before

    def test_explicit_abort(self, setting):
        db, fixture, _ = setting
        before = fixture.cuboids[0].Value
        with db.transaction() as txn:
            fixture.cuboids[0].set_Value(99.0)
            txn.abort()
        assert fixture.cuboids[0].Value == before

    def test_rollback_restores_gmr(self, setting):
        """The undo replays through the instrumented paths: the GMR entry
        is rematerialized back to its original value."""
        db, fixture, gmr = setting
        original = fixture.cuboids[0].volume()
        with db.transaction() as txn:
            fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
            assert fixture.cuboids[0].volume() == pytest.approx(2 * original)
            txn.abort()
        assert fixture.cuboids[0].volume() == pytest.approx(original)
        assert gmr.check_consistency(db) == []
        assert gmr.is_complete(db)

    def test_rollback_restores_lazy_gmr(self):
        db = ObjectBase()
        build_geometry_schema(db)
        fixture = build_figure2_database(db)
        gmr = db.materialize([("Cuboid", "volume")], strategy=Strategy.LAZY)
        with db.transaction() as txn:
            fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
            txn.abort()
        assert fixture.cuboids[0].volume() == pytest.approx(300.0)
        assert gmr.check_consistency(db) == []

    def test_rollback_restores_collections(self, setting):
        db, fixture, _ = setting
        total_gmr = db.materialize([("Workpieces", "total_volume")])
        before = fixture.workpieces.total_volume()
        with db.transaction() as txn:
            fixture.workpieces.insert(fixture.cuboids[2])
            fixture.workpieces.remove(fixture.cuboids[0])
            txn.abort()
        assert fixture.workpieces.total_volume() == pytest.approx(before)
        assert len(fixture.workpieces) == 2
        assert total_gmr.check_consistency(db) == []

    def test_rollback_deletes_created_objects(self, setting):
        from repro.domains.geometry import create_cuboid

        db, fixture, gmr = setting
        count_before = len(db.extension("Cuboid"))
        with db.transaction() as txn:
            create_cuboid(db, dims=(2, 2, 2), material=fixture.iron)
            txn.abort()
        assert len(db.extension("Cuboid")) == count_before
        assert len(gmr) == count_before
        assert gmr.is_complete(db)

    def test_rollback_restores_asr(self, setting):
        db, fixture, _ = setting
        asr = db.asr_manager.materialize_path("Cuboid", "Mat", "Name")
        with db.transaction() as txn:
            fixture.cuboids[0].set_Mat(fixture.gold)
            txn.abort()
        assert asr.forward(fixture.cuboids[0]) == "Iron"
        assert asr.check_consistency() == []

    def test_rollback_in_reverse_order(self, setting):
        db, fixture, _ = setting
        cuboid = fixture.cuboids[0]
        with db.transaction() as txn:
            cuboid.set_Value(1.0)
            cuboid.set_Value(2.0)
            cuboid.set_Value(3.0)
            txn.abort()
        assert cuboid.Value == pytest.approx(39.99)  # the Figure 2 value


class TestNesting:
    def test_inner_commit_outer_rollback(self, setting):
        db, fixture, _ = setting
        before = fixture.cuboids[0].Value
        with db.transaction() as outer:
            with db.transaction():
                fixture.cuboids[0].set_Value(50.0)
            fixture.cuboids[0].set_Value(60.0)
            outer.abort()
        assert fixture.cuboids[0].Value == before

    def test_inner_rollback_outer_commit(self, setting):
        db, fixture, _ = setting
        with db.transaction():
            fixture.cuboids[0].set_Value(50.0)
            with db.transaction() as inner:
                fixture.cuboids[0].set_Value(60.0)
                inner.abort()
        assert fixture.cuboids[0].Value == 50.0


class TestDeleteRestriction:
    def test_delete_inside_transaction_rejected(self, setting):
        db, fixture, _ = setting
        with pytest.raises(TransactionError):
            with db.transaction():
                db.delete(fixture.cuboids[0])
        # The rejected delete did not happen.
        assert db.objects.exists(fixture.cuboids[0].oid)

    def test_delete_outside_transaction_fine(self, setting):
        db, fixture, _ = setting
        db.transactions  # instantiate the manager
        db.delete(fixture.cuboids[0])
        assert not db.objects.exists(fixture.cuboids[0].oid)

    def test_mismatched_completion_rejected(self, setting):
        db, _, _ = setting
        manager = db.transactions
        outer = manager.begin()
        inner = manager.begin()
        with pytest.raises(TransactionError):
            manager.commit(outer)
        manager.commit(inner)
        manager.commit(outer)
