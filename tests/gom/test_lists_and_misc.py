"""List-structured types, handle misc, and operation edge cases."""

import pytest

from repro import ObjectBase, Strategy


@pytest.fixture
def db():
    database = ObjectBase()
    database.define_tuple_type("Item", {"V": "float"})
    database.define_list_type("Sequence", "Item")

    def total(self):
        result = 0.0
        for item in self:
            result = result + item.V
        return result

    database.define_operation("Sequence", "total", [], "float", total)
    return database


class TestListSemantics:
    def test_duplicates_count_twice(self, db):
        item = db.new("Item", V=5.0)
        sequence = db.new_collection("Sequence", [item, item])
        assert sequence.total() == 10.0

    def test_materialized_list_function(self, db):
        item = db.new("Item", V=5.0)
        other = db.new("Item", V=2.0)
        sequence = db.new_collection("Sequence", [item, item, other])
        gmr = db.materialize([("Sequence", "total")])
        assert sequence.total() == 12.0
        item.set_V(1.0)  # affects both occurrences
        assert sequence.total() == 4.0
        sequence.remove(item)  # removes one occurrence
        assert sequence.total() == 3.0
        assert gmr.check_consistency(db) == []

    def test_positional_insert(self, db):
        first = db.new("Item", V=1.0)
        second = db.new("Item", V=2.0)
        third = db.new("Item", V=3.0)
        sequence = db.new_collection("Sequence", [first, third])
        db.collection_insert(sequence, second, position=1)
        assert [item.V for item in sequence] == [1.0, 2.0, 3.0]

    def test_elements_snapshot(self, db):
        item = db.new("Item", V=1.0)
        sequence = db.new_collection("Sequence", [item])
        snapshot = sequence.elements()
        sequence.insert(db.new("Item", V=2.0))
        assert len(snapshot) == 1


class TestOperationEdgeCases:
    def test_void_operation(self, db):
        def bump(self):
            self.set_V(self.V + 1.0)

        db.define_operation("Item", "bump", [], "void", bump)
        item = db.new("Item", V=1.0)
        assert item.bump() is None
        assert item.V == 2.0

    def test_operation_returning_handle(self, db):
        db.define_tuple_type("Pair", {"Left": "Item", "Right": "Item"})

        def bigger(self):
            if self.Left.V >= self.Right.V:
                return self.Left
            return self.Right

        db.define_operation("Pair", "bigger", [], "Item", bigger)
        small = db.new("Item", V=1.0)
        large = db.new("Item", V=9.0)
        pair = db.new("Pair", Left=small, Right=large)
        winner = pair.bigger()
        assert winner == large
        assert winner.V == 9.0

    def test_operation_with_atomic_and_object_args(self, db):
        def scaled_sum(self, other, factor):
            return (self.V + other.V) * factor

        db.define_operation(
            "Item", "scaled_sum", ["Item", "float"], "float", scaled_sum
        )
        a = db.new("Item", V=2.0)
        b = db.new("Item", V=3.0)
        assert a.scaled_sum(b, 2.0) == 10.0

    def test_materialized_binary_with_lazy_updates(self, db):
        def combined(self, other):
            return self.V + other.V

        db.define_operation("Item", "combined", ["Item"], "float", combined)
        a = db.new("Item", V=2.0)
        b = db.new("Item", V=3.0)
        gmr = db.materialize([("Item", "combined")], strategy=Strategy.LAZY)
        assert len(gmr) == 4  # 2x2 cross product
        a.set_V(10.0)
        # Three of the four combinations involve `a`.
        assert len(gmr.invalid_args("Item.combined")) == 3
        assert a.combined(b) == 13.0
        db.gmr_manager.revalidate(gmr)
        assert gmr.check_consistency(db) == []
