"""Unit tests for ObjectBase: lifecycle, access paths, indexes."""

import pytest

from repro.errors import (
    DeletedObjectError,
    NoSuchObjectError,
    NotSetStructuredError,
    SchemaError,
    TypeCheckError,
    UnknownAttributeError,
)
from repro import ObjectBase
from repro.gom.oid import Oid


@pytest.fixture
def db():
    database = ObjectBase()
    database.define_tuple_type("Point", {"X": "float", "Y": "float"})
    database.define_set_type("Points", "Point")
    database.define_list_type("Path", "Point")
    return database


class TestCreate:
    def test_new_with_attributes(self, db):
        point = db.new("Point", X=1.0, Y=2.0)
        assert point.X == 1.0
        assert point.Y == 2.0

    def test_new_defaults_atomic_attributes(self, db):
        point = db.new("Point")
        assert point.X == 0.0

    def test_new_unknown_attribute(self, db):
        with pytest.raises(UnknownAttributeError):
            db.new("Point", Z=1.0)

    def test_new_type_checks(self, db):
        with pytest.raises(TypeCheckError):
            db.new("Point", X="not a float")

    def test_new_collection_for_tuple_type_rejected(self, db):
        with pytest.raises(SchemaError):
            db.new_collection("Point")

    def test_new_for_collection_type_rejected(self, db):
        with pytest.raises(SchemaError):
            db.new("Points")

    def test_oids_are_unique_and_stable(self, db):
        first = db.new("Point")
        second = db.new("Point")
        assert first.oid != second.oid
        assert db.handle(first.oid) == first

    def test_extension(self, db):
        db.new("Point")
        db.new("Point")
        assert len(db.extension("Point")) == 2


class TestAttributes:
    def test_set_and_read(self, db):
        point = db.new("Point", X=1.0)
        point.set_X(5.0)
        assert point.X == 5.0

    def test_setter_type_checks(self, db):
        point = db.new("Point")
        with pytest.raises(TypeCheckError):
            point.set_X("bad")

    def test_unknown_member(self, db):
        point = db.new("Point")
        with pytest.raises(UnknownAttributeError):
            point.Ghost

    def test_direct_assignment_forbidden(self, db):
        point = db.new("Point")
        with pytest.raises(AttributeError):
            point.X = 3.0

    def test_reference_attributes_wrap_into_handles(self, db):
        db.define_tuple_type("Segment", {"A": "Point", "B": "Point"})
        a = db.new("Point", X=0.0)
        b = db.new("Point", X=1.0)
        segment = db.new("Segment", A=a, B=b)
        assert segment.A == a
        assert segment.A.X == 0.0

    def test_unset_reference_is_none(self, db):
        db.define_tuple_type("Holder", {"P": "Point"})
        holder = db.new("Holder")
        assert holder.P is None


class TestCollections:
    def test_set_insert_iterate(self, db):
        a = db.new("Point")
        b = db.new("Point")
        points = db.new_collection("Points", [a])
        points.insert(b)
        assert {handle.oid for handle in points} == {a.oid, b.oid}
        assert len(points) == 2

    def test_set_rejects_duplicates(self, db):
        a = db.new("Point")
        points = db.new_collection("Points", [a, a])
        assert len(points) == 1
        points.insert(a)
        assert len(points) == 1

    def test_list_allows_duplicates(self, db):
        a = db.new("Point")
        path = db.new_collection("Path", [a, a])
        assert len(path) == 2

    def test_remove(self, db):
        a = db.new("Point")
        points = db.new_collection("Points", [a])
        points.remove(a)
        assert len(points) == 0
        points.remove(a)  # removing a non-member is a no-op
        assert len(points) == 0

    def test_contains(self, db):
        a = db.new("Point")
        b = db.new("Point")
        points = db.new_collection("Points", [a])
        assert a in points
        assert b not in points
        assert points.contains(a)

    def test_element_type_checked(self, db):
        db.define_tuple_type("Other", {})
        other = db.new("Other")
        points = db.new_collection("Points")
        with pytest.raises(TypeCheckError):
            points.insert(other)

    def test_collection_ops_on_tuple_object_rejected(self, db):
        point = db.new("Point")
        with pytest.raises(NotSetStructuredError):
            point.insert(point)
        with pytest.raises(NotSetStructuredError):
            list(iter(point))


class TestDelete:
    def test_delete_removes_object(self, db):
        point = db.new("Point")
        db.delete(point)
        with pytest.raises(NoSuchObjectError):
            db.objects.get(point.oid)

    def test_delete_removes_from_extension(self, db):
        point = db.new("Point")
        db.delete(point)
        assert db.extension("Point") == []

    def test_access_after_delete_raises(self, db):
        point = db.new("Point")
        db.delete(point)
        with pytest.raises(NoSuchObjectError):
            point.X

    def test_double_delete_raises(self, db):
        point = db.new("Point")
        db.delete(point)
        with pytest.raises(NoSuchObjectError):
            db.delete(point)


class TestOperations:
    def test_invoke(self, point_db):
        point = point_db.new("Point", X=3.0, Y=4.0)
        assert point.norm() == 5.0

    def test_operation_arity_checked(self, point_db):
        point = point_db.new("Point", X=3.0, Y=4.0)
        with pytest.raises(TypeCheckError):
            point.norm(1)

    def test_operation_argument_types_checked(self, db):
        def shift(self, dx):
            self.set_X(self.X + dx)

        db.define_operation("Point", "shift", ["float"], "void", shift)
        point = db.new("Point", X=1.0)
        point.shift(2.0)
        assert point.X == 3.0
        with pytest.raises(TypeCheckError):
            point.shift("bad")

    def test_operations_receive_handles_for_object_args(self, db):
        def dist(self, other):
            return abs(self.X - other.X)

        db.define_operation("Point", "dist", ["Point"], "float", dist)
        a = db.new("Point", X=1.0)
        b = db.new("Point", X=4.0)
        assert a.dist(b) == 3.0

    def test_inherited_operation_dispatch(self, db):
        db.define_tuple_type("Point3", {"Z": "float"}, supertype="Point")

        def flat_norm(self):
            return (self.X * self.X + self.Y * self.Y) ** 0.5

        db.define_operation("Point", "flat_norm", [], "float", flat_norm)
        point = db.new("Point3", X=3.0, Y=4.0, Z=9.0)
        assert point.flat_norm() == 5.0


class TestAttrIndexes:
    def test_index_backfills_existing(self, db):
        for x in range(5):
            db.new("Point", X=float(x))
        index = db.create_attr_index("Point", "X")
        assert len(index) == 5
        assert index.search(3.0)

    def test_index_maintained_on_create_and_set(self, db):
        index = db.create_attr_index("Point", "X")
        point = db.new("Point", X=1.0)
        assert index.search(1.0) == [point.oid]
        point.set_X(2.0)
        assert index.search(1.0) == []
        assert index.search(2.0) == [point.oid]

    def test_index_maintained_on_delete(self, db):
        index = db.create_attr_index("Point", "X")
        point = db.new("Point", X=1.0)
        db.delete(point)
        assert index.search(1.0) == []

    def test_attr_index_lookup(self, db):
        assert db.attr_index("Point", "X") is None
        db.create_attr_index("Point", "X")
        assert db.attr_index("Point", "X") is not None
        assert db.attr_index("Point", "Ghost") is None

    def test_create_index_twice_returns_same(self, db):
        first = db.create_attr_index("Point", "X")
        second = db.create_attr_index("Point", "X")
        assert first is second


class TestTracing:
    def test_reads_recorded(self, db):
        point = db.new("Point", X=1.0)
        with db.trace() as tracer:
            point.X
        assert point.oid in tracer.objects
        assert ("Point", "X") in tracer.attributes

    def test_nested_tracers_both_record(self, db):
        point = db.new("Point", X=1.0)
        with db.trace() as outer:
            with db.trace() as inner:
                point.X
        assert point.oid in outer.objects
        assert point.oid in inner.objects

    def test_no_recording_outside_trace(self, db):
        point = db.new("Point", X=1.0)
        with db.trace() as tracer:
            pass
        point.X
        assert not tracer.objects

    def test_collection_iteration_recorded(self, db):
        a = db.new("Point")
        points = db.new_collection("Points", [a])
        with db.trace() as tracer:
            list(points)
        assert points.oid in tracer.objects
        assert ("Points", "__elements__") in tracer.attributes
