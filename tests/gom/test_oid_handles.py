"""Unit tests for OIDs and handles."""

import pytest

from repro import ObjectBase
from repro.gom.handles import Handle, unwrap
from repro.gom.oid import Oid, OidGenerator


class TestOid:
    def test_repr_matches_paper_notation(self):
        assert repr(Oid(42)) == "id42"

    def test_equality_and_hash(self):
        assert Oid(1) == Oid(1)
        assert Oid(1) != Oid(2)
        assert len({Oid(1), Oid(1), Oid(2)}) == 2

    def test_ordering(self):
        assert Oid(1) < Oid(2)
        assert sorted([Oid(3), Oid(1), Oid(2)]) == [Oid(1), Oid(2), Oid(3)]

    def test_immutability(self):
        with pytest.raises(Exception):
            Oid(1).value = 2  # type: ignore[misc]

    def test_generator_monotonic_and_unique(self):
        generator = OidGenerator()
        oids = [generator.next() for _ in range(100)]
        assert len(set(oids)) == 100
        assert oids == sorted(oids)


class TestHandle:
    @pytest.fixture
    def db(self):
        database = ObjectBase()
        database.define_tuple_type("T", {"A": "float"})
        return database

    def test_equality_by_oid(self, db):
        obj = db.new("T", A=1.0)
        assert db.handle(obj.oid) == obj
        assert obj == obj.oid  # handles compare to raw OIDs too

    def test_inequality(self, db):
        first = db.new("T")
        second = db.new("T")
        assert first != second
        assert (first == "something else") is False

    def test_hashable(self, db):
        obj = db.new("T")
        assert len({obj, db.handle(obj.oid)}) == 1

    def test_repr(self, db):
        obj = db.new("T")
        assert repr(obj).startswith("<T id")

    def test_type_name(self, db):
        assert db.new("T").type_name == "T"

    def test_unwrap(self, db):
        obj = db.new("T")
        assert unwrap(obj) == obj.oid
        assert unwrap(5.0) == 5.0
        assert unwrap(None) is None

    def test_oid_property(self, db):
        obj = db.new("T")
        assert isinstance(obj.oid, Oid)

    def test_handle_of_handle(self, db):
        obj = db.new("T")
        assert db.handle(obj) == obj
