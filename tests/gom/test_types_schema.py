"""Unit tests for type definitions and the schema registry."""

import pytest

from repro.errors import (
    DuplicateTypeError,
    SchemaError,
    TypeCheckError,
    UnknownAttributeError,
    UnknownOperationError,
    UnknownTypeError,
)
from repro.gom.oid import Oid
from repro.gom.schema import ANY, Schema
from repro.gom.types import (
    TypeDefinition,
    TypeKind,
    atomic_value_ok,
    is_atomic_type,
    reader_name,
    writer_name,
)


class TestTypeDefinition:
    def test_tuple_type_attributes(self):
        definition = TypeDefinition.tuple_type("T", {"A": "float", "B": "string"})
        assert definition.is_tuple()
        assert definition.has_attribute("A")
        assert definition.attributes["B"].type_name == "string"

    def test_set_type(self):
        definition = TypeDefinition.set_type("S", "T")
        assert definition.is_set()
        assert definition.is_collection()
        assert definition.element_type == "T"

    def test_list_type(self):
        definition = TypeDefinition.list_type("L", "T")
        assert definition.is_list()
        assert definition.is_collection()

    def test_accessor_names(self):
        assert reader_name("A") == "A"
        assert writer_name("A") == "set_A"

    def test_operation_clashing_with_accessor_rejected(self):
        definition = TypeDefinition.tuple_type("T", {"A": "float"})
        with pytest.raises(SchemaError):
            definition.define_operation("A", [], "float", lambda self: 0.0)

    def test_public_clause(self):
        definition = TypeDefinition.tuple_type("T", {"A": "float"}, public=["A"])
        assert definition.public == {"A"}
        definition.make_public("set_A")
        assert "set_A" in definition.public

    def test_declare_invalidates_accumulates(self):
        definition = TypeDefinition.tuple_type("T", {"A": "float"})
        definition.declare_invalidates("op", ["f1"])
        definition.declare_invalidates("op", ["f2"])
        assert definition.invalidates["op"] == {"f1", "f2"}


class TestAtomicTypes:
    def test_atomic_membership(self):
        assert is_atomic_type("float")
        assert is_atomic_type("int")
        assert not is_atomic_type("Cuboid")

    def test_float_accepts_int(self):
        assert atomic_value_ok("float", 3)
        assert atomic_value_ok("float", 3.5)

    def test_bool_is_not_int(self):
        assert not atomic_value_ok("int", True)
        assert atomic_value_ok("bool", True)

    def test_char_requires_single_character(self):
        assert atomic_value_ok("char", "x")
        assert not atomic_value_ok("char", "xy")
        assert not atomic_value_ok("char", "")

    def test_string(self):
        assert atomic_value_ok("string", "hello")
        assert not atomic_value_ok("string", 7)


class TestSchema:
    def test_any_preregistered(self):
        schema = Schema()
        assert schema.has_type(ANY)
        assert "float" in schema

    def test_add_and_get(self):
        schema = Schema()
        schema.add_type(TypeDefinition.tuple_type("T", {"A": "float"}))
        assert schema.type("T").name == "T"

    def test_duplicate_rejected(self):
        schema = Schema()
        schema.add_type(TypeDefinition.tuple_type("T", {}))
        with pytest.raises(DuplicateTypeError):
            schema.add_type(TypeDefinition.tuple_type("T", {}))

    def test_unknown_type(self):
        schema = Schema()
        with pytest.raises(UnknownTypeError):
            schema.type("Missing")

    def test_unknown_supertype_rejected(self):
        schema = Schema()
        with pytest.raises(UnknownTypeError):
            schema.add_type(
                TypeDefinition.tuple_type("T", {}, supertype="Missing")
            )

    def test_shadowing_inherited_attribute_rejected(self):
        schema = Schema()
        schema.add_type(TypeDefinition.tuple_type("Base", {"A": "float"}))
        with pytest.raises(SchemaError):
            schema.add_type(
                TypeDefinition.tuple_type("Sub", {"A": "int"}, supertype="Base")
            )

    def test_collection_needs_element_type(self):
        schema = Schema()
        with pytest.raises(SchemaError):
            schema.add_type(TypeDefinition(name="S", kind=TypeKind.SET))


class TestInheritance:
    @pytest.fixture
    def schema(self):
        schema = Schema()
        schema.add_type(TypeDefinition.tuple_type("Person", {"Name": "string"}))
        schema.add_type(
            TypeDefinition.tuple_type(
                "Employee", {"EmpNo": "int"}, supertype="Person"
            )
        )
        schema.add_type(
            TypeDefinition.tuple_type(
                "Manager", {"Bonus": "float"}, supertype="Employee"
            )
        )
        return schema

    def test_is_subtype_reflexive(self, schema):
        assert schema.is_subtype("Person", "Person")

    def test_is_subtype_transitive(self, schema):
        assert schema.is_subtype("Manager", "Person")
        assert schema.is_subtype("Manager", ANY)

    def test_is_subtype_directional(self, schema):
        assert not schema.is_subtype("Person", "Manager")

    def test_subtypes_transitive(self, schema):
        assert schema.subtypes_transitive("Person") == {"Employee", "Manager"}
        assert schema.subtypes_transitive("Manager") == set()

    def test_all_attributes_inherited(self, schema):
        attrs = schema.all_attributes("Manager")
        assert set(attrs) == {"Name", "EmpNo", "Bonus"}

    def test_attribute_declaring_type(self, schema):
        assert schema.attribute_declaring_type("Manager", "Name") == "Person"
        assert schema.attribute_declaring_type("Manager", "Bonus") == "Manager"

    def test_unknown_attribute(self, schema):
        with pytest.raises(UnknownAttributeError):
            schema.attribute("Person", "Ghost")

    def test_operation_resolution_walks_chain(self, schema):
        schema.type("Person").define_operation(
            "greet", [], "string", lambda self: "hi"
        )
        declaring, operation = schema.resolve_operation("Manager", "greet")
        assert declaring == "Person"
        assert operation.name == "greet"

    def test_operation_override_uses_most_specific(self, schema):
        schema.type("Person").define_operation(
            "greet", [], "string", lambda self: "person"
        )
        schema.type("Manager").define_operation(
            "greet", [], "string", lambda self: "manager"
        )
        declaring, _ = schema.resolve_operation("Manager", "greet")
        assert declaring == "Manager"

    def test_unknown_operation(self, schema):
        with pytest.raises(UnknownOperationError):
            schema.resolve_operation("Person", "fly")


class TestTypeChecking:
    @pytest.fixture
    def schema(self):
        schema = Schema()
        schema.add_type(TypeDefinition.tuple_type("Base", {}))
        schema.add_type(TypeDefinition.tuple_type("Sub", {}, supertype="Base"))
        return schema

    def test_atomic_ok(self, schema):
        schema.check_value("float", 1.5, type_of_oid=lambda oid: "Base")

    def test_atomic_mismatch(self, schema):
        with pytest.raises(TypeCheckError):
            schema.check_value("int", "nope", type_of_oid=lambda oid: "Base")

    def test_reference_subtype_substitutable(self, schema):
        schema.check_value("Base", Oid(1), type_of_oid=lambda oid: "Sub")

    def test_reference_supertype_rejected(self, schema):
        with pytest.raises(TypeCheckError):
            schema.check_value("Sub", Oid(1), type_of_oid=lambda oid: "Base")

    def test_none_reference_allowed(self, schema):
        schema.check_value("Base", None, type_of_oid=lambda oid: "Base")

    def test_raw_value_for_reference_rejected(self, schema):
        with pytest.raises(TypeCheckError):
            schema.check_value("Base", 42, type_of_oid=lambda oid: "Base")

    def test_void(self, schema):
        schema.check_value("void", None, type_of_oid=lambda oid: "Base")
        with pytest.raises(TypeCheckError):
            schema.check_value("void", 1, type_of_oid=lambda oid: "Base")


class TestPublicClause:
    def test_none_means_everything_public(self):
        schema = Schema()
        schema.add_type(TypeDefinition.tuple_type("T", {"A": "float"}))
        assert schema.is_public("T", "A")
        assert schema.is_public("T", "set_A")

    def test_explicit_clause(self):
        schema = Schema()
        schema.add_type(
            TypeDefinition.tuple_type("T", {"A": "float"}, public=["A"])
        )
        assert schema.is_public("T", "A")
        assert not schema.is_public("T", "set_A")

    def test_inherited_public_members(self):
        schema = Schema()
        schema.add_type(
            TypeDefinition.tuple_type("Base", {"A": "float"}, public=["A"])
        )
        schema.add_type(
            TypeDefinition.tuple_type("Sub", {}, supertype="Base", public=[])
        )
        assert schema.is_public("Sub", "A")
