"""Property test: the decision procedure agrees with brute force.

Random conjunctions over a few variables with small integer constants are
checked against an exhaustive search over a rational grid (step 1/2 so
strict comparisons over the dense domain are honoured).
"""

from fractions import Fraction
from itertools import product

from hypothesis import given, settings, strategies as st

from repro.predicates.ast import Comparison, Variable
from repro.predicates.satisfiability import is_satisfiable

_VARS = [Variable("a"), Variable("b"), Variable("c")]
_OPS = ["<", "<=", ">", ">=", "="]


@st.composite
def conjunctions(draw):
    count = draw(st.integers(min_value=1, max_value=5))
    comparisons = []
    for _ in range(count):
        left = draw(st.sampled_from(_VARS))
        op = draw(st.sampled_from(_OPS))
        kind = draw(st.integers(min_value=1, max_value=3))
        if kind == 1:
            constant = draw(st.integers(min_value=-3, max_value=3))
            comparisons.append(Comparison(left, op, None, constant=constant))
        else:
            right = draw(st.sampled_from(_VARS))
            offset = (
                0.0 if kind == 2 else draw(st.integers(min_value=-2, max_value=2))
            )
            comparisons.append(Comparison(left, op, right, offset=float(offset)))
    return comparisons


def brute_force(conjunct) -> bool:
    variables = sorted(
        {v.name for comparison in conjunct for v in comparison.variables()}
    )
    # Constants live in [-3, 3]; offsets in [-2, 2]; half-step grid over a
    # padded range is exhaustive enough to witness satisfiability for this
    # constraint family (all boundaries are multiples of 1/2).
    grid = [Fraction(n, 2) for n in range(-16, 17)]
    ops = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "=": lambda a, b: a == b,
    }
    for values in product(grid, repeat=len(variables)):
        binding = dict(zip(variables, values))
        ok = True
        for comparison in conjunct:
            left = binding[comparison.left.name]
            if comparison.right is None:
                right = Fraction(comparison.constant)
            else:
                right = binding[comparison.right.name] + Fraction(
                    comparison.offset
                )
            if not ops[comparison.op](left, right):
                ok = False
                break
        if ok:
            return True
    return False


@given(conjunct=conjunctions())
@settings(max_examples=150, deadline=None)
def test_agrees_with_brute_force(conjunct):
    assert is_satisfiable(conjunct) == brute_force(conjunct)
