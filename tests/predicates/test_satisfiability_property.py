"""Property test: the decision procedure agrees with brute force.

Random conjunctions over a few variables with small integer constants
are checked against exhaustive search, in both domains:

* **dense** (the default, real-valued semantics) against a rational
  grid.  All constraint boundaries are integral here, so witnessing a
  satisfiable strict chain through up to three variables (e.g.
  ``1 < a < b < c < 2``) needs at most three distinct interior points
  per unit interval — a step of 1/4.  (The seed's half-step grid was
  too coarse: ``c < 2 ∧ a > 1 ∧ a < 2 ∧ a < c`` is real-satisfiable
  with two distinct values in ``(1, 2)``, which a half-step grid cannot
  represent.)
* **integer** (``integer_vars`` tightening) against the integer grid.
"""

from fractions import Fraction
from itertools import product

from hypothesis import given, settings, strategies as st

from repro.predicates.ast import Comparison, Variable
from repro.predicates.satisfiability import is_satisfiable

_VARS = [Variable("a"), Variable("b"), Variable("c")]
_OPS = ["<", "<=", ">", ">=", "="]

_OPERATORS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
}


@st.composite
def conjunctions(draw):
    count = draw(st.integers(min_value=1, max_value=5))
    comparisons = []
    for _ in range(count):
        left = draw(st.sampled_from(_VARS))
        op = draw(st.sampled_from(_OPS))
        kind = draw(st.integers(min_value=1, max_value=3))
        if kind == 1:
            constant = draw(st.integers(min_value=-3, max_value=3))
            comparisons.append(Comparison(left, op, None, constant=constant))
        else:
            right = draw(st.sampled_from(_VARS))
            offset = (
                0.0 if kind == 2 else draw(st.integers(min_value=-2, max_value=2))
            )
            comparisons.append(Comparison(left, op, right, offset=float(offset)))
    return comparisons


def brute_force(conjunct, grid) -> bool:
    variables = sorted(
        {v.name for comparison in conjunct for v in comparison.variables()}
    )
    for values in product(grid, repeat=len(variables)):
        binding = dict(zip(variables, values))
        ok = True
        for comparison in conjunct:
            left = binding[comparison.left.name]
            if comparison.right is None:
                right = Fraction(comparison.constant)
            else:
                right = binding[comparison.right.name] + Fraction(
                    comparison.offset
                )
            if not _OPERATORS[comparison.op](left, right):
                ok = False
                break
        if ok:
            return True
    return False


#: Constants live in [-3, 3] and offsets in [-2, 2]; a feasible system
#: always has a solution with every variable in [-8, 8] (an anchor bound
#: of at most 3 plus at most two offset hops of 2 across the three
#: distinct variables; unanchored systems are translation-invariant).
_DENSE_GRID = [Fraction(n, 4) for n in range(-32, 33)]
_INTEGER_GRID = [Fraction(n) for n in range(-8, 9)]


@given(conjunct=conjunctions())
@settings(max_examples=100, deadline=None)
def test_agrees_with_brute_force(conjunct):
    assert is_satisfiable(conjunct) == brute_force(conjunct, _DENSE_GRID)


@given(conjunct=conjunctions())
@settings(max_examples=100, deadline=None)
def test_integer_domain_agrees_with_integer_brute_force(conjunct):
    decided = is_satisfiable(conjunct, integer_vars={"a", "b", "c"})
    assert decided == brute_force(conjunct, _INTEGER_GRID)


@given(conjunct=conjunctions())
@settings(max_examples=100, deadline=None)
def test_integer_tightening_never_widens(conjunct):
    """Integer satisfiability implies dense satisfiability (ℤ ⊂ ℝ)."""
    if is_satisfiable(conjunct, integer_vars={"a", "b", "c"}):
        assert is_satisfiable(conjunct)
