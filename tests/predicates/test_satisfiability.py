"""Unit tests for the Rosenkrantz–Hunt decision procedure."""

import pytest

from repro.errors import PredicateClassError
from repro.predicates.ast import Comparison, Variable
from repro.predicates.dnf import to_dnf
from repro.predicates.satisfiability import (
    in_decidable_class,
    is_satisfiable,
    predicate_satisfiable,
)

x = Variable("x")
y = Variable("y")
z = Variable("z")


class TestType1:
    def test_single_bound(self):
        assert is_satisfiable([x < 5])

    def test_window(self):
        assert is_satisfiable([x > 3, x < 5])

    def test_empty_window(self):
        assert not is_satisfiable([x > 5, x < 3])

    def test_touching_bounds_non_strict(self):
        assert is_satisfiable([x >= 5, x <= 5])

    def test_touching_bounds_strict(self):
        assert not is_satisfiable([x > 5, x < 5])
        assert not is_satisfiable([x >= 5, x < 5])

    def test_equality(self):
        assert is_satisfiable([x.eq(5)])
        assert not is_satisfiable([x.eq(5), x.eq(6)])
        assert is_satisfiable([x.eq(5), x <= 5])
        assert not is_satisfiable([x.eq(5), x < 5])

    def test_disequality_against_constant(self):
        assert is_satisfiable([x.ne(5)])
        assert not is_satisfiable([x.eq(5), x.ne(5)])
        assert is_satisfiable([x >= 5, x.ne(5)])  # x may exceed 5
        assert not is_satisfiable([x >= 5, x <= 5, x.ne(5)])

    def test_dense_domain_assumption(self):
        # Over the reals there is always a value strictly between 3 and 4.
        assert is_satisfiable([x > 3, x < 4])


class TestIntegerDomains:
    """The ``integer_vars`` tightening (strict bounds become ``≤ w−1``)."""

    def test_hypothesis_falsifying_example_pinned(self):
        # The seed's falsifying example: c < 2 ∧ a > 1 ∧ a < 2 ∧ a < c
        # needs two distinct values inside (1, 2) — fine over the reals,
        # impossible over the integers.
        a, c = Variable("a"), Variable("c")
        conjunct = [c < 2, a > 1, a < 2, a < c]
        assert is_satisfiable(conjunct)
        assert not is_satisfiable(conjunct, integer_vars={"a", "c"})

    def test_strict_window_between_consecutive_integers(self):
        assert is_satisfiable([x > 3, x < 4])
        assert not is_satisfiable([x > 3, x < 4], integer_vars={"x"})
        assert is_satisfiable([x > 3, x < 5], integer_vars={"x"})

    def test_strict_chain_needs_room(self):
        # x < y < z inside (0, 2): reals yes, integers no; (0, 4) fits.
        chain = [x > 0, x < y, y < z, z < 2]
        assert is_satisfiable(chain)
        assert not is_satisfiable(chain, integer_vars={"x", "y", "z"})
        assert is_satisfiable(
            [x > 0, x < y, y < z, z < 4], integer_vars={"x", "y", "z"}
        )

    def test_fractional_bounds_floor_to_integers(self):
        # x ≤ 3.5 → x ≤ 3 for integer x.
        assert is_satisfiable([x <= 3.5, x > 3])
        assert not is_satisfiable([x <= 3.5, x > 3], integer_vars={"x"})

    def test_mixed_domains_only_tighten_integer_pairs(self):
        # y stays real: 1 < y < 2 remains satisfiable even when x is
        # declared integer.
        assert is_satisfiable([y > 1, y < 2, x <= y], integer_vars={"x"})

    def test_accepts_variable_objects(self):
        assert not is_satisfiable([x > 3, x < 4], integer_vars={x})

    def test_disequality_with_tightened_bounds(self):
        # 5 ≤ x < 6 forces integer x = 5; x ≠ 5 contradicts.
        conjunct = [x >= 5, x < 6, x.ne(5)]
        assert is_satisfiable(conjunct)
        assert not is_satisfiable(conjunct, integer_vars={"x"})

    def test_predicate_level_passthrough(self):
        pred = ((x > 3) & (x < 4)) | ((x > 7) & (x < 9))
        assert predicate_satisfiable(pred, integer_vars={"x"})
        assert not predicate_satisfiable(
            (x > 3) & (x < 4), integer_vars={"x"}
        )


class TestType2:
    def test_chain(self):
        assert is_satisfiable([x < y, y < z])

    def test_cycle_strict(self):
        assert not is_satisfiable([x < y, y < z, z < x])

    def test_cycle_non_strict(self):
        assert is_satisfiable([x <= y, y <= z, z <= x])

    def test_equality_between_variables(self):
        assert is_satisfiable([x.eq(y), y.eq(z)])
        assert not is_satisfiable([x.eq(y), x < y])

    def test_variable_vs_constant_interaction(self):
        assert not is_satisfiable([x < y, y < 5, x > 7])
        assert is_satisfiable([x < y, y < 5, x > 2])

    def test_disequality_between_variables_rejected(self):
        with pytest.raises(PredicateClassError):
            is_satisfiable([x.ne(y)])


class TestType3:
    def test_offset_chain(self):
        # x ≤ y + (-3) and y ≤ 10 → x ≤ 7; x > 8 is contradictory.
        assert not is_satisfiable([x <= y.plus(-3.0), y <= 10, x > 8])
        assert is_satisfiable([x <= y.plus(-3.0), y <= 10, x > 6])

    def test_offset_cycle(self):
        # x ≤ y - 1 and y ≤ x - 1 → negative cycle.
        assert not is_satisfiable([x <= y.plus(-1.0), y <= x.plus(-1.0)])

    def test_offset_equality(self):
        assert is_satisfiable([x.eq(y.plus(2.0)), y.eq(3)])
        assert not is_satisfiable([x.eq(y.plus(2.0)), y.eq(3), x.eq(6)])

    def test_offsets_accumulate(self):
        assert not is_satisfiable(
            [x >= y.plus(1.0), y >= z.plus(1.0), z >= x.plus(1.0)]
        )


class TestAttributePaths:
    def test_paths_are_distinct_variables(self):
        a = Variable("c", ("V1", "X"))
        b = Variable("c", ("V2", "X"))
        assert is_satisfiable([a < b, b < a.plus(5.0)])
        assert not is_satisfiable([a < b, b < a])


class TestNonNumericConstants:
    def test_string_equality(self):
        assert is_satisfiable([x.eq("Iron")])
        assert not is_satisfiable([x.eq("Iron"), x.eq("Gold")])

    def test_string_disequality(self):
        assert is_satisfiable([x.eq("Iron"), x.ne("Gold")])
        assert not is_satisfiable([x.eq("Iron"), x.ne("Iron")])

    def test_oid_like_constants(self):
        from repro.gom.oid import Oid

        assert not is_satisfiable([x.eq(Oid(3)), x.ne(Oid(3))])
        assert is_satisfiable([x.eq(Oid(3)), x.ne(Oid(4))])


class TestPredicateLevel:
    def test_disjunction(self):
        pred = (x < 3) | (x > 5)
        assert predicate_satisfiable(pred)

    def test_contradictory_disjunction(self):
        pred = ((x < 3) & (x > 5)) | ((x.eq(1)) & (x.eq(2)))
        assert not predicate_satisfiable(pred)

    def test_negation(self):
        from repro.predicates.ast import Not

        pred = Not((x < 3) | (x >= 3))
        assert not predicate_satisfiable(pred)

    def test_class_membership(self):
        assert in_decidable_class((x < 3) & (x.ne(5)))
        assert not in_decidable_class(x.ne(y))
        # ¬(x = y) introduces ≠ between variables:
        from repro.predicates.ast import Not

        assert not in_decidable_class(Not(x.eq(y)))

    def test_empty_conjunction_satisfiable(self):
        assert is_satisfiable([])


class TestDNF:
    def test_simple(self):
        pred = (x < 3) & ((y > 1) | (z.eq(2)))
        disjuncts = to_dnf(pred)
        assert len(disjuncts) == 2
        assert all(len(conjunct) == 2 for conjunct in disjuncts)

    def test_negation_pushing(self):
        from repro.predicates.ast import Not

        pred = Not((x < 3) & (y > 1))
        disjuncts = to_dnf(pred)
        ops = sorted(comparison.op for [comparison] in disjuncts)
        assert ops == ["<=", ">="]

    def test_true_false_folding(self):
        from repro.predicates.ast import FALSE, TRUE

        assert to_dnf(TRUE) == [[]]
        assert to_dnf(FALSE) == []
        assert to_dnf(TRUE & (x < 1)) == [[Comparison(x, "<", None, constant=1)]]
        assert to_dnf(FALSE & (x < 1)) == []
