"""Cover-test tests (Sec. 6), including the paper's distance example."""

from repro.predicates.ast import Not, Variable
from repro.predicates.cover import covers, restriction_applicable
from repro.gom.oid import Oid

x = Variable("x")
c = Variable("c")


class TestApplicabilityConditions:
    def test_restriction_with_variable_equality_rejected(self):
        # p contains x = y → ¬p has x ≠ y: condition 1 fails.
        y = Variable("y")
        assert not restriction_applicable(x.eq(y), x < 5)

    def test_selection_with_variable_disequality_rejected(self):
        y = Variable("y")
        assert not restriction_applicable(x < 5, x.ne(y))

    def test_plain_comparisons_accepted(self):
        assert restriction_applicable(x < 5, x < 3)


class TestCovers:
    def test_tighter_selection_covered(self):
        assert covers(x < 5, x < 3)

    def test_looser_selection_not_covered(self):
        assert not covers(x < 3, x < 5)

    def test_equal_bounds(self):
        assert covers(x <= 5, x <= 5)
        assert covers(x <= 5, x < 5)
        assert not covers(x < 5, x <= 5)

    def test_equality_selection(self):
        assert covers(x > 0, x.eq(3))
        assert not covers(x > 0, x.eq(-1))

    def test_conjunction_restriction(self):
        p = (x > 0) & (x < 10)
        assert covers(p, (x > 2) & (x < 5))
        assert not covers(p, x > 2)  # upper bound not implied

    def test_disjunctive_restriction(self):
        p = (x < 0) | (x > 10)
        assert covers(p, x > 20)
        assert not covers(p, x > 5)

    def test_unrelated_variable_conjunct_is_harmless(self):
        other = Variable("other")
        assert covers(x < 5, (x < 3) & (other > 7))

    def test_paper_distance_example(self):
        """Sec. 6: p(c1,c2) ≡ c1 ≠ c2 ∧ c1.V1.X ≤ c2.V1.X.

        The backward query instantiates c2 with the constant id99, so the
        restriction becomes c ≠ id99 ∧ c.V1.X ≤ ⟨id99.V1.X⟩ and the query
        predicate repeats exactly those conjuncts.
        """
        id99 = Oid(99)
        id99_v1x = 4.0  # the constant value of id99.V1.X
        cx = Variable("c", ("V1", "X"))
        call = Variable("@call0")  # distance(c, id99) as opaque value

        restriction = c.ne(id99) & (cx <= id99_v1x)
        selection = (call < 100.0) & c.ne(id99) & (cx <= id99_v1x)
        assert covers(restriction, selection)

        # Dropping one of the binding conjuncts breaks coverage.
        weaker = (call < 100.0) & c.ne(id99)
        assert not covers(restriction, weaker)

    def test_negated_restriction(self):
        assert covers(Not(x.eq(5)), x > 6)
        assert not covers(Not(x.eq(5)), x >= 5)
