"""Predicate evaluation over handles and plain values."""

import pytest

from repro.errors import PredicateError
from repro.predicates.ast import FALSE, Not, TRUE, Variable
from repro.predicates.evaluate import evaluate


class TestScalarEvaluation:
    x = Variable("x")

    def test_comparisons(self):
        assert evaluate(self.x < 5, {"x": 3})
        assert not evaluate(self.x < 5, {"x": 7})
        assert evaluate(self.x.eq(3), {"x": 3})
        assert evaluate(self.x.ne(4), {"x": 3})
        assert evaluate(self.x >= 3, {"x": 3})

    def test_offset(self):
        y = Variable("y")
        assert evaluate(self.x <= y.plus(2.0), {"x": 5, "y": 3})
        assert not evaluate(self.x <= y.plus(1.0), {"x": 5, "y": 3})

    def test_boolean_combinators(self):
        pred = (self.x > 0) & ((self.x < 10) | self.x.eq(42))
        assert evaluate(pred, {"x": 5})
        assert evaluate(pred, {"x": 42})
        assert not evaluate(pred, {"x": -1})
        assert evaluate(Not(self.x.eq(0)), {"x": 1})

    def test_constants(self):
        assert evaluate(TRUE, {})
        assert not evaluate(FALSE, {})

    def test_unbound_variable(self):
        with pytest.raises(PredicateError):
            evaluate(self.x < 5, {})


class TestHandleEvaluation:
    def test_attribute_paths(self, geometry_db):
        db, fixture = geometry_db
        pred = Variable("c", ("Mat", "Name")).eq("Iron")
        assert evaluate(pred, {"c": fixture.cuboids[0]})
        assert not evaluate(pred, {"c": fixture.cuboids[2]})

    def test_object_identity_comparison(self, geometry_db):
        db, fixture = geometry_db
        c1, c2 = fixture.cuboids[0], fixture.cuboids[1]
        pred = Variable("a").ne(Variable("b"))
        assert evaluate(pred, {"a": c1, "b": c2})
        assert not evaluate(pred, {"a": c1, "b": c1})

    def test_evaluation_is_traced(self, geometry_db):
        """Restriction predicates are materialized: their reads must be
        visible to a tracer (Sec. 6.1)."""
        db, fixture = geometry_db
        pred = Variable("c", ("Mat", "Name")).eq("Iron")
        with db.trace() as tracer:
            evaluate(pred, {"c": fixture.cuboids[0]})
        assert fixture.iron.oid in tracer.objects
        assert ("Material", "Name") in tracer.attributes
