"""Smoke tests: every shipped example runs to completion.

Examples run in a throwaway working directory so any artifact a script
might create (hypothesis caches, dumped databases, ...) cannot leak
into the repository checkout, and with an absolute ``PYTHONPATH`` so a
relative ``PYTHONPATH=src`` in the caller's environment keeps working
from the changed cwd.
"""

import os
import pathlib
import subprocess
import sys

import pytest

_ROOT = pathlib.Path(__file__).resolve().parent.parent
_EXAMPLES = sorted((_ROOT / "examples").glob("*.py"))


@pytest.mark.parametrize(
    "script", _EXAMPLES, ids=[path.stem for path in _EXAMPLES]
)
def test_example_runs(script, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
        cwd=tmp_path,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should print something"
