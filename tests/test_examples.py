"""Smoke tests: every shipped example runs to completion."""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", _EXAMPLES, ids=[path.stem for path in _EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should print something"
