"""Fuzz test: the parser always terminates with a clean outcome.

Arbitrary text must either parse or raise a library error (LexError /
ParseError) — never an unhandled exception or a hang.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import LexError, ParseError
from repro.gomql.parser import parse_statement

_FRAGMENTS = st.lists(
    st.sampled_from(
        [
            "range", "retrieve", "materialize", "where", "and", "or", "not",
            "in", "c", "Cuboid", "volume", ":", ".", ",", "(", ")", "<", ">",
            "=", "<=", ">=", "!=", "+", "-", "*", "/", "1", "2.5", '"s"',
            "sum", "count",
        ]
    ),
    max_size=25,
)


@given(fragments=_FRAGMENTS)
@settings(max_examples=300, deadline=None)
def test_parser_terminates_cleanly(fragments):
    text = " ".join(fragments)
    try:
        parse_statement(text)
    except (LexError, ParseError):
        pass


@given(text=st.text(max_size=60))
@settings(max_examples=300, deadline=None)
def test_arbitrary_text_never_crashes(text):
    try:
        parse_statement(text)
    except (LexError, ParseError):
        pass
