"""Negative-path coverage: malformed GOMql must fail as ``QueryError``.

Every failure mode the fuzzer's grammar can emit — unknown names, type
mismatches, bad calls, division by zero, aggregate misuse, malformed
``materialize`` — has to surface as :class:`~repro.errors.QueryError`
(usually its :class:`~repro.errors.ExecutionError` leaf), never as a
bare ``TypeError``/``AttributeError``/``KeyError`` or as
:class:`~repro.errors.InternalError`.
"""

import pytest

from repro import ObjectBase
from repro.domains.company import build_company_schema
from repro.domains.geometry import build_geometry_schema, create_cuboid
from repro.errors import ExecutionError, InternalError, QueryError


@pytest.fixture
def geo_db():
    db = ObjectBase()
    build_geometry_schema(db)
    material = db.new("Material", Name="Iron", SpecWeight=7.8)
    create_cuboid(
        db,
        origin=(0.0, 0.0, 0.0),
        dims=(2.0, 3.0, 4.0),
        material=material,
        value=50.0,
        cuboid_id=1,
    )
    yield db
    db.close()


def assert_query_error(db, text):
    """The statement must raise QueryError — and nothing broader."""
    try:
        db.query(text)
    except InternalError as exc:  # pragma: no cover - failure path
        pytest.fail(f"{text!r} raised InternalError: {exc}")
    except QueryError:
        return
    except Exception as exc:  # pragma: no cover - failure path
        pytest.fail(f"{text!r} raised bare {type(exc).__name__}: {exc}")
    pytest.fail(f"{text!r} did not raise")  # pragma: no cover


class TestUnknownNames:
    def test_unknown_range_target(self, geo_db):
        assert_query_error(geo_db, "range x:Nonexistent retrieve x")

    def test_unknown_attribute(self, geo_db):
        assert_query_error(geo_db, "range c:Cuboid retrieve c.Nope")

    def test_unknown_attribute_in_where(self, geo_db):
        assert_query_error(
            geo_db, "range c:Cuboid retrieve c.Value where c.Bogus > 1"
        )

    def test_unknown_attribute_on_chain(self, geo_db):
        assert_query_error(geo_db, "range c:Cuboid retrieve c.Mat.Density")

    def test_attribute_on_scalar(self, geo_db):
        # c.Value is a float; .Name on it is an AttributeError in raw
        # Python and must come back as ExecutionError.
        assert_query_error(geo_db, "range c:Cuboid retrieve c.Value.Name")

    def test_unbound_identifier(self, geo_db):
        assert_query_error(geo_db, "range c:Cuboid retrieve c where c = ghost")

    def test_unknown_operation_call(self, geo_db):
        assert_query_error(geo_db, "range c:Cuboid retrieve c.teleport(1)")


class TestTypeMismatches:
    def test_compare_number_to_string(self, geo_db):
        assert_query_error(
            geo_db, "range c:Cuboid retrieve c where c.Value < 'high'"
        )

    def test_compare_object_to_number(self, geo_db):
        assert_query_error(geo_db, "range c:Cuboid retrieve c where c < 3")

    def test_arithmetic_on_string(self, geo_db):
        assert_query_error(
            geo_db, "range c:Cuboid retrieve c.Mat.Name * c.Value"
        )

    def test_add_string_and_number(self, geo_db):
        assert_query_error(
            geo_db, "range c:Cuboid retrieve c.Mat.Name + 1"
        )

    def test_unary_minus_on_string(self, geo_db):
        assert_query_error(geo_db, "range c:Cuboid retrieve -c.Mat.Name")

    def test_sum_of_strings(self, geo_db):
        assert_query_error(geo_db, "range c:Cuboid retrieve sum(c.Mat.Name)")

    def test_in_on_non_collection(self, geo_db):
        assert_query_error(
            geo_db, "range c:Cuboid, d:Cuboid retrieve c where c in d"
        )


class TestBadExpressions:
    def test_division_by_zero(self, geo_db):
        assert_query_error(
            geo_db, "range c:Cuboid retrieve c.Value / 0"
        )

    def test_division_by_zero_in_where(self, geo_db):
        assert_query_error(
            geo_db, "range c:Cuboid retrieve c where 1 / 0 > 1"
        )

    def test_call_with_wrong_arity(self, geo_db):
        assert_query_error(
            geo_db, "range c:Cuboid retrieve c.volume(1, 2, 3)"
        )

    def test_mixed_aggregate_and_plain(self, geo_db):
        assert_query_error(
            geo_db, "range c:Cuboid retrieve sum(c.Value), c.CuboidID"
        )


class TestMalformedMaterialize:
    def test_materialize_over_parameter(self, geo_db):
        assert_query_error(
            geo_db, "range x:NotAType materialize x.volume"
        )

    def test_materialize_target_not_on_range_var(self, geo_db):
        assert_query_error(
            geo_db, "range c:Cuboid materialize d.volume"
        )

    def test_materialize_argument_not_a_variable(self, geo_db):
        assert_query_error(
            geo_db, "range c:Cuboid, r:Robot materialize c.distance(5)"
        )

    def test_materialize_mixed_argument_lists(self, geo_db):
        assert_query_error(
            geo_db,
            "range c:Cuboid, r:Robot materialize c.distance(r), c.volume",
        )

    def test_restriction_without_range_variable(self, geo_db):
        assert_query_error(
            geo_db, "range c:Cuboid materialize c.volume where 1 < 2"
        )


class TestCompanyNegativePaths:
    @pytest.fixture
    def co_db(self):
        db = ObjectBase()
        build_company_schema(db)
        history = db.new_collection("Jobs", [])
        db.new(
            "Employee",
            Name="E1",
            EmpNo=1,
            Salary=50_000.0,
            JobHistory=history,
        )
        yield db
        db.close()

    def test_compare_bool_attr_to_string(self, co_db):
        programmers = co_db.new_collection("Employees", [])
        project = co_db.new(
            "Project",
            PName="P",
            Status=1.0,
            Size=10,
            Programmers=programmers,
        )
        co_db.new(
            "Job", Proj=project, LinesOfCode=10, OnTime=True,
            WithinBudget=True,
        )
        assert_query_error(
            co_db, "range j:Job retrieve j where j.OnTime < 'yes'"
        )

    def test_unknown_operation(self, co_db):
        assert_query_error(co_db, "range e:Employee retrieve e.fire()")

    def test_execution_error_is_query_error(self, co_db):
        with pytest.raises(QueryError):
            co_db.query("range e:Employee retrieve e.Nope")
        with pytest.raises(ExecutionError):
            co_db.query("range e:Employee retrieve e.Nope")
