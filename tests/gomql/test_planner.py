"""Planner tests: GMR exploitation decisions (Secs. 3.2 and 6)."""

import pytest

from repro.gomql import run_statement


class TestBackwardPlans:
    def test_backward_query_avoids_object_scan(self, geometry_db):
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        with db.trace() as tracer:
            result = db.query(
                "range c: Cuboid retrieve c where c.volume > 250.0"
            )
        assert len(result) == 1
        # The candidate set came from the GMR index: cuboids that do not
        # qualify were never dereferenced.
        assert fixture.cuboids[1].oid not in tracer.objects
        assert fixture.cuboids[2].oid not in tracer.objects

    def test_backward_window_with_parameters(self, geometry_db):
        db, _ = geometry_db
        db.materialize([("Cuboid", "volume")])
        result = run_statement(
            db,
            "range c: Cuboid retrieve c where c.volume > lo and c.volume < hi",
            {"lo": 150.0, "hi": 250.0},
        )
        assert len(result) == 1

    def test_backward_equality(self, geometry_db):
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        result = db.query("range c: Cuboid retrieve c where c.volume = 200.0")
        assert [h.oid for h in result] == [fixture.cuboids[1].oid]

    def test_residual_predicate_still_applied(self, geometry_db):
        db, _ = geometry_db
        db.materialize([("Cuboid", "volume")])
        result = db.query(
            "range c: Cuboid retrieve c "
            'where c.volume > 50.0 and c.Mat.Name = "Gold"'
        )
        assert len(result) == 1

    def test_without_gmr_scan_still_answers(self, geometry_db):
        db, _ = geometry_db
        result = db.query("range c: Cuboid retrieve c where c.volume > 250.0")
        assert len(result) == 1

    def test_incomplete_gmr_not_used_for_backward(self, geometry_db):
        """An incrementally set up GMR cannot answer backward queries."""
        db, fixture = geometry_db
        gmr = db.materialize([("Cuboid", "volume")], complete=False)
        result = db.query("range c: Cuboid retrieve c where c.volume > 250.0")
        assert len(result) == 1  # answered by scan

    def test_binary_function_backward(self, geometry_db):
        from repro.domains.geometry import create_robot

        db, fixture = geometry_db
        robot = create_robot(db, "R1", (1000.0, 0.0, 0.0))
        db.materialize([("Cuboid", "distance")])
        result = run_statement(
            db,
            "range c: Cuboid retrieve c where c.distance(r) < 1000.0",
            {"r": robot},
        )
        assert len(result) == 3

    def test_updates_reflected_in_backward_answers(self, geometry_db):
        from repro.domains.geometry import create_vertex

        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        fixture.cuboids[2].scale(create_vertex(db, 4.0, 1.0, 1.0))  # 100→400
        result = db.query("range c: Cuboid retrieve c where c.volume > 350.0")
        assert [h.oid for h in result] == [fixture.cuboids[2].oid]


class TestMultiVariablePlans:
    def test_first_variable_planned_in_join(self, geometry_db):
        """The outermost range variable of a join still gets a backward
        plan; join conjuncts are evaluated residually."""
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        with db.trace() as tracer:
            rows = db.query(
                "range a: Cuboid, b: Cuboid retrieve a.CuboidID, b.CuboidID "
                "where a.volume > 250.0 and a.Mat = b.Mat"
            )
        assert sorted(rows) == [(1, 1), (1, 2)]
        plan = db.explain(
            "range a: Cuboid, b: Cuboid retrieve a, b "
            "where a.volume > 250.0 and a.Mat = b.Mat"
        )
        assert plan.paths[0].kind == "gmr-backward"
        assert plan.paths[1].kind == "scan"

    def test_join_conjunct_does_not_confuse_bounds(self, geometry_db):
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        rows = db.query(
            "range a: Cuboid, b: Cuboid retrieve a.CuboidID, b.CuboidID "
            "where a.volume > b.volume and a.volume > 250.0"
        )
        assert sorted(rows) == [(1, 2), (1, 3)]


class TestIndexPlans:
    def test_forward_query_uses_attribute_index(self, geometry_db):
        db, fixture = geometry_db
        db.create_attr_index("Cuboid", "CuboidID")
        with db.trace() as tracer:
            result = db.query(
                "range c: Cuboid retrieve c.volume where c.CuboidID = 2"
            )
        assert result == [pytest.approx(200.0)]
        assert fixture.cuboids[0].oid not in tracer.objects

    def test_without_index_falls_back_to_scan(self, geometry_db):
        db, _ = geometry_db
        result = db.query(
            "range c: Cuboid retrieve c.volume where c.CuboidID = 2"
        )
        assert result == [pytest.approx(200.0)]


class TestRestrictedApplicability:
    """Sec. 6: a restricted GMR answers only covered backward queries."""

    @pytest.fixture
    def setting(self, geometry_db):
        db, fixture = geometry_db
        gmr = db.query(
            "range c: Cuboid materialize c.volume "
            'where c.Mat.Name = "Iron"'
        )
        return db, fixture, gmr

    def test_covered_query_answers_from_gmr(self, setting):
        db, fixture, gmr = setting
        with db.trace() as tracer:
            result = db.query(
                "range c: Cuboid retrieve c "
                'where c.volume > 250.0 and c.Mat.Name = "Iron"'
            )
        assert [h.oid for h in result] == [fixture.cuboids[0].oid]
        # The candidates came from the restricted GMR's index: the gold
        # cuboid (outside the restriction) was never dereferenced.
        assert fixture.cuboids[2].oid not in tracer.objects

    def test_uncovered_query_falls_back_to_scan(self, setting):
        db, fixture, gmr = setting
        # No Mat.Name conjunct: the gold cuboid must not be missed.
        result = db.query("range c: Cuboid retrieve c where c.volume > 50.0")
        assert len(result) == 3

    def test_uncovered_query_correct_for_gold(self, setting):
        db, fixture, gmr = setting
        result = db.query(
            'range c: Cuboid retrieve c where c.volume = 100.0'
        )
        assert [h.oid for h in result] == [fixture.cuboids[2].oid]
