"""Tier-1 differential-fuzz coverage.

Two layers:

* **Corpus replay** — every ``corpus/*.json`` script (minimized
  regressions plus hand-picked interaction pins) is replayed against a
  deterministic slice of the configuration matrix on every test run.
  ``geometry-backward-neq-keyerror.json`` is the minimized script that
  crashed the backward planner (``KeyError`` on a ``!=``-only
  comparison against a materialized function) before the planner
  recorded calls for untightenable operators.
* **Fixed-seed smoke** — a small generate-and-check campaign with a
  pinned base seed, so the whole generator/replayer/oracle pipeline
  stays exercised in tier-1 without the cost of the nightly run.
"""

import json
import os

import pytest

from repro.fuzz import (
    all_configs,
    check_script,
    configs_for_script,
    generate_script,
    script_from_json,
)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(
    name for name in os.listdir(CORPUS_DIR) if name.endswith(".json")
)


def corpus_script(name):
    with open(os.path.join(CORPUS_DIR, name), encoding="utf-8") as fh:
        return script_from_json(fh.read())


class TestCorpus:
    def test_corpus_is_nonempty(self):
        assert CORPUS_FILES, "the regression corpus must not be empty"

    @pytest.mark.parametrize("name", CORPUS_FILES)
    def test_corpus_file_is_wellformed(self, name):
        with open(os.path.join(CORPUS_DIR, name), encoding="utf-8") as fh:
            data = json.load(fh)
        assert data["domain"] in ("geometry", "company")
        assert isinstance(data["steps"], list) and data["steps"]

    @pytest.mark.parametrize("name", CORPUS_FILES)
    def test_corpus_replay(self, name):
        script = corpus_script(name)
        # A deterministic 48-config slice spanning every level and
        # strategy.  Shards is the innermost matrix factor and layout
        # the next one out, so stride-32 offsets pick physical-layout
        # complements: offset 0 replays rows/unsharded, offset 3
        # (3 % 2 → shards=4, 3 // 2 % 2 → columnar) replays the
        # columnar store sharded.  The nightly job covers the full 768.
        matrix = all_configs()
        configs = matrix[::32] + matrix[3::32]
        failures = check_script(script, configs)
        assert not failures, "\n".join(str(f) for f in failures)


class TestFixedSeedSmoke:
    """The generator/oracle pipeline, end to end, deterministically."""

    SMOKE = [
        (seed, domain)
        for seed in range(0, 16)
        for domain in ("geometry", "company")
    ]

    @pytest.mark.parametrize("seed,domain", SMOKE)
    def test_smoke_script(self, seed, domain):
        script = generate_script(seed, domain)
        assert script.steps, "generator produced an empty script"
        failures = check_script(script, configs_for_script(seed, 2))
        assert not failures, "\n".join(str(f) for f in failures)

    def test_generation_is_deterministic(self):
        first = generate_script(42, "geometry")
        second = generate_script(42, "geometry")
        assert first.steps == second.steps

    def test_distinct_seeds_differ(self):
        assert (
            generate_script(1, "company").steps
            != generate_script(2, "company").steps
        )
