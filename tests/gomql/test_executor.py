"""GOMql execution tests over the Figure 2 database."""

import pytest

from repro.errors import QueryError
from repro.gomql import run_statement


class TestRetrieve:
    def test_unqualified_scan(self, geometry_db):
        db, fixture = geometry_db
        result = db.query("range c: Cuboid retrieve c")
        assert {handle.oid for handle in result} == {
            cuboid.oid for cuboid in fixture.cuboids
        }

    def test_paper_backward_query(self, geometry_db):
        db, fixture = geometry_db
        result = db.query(
            "range c: Cuboid retrieve c "
            "where c.volume > 20.0 and c.weight > 100.0"
        )
        assert len(result) == 3  # all of Figure 2 qualifies

    def test_selective_predicate(self, geometry_db):
        db, fixture = geometry_db
        result = db.query(
            "range c: Cuboid retrieve c where c.volume > 250.0"
        )
        assert [handle.oid for handle in result] == [fixture.cuboids[0].oid]

    def test_projection_of_function_value(self, geometry_db):
        db, _ = geometry_db
        volumes = db.query("range c: Cuboid retrieve c.volume")
        assert sorted(volumes) == [
            pytest.approx(100.0),
            pytest.approx(200.0),
            pytest.approx(300.0),
        ]

    def test_projection_of_attribute_path(self, geometry_db):
        db, _ = geometry_db
        names = db.query("range c: Cuboid retrieve c.Mat.Name")
        assert sorted(names) == ["Gold", "Iron", "Iron"]

    def test_multiple_projections(self, geometry_db):
        db, _ = geometry_db
        rows = db.query("range c: Cuboid retrieve c.CuboidID, c.volume")
        assert sorted(rows) == [
            (1, pytest.approx(300.0)),
            (2, pytest.approx(200.0)),
            (3, pytest.approx(100.0)),
        ]

    def test_arithmetic_in_projection(self, geometry_db):
        db, _ = geometry_db
        doubled = db.query(
            "range c: Cuboid retrieve c.volume * 2 where c.CuboidID = 1"
        )
        assert doubled == [pytest.approx(600.0)]

    def test_range_over_bound_collection(self, geometry_db):
        """The paper's MyValuableCuboids forward query."""
        db, fixture = geometry_db
        total = run_statement(
            db,
            "range c: MyValuables retrieve sum(c.weight)",
            {"MyValuables": fixture.valuables},
        )
        assert total == pytest.approx(1900.0)

    def test_range_over_python_list(self, geometry_db):
        db, fixture = geometry_db
        result = run_statement(
            db,
            "range c: Chosen retrieve c.volume",
            {"Chosen": fixture.cuboids[:2]},
        )
        assert sorted(result) == [pytest.approx(200.0), pytest.approx(300.0)]

    def test_unknown_range_target(self, geometry_db):
        db, _ = geometry_db
        with pytest.raises(QueryError):
            db.query("range c: Nowhere retrieve c")

    def test_parameters_in_predicates(self, geometry_db):
        db, _ = geometry_db
        result = run_statement(
            db,
            "range c: Cuboid retrieve c where c.volume > lo and c.volume < hi",
            {"lo": 150.0, "hi": 250.0},
        )
        assert len(result) == 1

    def test_object_parameter_comparison(self, geometry_db):
        db, fixture = geometry_db
        result = run_statement(
            db,
            "range c: Cuboid retrieve c where c.Mat = m",
            {"m": fixture.gold},
        )
        assert [handle.oid for handle in result] == [fixture.cuboids[2].oid]

    def test_membership_predicate(self, geometry_db):
        db, fixture = geometry_db
        result = run_statement(
            db,
            "range c: Cuboid retrieve c where c in wp",
            {"wp": fixture.workpieces},
        )
        assert len(result) == 2

    def test_two_variable_join(self, geometry_db):
        db, fixture = geometry_db
        rows = db.query(
            "range a: Cuboid, b: Cuboid retrieve a.CuboidID, b.CuboidID "
            "where a.Mat = b.Mat and a.CuboidID < b.CuboidID"
        )
        assert rows == [(1, 2)]


class TestAggregates:
    def test_sum(self, geometry_db):
        db, _ = geometry_db
        assert db.query("range c: Cuboid retrieve sum(c.volume)") == pytest.approx(
            600.0
        )

    def test_count(self, geometry_db):
        db, _ = geometry_db
        assert db.query("range c: Cuboid retrieve count(c)") == 3

    def test_avg(self, geometry_db):
        db, _ = geometry_db
        assert db.query("range c: Cuboid retrieve avg(c.volume)") == pytest.approx(
            200.0
        )

    def test_min_max(self, geometry_db):
        db, _ = geometry_db
        low, high = db.query(
            "range c: Cuboid retrieve min(c.volume), max(c.volume)"
        )
        assert (low, high) == (pytest.approx(100.0), pytest.approx(300.0))

    def test_aggregate_with_predicate(self, geometry_db):
        db, _ = geometry_db
        total = db.query(
            'range c: Cuboid retrieve sum(c.volume) where c.Mat.Name = "Iron"'
        )
        assert total == pytest.approx(500.0)

    def test_aggregates_over_empty_set(self, geometry_db):
        db, _ = geometry_db
        assert db.query(
            "range c: Cuboid retrieve count(c) where c.volume > 9999.0"
        ) == 0
        assert db.query(
            "range c: Cuboid retrieve sum(c.volume) where c.volume > 9999.0"
        ) == 0

    def test_mixed_projections_rejected(self, geometry_db):
        db, _ = geometry_db
        with pytest.raises(QueryError):
            db.query("range c: Cuboid retrieve c, sum(c.volume)")


class TestMaterializeStatement:
    def test_paper_materialize(self, geometry_db):
        db, _ = geometry_db
        gmr = db.query("range c: Cuboid materialize c.volume, c.weight")
        assert gmr.fids == ["Cuboid.volume", "Cuboid.weight"]
        assert len(gmr) == 3

    def test_restricted_materialize(self, geometry_db):
        db, _ = geometry_db
        gmr = db.query(
            "range c: Cuboid materialize c.volume "
            'where c.Mat.Name = "Iron"'
        )
        assert gmr.is_restricted
        assert len(gmr) == 2

    def test_binary_materialize(self, geometry_db):
        db, _ = geometry_db
        gmr = db.query(
            "range c1: Cuboid, c2: Cuboid materialize c1.distance_to(c2)"
        )
        assert len(gmr) == 9

    def test_materialize_over_binding_rejected(self, geometry_db):
        db, fixture = geometry_db
        with pytest.raises(QueryError):
            run_statement(
                db,
                "range c: Bound materialize c.volume",
                {"Bound": fixture.workpieces},
            )

    def test_queries_use_fresh_gmr(self, geometry_db):
        db, fixture = geometry_db
        db.query("range c: Cuboid materialize c.volume")
        with db.trace() as tracer:
            result = db.query("range c: Cuboid retrieve c where c.volume > 250.0")
        assert len(result) == 1
        vertex_oids = {
            db.objects.get(cuboid.oid).data["V1"] for cuboid in fixture.cuboids
        }
        assert not (tracer.objects & vertex_oids)
