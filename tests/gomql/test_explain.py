"""Plan explanation tests."""

import pytest

from repro.gomql import run_statement
from repro.gomql.explain import explain_statement


class TestExplain:
    def test_backward_plan_reported(self, geometry_db):
        db, _ = geometry_db
        db.materialize([("Cuboid", "volume")])
        plan = db.explain("range c: Cuboid retrieve c where c.volume > 250.0")
        assert plan.statement == "retrieve"
        assert plan.paths[0].kind == "gmr-backward"
        assert "<<volume>>" in plan.paths[0].detail

    def test_bounds_in_detail(self, geometry_db):
        db, _ = geometry_db
        db.materialize([("Cuboid", "volume")])
        plan = db.explain(
            "range c: Cuboid retrieve c "
            "where c.volume >= 100.0 and c.volume < 200.0"
        )
        assert "[100.0, 200.0)" in plan.paths[0].detail

    def test_attr_index_plan(self, geometry_db):
        db, _ = geometry_db
        db.create_attr_index("Cuboid", "CuboidID")
        plan = db.explain(
            "range c: Cuboid retrieve c.volume where c.CuboidID = 2"
        )
        assert plan.paths[0].kind == "attr-index"

    def test_scan_fallback(self, geometry_db):
        db, _ = geometry_db
        plan = db.explain("range c: Cuboid retrieve c where c.Value > 1.0")
        assert plan.paths[0].kind == "scan"

    def test_no_gmr_means_scan(self, geometry_db):
        db, _ = geometry_db
        plan = db.explain("range c: Cuboid retrieve c where c.volume > 1.0")
        assert plan.paths[0].kind == "scan"

    def test_restricted_gmr_gates_plan(self, geometry_db):
        db, _ = geometry_db
        db.query(
            'range c: Cuboid materialize c.volume where c.Mat.Name = "Iron"'
        )
        covered = db.explain(
            "range c: Cuboid retrieve c "
            'where c.volume > 250.0 and c.Mat.Name = "Iron"'
        )
        assert covered.paths[0].kind == "gmr-backward"
        uncovered = db.explain(
            "range c: Cuboid retrieve c where c.volume > 250.0"
        )
        assert uncovered.paths[0].kind == "scan"

    def test_binding_range(self, geometry_db):
        db, fixture = geometry_db
        plan = explain_statement(
            db,
            "range c: Mine retrieve c.volume",
            {"Mine": fixture.workpieces},
        )
        assert plan.paths[0].kind == "binding"

    def test_materialize_explanation(self, geometry_db):
        db, _ = geometry_db
        plan = db.explain("range c: Cuboid materialize c.volume, c.weight")
        assert plan.statement == "materialize"
        assert "c.volume" in plan.paths[0].detail

    def test_string_rendering(self, geometry_db):
        db, _ = geometry_db
        db.materialize([("Cuboid", "volume")])
        text = str(db.explain("range c: Cuboid retrieve c where c.volume > 1.0"))
        assert "statement: retrieve" in text
        assert "gmr-backward" in text

    def test_explain_does_not_execute(self, geometry_db):
        """Explaining must not touch the object graph."""
        db, _ = geometry_db
        db.materialize([("Cuboid", "volume")])
        before = db.gmr_manager.stats.snapshot()
        db.explain("range c: Cuboid retrieve c where c.volume > 250.0")
        delta = db.gmr_manager.stats.delta(before)
        assert delta.forward_hits == 0
        assert delta.rematerializations == 0

    def test_multi_range_reports_scans(self, geometry_db):
        db, _ = geometry_db
        plan = db.explain(
            "range a: Cuboid, b: Cuboid retrieve a where a.Mat = b.Mat"
        )
        assert [path.kind for path in plan.paths] == ["scan", "scan"]
