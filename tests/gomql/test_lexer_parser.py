"""GOMql lexer and parser tests."""

import pytest

from repro.errors import LexError, ParseError
from repro.gomql.ast import (
    MaterializeStmt,
    QAgg,
    QAnd,
    QAttr,
    QBin,
    QCall,
    QCmp,
    QConst,
    QIn,
    QName,
    QNot,
    QOr,
    Query,
    conjuncts,
    variables_of,
)
from repro.gomql.lexer import tokenize
from repro.gomql.parser import parse_statement


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("RANGE retrieve WHERE")
        assert [t.kind for t in tokens[:-1]] == ["keyword"] * 3
        assert tokens[0].text == "range"

    def test_numbers(self):
        tokens = tokenize("42 3.5")
        assert tokens[0].value == 42 and isinstance(tokens[0].value, int)
        assert tokens[1].value == 3.5

    def test_strings(self):
        tokens = tokenize('"Iron" \'Gold\'')
        assert tokens[0].value == "Iron"
        assert tokens[1].value == "Gold"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_symbols(self):
        texts = [t.text for t in tokenize("<= >= != < > = ( ) , . :")[:-1]]
        assert texts == ["<=", ">=", "!=", "<", ">", "=", "(", ")", ",", ".", ":"]

    def test_booleans(self):
        tokens = tokenize("true false")
        assert tokens[0].value is True
        assert tokens[1].value is False

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a § b")

    def test_member_access_vs_float(self):
        # "c.volume" must lex as ident, dot, ident — not a float.
        kinds = [t.kind for t in tokenize("c.volume")[:-1]]
        assert kinds == ["ident", "symbol", "ident"]


class TestParser:
    def test_paper_backward_query(self):
        stmt = parse_statement(
            "range c: Cuboid retrieve c "
            "where c.volume > 20.0 and c.weight > 100.0"
        )
        assert isinstance(stmt, Query)
        assert stmt.ranges[0].var == "c"
        assert stmt.ranges[0].type_name == "Cuboid"
        assert stmt.projections == (QName("c"),)
        parts = conjuncts(stmt.where)
        assert len(parts) == 2
        assert all(isinstance(part, QCmp) for part in parts)

    def test_paper_forward_aggregate(self):
        stmt = parse_statement(
            "range c: MyValuableCuboids retrieve sum(c.weight)"
        )
        assert isinstance(stmt.projections[0], QAgg)
        assert stmt.projections[0].func == "sum"
        assert stmt.where is None

    def test_materialize_statement(self):
        stmt = parse_statement("range c: Cuboid materialize c.volume, c.weight")
        assert isinstance(stmt, MaterializeStmt)
        assert [target.name for target in stmt.targets] == ["volume", "weight"]
        assert all(isinstance(target, QCall) for target in stmt.targets)

    def test_restricted_materialize(self):
        stmt = parse_statement(
            "range c: Cuboid materialize c.volume, c.weight "
            'where c.Mat.Name = "Iron"'
        )
        assert isinstance(stmt.where, QCmp)
        assert isinstance(stmt.where.left, QAttr)

    def test_materialize_with_argument(self):
        stmt = parse_statement(
            "range c1: Cuboid, c2: Cuboid materialize c1.distance_to(c2)"
        )
        target = stmt.targets[0]
        assert target.name == "distance_to"
        assert target.args == (QName("c2"),)

    def test_multiple_ranges(self):
        stmt = parse_statement(
            "range a: T1, b: T2 retrieve a, b where a.X = b.X"
        )
        assert len(stmt.ranges) == 2
        assert len(stmt.projections) == 2

    def test_boolean_structure(self):
        stmt = parse_statement(
            "range c: T retrieve c where not (c.A = 1 or c.B = 2) and c.C = 3"
        )
        assert isinstance(stmt.where, QAnd)
        negated, last = stmt.where.parts
        assert isinstance(negated, QNot)
        assert isinstance(negated.part, QOr)
        assert isinstance(last, QCmp)

    def test_membership_predicate(self):
        stmt = parse_statement(
            "range l: MatrixLine retrieve l where l in comp.lines"
        )
        assert isinstance(stmt.where, QIn)

    def test_arithmetic_precedence(self):
        stmt = parse_statement("range c: T retrieve c.A + c.B * 2")
        projection = stmt.projections[0]
        assert isinstance(projection, QBin) and projection.op == "+"
        assert isinstance(projection.right, QBin) and projection.right.op == "*"

    def test_parenthesized_arithmetic(self):
        stmt = parse_statement("range c: T retrieve (c.A + c.B) * 2")
        projection = stmt.projections[0]
        assert projection.op == "*"
        assert isinstance(projection.left, QBin) and projection.left.op == "+"

    def test_call_with_arguments(self):
        stmt = parse_statement(
            "range c: Cuboid retrieve c where c.distance(r) < 100.0"
        )
        call = stmt.where.left
        assert isinstance(call, QCall)
        assert call.args == (QName("r"),)

    def test_unary_minus(self):
        stmt = parse_statement("range c: T retrieve c where c.A > -5")
        assert stmt.where.right is not None

    def test_variables_of(self):
        stmt = parse_statement(
            "range c: T retrieve c where c.volume > lo and c.volume < hi"
        )
        assert variables_of(stmt.where) == {"c", "lo", "hi"}

    def test_missing_retrieve(self):
        with pytest.raises(ParseError):
            parse_statement("range c: Cuboid")

    def test_bad_materialize_target(self):
        with pytest.raises(ParseError):
            parse_statement("range c: Cuboid materialize 42")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_statement("range c: T retrieve c extra")

    def test_missing_comparison(self):
        with pytest.raises(ParseError):
            parse_statement("range c: T retrieve c where c.A")
