"""Access Support Relation tests (the dual indexing technique)."""

import pytest

from repro import ObjectBase
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_cuboid,
    create_material,
)
from repro.errors import SchemaError


@pytest.fixture
def setting():
    db = ObjectBase()
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    asr = db.asr_manager.materialize_path("Cuboid", "Mat", "Name")
    return db, fixture, asr


class TestPathSpec:
    def test_types_along_path(self, geometry_db):
        from repro.asr.relation import PathSpec

        db, _ = geometry_db
        spec = PathSpec(db, "Cuboid", ("Mat", "Name"))
        assert spec.step_types == ["Cuboid", "Material", "string"]
        assert spec.terminal_type == "string"
        assert spec.watched == [("Cuboid", "Mat"), ("Material", "Name")]
        assert str(spec) == "Cuboid.Mat.Name"

    def test_empty_path_rejected(self, geometry_db):
        from repro.asr.relation import PathSpec

        db, _ = geometry_db
        with pytest.raises(SchemaError):
            PathSpec(db, "Cuboid", ())

    def test_attribute_after_atomic_rejected(self, geometry_db):
        from repro.asr.relation import PathSpec

        db, _ = geometry_db
        with pytest.raises(SchemaError):
            PathSpec(db, "Cuboid", ("Value", "X"))

    def test_unknown_attribute_rejected(self, geometry_db):
        from repro.asr.relation import PathSpec

        db, _ = geometry_db
        with pytest.raises(Exception):
            PathSpec(db, "Cuboid", ("Ghost",))


class TestPopulation:
    def test_full_extension(self, setting):
        db, fixture, asr = setting
        assert len(asr) == 3
        assert asr.forward(fixture.cuboids[0]) == "Iron"
        assert asr.forward(fixture.cuboids[2]) == "Gold"

    def test_backward_exact(self, setting):
        db, fixture, asr = setting
        iron_sources = set(asr.backward_exact("Iron"))
        assert iron_sources == {fixture.cuboids[0].oid, fixture.cuboids[1].oid}

    def test_backward_range(self, setting):
        db, fixture, asr = setting
        assert set(asr.backward("Gold", "Gold")) == {fixture.cuboids[2].oid}
        assert len(asr.backward()) == 3

    def test_broken_chain_absent(self, geometry_db):
        db, fixture = geometry_db
        orphan = db.new("Cuboid", CuboidID=99)  # Mat is None
        asr = db.asr_manager.materialize_path("Cuboid", "Mat", "Name")
        assert len(asr) == 3
        assert asr.forward(orphan) is None

    def test_duplicate_path_rejected(self, setting):
        db, _, _ = setting
        with pytest.raises(SchemaError):
            db.asr_manager.materialize_path("Cuboid", "Mat", "Name")

    def test_consistency_check(self, setting):
        db, _, asr = setting
        assert asr.check_consistency() == []


class TestMaintenance:
    def test_terminal_attribute_update(self, setting):
        """Renaming a material rewrites every chain through it."""
        db, fixture, asr = setting
        fixture.iron.set_Name("Steel")
        assert asr.forward(fixture.cuboids[0]) == "Steel"
        assert asr.backward_exact("Iron") == []
        assert len(asr.backward_exact("Steel")) == 2
        assert asr.check_consistency() == []

    def test_reference_step_update(self, setting):
        """Re-pointing Mat moves the cuboid between terminal values."""
        db, fixture, asr = setting
        fixture.cuboids[0].set_Mat(fixture.gold)
        assert asr.forward(fixture.cuboids[0]) == "Gold"
        assert set(asr.backward_exact("Gold")) == {
            fixture.cuboids[0].oid,
            fixture.cuboids[2].oid,
        }
        assert asr.check_consistency() == []

    def test_reference_set_to_none_breaks_chain(self, setting):
        db, fixture, asr = setting
        fixture.cuboids[0].set_Mat(None)
        assert asr.forward(fixture.cuboids[0]) is None
        assert len(asr) == 2
        assert asr.check_consistency() == []

    def test_new_source_object(self, setting):
        db, fixture, asr = setting
        copper = create_material(db, "Copper", 8.96)
        new = create_cuboid(db, dims=(1, 1, 1), material=copper)
        assert asr.forward(new) == "Copper"
        assert asr.check_consistency() == []

    def test_delete_source(self, setting):
        db, fixture, asr = setting
        victim = fixture.cuboids[0]
        db.delete(victim)
        assert len(asr) == 2
        assert asr.check_consistency() == []

    def test_delete_intermediate_object(self, setting):
        """Deleting a material breaks every chain through it."""
        db, fixture, asr = setting
        db.delete(fixture.iron)
        assert len(asr) == 1  # only the gold chain survives
        assert asr.check_consistency() == []

    def test_irrelevant_updates_ignored(self, setting):
        db, fixture, asr = setting
        fixture.cuboids[0].set_Value(9.0)
        fixture.iron.set_SpecWeight(7.9)
        assert asr.forward(fixture.cuboids[0]) == "Iron"
        assert asr.check_consistency() == []

    def test_unset_reference_then_set(self, setting):
        db, fixture, asr = setting
        cuboid = fixture.cuboids[0]
        cuboid.set_Mat(None)
        cuboid.set_Mat(fixture.gold)
        assert asr.forward(cuboid) == "Gold"
        assert asr.check_consistency() == []


class TestLongerPaths:
    def test_vertex_coordinate_path(self, geometry_db):
        db, fixture = geometry_db
        asr = db.asr_manager.materialize_path("Cuboid", "V1", "X")
        assert len(asr) == 3
        v1 = db.objects.get(fixture.cuboids[0].oid).data["V1"]
        db.handle(v1).set_X(42.0)
        assert asr.forward(fixture.cuboids[0]) == 42.0
        assert set(asr.backward(40.0, 45.0)) == {fixture.cuboids[0].oid}
        assert asr.check_consistency() == []

    def test_object_valued_terminal(self, geometry_db):
        db, fixture = geometry_db
        asr = db.asr_manager.materialize_path("Cuboid", "Mat")
        assert asr.forward(fixture.cuboids[0]) == fixture.iron.oid
        assert set(asr.backward_exact(fixture.iron.oid)) == {
            fixture.cuboids[0].oid,
            fixture.cuboids[1].oid,
        }

    def test_multiple_asrs_maintained_together(self, geometry_db):
        db, fixture = geometry_db
        names = db.asr_manager.materialize_path("Cuboid", "Mat", "Name")
        weights = db.asr_manager.materialize_path("Cuboid", "Mat", "SpecWeight")
        fixture.cuboids[0].set_Mat(fixture.gold)
        assert names.forward(fixture.cuboids[0]) == "Gold"
        assert weights.forward(fixture.cuboids[0]) == 19.0
        assert db.asr_manager.check_consistency() == []


class TestAsrVersusGmr:
    def test_asr_and_restricted_gmr_agree(self, geometry_db):
        """The dual techniques answer the same question consistently."""
        db, fixture = geometry_db
        asr = db.asr_manager.materialize_path("Cuboid", "Mat", "Name")
        gmr = db.query(
            'range c: Cuboid materialize c.volume where c.Mat.Name = "Iron"'
        )
        assert set(asr.backward_exact("Iron")) == {
            args[0] for args in gmr.args()
        }
        fixture.cuboids[2].set_Mat(fixture.iron)
        assert set(asr.backward_exact("Iron")) == {
            args[0] for args in gmr.args()
        }
