"""Property test: ASRs stay consistent under random update sequences."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import ObjectBase
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_cuboid,
    create_material,
)

_OPS = st.lists(
    st.tuples(
        st.sampled_from(
            [
                "set_mat",
                "unset_mat",
                "rename_material",
                "move_vertex",
                "create_cuboid",
                "create_material",
                "delete_cuboid",
                "delete_material",
            ]
        ),
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=-10.0, max_value=10.0),
    ),
    max_size=25,
)


@given(ops=_OPS)
@settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_random_updates_keep_asrs_consistent(ops):
    db = ObjectBase()
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    manager = db.asr_manager
    name_asr = manager.materialize_path("Cuboid", "Mat", "Name")
    coord_asr = manager.materialize_path("Cuboid", "V1", "X")

    cuboids = list(fixture.cuboids)
    materials = [fixture.iron, fixture.gold]

    for code, selector, value in ops:
        cuboid = cuboids[selector % len(cuboids)] if cuboids else None
        material = materials[selector % len(materials)] if materials else None
        if code == "set_mat" and cuboid is not None and material is not None:
            cuboid.set_Mat(material)
        elif code == "unset_mat" and cuboid is not None:
            cuboid.set_Mat(None)
        elif code == "rename_material" and material is not None:
            material.set_Name(f"M{selector}")
        elif code == "move_vertex" and cuboid is not None:
            vertex = db.objects.get(cuboid.oid).data["V1"]
            db.handle(vertex).set_X(value)
        elif code == "create_cuboid" and material is not None:
            cuboids.append(
                create_cuboid(db, dims=(1.0, 1.0, 1.0), material=material)
            )
        elif code == "create_material":
            materials.append(create_material(db, f"New{selector}", 1.0))
        elif code == "delete_cuboid" and len(cuboids) > 1 and cuboid is not None:
            fixture.workpieces.remove(cuboid)
            fixture.valuables.remove(cuboid)
            cuboids.remove(cuboid)
            db.delete(cuboid)
        elif code == "delete_material" and len(materials) > 1 and material is not None:
            materials.remove(material)
            db.delete(material)

    assert manager.check_consistency() == []

    # Backward answers agree with a direct scan.  Deleted materials may
    # leave dangling references (GOM keeps references uni-directional and
    # unchecked); such chains are broken and must be absent from the ASR.
    def live_material_name(cuboid):
        mat_oid = db.objects.get(cuboid.oid).data.get("Mat")
        if mat_oid is None or not db.objects.exists(mat_oid):
            return None
        return db.objects.get(mat_oid).data.get("Name")

    live_names = {m.Name for m in materials if db.objects.exists(m.oid)}
    for name in live_names:
        expected = {
            cuboid.oid
            for cuboid in cuboids
            if live_material_name(cuboid) == name
        }
        assert set(name_asr.backward_exact(name)) == expected
