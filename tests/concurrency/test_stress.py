"""Racing stress harness: N writers vs M readers over a draining pool.

The oracle is threefold (ISSUE acceptance criteria):

* during the race no reader may observe an exception or a torn value;
* after joining + ``quiesce()`` the Def. 3.2 consistency check and the
  GMR/RRR lockstep verification must be clean;
* the final extensions (arguments, results, validity bits) and RRR
  triples must be *identical* to a single-threaded ``workers=0`` run of
  the same per-object update scripts — background draining must not be
  observable in the converged state.

Writers own disjoint object partitions, so the final object state is
interleaving-independent and the sequential reference run is
well-defined.
"""

from __future__ import annotations

import threading

import pytest

from repro import ObjectBase
from repro.core.strategies import Strategy
from repro.domains.company import build_company_schema, populate_company
from repro.domains.geometry import build_geometry_schema, create_cuboid
from repro.observe.config import MaterializationConfig
from repro.util.rng import DeterministicRng

JOIN = 30.0


def _join(threads):
    for thread in threads:
        thread.join(JOIN)
    alive = [t.name for t in threads if t.is_alive()]
    if alive:
        pytest.fail(f"threads did not finish (deadlock?): {alive}")


def _extensions(db):
    """Sorted (args, results, valid) per GMR plus sorted RRR triples."""
    manager = db.gmr_manager
    gmrs = {
        gmr.name: sorted(
            (
                (row.args, tuple(row.results), tuple(row.valid))
                for row in gmr.store.rows()
            ),
            key=repr,
        )
        for gmr in manager.gmrs()
    }
    rrr = sorted(manager.rrr.triples(), key=repr)
    return gmrs, rrr


def _settle_and_check(db):
    assert db.quiesce(timeout=JOIN) is True
    manager = db.gmr_manager
    for gmr in manager.gmrs():
        assert gmr.check_consistency(db) == []
    assert manager.verify_lockstep() == []


# ---------------------------------------------------------------------------
# Geometry workload (Fig. 7 cuboid domain)
# ---------------------------------------------------------------------------

N_CUBOIDS = 12
N_WRITERS = 3
N_READERS = 3
ROUNDS = 4


def _build_geometry(workers: int):
    config = MaterializationConfig(strategy=Strategy.DEFERRED, workers=workers)
    db = ObjectBase(config=config)
    build_geometry_schema(db)
    iron = db.new("Material", Name="Iron", SpecWeight=7.86)
    cuboids = [
        create_cuboid(
            db,
            origin=(float(i), 0.0, 0.0),
            dims=(1.0 + i, 2.0, 3.0),
            material=iron,
            cuboid_id=i,
        )
        for i in range(N_CUBOIDS)
    ]
    gmr = db.materialize(
        [("Cuboid", "volume"), ("Cuboid", "weight")],
        strategy=Strategy.DEFERRED,
    )
    # Parameter vertices are pre-created so OID allocation is identical
    # in the threaded and the sequential reference run.
    params = {
        "grow": db.new("Vertex", X=2.0, Y=1.0, Z=1.0),
        "shrink": db.new("Vertex", X=0.5, Y=1.0, Z=1.0),
        "fwd": db.new("Vertex", X=1.0, Y=2.0, Z=3.0),
        "back": db.new("Vertex", X=-1.0, Y=-2.0, Z=-3.0),
    }
    return db, cuboids, gmr, params


def _geometry_script(cuboid, params):
    """Deterministic per-cuboid update sequence."""
    for _ in range(ROUNDS):
        cuboid.scale(params["grow"])
        cuboid.translate(params["fwd"])
        cuboid.scale(params["shrink"])
        cuboid.translate(params["back"])


@pytest.mark.timeout(300)
def test_geometry_stress_matches_sequential():
    # -- sequential reference ------------------------------------------------
    seq_db, seq_cuboids, _, seq_params = _build_geometry(workers=0)
    for cuboid in seq_cuboids:
        _geometry_script(cuboid, seq_params)
    seq_db.gmr_manager.scheduler.revalidate()
    _settle_and_check(seq_db)
    want = _extensions(seq_db)

    # -- racing run ----------------------------------------------------------
    db, cuboids, _, params = _build_geometry(workers=2)
    try:
        errors: list[BaseException] = []
        writers_done = threading.Event()

        def writer(partition):
            try:
                for cuboid in partition:
                    _geometry_script(cuboid, params)
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        def reader(seed):
            rng = DeterministicRng(seed)
            try:
                while not writers_done.is_set():
                    cuboid = rng.choice(cuboids)
                    volume = cuboid.volume()
                    assert isinstance(volume, float)
                    if rng.random() < 0.25:
                        rows = db.gmr_manager.backward_query(
                            "Cuboid.volume", 0.0, 1e12
                        )
                        assert len(rows) == N_CUBOIDS
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        writer_threads = [
            threading.Thread(
                target=writer,
                args=(cuboids[i::N_WRITERS],),
                name=f"writer-{i}",
            )
            for i in range(N_WRITERS)
        ]
        reader_threads = [
            threading.Thread(target=reader, args=(100 + i,), name=f"reader-{i}")
            for i in range(N_READERS)
        ]
        for thread in writer_threads + reader_threads:
            thread.start()
        _join(writer_threads)
        writers_done.set()
        _join(reader_threads)

        assert errors == []
        _settle_and_check(db)
        assert _extensions(db) == want
    finally:
        db.close()


# ---------------------------------------------------------------------------
# Company workload (Fig. 7 analogue: Job.assessment / Employee.ranking)
# ---------------------------------------------------------------------------


def _build_company(workers: int):
    config = MaterializationConfig(strategy=Strategy.DEFERRED, workers=workers)
    db = ObjectBase(config=config)
    build_company_schema(db)
    fixture = populate_company(
        db,
        DeterministicRng(5),
        departments=2,
        employees_per_department=3,
        projects=8,
        jobs_per_employee=2,
    )
    db.materialize([("Job", "assessment")], strategy=Strategy.DEFERRED)
    db.materialize([("Employee", "ranking")], strategy=Strategy.DEFERRED)
    return db, fixture


def _company_script(jobs, base):
    """Deterministic per-job attribute churn."""
    for round_no in range(ROUNDS):
        for offset, job in enumerate(jobs):
            job.set_LinesOfCode(base + round_no * 100 + offset)
            job.set_OnTime((round_no + offset) % 2 == 0)


@pytest.mark.timeout(300)
def test_company_stress_matches_sequential():
    seq_db, seq_fixture = _build_company(workers=0)
    seq_parts = [seq_fixture.jobs[i::N_WRITERS] for i in range(N_WRITERS)]
    for index, part in enumerate(seq_parts):
        _company_script(part, 1000 * (index + 1))
    seq_db.gmr_manager.scheduler.revalidate()
    _settle_and_check(seq_db)
    want = _extensions(seq_db)

    db, fixture = _build_company(workers=2)
    try:
        errors: list[BaseException] = []
        writers_done = threading.Event()
        parts = [fixture.jobs[i::N_WRITERS] for i in range(N_WRITERS)]

        def writer(index):
            try:
                _company_script(parts[index], 1000 * (index + 1))
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        def reader(seed):
            rng = DeterministicRng(seed)
            try:
                while not writers_done.is_set():
                    employee = rng.choice(fixture.employees)
                    ranking = employee.ranking()
                    assert isinstance(ranking, float)
                    if rng.random() < 0.25:
                        db.gmr_manager.backward_query(
                            "Employee.ranking", 0.0, 1e9
                        )
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        writer_threads = [
            threading.Thread(target=writer, args=(i,), name=f"writer-{i}")
            for i in range(N_WRITERS)
        ]
        reader_threads = [
            threading.Thread(target=reader, args=(200 + i,), name=f"reader-{i}")
            for i in range(N_READERS)
        ]
        for thread in writer_threads + reader_threads:
            thread.start()
        _join(writer_threads)
        writers_done.set()
        _join(reader_threads)

        assert errors == []
        _settle_and_check(db)
        assert _extensions(db) == want
    finally:
        db.close()
