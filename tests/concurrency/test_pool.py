"""Lifecycle and drain tests of the revalidation worker pool."""

from __future__ import annotations

import threading

import pytest

from repro import ObjectBase
from repro.concurrency.pool import RevalidationWorkerPool
from repro.core.strategies import Strategy
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
)
from repro.observe.config import MaterializationConfig, ObserveConfig


def make_db(workers: int, **observe_kwargs) -> ObjectBase:
    config = MaterializationConfig(
        strategy=Strategy.DEFERRED,
        workers=workers,
        observe=ObserveConfig(**observe_kwargs),
    )
    database = ObjectBase(config=config)
    build_geometry_schema(database)
    return database


class TestConfig:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            MaterializationConfig(workers=-1)

    def test_workers_zero_creates_no_pool(self):
        database = ObjectBase(config=MaterializationConfig(workers=0))
        assert database.worker_pool is None
        # quiesce is still available and synchronous
        assert database.quiesce() is True

    def test_pool_rejects_zero_workers(self):
        database = make_db(0)
        with pytest.raises(ValueError):
            RevalidationWorkerPool(database.gmr_manager, 0)


class TestPool:
    @pytest.mark.timeout(60)
    def test_pool_drains_deferred_invalidations(self):
        database = make_db(2)
        try:
            fixture = build_figure2_database(database)
            gmr = database.materialize(
                [("Cuboid", "volume"), ("Cuboid", "weight")]
            )
            # Invalidate every cuboid; the pool should drain without any
            # synchronous revalidate() call from this thread.
            for cuboid in fixture.cuboids:
                cuboid.scale(database.new("Vertex", X=2.0, Y=1.0, Z=1.0))
            assert database.quiesce(timeout=30.0) is True
            scheduler = database.gmr_manager.scheduler
            assert scheduler.ready_pending() == 0
            for row in gmr.store.rows():
                assert all(row.valid), f"row {row.args} left invalid"
            assert gmr.check_consistency(database) == []
        finally:
            database.close()

    @pytest.mark.timeout(60)
    def test_quiesce_then_stop_idempotent(self):
        database = make_db(2)
        try:
            assert database.quiesce() is True
            assert database.worker_pool.idle()
        finally:
            database.close()
        database.close()  # second close is a no-op

    @pytest.mark.timeout(60)
    def test_pool_gauges(self):
        database = make_db(2, metrics=True)
        try:
            metrics = database.observe.metrics
            assert metrics.gauge("pool.workers").value == 2
            fixture = build_figure2_database(database)
            database.materialize([("Cuboid", "volume")])
            for cuboid in fixture.cuboids:
                cuboid.translate(database.new("Vertex", X=1.0, Y=0.0, Z=0.0))
            assert database.quiesce(timeout=30.0)
            assert metrics.counter("pool.drained").value >= 1
            assert metrics.gauge("pool.active").value == 0
        finally:
            database.close()
        assert database.observe.metrics.gauge("pool.workers").value == 0

    @pytest.mark.timeout(60)
    def test_context_manager(self):
        database = make_db(0)
        pool = RevalidationWorkerPool(database.gmr_manager, 1)
        with pool:
            assert pool.idle()
        # stopped: no threads left running
        assert not pool._threads

    @pytest.mark.timeout(60)
    def test_thread_ids_on_spans(self):
        database = make_db(1, trace=True, ring_buffer=4096, thread_ids=True)
        try:
            fixture = build_figure2_database(database)
            database.materialize([("Cuboid", "volume")])
            fixture.cuboids[0].scale(
                database.new("Vertex", X=2.0, Y=1.0, Z=1.0)
            )
            assert database.quiesce(timeout=30.0)
            events = list(database.observe.ring.events())
            threads = {
                event.fields.get("thread")
                for event in events
                if "thread" in event.fields
            }
            assert threads, "thread_ids=True must stamp thread ids"
            # The pool thread drained at least one event, so spans from
            # more than one thread id should exist.
            assert len(threads) >= 1
        finally:
            database.close()
