"""Regression tests for maintenance entry points racing the pool.

The review-found bugs these pin down:

* ``vacuum()`` / ``force_invalidate_all()`` / ``refresh_snapshot()``
  used to mutate store state (index removal, page frees, validity
  bits) without the update lock, silently corrupting shared index
  structures when a worker-pool drain ran concurrently;
* ``quiesce()`` could never converge when the calling thread already
  held the update lock (workers block on it) — it now detects that
  and drains synchronously;
* ``stop()`` never checked ``is_alive()`` after the timed join, so a
  worker stuck behind a long-held update lock could outlive
  ``db.close()`` and append to a closed WAL.
"""

from __future__ import annotations

import threading

import pytest

from repro import ObjectBase
from repro.core.strategies import Strategy
from repro.domains.geometry import build_geometry_schema, create_cuboid
from repro.observe.config import MaterializationConfig

JOIN = 30.0


def _build(workers: int, n_cuboids: int = 8):
    config = MaterializationConfig(strategy=Strategy.DEFERRED, workers=workers)
    db = ObjectBase(config=config)
    build_geometry_schema(db)
    iron = db.new("Material", Name="Iron", SpecWeight=7.86)
    cuboids = [
        create_cuboid(
            db,
            origin=(float(i), 0.0, 0.0),
            dims=(1.0 + i, 2.0, 3.0),
            material=iron,
            cuboid_id=i,
        )
        for i in range(n_cuboids)
    ]
    gmr = db.materialize(
        [("Cuboid", "volume"), ("Cuboid", "weight")],
        strategy=Strategy.DEFERRED,
    )
    return db, cuboids, gmr


def _join(threads):
    for thread in threads:
        thread.join(JOIN)
    alive = [t.name for t in threads if t.is_alive()]
    if alive:
        pytest.fail(f"threads did not finish (deadlock?): {alive}")


def _settle_and_check(db):
    assert db.quiesce(timeout=JOIN) is True
    manager = db.gmr_manager
    for gmr in manager.gmrs():
        assert gmr.check_consistency(db) == []
    assert manager.verify_lockstep() == []


class TestMaintenanceRacesPool:
    @pytest.mark.timeout(120)
    def test_vacuum_races_pool_drain(self):
        db, cuboids, gmr = _build(workers=2, n_cuboids=10)
        try:
            grow = db.new("Vertex", X=2.0, Y=1.0, Z=1.0)
            shrink = db.new("Vertex", X=0.5, Y=1.0, Z=1.0)
            errors: list[BaseException] = []

            def writer(partition):
                try:
                    for _ in range(6):
                        for cuboid in partition:
                            cuboid.scale(grow)
                            cuboid.scale(shrink)
                except BaseException as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            # The last few cuboids are deleted mid-race so vacuum has
            # blind rows to find; writers only touch the survivors.
            survivors, doomed = cuboids[:6], cuboids[6:]
            threads = [
                threading.Thread(target=writer, args=(survivors[i::2],))
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for cuboid in doomed:
                db.delete(cuboid)
                db.gmr_manager.vacuum()
            for _ in range(10):
                db.gmr_manager.vacuum(gmr)
            _join(threads)
            assert errors == []
            _settle_and_check(db)
            assert db.gmr_manager.vacuum() == 0
            live = {row.args for row in gmr.store.rows()}
            assert all((c.oid,) not in live for c in doomed)
        finally:
            db.close()

    @pytest.mark.timeout(120)
    def test_force_invalidate_all_races_pool_drain(self):
        db, cuboids, gmr = _build(workers=2)
        try:
            grow = db.new("Vertex", X=2.0, Y=1.0, Z=1.0)
            shrink = db.new("Vertex", X=0.5, Y=1.0, Z=1.0)
            errors: list[BaseException] = []

            def writer():
                try:
                    for _ in range(6):
                        for cuboid in cuboids:
                            cuboid.scale(grow)
                            cuboid.scale(shrink)
                except BaseException as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            thread = threading.Thread(target=writer)
            thread.start()
            for _ in range(8):
                db.gmr_manager.force_invalidate_all(gmr)
            _join([thread])
            assert errors == []
            _settle_and_check(db)
        finally:
            db.close()

    @pytest.mark.timeout(120)
    def test_refresh_snapshot_races_pool_drain(self):
        db, cuboids, deferred = _build(workers=2)
        try:
            snapshot = db.materialize(
                [("Cuboid", "length")], strategy=Strategy.SNAPSHOT
            )
            grow = db.new("Vertex", X=2.0, Y=1.0, Z=1.0)
            shrink = db.new("Vertex", X=0.5, Y=1.0, Z=1.0)
            errors: list[BaseException] = []

            def writer():
                try:
                    for _ in range(6):
                        for cuboid in cuboids:
                            cuboid.scale(grow)
                            cuboid.scale(shrink)
                except BaseException as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            thread = threading.Thread(target=writer)
            thread.start()
            for _ in range(8):
                db.gmr_manager.refresh_snapshot(snapshot)
            _join([thread])
            assert errors == []
            # A snapshot is stale by design once the writers continue;
            # one final refresh makes the Def. 3.2 oracle applicable.
            db.gmr_manager.refresh_snapshot(snapshot)
            _settle_and_check(db)
            assert len(snapshot) == len(cuboids)
        finally:
            db.close()


class TestQuiesceUnderUpdateLock:
    @pytest.mark.timeout(60)
    def test_quiesce_while_holding_update_lock_drains_synchronously(self):
        db, cuboids, gmr = _build(workers=1)
        try:
            grow = db.new("Vertex", X=2.0, Y=1.0, Z=1.0)
            db._update_lock.acquire()
            try:
                # Enqueue work while the workers are locked out: without
                # the self-held-lock detection this would spin for the
                # full timeout and return False.
                for cuboid in cuboids:
                    cuboid.scale(grow)
                assert db.quiesce(timeout=5.0) is True
                assert db.gmr_manager.scheduler.ready_pending() == 0
            finally:
                db._update_lock.release()
            _settle_and_check(db)
        finally:
            db.close()


class TestStopStragglers:
    @pytest.mark.timeout(60)
    def test_stop_reports_a_worker_stuck_on_the_update_lock(self):
        db, cuboids, gmr = _build(workers=1)
        pool = db.worker_pool
        grow = db.new("Vertex", X=2.0, Y=1.0, Z=1.0)
        db._update_lock.acquire()
        released = False
        try:
            cuboids[0].scale(grow)
            pool.notify()
            # Wait for the worker to claim the drain and block on the
            # update lock we hold.
            deadline = 100
            while pool._active == 0 and deadline:
                threading.Event().wait(0.01)
                deadline -= 1
            assert pool._active >= 1, "worker never reached the drain"
            with pytest.warns(RuntimeWarning, match="did not exit"):
                assert pool.stop(timeout=0.2) is False
            assert pool._threads, "straggler must stay joinable"
        finally:
            db._update_lock.release()
            released = True
        assert released
        # Lock released: the straggler drains, sees stopping, exits.
        assert pool.stop(timeout=JOIN) is True
        assert not pool._threads
        db.close()
