"""Two-thread hammer on the scheduler's queue bookkeeping.

Regression for the delayed-retry pop/mark race: ``_claim_next`` must
pop the heap and clear the ``_queued`` mark in one critical section, or
a concurrent ``schedule`` of the same key can double-queue it (two heap
entries, one mark) or lose it (mark without heap entry) — the queue
then never converges to empty.
"""

from __future__ import annotations

import dataclasses
import threading

import pytest

from repro import ObjectBase
from repro.core.strategies import Strategy
from repro.observe.config import MaterializationConfig

JOIN = 30.0
KEYS = 400


def _join(threads):
    for thread in threads:
        thread.join(JOIN)
    alive = [t.name for t in threads if t.is_alive()]
    if alive:
        pytest.fail(f"threads did not finish (deadlock?): {alive}")


def _make_scheduler():
    config = MaterializationConfig(strategy=Strategy.DEFERRED)
    config = dataclasses.replace(
        config,
        fault_policy=dataclasses.replace(
            config.fault_policy, base_delay=0.0, max_delay=0.0, jitter=0.0
        ),
    )
    db = ObjectBase(config=config)
    return db.gmr_manager.scheduler


@pytest.mark.timeout(120)
def test_schedule_vs_drain_hammer():
    """Enqueue unknown fids from one thread while another drains.

    Unknown fids exercise only the queue bookkeeping (the drain drops
    them on the ``gmr is None`` path), so the hammer isolates the heap
    and mark-set invariants from rematerialization itself.
    """
    scheduler = _make_scheduler()
    stop = threading.Event()
    errors: list[BaseException] = []

    def producer():
        try:
            for round_no in range(3):
                for index in range(KEYS):
                    scheduler.schedule(None, "Fake.op", (index,))
        except BaseException as exc:  # noqa: BLE001 - collected
            errors.append(exc)

    def drainer():
        try:
            while not stop.is_set():
                scheduler.revalidate(max_entries=16)
        except BaseException as exc:  # noqa: BLE001 - collected
            errors.append(exc)

    threads = [
        threading.Thread(target=producer, name="producer"),
        threading.Thread(target=drainer, name="drainer"),
    ]
    for thread in threads:
        thread.start()
    threads[0].join(JOIN)
    stop.set()
    _join(threads)

    assert errors == []
    scheduler.revalidate()  # final synchronous sweep
    assert len(scheduler) == 0
    assert scheduler._heap == []
    assert scheduler._queued == set()


@pytest.mark.timeout(120)
def test_retry_promote_vs_schedule_hammer():
    """Race ``schedule_retry`` (delayed heap) against ready-side churn.

    With a zero backoff every retry is immediately due, so each
    ``revalidate`` call promotes delayed entries while the producer
    keeps pushing new ones — the promote/mark handoff must never drop
    or duplicate a key.
    """
    scheduler = _make_scheduler()
    stop = threading.Event()
    errors: list[BaseException] = []

    def producer():
        try:
            for round_no in range(3):
                for index in range(KEYS):
                    scheduler.schedule_retry(None, "Fake.retry", (index,))
        except BaseException as exc:  # noqa: BLE001 - collected
            errors.append(exc)

    def drainer():
        try:
            while not stop.is_set():
                scheduler.revalidate(max_entries=16)
        except BaseException as exc:  # noqa: BLE001 - collected
            errors.append(exc)

    threads = [
        threading.Thread(target=producer, name="producer"),
        threading.Thread(target=drainer, name="drainer"),
    ]
    for thread in threads:
        thread.start()
    threads[0].join(JOIN)
    stop.set()
    _join(threads)

    assert errors == []
    # Drain everything that is still parked or queued: with zero delay
    # each sweep promotes the whole delayed heap.
    for _ in range(10):
        scheduler.revalidate()
        if len(scheduler) == 0:
            break
    assert len(scheduler) == 0
    assert scheduler._heap == []
    assert scheduler._delayed == []
    assert scheduler._queued == set()
