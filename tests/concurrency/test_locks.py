"""Unit tests of the reader-writer lock primitives."""

from __future__ import annotations

import threading
import time

import pytest

from repro.concurrency import RWLock, StripedRWLock

JOIN = 10.0  # generous per-thread join budget; a hang fails the test


def _join(threads):
    for thread in threads:
        thread.join(JOIN)
    alive = [t.name for t in threads if t.is_alive()]
    if alive:
        pytest.fail(f"threads did not finish (deadlock?): {alive}")


class TestRWLock:
    @pytest.mark.timeout(30)
    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=JOIN)

        def reader():
            with lock.read():
                inside.wait()  # all three must be inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        _join(threads)

    @pytest.mark.timeout(30)
    def test_writer_excludes_readers(self):
        lock = RWLock()
        writing = threading.Event()
        observed = []

        def writer():
            with lock.write():
                writing.set()
                time.sleep(0.05)
                observed.append("writer-done")

        def reader():
            writing.wait(JOIN)
            with lock.read():
                observed.append("reader")

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
        ]
        for thread in threads:
            thread.start()
        _join(threads)
        assert observed == ["writer-done", "reader"]

    @pytest.mark.timeout(30)
    def test_writers_exclude_each_other(self):
        lock = RWLock()
        counter = {"value": 0, "max_inside": 0}

        def writer():
            for _ in range(200):
                with lock.write():
                    counter["value"] += 1
                    counter["max_inside"] = max(counter["max_inside"], 1)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        _join(threads)
        assert counter["value"] == 800

    @pytest.mark.timeout(30)
    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: a queued writer starves no further."""
        lock = RWLock()
        first_reader_in = threading.Event()
        release_first_reader = threading.Event()
        order = []

        def long_reader():
            with lock.read():
                first_reader_in.set()
                release_first_reader.wait(JOIN)

        def writer():
            first_reader_in.wait(JOIN)
            with lock.write():
                order.append("writer")

        def late_reader():
            # Started only after the writer is queued (see sleep below).
            with lock.read():
                order.append("late-reader")

        t_reader = threading.Thread(target=long_reader)
        t_writer = threading.Thread(target=writer)
        t_reader.start()
        t_writer.start()
        first_reader_in.wait(JOIN)
        time.sleep(0.05)  # let the writer block in acquire_write
        t_late = threading.Thread(target=late_reader)
        t_late.start()
        time.sleep(0.05)
        release_first_reader.set()
        _join([t_reader, t_writer, t_late])
        assert order[0] == "writer"


class TestStripedRWLock:
    def test_same_key_same_stripe(self):
        striped = StripedRWLock(stripes=8)
        assert len(striped) == 8
        key = ("Cuboid.volume", 42)
        # Acquiring the same key's stripe twice from two contexts must
        # target the same underlying lock (write excludes write).
        ctx = striped.write(key)
        with ctx:
            done = []

            def contender():
                with striped.write(key):
                    done.append(True)

            thread = threading.Thread(target=contender)
            thread.start()
            time.sleep(0.05)
            assert not done  # still blocked: same stripe
        thread.join(JOIN)
        assert done == [True]

    @pytest.mark.timeout(30)
    def test_distinct_stripes_do_not_block(self):
        striped = StripedRWLock(stripes=64)
        # Find two keys mapping to different stripes.
        key_a = ("f", 0)
        key_b = next(
            ("f", i)
            for i in range(1, 1000)
            if hash(("f", i)) % 64 != hash(key_a) % 64
        )
        entered = []
        with striped.write(key_a):

            def other():
                with striped.write(key_b):
                    entered.append(True)

            thread = threading.Thread(target=other)
            thread.start()
            thread.join(JOIN)
        assert entered == [True]

    def test_read_contexts(self):
        striped = StripedRWLock()
        with striped.read(("g", 1)):
            with striped.read(("g", 2)):
                pass
