"""Listener (un)registration racing update dispatch and pool drains.

Regression for the copy-on-write listener list: `_fire_listeners`
iterates an immutable snapshot, so re-registering from another thread
mid-dispatch must never raise (the historical failure mode is a
``RuntimeError: list modified during iteration`` or a skipped
listener).  The documented semantics are asserted too: a listener
receives no events after its unregistration has been *observed* (one
in-flight dispatch may still land).
"""

from __future__ import annotations

import threading

import pytest

from repro import ObjectBase
from repro.core.strategies import Strategy
from repro.domains.geometry import build_geometry_schema, create_cuboid
from repro.observe.config import MaterializationConfig

JOIN = 30.0


@pytest.mark.timeout(120)
def test_register_unregister_races_updates():
    config = MaterializationConfig(strategy=Strategy.DEFERRED, workers=2)
    db = ObjectBase(config=config)
    try:
        build_geometry_schema(db)
        iron = db.new("Material", Name="Iron", SpecWeight=7.86)
        cuboids = [
            create_cuboid(db, dims=(1.0 + i, 2.0, 3.0), material=iron)
            for i in range(4)
        ]
        db.materialize([("Cuboid", "volume")], strategy=Strategy.DEFERRED)
        grow = db.new("Vertex", X=2.0, Y=1.0, Z=1.0)
        shrink = db.new("Vertex", X=0.5, Y=1.0, Z=1.0)

        errors: list[BaseException] = []
        stop = threading.Event()
        seen = []

        def listener(kind, oid, type_name, attr, old, new):
            seen.append(kind)

        def churn_listeners():
            try:
                while not stop.is_set():
                    db.register_update_listener(listener)
                    db.unregister_update_listener(listener)
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        def writer():
            try:
                for _ in range(60):
                    for cuboid in cuboids:
                        cuboid.scale(grow)
                        cuboid.scale(shrink)
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [
            threading.Thread(target=churn_listeners, name="churn"),
            threading.Thread(target=writer, name="writer"),
        ]
        for thread in threads:
            thread.start()
        threads[1].join(JOIN)
        stop.set()
        threads[0].join(JOIN)
        alive = [t.name for t in threads if t.is_alive()]
        if alive:
            pytest.fail(f"threads did not finish (deadlock?): {alive}")

        assert errors == []
        # The transaction manager's listener must have survived the
        # churn: its registration predates it and is never touched.
        assert db.quiesce(timeout=JOIN)
        for gmr in db.gmr_manager.gmrs():
            assert gmr.check_consistency(db) == []
    finally:
        db.close()


def test_unregistered_listener_stops_receiving():
    db = ObjectBase()
    events = []

    def listener(kind, oid, type_name, attr, old, new):
        events.append(kind)

    db.define_tuple_type("Point", {"X": "float"})
    db.register_update_listener(listener)
    db.new("Point", X=1.0)
    assert events.count("create") == 1
    db.unregister_update_listener(listener)
    db.new("Point", X=2.0)
    assert events.count("create") == 1  # nothing after unregistration
