"""Entry-lock stripe assignment must not depend on PYTHONHASHSEED.

The striped entry-lock table used to key its stripes on the builtin
``hash(args)``.  Argument tuples routinely contain strings (and OIDs
hash through their payload), so two runs of the same workload spread
the same keys over *different* stripes whenever string hash
randomization picked a different seed — contention profiles changed
run to run and stripe assignment could not be pinned by a test at all.
``StripedRWLock`` now keys on the same ``stable_hash`` that routes
entries to shards and WAL schedulers.

The subprocess test below is the regression proof: it recomputes stripe
indices under several explicit ``PYTHONHASHSEED`` values and requires
them identical (the builtin-hash version fails it on the string keys).
The goldens pin the assignment itself, so an accidental change to the
stripe function shows up as a diff here and not as an unexplained
contention shift in the concurrency benchmarks.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.concurrency.locks import StripedRWLock
from repro.concurrency.sharding import stable_hash
from repro.gom.oid import Oid

_KEYS = [
    (Oid(1),),
    (Oid(2),),
    (Oid(7), Oid(41)),
    ("volume", 3),
    ("weight", 3),
    (1, "x", 2.5),
    (),
]

_SNIPPET = """
import json, sys
from repro.concurrency.locks import StripedRWLock
from repro.gom.oid import Oid
table = StripedRWLock(64)
keys = [
    (Oid(1),), (Oid(2),), (Oid(7), Oid(41)),
    ("volume", 3), ("weight", 3), (1, "x", 2.5), (),
]
print(json.dumps([table._hash(key) % len(table) for key in keys]))
"""


def _stripes_under_seed(seed: str) -> list[int]:
    env = dict(os.environ, PYTHONHASHSEED=seed)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p
    )
    output = subprocess.run(
        [sys.executable, "-c", _SNIPPET],
        env=env,
        capture_output=True,
        text=True,
        check=True,
        cwd=os.path.join(os.path.dirname(__file__), os.pardir, os.pardir),
    ).stdout
    return json.loads(output)


class TestStripeStability:
    def test_stripes_identical_across_hash_seeds(self):
        """The PYTHONHASHSEED regression: same keys, same stripes, always."""
        baseline = _stripes_under_seed("0")
        for seed in ("1", "42", "random"):
            assert _stripes_under_seed(seed) == baseline, (
                f"stripe assignment changed under PYTHONHASHSEED={seed}"
            )

    def test_stripe_matches_stable_hash(self):
        table = StripedRWLock(64)
        for key in _KEYS:
            assert table._stripe(key) is table._stripes[
                stable_hash(key) % 64
            ]

    @pytest.mark.parametrize(
        "key,stripe",
        [(key, stable_hash(key) % 64) for key in _KEYS],
    )
    def test_golden_assignment(self, key, stripe):
        # stable_hash values are pinned by the shard-router goldens;
        # this pins that the lock table derives its stripe from them
        # (stripes can only move together with a WAL format migration).
        table = StripedRWLock(64)
        assert table._stripe(key) is table._stripes[stripe]

    def test_read_write_use_the_same_stripe(self):
        table = StripedRWLock(8)
        key = ("volume", 3)
        with table.write(key):
            other = table._stripes[(stable_hash(key) + 1) % 8]
            with other.read():
                pass  # a different stripe stays acquirable
