"""The sharded engine under fire: router laws, races, quiesce, explain.

Four layers (ISSUE 7 acceptance criteria):

* **Shard-router unit suite** — ``stable_hash`` is pinned to golden
  CRC32 values (a changed constant silently re-routes every WAL segment
  written by an earlier build, so the goldens are load-bearing), the
  canonical encoding is type-tagged, and routing is a rebalance-free
  pure function of ``(args, shards)``.
* **Racing differential** — N writers vs M readers over a sharded
  draining pool; after joining + ``quiesce()`` the extensions and RRR
  must equal a sequential ``shards=1, workers=0`` run of the same
  scripts, and Def. 3.2 / lockstep must be clean.
* **Cross-shard wave fan-out** — one elementary update whose RRR hits
  touch entries owned by several shards must enqueue on each owning
  shard's scheduler and converge everywhere.
* **Quiesce / explain structure** — ``db.quiesce()`` drains *all* shard
  schedulers (including from inside a ``db.batch()`` scope while the
  update lock is held), and ``db.explain()``'s per-shard breakdown
  reconciles with the per-fid sections by construction.
"""

from __future__ import annotations

import threading

import pytest

from repro import ObjectBase
from repro.concurrency.sharding import shard_of, stable_hash
from repro.core.strategies import Strategy
from repro.domains.geometry import build_geometry_schema, create_cuboid
from repro.gom.oid import Oid
from repro.observe.config import MaterializationConfig

JOIN = 30.0


def _join(threads):
    for thread in threads:
        thread.join(JOIN)
    alive = [t.name for t in threads if t.is_alive()]
    if alive:
        pytest.fail(f"threads did not finish (deadlock?): {alive}")


def _extensions(db):
    manager = db.gmr_manager
    gmrs = {
        gmr.name: sorted(
            (
                (row.args, tuple(row.results), tuple(row.valid))
                for row in gmr.store.rows()
            ),
            key=repr,
        )
        for gmr in manager.gmrs()
    }
    rrr = sorted(manager.rrr.triples(), key=repr)
    return gmrs, rrr


def _settle_and_check(db):
    assert db.quiesce(timeout=JOIN) is True
    manager = db.gmr_manager
    for gmr in manager.gmrs():
        assert gmr.check_consistency(db) == []
    assert manager.verify_lockstep() == []


# ---------------------------------------------------------------------------
# Shard router unit suite
# ---------------------------------------------------------------------------


class TestStableHash:
    # Golden CRC32 values.  These are a *compatibility contract*: WAL
    # segment routing uses stable_hash, so changing the canonical
    # encoding orphans records written by every earlier build.  Bump
    # these goldens only together with a WAL format migration.
    GOLDENS = [
        ((Oid(7),), 3987843688),
        ((1,), 2267756476),
        ((1.0,), 2885680804),
        ((True,), 2340345949),
        (("1",), 2526679322),
        (("alpha", 2), 675802659),
        (None, 2013832146),
        ((Oid(7), Oid(8)), 1212058182),
    ]

    @pytest.mark.parametrize("value,expected", GOLDENS)
    def test_golden_values(self, value, expected):
        assert stable_hash(value) == expected

    def test_type_tags_disambiguate(self):
        # 1, 1.0, True and "1" are equal or hash-equal under Python's
        # builtin semantics; the canonical encoding must keep them apart.
        hashes = {stable_hash((v,)) for v in (1, 1.0, True, "1")}
        assert len(hashes) == 4

    def test_oid_hashes_by_identity_not_object(self):
        assert stable_hash((Oid(7),)) == stable_hash((Oid(7),))
        assert stable_hash((Oid(7),)) != stable_hash((Oid(8),))
        assert stable_hash((Oid(7),)) != stable_hash((7,))


class TestShardRouter:
    def test_unsharded_always_routes_to_zero(self):
        for args in [(Oid(1),), ("x", 2.5), ()]:
            assert shard_of(args, 1) == 0
            assert shard_of(args, 0) == 0

    def test_routing_is_pure_and_rebalance_free(self):
        # No routing table: the same tuple maps to the same shard on
        # every call, and the map is exactly stable_hash % shards.
        for n in (2, 3, 4, 8):
            for i in range(50):
                args = (Oid(i), f"k{i}")
                assert shard_of(args, n) == stable_hash(args) % n
                assert shard_of(args, n) == shard_of(args, n)

    def test_all_shards_reachable(self):
        hits = {shard_of((Oid(i),), 4) for i in range(64)}
        assert hits == {0, 1, 2, 3}


# ---------------------------------------------------------------------------
# Engine structure: shards=1 is bit-for-bit today's paths
# ---------------------------------------------------------------------------


def _build(workers, shards, cuboids=10):
    config = MaterializationConfig(
        strategy=Strategy.DEFERRED, workers=workers, shards=shards
    )
    db = ObjectBase(config=config)
    build_geometry_schema(db)
    iron = db.new("Material", Name="Iron", SpecWeight=7.86)
    cubs = [
        create_cuboid(
            db,
            origin=(float(i), 0.0, 0.0),
            dims=(1.0 + i, 2.0, 3.0),
            material=iron,
            cuboid_id=i,
        )
        for i in range(cuboids)
    ]
    db.materialize(
        [("Cuboid", "volume"), ("Cuboid", "weight")],
        strategy=Strategy.DEFERRED,
    )
    params = {
        "grow": db.new("Vertex", X=2.0, Y=1.0, Z=1.0),
        "shrink": db.new("Vertex", X=0.5, Y=1.0, Z=1.0),
        "fwd": db.new("Vertex", X=1.0, Y=2.0, Z=3.0),
        "back": db.new("Vertex", X=-1.0, Y=-2.0, Z=-3.0),
    }
    return db, cubs, iron, params


def _script(cuboid, params, rounds=3):
    for _ in range(rounds):
        cuboid.scale(params["grow"])
        cuboid.translate(params["fwd"])
        cuboid.scale(params["shrink"])
        cuboid.translate(params["back"])


class TestShardedStructure:
    def test_shards_one_creates_no_shard_state(self):
        db, *_ = _build(workers=0, shards=1)
        manager = db.gmr_manager
        assert db._shard_locks is None
        assert manager._shard_locks is None
        assert manager.schedulers == (manager.scheduler,)
        assert db.explain().shards == ()

    def test_sharded_schedulers_share_frequency(self):
        db, *_ = _build(workers=0, shards=4)
        manager = db.gmr_manager
        assert len(manager.schedulers) == 4
        first = manager.schedulers[0].query_frequency
        for sibling in manager.schedulers[1:]:
            assert sibling.query_frequency is first

    def test_entries_route_by_shard_of(self):
        db, cubs, _, params = _build(workers=0, shards=4)
        for cub in cubs:
            _script(cub, params, rounds=1)
        manager = db.gmr_manager
        # Every queued revalidation sits on the scheduler its args own.
        for shard, scheduler in enumerate(manager.schedulers):
            state = scheduler.dump_state()
            for _prio, _seq, _fid, args in state["heap"]:
                assert shard_of(tuple(args), 4) == shard
        _settle_and_check(db)


# ---------------------------------------------------------------------------
# Racing differential: sharded pool vs sequential reference
# ---------------------------------------------------------------------------

N_WRITERS = 3
N_READERS = 2


@pytest.mark.timeout(300)
def test_sharded_stress_matches_sequential():
    seq_db, seq_cubs, _, seq_params = _build(workers=0, shards=1)
    for cub in seq_cubs:
        _script(cub, seq_params)
    seq_db.gmr_manager.scheduler.revalidate()
    _settle_and_check(seq_db)
    want = _extensions(seq_db)

    db, cubs, _, params = _build(workers=2, shards=4)
    try:
        errors: list[BaseException] = []
        writers_done = threading.Event()

        def writer(partition):
            try:
                for cub in partition:
                    _script(cub, params)
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        def reader(offset):
            try:
                index = offset
                while not writers_done.is_set():
                    volume = cubs[index % len(cubs)].volume()
                    assert isinstance(volume, float)
                    index += 1
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [
            threading.Thread(
                target=writer, args=(cubs[i::N_WRITERS],), name=f"writer-{i}"
            )
            for i in range(N_WRITERS)
        ] + [
            threading.Thread(target=reader, args=(i,), name=f"reader-{i}")
            for i in range(N_READERS)
        ]
        for thread in threads:
            thread.start()
        _join(threads[:N_WRITERS])
        writers_done.set()
        _join(threads[N_WRITERS:])

        assert errors == []
        _settle_and_check(db)
        assert _extensions(db) == want
    finally:
        db.close()


# ---------------------------------------------------------------------------
# Cross-shard invalidation wave fan-out
# ---------------------------------------------------------------------------


def test_cross_shard_wave_fans_out():
    db, cubs, iron, _ = _build(workers=0, shards=4, cuboids=16)
    for cub in cubs:
        cub.weight()  # materialize every row
    _settle_and_check(db)
    manager = db.gmr_manager
    owners = {shard_of((cub.oid,), 4) for cub in cubs}
    assert len(owners) > 1, "fixture must span multiple shards"

    # One elementary update all cuboids depend on: every weight entry
    # goes stale, and the wave must enqueue on each owning shard.
    iron.set_SpecWeight(9.0)
    queued = {
        shard
        for shard, scheduler in enumerate(manager.schedulers)
        if scheduler.pending() > 0
    }
    assert queued == owners
    _settle_and_check(db)
    for cub in cubs:
        assert cub.weight() == pytest.approx(cub.volume() * 9.0)


# ---------------------------------------------------------------------------
# Quiesce drains every shard (including under the update lock)
# ---------------------------------------------------------------------------


def test_quiesce_drains_all_shard_schedulers():
    db, cubs, iron, _ = _build(workers=0, shards=4, cuboids=16)
    for cub in cubs:
        cub.weight()
    iron.set_SpecWeight(9.0)
    manager = db.gmr_manager
    assert sum(s.pending() for s in manager.schedulers) > 0
    assert db.quiesce(timeout=JOIN) is True
    assert sum(s.ready_pending() for s in manager.schedulers) == 0
    _settle_and_check(db)


@pytest.mark.timeout(60)
def test_quiesce_under_update_lock_sharded():
    # Regression for the latent single-scheduler assumption: quiescing
    # while the calling thread holds the update lock (a batch scope)
    # must drain every shard's scheduler, not just shard 0's — and must
    # not deadlock against the worker pool.
    db, cubs, iron, _ = _build(workers=2, shards=4, cuboids=16)
    try:
        for cub in cubs:
            cub.weight()
        assert db.quiesce(timeout=JOIN) is True
        with db.batch():
            iron.set_SpecWeight(9.0)
        assert db.quiesce(timeout=JOIN) is True
        with db._update_lock:
            # The lock is held: the sync-drain fallback must cover all
            # shards (workers alone may be blocked by us on unsharded
            # builds; sharded drains never take this lock).
            iron.set_SpecWeight(11.0)
            assert db.quiesce(timeout=JOIN) is True
        _settle_and_check(db)
        for cub in cubs:
            assert cub.weight() == pytest.approx(cub.volume() * 11.0)
    finally:
        db.close()


@pytest.mark.timeout(60)
@pytest.mark.parametrize("workers", [0, 2])
def test_quiesce_waits_out_transient_conflict_defers(workers):
    # A drain that loses the write-epoch race re-defers its entry onto
    # the *delayed* heap for a few milliseconds.  Quiesce must count
    # that parked entry as pending work: declaring convergence while it
    # ripens freezes an INVALID row into the "settled" state (the bug
    # the write-scaling benchmark's differential assertion caught).
    # Retry backoff and quarantine parking stay excluded — only the
    # transient defer blocks quiescence.
    db, cubs, iron, _ = _build(workers=workers, shards=4, cuboids=8)
    try:
        for cub in cubs:
            cub.weight()
        _settle_and_check(db)
        manager = db.gmr_manager
        # Freeze the engine (update lock + every shard lock) so the
        # worker pool cannot drain while we reproduce the conflict
        # aftermath: claim every ready entry and re-defer it exactly as
        # _defer_conflicted would, with a visible ripening window.
        deferred = 0
        with db._freeze():
            iron.set_SpecWeight(9.0)
            for scheduler in manager.schedulers:
                while (claimed := scheduler._claim_next()) is not None:
                    fid, args = claimed
                    scheduler.defer(
                        manager.gmr_of(fid), fid, args, delay=0.25
                    )
                    deferred += 1
        assert deferred > 0, "fixture produced no pending invalidations"
        assert sum(s.ready_pending() for s in manager.schedulers) == 0
        assert sum(s.unsettled_pending() for s in manager.schedulers) > 0

        assert db.quiesce(timeout=JOIN) is True
        for gmr in manager.gmrs():
            for row in gmr.store.rows():
                assert all(row.valid), "quiesce left an entry INVALID"
        _settle_and_check(db)
        for cub in cubs:
            assert cub.weight() == pytest.approx(cub.volume() * 9.0)
    finally:
        db.close()


# ---------------------------------------------------------------------------
# Explain reconciles per shard by construction
# ---------------------------------------------------------------------------


def test_explain_per_shard_breakdown_reconciles():
    db, cubs, iron, _ = _build(workers=0, shards=4, cuboids=16)
    for cub in cubs:
        cub.weight()
    _settle_and_check(db)
    iron.set_SpecWeight(9.0)  # leave some entries invalid + pending

    report = db.explain()
    assert len(report.shards) == 4
    fid_rows = [
        (row.args, row.state)
        for section in report.fids
        for row in section.rows
    ]
    for shard in report.shards:
        rows = [r for r in fid_rows if shard_of(r[0], 4) == shard.shard]
        assert shard.entries == len(rows)
        assert shard.valid == sum(1 for r in rows if r[1] == "valid")
        assert shard.invalid == sum(1 for r in rows if r[1] == "invalid")
        assert shard.error == sum(1 for r in rows if r[1] == "error")
        assert shard.pending == db.gmr_manager.schedulers[
            shard.shard
        ].pending()
    assert sum(s.entries for s in report.shards) == len(fid_rows)
    rendered = report.render()
    assert "shard 0:" in rendered and "shard 3:" in rendered
    _settle_and_check(db)
