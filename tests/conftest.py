"""Shared fixtures: the paper's example databases."""

from __future__ import annotations

import pytest

from repro import InstrumentationLevel, ObjectBase
from repro.domains.company import build_company_schema, populate_company
from repro.domains.geometry import build_figure2_database, build_geometry_schema
from repro.util.rng import DeterministicRng


@pytest.fixture
def db() -> ObjectBase:
    """An empty object base with default (OBJ_DEP) instrumentation."""
    return ObjectBase()


@pytest.fixture
def geometry_db():
    """(db, fixture) — the Figure 2 example database."""
    database = ObjectBase()
    build_geometry_schema(database)
    fixture = build_figure2_database(database)
    return database, fixture


@pytest.fixture
def strict_geometry_db():
    """(db, fixture) — the Sec. 5.3 strictly encapsulated variant."""
    database = ObjectBase(level=InstrumentationLevel.INFO_HIDING)
    build_geometry_schema(database, strict_cuboids=True)
    fixture = build_figure2_database(database)
    return database, fixture


@pytest.fixture
def company_db():
    """(db, fixture) — a small company population."""
    database = ObjectBase()
    build_company_schema(database)
    fixture = populate_company(
        database,
        DeterministicRng(3),
        departments=3,
        employees_per_department=4,
        projects=10,
        jobs_per_employee=3,
    )
    return database, fixture


def make_point_db() -> ObjectBase:
    """A minimal one-type schema used across unit tests."""
    database = ObjectBase()
    database.define_tuple_type("Point", {"X": "float", "Y": "float"})

    def norm(self):
        return (self.X * self.X + self.Y * self.Y) ** 0.5

    def manhattan(self):
        x = self.X if self.X >= 0 else -self.X
        y = self.Y if self.Y >= 0 else -self.Y
        return x + y

    database.define_operation("Point", "norm", [], "float", norm)
    database.define_operation("Point", "manhattan", [], "float", manhattan)
    return database


@pytest.fixture
def point_db() -> ObjectBase:
    return make_point_db()
