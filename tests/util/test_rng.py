"""Deterministic RNG and weighted choice tests."""

import pytest

from repro.util.rng import DeterministicRng, WeightedChoice


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        first = DeterministicRng(42)
        second = DeterministicRng(42)
        assert [first.random() for _ in range(10)] == [
            second.random() for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        assert DeterministicRng(1).random() != DeterministicRng(2).random()

    def test_fork_is_deterministic_and_independent(self):
        base = DeterministicRng(42)
        fork_a = base.fork(1)
        fork_b = DeterministicRng(42).fork(1)
        assert fork_a.random() == fork_b.random()
        assert DeterministicRng(42).fork(1).random() != DeterministicRng(
            42
        ).fork(2).random()

    def test_uniform_bounds(self):
        rng = DeterministicRng(7)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_randint_bounds(self):
        rng = DeterministicRng(7)
        values = {rng.randint(1, 3) for _ in range(100)}
        assert values == {1, 2, 3}

    def test_choice_and_sample(self):
        rng = DeterministicRng(7)
        items = ["a", "b", "c"]
        assert rng.choice(items) in items
        sample = rng.sample(items, 2)
        assert len(sample) == 2 and set(sample) <= set(items)


class TestWeightedChoice:
    def test_single_item(self):
        choice = WeightedChoice([(1.0, "only")])
        rng = DeterministicRng(1)
        assert all(choice.draw(rng) == "only" for _ in range(10))

    def test_zero_weight_never_drawn(self):
        choice = WeightedChoice([(0.0, "never"), (1.0, "always")])
        rng = DeterministicRng(1)
        assert all(choice.draw(rng) == "always" for _ in range(100))

    def test_relative_frequencies(self):
        choice = WeightedChoice([(0.9, "common"), (0.1, "rare")])
        rng = DeterministicRng(5)
        draws = [choice.draw(rng) for _ in range(2000)]
        ratio = draws.count("common") / len(draws)
        assert 0.85 < ratio < 0.95

    def test_weights_need_not_be_normalized(self):
        choice = WeightedChoice([(3, "a"), (1, "b")])
        rng = DeterministicRng(5)
        draws = [choice.draw(rng) for _ in range(2000)]
        assert 0.70 < draws.count("a") / len(draws) < 0.80

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WeightedChoice([])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedChoice([(-1.0, "a"), (2.0, "b")])

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            WeightedChoice([(0.0, "a")])
