"""Table-rendering tests."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["A", "Blong"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert all(len(line) <= len(lines[1]) + 10 for line in lines)
        assert "333" in lines[3]

    def test_title(self):
        text = format_table(["X"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["V"], [[3.14159265]])
        assert "3.142" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["A", "B"], [[1]])

    def test_empty_rows(self):
        text = format_table(["A"], [])
        assert "A" in text
