"""Persistence tests: dump / load round-trips."""

import pytest

from repro import ObjectBase, RestrictionSpec, Strategy, Variable
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_vertex,
)
from repro.persistence import (
    PersistenceError,
    dump_object_base,
    from_document,
    load_object_base,
    to_document,
)


@pytest.fixture
def dumped(tmp_path, geometry_db):
    db, fixture = geometry_db
    db.create_attr_index("Cuboid", "CuboidID")
    db.materialize([("Cuboid", "volume"), ("Cuboid", "weight")])
    path = tmp_path / "base.json"
    dump_object_base(db, str(path))
    return db, fixture, path


def fresh_db():
    db = ObjectBase()
    build_geometry_schema(db)
    return db


class TestRoundTrip:
    def test_objects_survive(self, dumped):
        original, fixture, path = dumped
        db = fresh_db()
        load_object_base(db, str(path))
        assert len(db.extension("Cuboid")) == 3
        reloaded = db.handle(fixture.cuboids[0].oid)
        assert reloaded.CuboidID == 1
        assert reloaded.Mat.Name == "Iron"

    def test_oids_preserved_and_generator_advanced(self, dumped):
        original, fixture, path = dumped
        db = fresh_db()
        load_object_base(db, str(path))
        existing = {oid.value for oid in db.objects.oids()}
        fresh = db.new("Material", Name="X", SpecWeight=1.0)
        assert fresh.oid.value not in existing
        assert fresh.oid.value > max(existing)

    def test_gmr_extension_survives(self, dumped):
        original, fixture, path = dumped
        db = fresh_db()
        load_object_base(db, str(path))
        gmr = db.gmr_manager.gmr("<<volume, weight>>")
        assert len(gmr) == 3
        value, valid = gmr.result((fixture.cuboids[0].oid,), "Cuboid.volume")
        assert valid and value == pytest.approx(300.0)
        assert gmr.check_consistency(db) == []
        assert gmr.is_complete(db)

    def test_maintenance_continues_after_load(self, dumped):
        """The RRR travelled with the dump: updates still invalidate."""
        original, fixture, path = dumped
        db = fresh_db()
        load_object_base(db, str(path))
        cuboid = db.handle(fixture.cuboids[0].oid)
        cuboid.scale(create_vertex(db, 2.0, 1.0, 1.0))
        gmr = db.gmr_manager.gmr("<<volume, weight>>")
        value, valid = gmr.result((cuboid.oid,), "Cuboid.volume")
        assert valid and value == pytest.approx(600.0)
        assert gmr.check_consistency(db) == []

    def test_obj_dep_fct_rebuilt(self, dumped):
        original, fixture, path = dumped
        db = fresh_db()
        load_object_base(db, str(path))
        obj = db.objects.get(fixture.cuboids[0].oid)
        assert "Cuboid.volume" in obj.obj_dep_fct

    def test_attr_index_rebuilt(self, dumped):
        original, fixture, path = dumped
        db = fresh_db()
        load_object_base(db, str(path))
        index = db.attr_index("Cuboid", "CuboidID")
        assert index is not None
        assert index.search(2)

    def test_queries_work_after_load(self, dumped):
        original, fixture, path = dumped
        db = fresh_db()
        load_object_base(db, str(path))
        result = db.query("range c: Cuboid retrieve c where c.volume > 250.0")
        assert [h.oid for h in result] == [fixture.cuboids[0].oid]


class TestEdgeCases:
    def test_load_requires_empty_base(self, dumped):
        _, _, path = dumped
        db = fresh_db()
        build_figure2_database(db)
        with pytest.raises(PersistenceError):
            load_object_base(db, str(path))

    def test_format_version_checked(self, geometry_db):
        db, _ = geometry_db
        document = to_document(db)
        document["format"] = 999
        with pytest.raises(PersistenceError):
            from_document(fresh_db(), document)

    def test_lazy_invalid_rows_survive_as_invalid(self, tmp_path):
        db = ObjectBase()
        build_geometry_schema(db)
        fixture = build_figure2_database(db)
        gmr = db.materialize([("Cuboid", "volume")], strategy=Strategy.LAZY)
        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        path = tmp_path / "lazy.json"
        dump_object_base(db, str(path))

        reloaded = fresh_db()
        load_object_base(reloaded, str(path))
        restored = reloaded.gmr_manager.gmr("<<volume>>")
        assert not restored.is_valid("Cuboid.volume")
        # First access recomputes the fresh value.
        assert reloaded.handle(fixture.cuboids[0].oid).volume() == pytest.approx(
            600.0
        )
        assert restored.check_consistency(reloaded) == []

    def test_non_serializable_results_reload_invalid(self, tmp_path, company_db):
        db, fixture = company_db
        gmr = db.materialize([("Company", "matrix")])
        path = tmp_path / "company.json"
        dump_object_base(db, str(path))

        reloaded = ObjectBase()
        from repro.domains.company import build_company_schema

        build_company_schema(reloaded)
        load_object_base(reloaded, str(path))
        restored = reloaded.gmr_manager.gmr("<<matrix>>")
        assert not restored.is_valid("Company.matrix")
        lines = reloaded.handle(fixture.company.oid).matrix()
        assert lines  # recomputed on demand
        assert restored.is_valid("Company.matrix")

    def test_restricted_gmr_needs_spec(self, tmp_path, geometry_db):
        db, _ = geometry_db
        db.query(
            'range c: Cuboid materialize c.volume where c.Mat.Name = "Iron"'
        )
        path = tmp_path / "restricted.json"
        dump_object_base(db, str(path))

        with pytest.raises(PersistenceError):
            load_object_base(fresh_db(), str(path))

    def test_restricted_gmr_round_trip(self, tmp_path, geometry_db):
        db, fixture = geometry_db
        db.query(
            'range c: Cuboid materialize c.volume where c.Mat.Name = "Iron"'
        )
        name = db.gmr_manager.gmrs()[0].name
        path = tmp_path / "restricted.json"
        dump_object_base(db, str(path))

        spec = RestrictionSpec(
            predicate=Variable("c", ("Mat", "Name")).eq("Iron"),
            var_names=("c",),
        )
        reloaded = fresh_db()
        load_object_base(reloaded, str(path), restrictions={name: spec})
        gmr = reloaded.gmr_manager.gmr(name)
        assert len(gmr) == 2
        # Predicate maintenance still works after the reload.
        reloaded.handle(fixture.cuboids[2].oid).set_Mat(
            db.handle(fixture.iron.oid).oid
        )
        assert len(gmr) == 3
        assert gmr.is_complete(reloaded)


class TestInFlightStateRejected:
    """The round-trip gap: in-flight batch/transaction state used to be
    silently dropped on dump; now the dump refuses outright."""

    def test_dump_rejects_open_batch(self, tmp_path, geometry_db):
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        scope = db.batch()
        scope.__enter__()
        try:
            fixture.cuboids[0].set_Value(9.99)
            with pytest.raises(PersistenceError, match="batch"):
                to_document(db)
        finally:
            scope.__exit__(None, None, None)
        to_document(db)  # fine once flushed

    def test_dump_rejects_open_transaction(self, geometry_db):
        db, fixture = geometry_db
        with db.transaction():
            fixture.cuboids[0].set_Value(1.0)
            with pytest.raises(PersistenceError, match="transaction"):
                to_document(db)
        to_document(db)  # fine once committed


class TestSchedulerAndStatsRoundTrip:
    def _deferred_db(self):
        db = fresh_db()
        fixture = build_figure2_database(db)
        db.materialize(
            [("Cuboid", "volume"), ("Cuboid", "weight")],
            strategy=Strategy.DEFERRED,
        )
        return db, fixture

    def test_pending_revalidations_survive(self, tmp_path):
        db, fixture = self._deferred_db()
        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        pending = db.gmr_manager.scheduler.pending()
        assert pending > 0
        path = tmp_path / "deferred.json"
        dump_object_base(db, str(path))

        reloaded = fresh_db()
        load_object_base(reloaded, str(path))
        scheduler = reloaded.gmr_manager.scheduler
        assert scheduler.pending() == pending
        assert scheduler.dump_state() == db.gmr_manager.scheduler.dump_state()
        # The restored queue is drainable: the sweep revalidates every
        # pending entry against the restored base.
        drained = scheduler.revalidate()
        assert drained > 0
        gmr = reloaded.gmr_manager.gmr("<<volume, weight>>")
        assert all(all(row.valid) for row in gmr.rows())

    def test_query_frequencies_survive(self, tmp_path):
        db, fixture = self._deferred_db()
        for _ in range(3):
            fixture.cuboids[0].volume()
        path = tmp_path / "freq.json"
        dump_object_base(db, str(path))
        reloaded = fresh_db()
        load_object_base(reloaded, str(path))
        assert (
            reloaded.gmr_manager.scheduler.query_frequency
            == db.gmr_manager.scheduler.query_frequency
        )

    def test_manager_stats_survive(self, tmp_path):
        db, fixture = self._deferred_db()
        fixture.cuboids[1].set_Mat(fixture.gold)
        fixture.cuboids[1].weight()
        before = vars(db.gmr_manager.stats)
        path = tmp_path / "stats.json"
        dump_object_base(db, str(path))
        reloaded = fresh_db()
        load_object_base(reloaded, str(path))
        assert vars(reloaded.gmr_manager.stats) == before

    def test_old_documents_without_scheduler_still_load(self, tmp_path, geometry_db):
        db, fixture = geometry_db
        db.materialize([("Cuboid", "volume")])
        document = to_document(db)
        document.pop("stats")
        document.pop("scheduler")
        reloaded = fresh_db()
        from_document(reloaded, document)
        assert len(reloaded.extension("Cuboid")) == 3


class TestOidAllocatorRoundTrip:
    """OIDs burned by deleted objects must stay burned after a reload.

    Found by the durability state machine: a live process and a
    checkpoint-reloaded one diverged on the OID of the next created
    object whenever the highest allocated OID belonged to a deleted
    object (restore() can only advance past *surviving* OIDs)."""

    def test_deleted_high_oid_not_reissued(self, tmp_path, geometry_db):
        db, fixture = geometry_db
        doomed = db.new("Material", Name="scrap", SpecWeight=0.1)
        burned = doomed.oid
        db.delete(burned)
        path = tmp_path / "oids.json"
        dump_object_base(db, str(path))
        reloaded = fresh_db()
        load_object_base(reloaded, str(path))
        assert reloaded.objects.peek_next_oid() == db.objects.peek_next_oid()
        replacement = reloaded.new("Material", Name="new", SpecWeight=0.2)
        assert replacement.oid != burned

    def test_old_documents_without_next_oid_still_load(self, geometry_db):
        db, fixture = geometry_db
        document = to_document(db)
        document.pop("next_oid")
        reloaded = fresh_db()
        from_document(reloaded, document)
        # Without the field the allocator still clears every live OID.
        assert (
            reloaded.objects.peek_next_oid().value
            >= max(h.oid.value for h in reloaded.extension("Vertex"))
        )
