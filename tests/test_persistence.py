"""Persistence tests: dump / load round-trips."""

import pytest

from repro import ObjectBase, RestrictionSpec, Strategy, Variable
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_vertex,
)
from repro.persistence import (
    PersistenceError,
    dump_object_base,
    from_document,
    load_object_base,
    to_document,
)


@pytest.fixture
def dumped(tmp_path, geometry_db):
    db, fixture = geometry_db
    db.create_attr_index("Cuboid", "CuboidID")
    db.materialize([("Cuboid", "volume"), ("Cuboid", "weight")])
    path = tmp_path / "base.json"
    dump_object_base(db, str(path))
    return db, fixture, path


def fresh_db():
    db = ObjectBase()
    build_geometry_schema(db)
    return db


class TestRoundTrip:
    def test_objects_survive(self, dumped):
        original, fixture, path = dumped
        db = fresh_db()
        load_object_base(db, str(path))
        assert len(db.extension("Cuboid")) == 3
        reloaded = db.handle(fixture.cuboids[0].oid)
        assert reloaded.CuboidID == 1
        assert reloaded.Mat.Name == "Iron"

    def test_oids_preserved_and_generator_advanced(self, dumped):
        original, fixture, path = dumped
        db = fresh_db()
        load_object_base(db, str(path))
        existing = {oid.value for oid in db.objects.oids()}
        fresh = db.new("Material", Name="X", SpecWeight=1.0)
        assert fresh.oid.value not in existing
        assert fresh.oid.value > max(existing)

    def test_gmr_extension_survives(self, dumped):
        original, fixture, path = dumped
        db = fresh_db()
        load_object_base(db, str(path))
        gmr = db.gmr_manager.gmr("<<volume, weight>>")
        assert len(gmr) == 3
        value, valid = gmr.result((fixture.cuboids[0].oid,), "Cuboid.volume")
        assert valid and value == pytest.approx(300.0)
        assert gmr.check_consistency(db) == []
        assert gmr.is_complete(db)

    def test_maintenance_continues_after_load(self, dumped):
        """The RRR travelled with the dump: updates still invalidate."""
        original, fixture, path = dumped
        db = fresh_db()
        load_object_base(db, str(path))
        cuboid = db.handle(fixture.cuboids[0].oid)
        cuboid.scale(create_vertex(db, 2.0, 1.0, 1.0))
        gmr = db.gmr_manager.gmr("<<volume, weight>>")
        value, valid = gmr.result((cuboid.oid,), "Cuboid.volume")
        assert valid and value == pytest.approx(600.0)
        assert gmr.check_consistency(db) == []

    def test_obj_dep_fct_rebuilt(self, dumped):
        original, fixture, path = dumped
        db = fresh_db()
        load_object_base(db, str(path))
        obj = db.objects.get(fixture.cuboids[0].oid)
        assert "Cuboid.volume" in obj.obj_dep_fct

    def test_attr_index_rebuilt(self, dumped):
        original, fixture, path = dumped
        db = fresh_db()
        load_object_base(db, str(path))
        index = db.attr_index("Cuboid", "CuboidID")
        assert index is not None
        assert index.search(2)

    def test_queries_work_after_load(self, dumped):
        original, fixture, path = dumped
        db = fresh_db()
        load_object_base(db, str(path))
        result = db.query("range c: Cuboid retrieve c where c.volume > 250.0")
        assert [h.oid for h in result] == [fixture.cuboids[0].oid]


class TestEdgeCases:
    def test_load_requires_empty_base(self, dumped):
        _, _, path = dumped
        db = fresh_db()
        build_figure2_database(db)
        with pytest.raises(PersistenceError):
            load_object_base(db, str(path))

    def test_format_version_checked(self, geometry_db):
        db, _ = geometry_db
        document = to_document(db)
        document["format"] = 999
        with pytest.raises(PersistenceError):
            from_document(fresh_db(), document)

    def test_lazy_invalid_rows_survive_as_invalid(self, tmp_path):
        db = ObjectBase()
        build_geometry_schema(db)
        fixture = build_figure2_database(db)
        gmr = db.materialize([("Cuboid", "volume")], strategy=Strategy.LAZY)
        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        path = tmp_path / "lazy.json"
        dump_object_base(db, str(path))

        reloaded = fresh_db()
        load_object_base(reloaded, str(path))
        restored = reloaded.gmr_manager.gmr("<<volume>>")
        assert not restored.is_valid("Cuboid.volume")
        # First access recomputes the fresh value.
        assert reloaded.handle(fixture.cuboids[0].oid).volume() == pytest.approx(
            600.0
        )
        assert restored.check_consistency(reloaded) == []

    def test_non_serializable_results_reload_invalid(self, tmp_path, company_db):
        db, fixture = company_db
        gmr = db.materialize([("Company", "matrix")])
        path = tmp_path / "company.json"
        dump_object_base(db, str(path))

        reloaded = ObjectBase()
        from repro.domains.company import build_company_schema

        build_company_schema(reloaded)
        load_object_base(reloaded, str(path))
        restored = reloaded.gmr_manager.gmr("<<matrix>>")
        assert not restored.is_valid("Company.matrix")
        lines = reloaded.handle(fixture.company.oid).matrix()
        assert lines  # recomputed on demand
        assert restored.is_valid("Company.matrix")

    def test_restricted_gmr_needs_spec(self, tmp_path, geometry_db):
        db, _ = geometry_db
        db.query(
            'range c: Cuboid materialize c.volume where c.Mat.Name = "Iron"'
        )
        path = tmp_path / "restricted.json"
        dump_object_base(db, str(path))

        with pytest.raises(PersistenceError):
            load_object_base(fresh_db(), str(path))

    def test_restricted_gmr_round_trip(self, tmp_path, geometry_db):
        db, fixture = geometry_db
        db.query(
            'range c: Cuboid materialize c.volume where c.Mat.Name = "Iron"'
        )
        name = db.gmr_manager.gmrs()[0].name
        path = tmp_path / "restricted.json"
        dump_object_base(db, str(path))

        spec = RestrictionSpec(
            predicate=Variable("c", ("Mat", "Name")).eq("Iron"),
            var_names=("c",),
        )
        reloaded = fresh_db()
        load_object_base(reloaded, str(path), restrictions={name: spec})
        gmr = reloaded.gmr_manager.gmr(name)
        assert len(gmr) == 2
        # Predicate maintenance still works after the reload.
        reloaded.handle(fixture.cuboids[2].oid).set_Mat(
            db.handle(fixture.iron.oid).oid
        )
        assert len(gmr) == 3
        assert gmr.is_complete(reloaded)
