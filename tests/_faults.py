"""Fault injection for the durability and fault-tolerance tests.

Deliberately *independent* of :mod:`repro.storage.wal`: the frame
parser, the crash-point enumerator and the committed-prefix scanner here
are second implementations written straight from the log format's
specification, so the recovery tests are differential — a bug shared by
the production reader and the test oracle would have to be introduced
twice.

Beyond storage crashes, :class:`FlakyFunction` injects *user-code*
faults (raises and stalls at chosen call indices) into materialized
operation bodies, and :func:`check_consistency` is the invariant oracle
the function-fault matrix asserts after every injected fault.

The *I/O-error* half of the storage fault model (fail a ``write`` /
``flush`` / ``fsync`` / ``close`` once, persistently, or with a torn
partial write) lives in :mod:`repro.storage.faultfs` — in the library,
because the nightly fuzzer injects those faults too — and is re-exported
here so the test tree has one import surface for all three fault kinds
(crash / I/O error / function failure).
"""

from __future__ import annotations

import contextlib
import json
import struct
import time
import zlib

from repro.gom.oid import Oid
from repro.storage.faultfs import (  # noqa: F401  (re-exports)
    FaultEvent,
    FaultInjectingFileSystem,
    FaultPlan,
    FaultyFile,
    InjectedIOError,
    wal_file_factory,
)

_HEADER = struct.Struct(">II")


class SimulatedCrash(BaseException):
    """The process died (killed at a byte budget).

    Derives from :class:`BaseException` like ``KeyboardInterrupt``: a
    crash is not an application error, and nothing in the library should
    be able to swallow it with ``except Exception``.
    """


class CrashingFile:
    """A binary file wrapper that dies after ``budget`` durable bytes.

    Writes pass through until the budget is exhausted; the write that
    crosses it persists only the bytes up to the budget (a torn write)
    and raises :class:`SimulatedCrash`.  After the crash the file is
    dead — every further operation raises — so exactly ``budget`` bytes
    ever reach the disk, no matter how the stack unwinds.
    """

    def __init__(self, fileobj, budget: int) -> None:
        self._file = fileobj
        self._remaining = budget
        self.dead = False

    def _check(self) -> None:
        if self.dead:
            raise SimulatedCrash("write after crash")

    def write(self, data: bytes) -> int:
        self._check()
        if len(data) > self._remaining:
            self._file.write(data[: self._remaining])
            self._file.flush()
            self._remaining = 0
            self.dead = True
            raise SimulatedCrash("byte budget exhausted")
        self._file.write(data)
        self._remaining -= len(data)
        return len(data)

    def flush(self) -> None:
        self._check()
        self._file.flush()

    def seek(self, *args) -> int:
        self._check()
        return self._file.seek(*args)

    def truncate(self, *args) -> int:
        self._check()
        return self._file.truncate(*args)

    def fileno(self) -> int:
        return self._file.fileno()

    def close(self) -> None:
        self._file.close()


# -- independent log readers ------------------------------------------------------


def frame_starts(data: bytes) -> list[int]:
    """Byte offset of every intact frame, plus the end-of-log offset."""
    offsets = [0]
    position = 0
    while position + _HEADER.size <= len(data):
        length, _ = _HEADER.unpack_from(data, position)
        end = position + _HEADER.size + length
        if end > len(data):
            break
        position = end
        offsets.append(position)
    return offsets


def parse_records(data: bytes) -> list[dict]:
    """Decode every intact frame; stop silently at a torn/corrupt tail."""
    records = []
    position = 0
    while position + _HEADER.size <= len(data):
        length, checksum = _HEADER.unpack_from(data, position)
        end = position + _HEADER.size + length
        if end > len(data):
            break
        payload = data[position + _HEADER.size : end]
        if zlib.crc32(payload) != checksum:
            break
        try:
            records.append(json.loads(payload.decode("utf-8")))
        except ValueError:
            break
        position = end
    return records


def crash_points(data: bytes) -> list[int]:
    """Every frame boundary plus mid-frame torn-write offsets.

    For each frame: the boundary before it (the crash hit between
    appends), a one-byte torn header, the header/payload seam, and a
    mid-payload tear.  The full length is excluded — that is the clean
    run, covered separately.
    """
    points: set[int] = set()
    starts = frame_starts(data)
    for start, end in zip(starts, starts[1:]):
        points.add(start)
        points.add(start + 1)
        points.add(start + _HEADER.size)
        points.add(start + (end - start) // 2)
    return sorted(points)


def committed_records(records: list[dict]) -> list[dict]:
    """The durable prefix: drop a trailing unterminated transaction.

    Aborted transactions stay — their logged inverse updates make the
    scope a net no-op under replay.
    """
    durable: list[dict] = []
    buffered: list[dict] = []
    depth = 0
    for record in records:
        kind = record["kind"]
        if kind == "txn_begin":
            depth += 1
        if depth:
            buffered.append(record)
        else:
            durable.append(record)
        if kind in ("txn_commit", "txn_abort") and depth:
            depth -= 1
            if depth == 0:
                durable.extend(buffered)
                buffered.clear()
    return durable


def _decode(value):
    if isinstance(value, dict) and set(value) == {"$oid"}:
        return Oid(value["$oid"])
    return value


# -- user-function fault injection -------------------------------------------------


class InjectedFault(RuntimeError):
    """The deliberate failure a :class:`FlakyFunction` raises."""


class FlakyFunction:
    """Make a materialized operation's body raise or stall on demand.

    Patches ``OperationDef.body`` of ``type_name.op_name`` (bodies are
    resolved at call time, so the patch takes effect immediately) —
    install it *after* ``materialize()`` so the RelAttr static analysis
    saw the real body.  Calls are counted from 0; a call whose index is
    in ``fail_at`` raises :class:`InjectedFault`, one in ``stall_at``
    sleeps ``stall_seconds`` and then computes normally (tripping a
    guard ``call_budget`` smaller than the stall).  All other calls run
    the original body untouched.
    """

    def __init__(
        self,
        db,
        type_name: str,
        op_name: str,
        *,
        fail_at=(),
        stall_at=(),
        stall_seconds: float = 0.05,
    ) -> None:
        self.fail_at = set(fail_at)
        self.stall_at = set(stall_at)
        self.stall_seconds = stall_seconds
        self.calls = 0
        self._paused = 0
        _, self._operation = db.schema.resolve_operation(type_name, op_name)
        self._original = self._operation.body
        self._operation.body = self._body

    def _body(self, *args, **kwargs):
        if self._paused:
            return self._original(*args, **kwargs)
        index = self.calls
        self.calls += 1
        if index in self.fail_at:
            raise InjectedFault(f"injected failure at call {index}")
        if index in self.stall_at:
            time.sleep(self.stall_seconds)
        return self._original(*args, **kwargs)

    @contextlib.contextmanager
    def pause(self):
        """Temporarily run the pristine body (no counting, no faults) —
        used by the consistency oracle so its recomputations do not
        consume injection indices."""
        self._paused += 1
        try:
            yield
        finally:
            self._paused -= 1

    def restore(self) -> None:
        """Put the original body back permanently."""
        self._operation.body = self._original


def check_consistency(db, *, injectors=()) -> list[str]:
    """The Def. 3.2 / Sec. 5.2 oracle: recompute-and-compare every GMR
    plus the RRR ↔ ObjDepFct lockstep; returns violations (empty =
    healthy).  Any ``injectors`` are paused while the oracle recomputes,
    so its own function calls never trigger (or consume) faults.
    Error-flagged entries must be invalid by construction — a stale
    *valid* row after a fault is exactly the bug class this hunts.
    """
    violations: list[str] = []
    with contextlib.ExitStack() as stack:
        for injector in injectors:
            stack.enter_context(injector.pause())
        from repro.core.strategies import Strategy

        manager = db.gmr_manager
        for gmr in manager.gmrs():
            if gmr.strategy is Strategy.SNAPSHOT:
                continue  # snapshots are stale by design
            violations.extend(gmr.check_consistency(db))
            for fid in gmr.fids:
                for args in gmr.error_args(fid):
                    if gmr.entry_state(args, fid) != "error":
                        violations.append(
                            f"{gmr.name}{args!r}.{fid}: error flag on a "
                            f"{gmr.entry_state(args, fid)} entry"
                        )
        violations.extend(manager.verify_lockstep())
    return violations


def apply_records(db, records: list[dict]) -> None:
    """Apply committed records to a live base through the public update
    API — the reference side of the differential harness."""
    batch_scopes = []
    for record in records:
        kind = record["kind"]
        if kind == "set":
            db.set_attr(Oid(record["oid"]), record["attr"], _decode(record["value"]))
        elif kind == "insert":
            db.collection_insert(
                Oid(record["oid"]),
                _decode(record["value"]),
                position=record.get("pos"),
            )
        elif kind == "remove":
            db.collection_remove(Oid(record["oid"]), _decode(record["value"]))
        elif kind == "create":
            data = record.get("data")
            elements = record.get("elements")
            db.replay_create(
                Oid(record["oid"]),
                record["type"],
                data=(
                    {a: _decode(v) for a, v in data.items()}
                    if data is not None
                    else None
                ),
                elements=(
                    [_decode(e) for e in elements]
                    if elements is not None
                    else None
                ),
            )
        elif kind == "delete":
            db.delete(Oid(record["oid"]))
        elif kind == "batch_begin":
            scope = db.batch()
            scope.__enter__()
            batch_scopes.append(scope)
        elif kind == "batch_flush":
            db.gmr_manager.flush_batch()
        elif kind == "batch_end":
            if batch_scopes:
                batch_scopes.pop().__exit__(None, None, None)
        elif kind not in ("txn_begin", "txn_commit", "txn_abort"):
            raise AssertionError(f"unexpected record kind {kind!r}")
    while batch_scopes:
        batch_scopes.pop().__exit__(None, None, None)
