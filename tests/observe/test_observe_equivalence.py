"""Trace-equivalence: observability must not perturb maintenance.

The Figure 7 cuboid workload runs twice per strategy over identical
seeds — once with tracing ON (ring sink) and metrics ON, once with
everything OFF — and the two runs must end in the *identical* GMR
extension and RRR, and satisfy the Def. 3.2 consistency oracle.  An
observability layer that changed a validity flag, reordered a wave or
consumed an RNG draw would show up here immediately.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.cuboid import CuboidApplication, CuboidConfig
from repro.bench.runner import ProgramVersion
from repro.bench.workload import OperationMix
from repro.core.strategies import Strategy
from repro.observe.config import MaterializationConfig, ObserveConfig
from repro.util.rng import DeterministicRng

from tests._faults import check_consistency

_MIX = dict(
    update_probability=0.8,
    operations=50,
    queries=[(0.5, "Qbw"), (0.5, "Qfw")],
    updates=[(0.4, "I"), (0.3, "S"), (0.3, "D")],
)


def _run(strategy: Strategy, observe: ObserveConfig | None):
    version = ProgramVersion(
        "Equivalence",
        strategy=strategy,
        pre_invalidate=strategy.marks_only,
    )
    config = CuboidConfig(cuboids=40, seed=7)
    if observe is not None:
        config = dataclasses.replace(
            config,
            materialization=MaterializationConfig(observe=observe),
        )
    application = CuboidApplication(version, config)
    application.run_mix(OperationMix(**_MIX), DeterministicRng(11))
    return application


def _gmr_state(application):
    return sorted(
        (row.args[0].value, tuple(row.valid), tuple(row.error), tuple(row.results))
        for row in application.gmr.rows()
    )


def _rrr_state(application):
    return sorted(
        (oid.value, fid, tuple(a.value for a in args))
        for oid, fid, args in application.db.gmr_manager.rrr.triples()
    )


@pytest.mark.parametrize("strategy", list(Strategy))
def test_traced_and_untraced_runs_are_identical(strategy):
    traced = _run(
        strategy,
        ObserveConfig(trace=True, metrics=True, ring_buffer=256),
    )
    untraced = _run(
        strategy, ObserveConfig(trace=False, metrics=False)
    )

    assert _gmr_state(traced) == _gmr_state(untraced)
    assert _rrr_state(traced) == _rrr_state(untraced)
    assert check_consistency(traced.db) == []
    assert check_consistency(untraced.db) == []

    # The traced run actually traced...
    assert len(traced.db.observe.events()) > 0
    # ...and the untraced run has no sink and no recorded events.
    assert untraced.db.observe.events() == []
    assert untraced.db.observe.tracer.sinks == []
