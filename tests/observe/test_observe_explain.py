"""EXPLAIN report tests, including the probe-accounting cross-check.

The acceptance criterion of the observability layer: ``db.explain()``
must account for every RRR probe and every rematerialization the metrics
registry counted.  Both are incremented by the *same* manager helper, so
the cross-check here pins the single-funnel property on a real workload
(the Figure 7 cuboid mix with inserts, scales and deletes).
"""

from __future__ import annotations

import pytest

from repro import ObjectBase, Strategy
from repro.bench.cuboid import CuboidApplication, CuboidConfig
from repro.bench.runner import WITH_GMR
from repro.bench.workload import OperationMix
from repro.observe.config import MaterializationConfig, ObserveConfig
from repro.observe.explain import FORGET_KEY, ExplainReport
from repro.util.rng import DeterministicRng

from tests._faults import FlakyFunction, check_consistency


def make_point_db(**config_kwargs) -> ObjectBase:
    db = ObjectBase(**config_kwargs)
    db.define_tuple_type("Point", {"X": "float", "Y": "float"})
    db.define_operation(
        "Point", "norm", [], "float",
        lambda self: (self.X * self.X + self.Y * self.Y) ** 0.5,
    )
    return db


class TestRowStates:
    def test_valid_rows_carry_the_rematerialization_note(self):
        db = make_point_db()
        p = db.new("Point", X=3.0, Y=4.0)
        db.new("Point", X=1.0, Y=0.0)
        gmr = db.materialize([("Point", "norm")], strategy=Strategy.IMMEDIATE)
        p.set_X(6.0)

        report = db.explain()
        section = report.fid("Point.norm")
        assert section.valid == 2
        assert section.invalid == 0
        states = {row.args: (row.state, row.note) for row in section.rows}
        assert states[(p.oid,)] == ("valid", "rematerialized")

    def test_lazy_invalidation_records_the_notification_path(self):
        db = make_point_db()
        p = db.new("Point", X=3.0, Y=4.0)
        db.materialize([("Point", "norm")], strategy=Strategy.LAZY)
        p.set_X(6.0)

        section = db.explain().fid("Point.norm")
        assert section.invalid == 1
        (row,) = [r for r in section.rows if r.args == (p.oid,)]
        assert row.state == "invalid"
        assert row.note == "invalidated via=obj_dep"

    def test_error_rows_name_the_guard_failure(self):
        db = make_point_db()
        p = db.new("Point", X=3.0, Y=4.0)
        db.materialize([("Point", "norm")], strategy=Strategy.IMMEDIATE)
        flaky = FlakyFunction(db, "Point", "norm", fail_at={0})
        p.set_X(6.0)  # the rematerialization raises -> ERROR state
        flaky.restore()

        report = db.explain()
        section = report.fid("Point.norm")
        assert section.error == 1
        (row,) = [r for r in section.rows if r.args == (p.oid,)]
        assert row.state == "error"
        assert row.note == "error (body raised under guard)"
        assert section.tally["errors"] == 1
        assert report.totals["errors"] == 1
        assert "ERROR" in report.render()

    def test_quarantined_fid_is_flagged(self):
        db = make_point_db()
        db.new("Point", X=3.0, Y=4.0)
        db.materialize([("Point", "norm")])
        db.gmr_manager.breaker.trip("Point.norm")

        section = db.explain().fid("Point.norm")
        assert section.quarantined
        assert section.breaker == "open"
        assert "QUARANTINED" in db.explain().render()

    def test_gmr_explain_scopes_to_that_gmr(self):
        db = make_point_db()
        db.define_operation(
            "Point", "sum", [], "float", lambda self: self.X + self.Y
        )
        db.new("Point", X=3.0, Y=4.0)
        norm_gmr = db.materialize([("Point", "norm")])
        db.materialize([("Point", "sum")])

        report = norm_gmr.explain()
        assert isinstance(report, ExplainReport)
        assert [section.fid for section in report.fids] == ["Point.norm"]
        with pytest.raises(KeyError):
            report.fid("Point.sum")


class TestDisabledAccounting:
    def test_metrics_off_yields_empty_tallies_and_notes(self):
        db = make_point_db(
            config=MaterializationConfig(
                observe=ObserveConfig(metrics=False)
            )
        )
        p = db.new("Point", X=3.0, Y=4.0)
        db.materialize([("Point", "norm")])
        p.set_X(6.0)

        report = db.explain()
        assert all(value == 0 for value in report.totals.values())
        section = report.fid("Point.norm")
        assert all(row.note == "" for row in section.rows)
        # Validity states still render — only the accounting is off.
        assert section.valid == 1


class TestCuboidCrossCheck:
    def test_explain_accounts_for_every_probe_and_remat(self):
        """Acceptance: explain() totals == metrics registry counters on
        the Figure 7 cuboid workload (with deletes in the mix)."""
        application = CuboidApplication(
            WITH_GMR, CuboidConfig(cuboids=60, seed=7)
        )
        db = application.db
        mix = OperationMix(
            update_probability=0.8,
            operations=120,
            queries=[(0.5, "Qbw"), (0.5, "Qfw")],
            updates=[(0.4, "I"), (0.3, "S"), (0.3, "D")],
        )
        application.run_mix(mix, DeterministicRng(11))

        report = db.explain()
        registry = db.observe.metrics
        assert report.totals["probes"] == registry.get("rrr.probes").value
        assert (
            report.totals["probe_entries"]
            == registry.get("rrr.probe_entries").value
        )
        assert (
            report.totals["rematerializations"]
            == registry.get("remat.count").value
        )
        assert (
            report.totals["compensations"]
            == registry.get("compensation.count").value
        )
        # The workload deleted cuboids: the wholesale pop_object probes
        # are accounted under the pseudo key, not lost.
        assert FORGET_KEY in report.other_tallies
        assert report.other_tallies[FORGET_KEY]["probes"] > 0
        # Wave bookkeeping matches the registry's native histogram.
        assert (
            registry.get("wave.count").value
            == registry.get("wave.width").count
        )
        assert report.last_wave is not None
        assert check_consistency(db) == []

    def test_per_strategy_tallies_cover_the_gmr_fids(self):
        application = CuboidApplication(
            WITH_GMR, CuboidConfig(cuboids=30, seed=7)
        )
        mix = OperationMix(
            update_probability=0.9,
            operations=40,
            queries=[(1.0, "Qfw")],
            updates=[(1.0, "S")],
        )
        application.run_mix(mix, DeterministicRng(5))
        report = application.db.explain()
        strategy_tally = report.per_strategy["immediate"]
        section = report.fid("Cuboid.volume")
        for key, value in section.tally.items():
            assert strategy_tally[key] >= value
