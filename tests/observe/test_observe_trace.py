"""Unit tests for the trace layer: sinks, nesting, rotation, reset."""

from __future__ import annotations

import json
import os

import pytest

from repro.observe.trace import (
    CallbackSink,
    JsonlSink,
    RingBufferSink,
    Tracer,
)


def _tracer_with_ring(capacity: int = 64):
    tracer = Tracer(enabled=True)
    ring = tracer.add_sink(RingBufferSink(capacity))
    return tracer, ring


class TestSpans:
    def test_spans_nest_through_the_parent_id(self):
        tracer, ring = _tracer_with_ring()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner")
        tracer.event("point", answer=42)
        tracer.end(inner)
        tracer.end(outer, width=3)

        starts = {e.name: e for e in ring if e.kind == "span_start"}
        assert starts["outer"].parent == 0
        assert starts["inner"].parent == starts["outer"].span

        point = next(e for e in ring if e.kind == "event")
        assert point.span == starts["inner"].span
        assert point.fields == {"answer": 42}

        ends = {e.name: e for e in ring if e.kind == "span_end"}
        assert ends["outer"].fields["width"] == 3
        assert ends["outer"].fields["duration"] >= 0.0

    def test_sequence_numbers_are_monotonic(self):
        tracer, ring = _tracer_with_ring()
        for index in range(5):
            tracer.event("tick", index=index)
        seqs = [event.seq for event in ring]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_span_context_records_the_exception(self):
        tracer, ring = _tracer_with_ring()
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        end = next(e for e in ring if e.kind == "span_end")
        assert end.fields["error"] == "ValueError"

    def test_end_unwinds_spans_an_exception_left_open(self):
        tracer, ring = _tracer_with_ring()
        outer = tracer.begin("outer")
        tracer.begin("inner-left-open")
        tracer.end(outer)  # must pop the stranded inner span too
        assert tracer._stack == []
        follow = tracer.begin("follow")
        assert follow.parent == 0

    def test_disabled_tracer_emits_nothing(self):
        tracer = Tracer(enabled=False)
        ring = tracer.add_sink(RingBufferSink(8))
        span = tracer.begin("never")
        tracer.event("never")
        tracer.end(span)
        assert len(ring) == 0


class TestRingBufferSink:
    def test_sheds_oldest_events_beyond_capacity(self):
        tracer, ring = _tracer_with_ring(capacity=4)
        for index in range(10):
            tracer.event("tick", index=index)
        assert ring.emitted == 10
        assert len(ring) <= 4
        kept = [event.fields["index"] for event in ring]
        assert kept == sorted(kept)
        assert kept[-1] == 9  # newest survives

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(enabled=True)
        sink = tracer.add_sink(JsonlSink(path))
        tracer.event("alpha", n=1)
        tracer.event("beta", n=2)
        sink.close()
        records = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
            if line.strip()
        ]
        assert [record["name"] for record in records] == ["alpha", "beta"]
        assert records[0]["fields"] == {"n": 1}

    def test_rotation_shifts_and_caps_the_file_set(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(enabled=True)
        sink = tracer.add_sink(
            JsonlSink(path, max_bytes=200, max_files=2)
        )
        for index in range(100):
            tracer.event("tick", index=index)
        sink.close()
        assert sink.rotations > 2
        assert os.path.exists(path)
        assert os.path.exists(path + ".1")
        assert os.path.exists(path + ".2")
        # max_files caps the set: nothing rotates past .2.
        assert not os.path.exists(path + ".3")
        # Every surviving file parses line by line.
        for name in (path, path + ".1", path + ".2"):
            for line in open(name, encoding="utf-8"):
                json.loads(line)


class TestCallbackSink:
    def test_hands_every_event_to_the_callable(self):
        seen = []
        tracer = Tracer(enabled=True)
        tracer.add_sink(CallbackSink(seen.append))
        tracer.event("one")
        with tracer.span("two"):
            pass
        assert [event.name for event in seen] == ["one", "two", "two"]


class TestReset:
    def test_reset_restarts_counters_and_emits_the_marker(self):
        tracer, ring = _tracer_with_ring()
        with tracer.span("before"):
            tracer.event("old")
        tracer.reset(marker="recovery", records_replayed=7)
        events = ring.events()
        marker = events[-1]
        assert marker.name == "recovery"
        assert marker.seq == 1  # a fresh timeline
        assert marker.fields["records_replayed"] == 7
        follow = tracer.begin("after")
        assert follow.id == 1
        assert follow.parent == 0

    def test_reset_without_marker_is_silent(self):
        tracer, ring = _tracer_with_ring()
        tracer.event("old")
        before = len(ring)
        tracer.reset()
        assert len(ring) == before


class TestReentrantSinks:
    @pytest.mark.timeout(10)
    def test_sink_may_reenter_the_tracer(self):
        # A sink that emits a trace event of its own (e.g. a metrics
        # bridge tracing itself) must recurse, not self-deadlock on the
        # tracer's emission lock.
        tracer, ring = _tracer_with_ring()

        def reemit(event):
            if event.name == "primary":
                tracer.event("echo", of=event.seq)

        tracer.add_sink(CallbackSink(reemit))
        tracer.event("primary")
        names = [event.name for event in ring]
        assert "primary" in names
        assert "echo" in names
