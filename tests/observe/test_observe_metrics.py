"""Unit tests for the metrics registry and the ManagerStats shim."""

from __future__ import annotations

from dataclasses import fields as dataclass_fields

import pytest

from repro.core.manager import ManagerStats
from repro.observe.metrics import (
    NULL_METRIC,
    Counter,
    Histogram,
    MetricsRegistry,
    install_stats_views,
)


class TestHistogram:
    def test_bucketing_uses_le_upper_bounds(self):
        histogram = Histogram("h", (1, 2, 4))
        for value in (0.5, 1, 1.5, 2, 3, 4, 100):
            histogram.observe(value)
        # v <= 1 | v <= 2 | v <= 4 | +Inf
        assert histogram.counts == [2, 2, 2, 1]
        assert histogram.count == 7
        assert histogram.total == pytest.approx(0.5 + 1 + 1.5 + 2 + 3 + 4 + 100)

    def test_boundary_value_lands_in_its_own_bucket(self):
        histogram = Histogram("h", (10,))
        histogram.observe(10)
        assert histogram.counts == [1, 0]

    def test_snapshot_is_detached(self):
        histogram = Histogram("h", (1, 2))
        histogram.observe(1)
        snapshot = histogram.snapshot()
        histogram.observe(1)
        assert snapshot["counts"] == [1, 0, 0]
        assert snapshot["count"] == 1

    def test_rejects_unsorted_or_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (2, 1))


class TestRegistry:
    def test_factories_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h", (1, 2)) is registry.histogram("h", (1, 2))

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_disabled_registry_hands_out_the_null_metric(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("a")
        assert counter is NULL_METRIC
        counter.inc()  # must be a harmless no-op
        registry.gauge("b").set(3.0)
        registry.histogram("c", (1,)).observe(2.0)
        assert registry.names() == []
        assert registry.as_dict() == {}

    def test_dump_and_restore_round_trip(self):
        source = MetricsRegistry()
        source.counter("c").inc(5)
        source.gauge("g").set(2.5)
        histogram = source.histogram("h", (1, 2))
        histogram.observe(0.5)
        histogram.observe(5.0)

        target = MetricsRegistry()
        bound = target.counter("c")  # pre-bound reference, like the manager
        target.restore_state(source.dump_state())
        assert bound.value == 5  # restored in place, not replaced
        assert target.gauge("g").value == 2.5
        restored = target.get("h")
        assert restored.counts == [1, 0, 1]
        assert restored.total == pytest.approx(5.5)

    def test_restore_is_a_no_op_when_disabled(self):
        registry = MetricsRegistry(enabled=False)
        registry.restore_state({"counters": {"c": 9}})
        assert registry.names() == []


class TestStatsShim:
    def test_every_stats_field_becomes_a_view(self):
        registry = MetricsRegistry()
        stats = ManagerStats()
        install_stats_views(registry, stats)
        stats.invalidate_calls = 11
        assert registry.get("manager.invalidate_calls").value == 11
        expected = {
            f"manager.{spec.name}" for spec in dataclass_fields(stats)
        }
        assert expected <= set(registry.names())

    def test_delta_is_field_introspective(self):
        """Regression: delta() must cover every field automatically."""
        stats = ManagerStats()
        earlier = stats.snapshot()
        for index, spec in enumerate(dataclass_fields(stats), start=1):
            setattr(stats, spec.name, getattr(stats, spec.name) + index)
        delta = stats.delta(earlier)
        for index, spec in enumerate(dataclass_fields(stats), start=1):
            assert getattr(delta, spec.name) == index, spec.name

    def test_snapshot_is_independent(self):
        stats = ManagerStats()
        snap = stats.snapshot()
        stats.invalidate_calls += 3
        assert snap.invalidate_calls == 0
