"""MaterializationConfig wiring, deprecation shims, report dataclasses,
and the checkpoint/recover coherence of observability state."""

from __future__ import annotations

import dataclasses

import pytest

from repro import (
    CheckpointReport,
    FlushReport,
    InstrumentationLevel,
    MaterializationConfig,
    ObjectBase,
    ObserveConfig,
    RecoveryReport,
    Strategy,
    checkpoint,
    recover,
)
from repro.core.guard import FaultPolicy


def make_point_db(**kwargs) -> ObjectBase:
    db = ObjectBase(**kwargs)
    db.define_tuple_type("Point", {"X": "float", "Y": "float"})
    db.define_operation(
        "Point", "norm", [], "float",
        lambda self: (self.X * self.X + self.Y * self.Y) ** 0.5,
    )
    return db


class TestMaterializationConfig:
    def test_config_sets_the_default_strategy(self):
        db = make_point_db(
            config=MaterializationConfig(strategy=Strategy.LAZY)
        )
        p = db.new("Point", X=3.0, Y=4.0)
        gmr = db.materialize([("Point", "norm")])
        assert gmr.strategy is Strategy.LAZY
        p.set_X(6.0)
        assert gmr.entry_state((p.oid,), "Point.norm") == "invalid"

    def test_explicit_strategy_still_wins(self):
        db = make_point_db(
            config=MaterializationConfig(strategy=Strategy.LAZY)
        )
        gmr = db.materialize(
            [("Point", "norm")], strategy=Strategy.IMMEDIATE
        )
        assert gmr.strategy is Strategy.IMMEDIATE

    def test_config_level_is_the_single_source_of_truth(self):
        db = ObjectBase(
            config=MaterializationConfig(
                level=InstrumentationLevel.SCHEMA_DEP
            )
        )
        assert db.level is InstrumentationLevel.SCHEMA_DEP
        db.level = InstrumentationLevel.NAIVE
        assert db.config.level is InstrumentationLevel.NAIVE

    def test_level_keyword_alone_stays_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            db = ObjectBase(level=InstrumentationLevel.NAIVE)
        assert db.level is InstrumentationLevel.NAIVE

    def test_level_plus_config_warns_and_level_wins(self):
        config = MaterializationConfig(
            level=InstrumentationLevel.SCHEMA_DEP
        )
        with pytest.warns(DeprecationWarning, match="level"):
            db = ObjectBase(
                level=InstrumentationLevel.NAIVE, config=config
            )
        assert db.level is InstrumentationLevel.NAIVE
        # The caller's config object is not mutated behind their back.
        assert config.level is InstrumentationLevel.SCHEMA_DEP

    def test_fault_policy_flows_from_the_config(self):
        policy = FaultPolicy(max_attempts=2, failure_threshold=7)
        db = make_point_db(
            config=MaterializationConfig(fault_policy=policy)
        )
        manager = db.gmr_manager
        assert manager.fault_policy is policy
        assert manager.guard.policy is policy
        assert manager.breaker.policy is policy


class TestDeprecationShims:
    def test_assigning_manager_fault_policy_warns_but_works(self):
        db = make_point_db()
        manager = db.gmr_manager
        replacement = FaultPolicy(max_attempts=1)
        with pytest.warns(DeprecationWarning, match="fault_policy"):
            manager.fault_policy = replacement
        assert db.config.fault_policy is replacement
        assert manager.guard.policy is replacement
        assert manager.breaker.policy is replacement

    def test_assigning_manager_batching_warns_and_disables_batching(self):
        db = make_point_db()
        p = db.new("Point", X=3.0, Y=4.0)
        db.materialize([("Point", "norm")])
        manager = db.gmr_manager
        with pytest.warns(DeprecationWarning, match="batching"):
            manager.batching = False
        assert db.config.batching is False
        with db.batch():
            p.set_X(6.0)
            # Batching off: the notification processed eagerly.
            assert len(manager._queue) == 0


class TestReportDataclasses:
    def test_flush_report_is_int_and_bool_compatible(self):
        db = make_point_db()
        p = db.new("Point", X=3.0, Y=4.0)
        db.new("Point", X=1.0, Y=2.0)
        db.materialize([("Point", "norm")])
        manager = db.gmr_manager
        manager._batch_depth += 1  # open a scope by hand to flush manually
        p.set_X(6.0)
        p.set_Y(7.0)
        manager._batch_depth -= 1
        report = manager.flush_batch()
        assert isinstance(report, FlushReport)
        assert report.events == 1  # coalesced into one event
        assert report.invalidations == 1
        assert int(report) == 1
        assert report == 1
        assert bool(report)
        empty = manager.flush_batch()
        assert empty == 0
        assert not empty

    def test_checkpoint_and_recovery_reports_are_frozen(self, tmp_path):
        db = make_point_db()
        db.new("Point", X=3.0, Y=4.0)
        db.materialize([("Point", "norm")])
        path = str(tmp_path / "checkpoint.json")
        report = checkpoint(db, path)
        assert isinstance(report, CheckpointReport)
        assert report.path == path
        assert report.objects == 1
        assert report.gmr_rows == 1
        assert report.wal_truncated is False
        with pytest.raises(dataclasses.FrozenInstanceError):
            report.objects = 99

        fresh = make_point_db()
        recovery = recover(fresh, path)
        assert isinstance(recovery, RecoveryReport)
        assert recovery.records_replayed == 0
        with pytest.raises(dataclasses.FrozenInstanceError):
            recovery.records_replayed = 99


class TestObserveStateDurability:
    def test_metrics_and_tallies_survive_checkpoint_recover(self, tmp_path):
        db = make_point_db()
        p = db.new("Point", X=3.0, Y=4.0)
        db.materialize([("Point", "norm")])
        p.set_X(6.0)
        registry = db.observe.metrics
        probes_before = registry.get("rrr.probes").value
        remats_before = registry.get("remat.count").value
        assert probes_before > 0 and remats_before > 0
        tallies_before = {
            fid: dict(tally)
            for fid, tally in db.gmr_manager.fid_tallies.items()
        }

        path = str(tmp_path / "checkpoint.json")
        checkpoint(db, path)

        fresh = make_point_db()
        recover(fresh, path)
        restored = fresh.observe.metrics
        assert restored.get("rrr.probes").value == probes_before
        assert restored.get("remat.count").value == remats_before
        hist = restored.get("wave.width")
        assert hist.count == registry.get("wave.width").count
        assert {
            fid: dict(tally)
            for fid, tally in fresh.gmr_manager.fid_tallies.items()
        } == tallies_before
        # The recovered explain report keeps counting from the old total.
        assert fresh.explain().totals["probes"] == probes_before

    def test_recovery_emits_the_trace_marker(self, tmp_path):
        db = make_point_db()
        db.new("Point", X=3.0, Y=4.0)
        db.materialize([("Point", "norm")])
        path = str(tmp_path / "checkpoint.json")
        checkpoint(db, path)

        fresh = make_point_db(
            config=MaterializationConfig(
                observe=ObserveConfig(trace=True)
            )
        )
        recover(fresh, path)
        events = fresh.observe.events()
        marker = events[-1]
        assert marker.name == "recovery"
        assert marker.seq == 1  # a fresh timeline starts at the marker
        assert marker.fields["checkpoint"] == path
        assert marker.fields["records_replayed"] == 0
