"""The single-funnel rule: all diagnostics flow through repro.observe.

No module under ``src/repro`` outside ``observe/`` may ``print(`` or use
the stdlib ``logging`` machinery — every diagnostic goes through the
trace layer or the metrics registry, so one configuration point governs
all output.  The CLI entry points (``bench/__main__.py`` and
``fuzz/__main__.py``) are the sanctioned exceptions: their job *is*
printing reports to the terminal.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

ALLOWED = {
    # The benchmark and fuzz CLIs print their reports by design.
    SRC / "bench" / "__main__.py",
    SRC / "fuzz" / "__main__.py",
}

_PRINT = re.compile(r"(?<![\w.])print\s*\(")
_LOGGING = re.compile(r"^\s*(import logging|from logging import)", re.M)


def _strip_strings_and_comments(source: str) -> str:
    """Drop docstrings/comments so prose mentioning print() passes."""
    import io
    import tokenize

    out = []
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for token in tokens:
        if token.type in (tokenize.STRING, tokenize.COMMENT):
            continue
        out.append(token.string)
    return " ".join(out)


def test_no_print_or_logging_outside_the_observe_package():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if path in ALLOWED or "observe" in path.parts:
            continue
        code = _strip_strings_and_comments(path.read_text(encoding="utf-8"))
        if _PRINT.search(code) or _LOGGING.search(code):
            offenders.append(str(path.relative_to(SRC)))
    assert offenders == [], (
        "diagnostics must flow through repro.observe; "
        f"found print()/logging in: {offenders}"
    )


def test_the_observe_package_exists_where_the_rule_points():
    assert (SRC / "observe" / "__init__.py").exists()
