"""Integration tests tying the implementation back to the paper's text.

Each test reproduces a concrete example, figure or worked computation
from the paper; the test names cite the section.
"""

import pytest

from repro import InstrumentationLevel, ObjectBase, Strategy
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_vertex,
    increase_total,
)
from repro.gomql import run_statement


class TestSection3:
    def test_gmr_table_of_section3(self, geometry_db):
        """The ⟨⟨volume, weight⟩⟩ extension with all results valid."""
        db, fixture = geometry_db
        gmr = db.query("range c: Cuboid materialize c.volume, c.weight")
        table = gmr.extension_table()
        for value in ("300", "2358", "200", "1572", "100", "1900"):
            assert value in table
        assert "False" not in table  # all valid

    def test_backward_query_of_section3(self, geometry_db):
        db, _ = geometry_db
        db.query("range c: Cuboid materialize c.volume, c.weight")
        result = db.query(
            "range c: Cuboid retrieve c "
            "where c.volume > 20.0 and c.weight > 100.0"
        )
        assert len(result) == 3

    def test_forward_query_of_section3(self, geometry_db):
        """sum(c.weight) over MyValuableCuboids."""
        db, fixture = geometry_db
        db.query("range c: Cuboid materialize c.volume, c.weight")
        total = run_statement(
            db,
            "range c: MyValuableCuboids retrieve sum(c.weight)",
            {"MyValuableCuboids": fixture.valuables},
        )
        assert total == pytest.approx(1900.0)


class TestSection4:
    def test_invalidation_happens_after_update(self, geometry_db):
        """Fig. 4: set_A' writes first, then notifies — immediate
        rematerialization reads the *new* state."""
        db, fixture = geometry_db
        gmr = db.query("range c: Cuboid materialize c.volume")
        c1 = fixture.cuboids[0]
        v1 = db.handle(db.objects.get(c1.oid).data["V1"])
        v1.set_X(-10.0)  # V1 moves: all three edge lengths from V1 change
        value, valid = gmr.result((c1.oid,), "Cuboid.volume")
        assert valid
        # length = 20, width = |(-10,0,0)-(0,6,0)| = √136,
        # height = |(-10,0,0)-(0,0,5)| = √125 — computed from the state
        # *after* the update, proving notification follows the write.
        assert value == pytest.approx(20.0 * 136.0**0.5 * 125.0**0.5)

    def test_compensation_happens_before_update(self, geometry_db):
        """Sec. 5.4: compensate is invoked before the update executes."""
        db, fixture = geometry_db
        gmr = db.materialize([("Workpieces", "total_volume")])
        observed = []

        def snooping_ca(workpieces, new_cuboid, old_total):
            # At CA time the insert has not happened yet.
            observed.append(len(workpieces))
            return old_total + new_cuboid.volume()

        db.gmr_manager.register_compensation(
            "Workpieces", "insert", ("Workpieces", "total_volume"), snooping_ca
        )
        fixture.workpieces.insert(fixture.cuboids[2])
        assert observed == [2]
        assert gmr.check_consistency(db) == []


class TestSection5:
    def test_scale_triggers_twelve_invalidations_without_hiding(self):
        """Sec. 5.3: one scale → 12 invalidations under plain OBJ_DEP."""
        db = ObjectBase(level=InstrumentationLevel.OBJ_DEP)
        build_geometry_schema(db)
        fixture = build_figure2_database(db)
        db.materialize([("Cuboid", "volume")])
        calls = []
        manager = db.gmr_manager
        original = manager.invalidate
        manager.invalidate = lambda *a, **k: (calls.append(a), original(*a, **k))[1]
        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        assert len(calls) == 12

    def test_rotate_triggers_twelve_invalidations_without_hiding(self):
        db = ObjectBase(level=InstrumentationLevel.OBJ_DEP)
        build_geometry_schema(db)
        fixture = build_figure2_database(db)
        db.materialize([("Cuboid", "volume")])
        calls = []
        manager = db.gmr_manager
        original = manager.invalidate
        manager.invalidate = lambda *a, **k: (calls.append(a), original(*a, **k))[1]
        fixture.cuboids[0].rotate("z", 0.4)
        assert len(calls) == 12

    def test_info_hiding_reduces_to_one_and_zero(self, strict_geometry_db):
        """Sec. 5.3: scale → exactly one invalidation; rotate → none."""
        db, fixture = strict_geometry_db
        db.materialize([("Cuboid", "volume")])
        calls = []
        manager = db.gmr_manager
        original = manager.invalidate
        manager.invalidate = lambda *a, **k: (calls.append(a), original(*a, **k))[1]
        fixture.cuboids[0].rotate("z", 0.4)
        assert len(calls) == 0
        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        assert len(calls) == 1

    def test_increase_total_example(self, geometry_db):
        """The paper's compensating action for Workpieces.insert."""
        db, fixture = geometry_db
        gmr = db.materialize([("Workpieces", "total_volume")])
        db.gmr_manager.register_compensation(
            "Workpieces",
            "insert",
            ("Workpieces", "total_volume"),
            increase_total,
        )
        fixture.workpieces.insert(fixture.cuboids[2])
        value, valid = gmr.result(
            (fixture.workpieces.oid,), "Workpieces.total_volume"
        )
        assert valid
        assert value == pytest.approx(600.0)


class TestSection6:
    def test_iron_restriction_opener(self, geometry_db):
        """Materialize volume/weight only for iron cuboids."""
        db, fixture = geometry_db
        gmr = db.query(
            "range c: Cuboid materialize c.volume, c.weight "
            'where c.Mat.Name = "Iron"'
        )
        assert len(gmr) == 2
        # Changing id3's material from gold to iron adapts the GMR.
        fixture.cuboids[2].set_Mat(fixture.iron)
        assert len(gmr) == 3

    def test_distance_restriction_example(self, geometry_db):
        """⟨⟨distance⟩⟩p with p ≡ c1 ≠ c2 ∧ c1.V1.X ≤ c2.V1.X."""
        from repro import RestrictionSpec, Variable

        db, fixture = geometry_db
        c1v = Variable("c1")
        c2v = Variable("c2")
        predicate = c1v.ne(c2v) & (
            Variable("c1", ("V1", "X")) <= Variable("c2", ("V1", "X"))
        )
        gmr = db.materialize(
            [("Cuboid", "distance_to")],
            restriction=RestrictionSpec(
                predicate=predicate, var_names=("c1", "c2")
            ),
        )
        # 3 cuboids, all with V1.X = 0: every ordered pair with c1 ≠ c2
        # satisfies V1.X ≤ V1.X → 6 rows.
        assert len(gmr) == 6
        for args in gmr.args():
            assert args[0] != args[1]
        assert gmr.is_complete(db)
        # distance is symmetric, so the restricted GMR still answers any
        # pair via the stored (or computed) direction.
        c1, c2 = fixture.cuboids[0], fixture.cuboids[1]
        assert c1.distance_to(c2) == pytest.approx(c2.distance_to(c1))


class TestLazyVsImmediate:
    def test_lazy_defers_until_access(self, geometry_db):
        db, fixture = geometry_db
        gmr = db.materialize([("Cuboid", "volume")], strategy=Strategy.LAZY)
        evaluations = []
        original = db.call_function
        db.call_function = lambda info, args: (
            evaluations.append(info.fid),
            original(info, args),
        )[1]
        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        assert evaluations == []  # nothing recomputed yet
        fixture.cuboids[0].volume()
        assert evaluations == ["Cuboid.volume"]

    def test_immediate_recomputes_at_update(self, geometry_db):
        db, fixture = geometry_db
        gmr = db.materialize([("Cuboid", "volume")])
        evaluations = []
        original = db.call_function
        db.call_function = lambda info, args: (
            evaluations.append(info.fid),
            original(info, args),
        )[1]
        fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
        assert evaluations.count("Cuboid.volume") == 12  # Sec. 5.3's complaint
        evaluations.clear()
        fixture.cuboids[0].volume()
        assert evaluations == []  # served from the GMR
