"""Differential property test: MDS and column storage agree.

The two physical representations of Sec. 3.3 must produce identical
answers for every operation sequence — inserts, result updates,
invalidations and range queries.
"""

from hypothesis import given, settings, strategies as st

from repro.storage.gmr_store import GMRStore

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["set", "invalidate", "remove"]),
        st.integers(min_value=0, max_value=12),   # argument id
        st.integers(min_value=0, max_value=1),    # function column
        st.integers(min_value=-50, max_value=50), # result value
    ),
    max_size=120,
)


@given(
    ops=_OPS,
    low=st.integers(min_value=-50, max_value=50),
    high=st.integers(min_value=-50, max_value=50),
)
@settings(max_examples=120, deadline=None)
def test_mds_and_columns_agree(ops, low, high):
    mds = GMRStore("m", arg_count=1, fct_count=2, storage="mds")
    columns = GMRStore("c", arg_count=1, fct_count=2, storage="columns")

    for op, arg, column, value in ops:
        args = (f"o{arg}",)
        if op == "set":
            mds.set_result(args, column, value)
            columns.set_result(args, column, value)
        elif op == "invalidate":
            assert mds.mark_invalid(args, column) == columns.mark_invalid(
                args, column
            )
        else:
            assert mds.remove_row(args) == columns.remove_row(args)

    assert len(mds) == len(columns)
    for column in range(2):
        assert mds.invalid_args(column) == columns.invalid_args(column)
        expected = sorted(columns.backward(column, low, high))
        actual = sorted(mds.backward(column, low, high))
        assert actual == expected
        assert sorted(mds.backward(column)) == sorted(columns.backward(column))
