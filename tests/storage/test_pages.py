"""Unit tests for the simulated page store and buffer manager."""

import pytest

from repro.errors import PageFullError
from repro.storage.pages import (
    BufferManager,
    CostModel,
    Page,
    PageStore,
    PAPER_BUFFER_PAGES,
)


class TestPage:
    def test_allocate_within_capacity(self):
        page = Page(page_id=0, capacity=100)
        slot = page.allocate(40)
        assert page.used == 40
        assert page.slots[slot] == 40

    def test_allocate_overflow_raises(self):
        page = Page(page_id=0, capacity=100)
        page.allocate(80)
        with pytest.raises(PageFullError):
            page.allocate(30)

    def test_free_returns_space(self):
        page = Page(page_id=0, capacity=100)
        slot = page.allocate(60)
        page.free(slot)
        assert page.used == 0
        assert page.fits(100)

    def test_free_unknown_slot_is_noop(self):
        page = Page(page_id=0, capacity=100)
        page.free(99)
        assert page.used == 0

    def test_slots_are_unique(self):
        page = Page(page_id=0, capacity=100)
        slots = {page.allocate(10) for _ in range(5)}
        assert len(slots) == 5


class TestPageStore:
    def test_same_segment_packs_together(self):
        store = PageStore(page_size=100)
        first = store.place("a", 40)
        second = store.place("a", 40)
        assert first.page_id == second.page_id

    def test_different_segments_use_different_pages(self):
        store = PageStore(page_size=100)
        first = store.place("a", 40)
        second = store.place("b", 40)
        assert first.page_id != second.page_id

    def test_new_page_on_overflow(self):
        store = PageStore(page_size=100)
        first = store.place("a", 60)
        second = store.place("a", 60)
        assert first.page_id != second.page_id

    def test_oversized_record_gets_private_page(self):
        store = PageStore(page_size=100)
        placement = store.place("a", 250)
        assert store.page(placement.page_id).used == 250

    def test_remove_frees_space(self):
        store = PageStore(page_size=100)
        placement = store.place("a", 60)
        store.remove(placement)
        assert store.page(placement.page_id).used == 0

    def test_page_count(self):
        store = PageStore(page_size=100)
        for _ in range(5):
            store.place("a", 60)
        assert len(store) == 5


class TestBufferManager:
    def test_first_touch_is_miss(self):
        buffer = BufferManager(capacity=4)
        assert buffer.touch(1) is False
        assert buffer.stats.misses == 1

    def test_second_touch_is_hit(self):
        buffer = BufferManager(capacity=4)
        buffer.touch(1)
        assert buffer.touch(1) is True
        assert buffer.stats.hits == 1

    def test_lru_eviction(self):
        buffer = BufferManager(capacity=2)
        buffer.touch(1)
        buffer.touch(2)
        buffer.touch(3)  # evicts 1
        assert buffer.touch(2) is True
        assert buffer.touch(1) is False

    def test_touch_refreshes_lru_position(self):
        buffer = BufferManager(capacity=2)
        buffer.touch(1)
        buffer.touch(2)
        buffer.touch(1)  # 2 is now LRU
        buffer.touch(3)  # evicts 2
        assert buffer.touch(1) is True
        assert buffer.touch(2) is False

    def test_dirty_eviction_counts_writeback(self):
        buffer = BufferManager(capacity=1)
        buffer.touch(1, write=True)
        buffer.touch(2)  # evicts dirty page 1
        assert buffer.stats.writebacks == 1

    def test_clean_eviction_has_no_writeback(self):
        buffer = BufferManager(capacity=1)
        buffer.touch(1)
        buffer.touch(2)
        assert buffer.stats.writebacks == 0

    def test_flush_writes_resident_dirty_pages(self):
        buffer = BufferManager(capacity=4)
        buffer.touch(1, write=True)
        buffer.touch(2, write=True)
        buffer.touch(3)
        assert buffer.flush() == 2
        assert buffer.stats.writebacks == 2

    def test_capacity_bound(self):
        buffer = BufferManager(capacity=3)
        for page in range(10):
            buffer.touch(page)
        assert buffer.resident_count == 3

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferManager(capacity=0)

    def test_reset_stats(self):
        buffer = BufferManager(capacity=2)
        buffer.touch(1)
        buffer.reset_stats()
        assert buffer.stats.misses == 0
        assert buffer.stats.logical_reads == 0

    def test_stats_delta(self):
        buffer = BufferManager(capacity=2)
        buffer.touch(1)
        snapshot = buffer.stats.snapshot()
        buffer.touch(1)
        buffer.touch(2)
        delta = buffer.stats.delta(snapshot)
        assert delta.logical_reads == 2
        assert delta.hits == 1
        assert delta.misses == 1

    def test_paper_buffer_size(self):
        # 600 kB of 4 kB pages (Sec. 7).
        assert PAPER_BUFFER_PAGES == 150


class TestCostModel:
    def test_misses_dominate(self):
        model = CostModel()
        buffer = BufferManager(capacity=2)
        buffer.touch(1)
        buffer.touch(1)
        cost = model.cost(buffer.stats)
        assert cost == pytest.approx(1.0 + 0.0001)

    def test_writebacks_count_as_io(self):
        model = CostModel()
        buffer = BufferManager(capacity=1)
        buffer.touch(1, write=True)
        buffer.touch(2)
        assert model.cost(buffer.stats) == pytest.approx(2.0 + 1.0)


class TestEvictionPaths:
    """Direct coverage of the eviction/writeback state machine."""

    def test_strict_lru_victim_order(self):
        buffer = BufferManager(capacity=3)
        for page in (1, 2, 3):
            buffer.touch(page)
        buffer.touch(1)  # order now 2, 3, 1
        buffer.touch(4)  # evicts 2
        assert not buffer.touch(2)  # miss: 2 was the victim, evicts 3
        assert not buffer.touch(3)  # miss: 3 went next
        assert buffer.touch(2)      # 2 is resident again

    def test_resident_count_never_exceeds_capacity(self):
        buffer = BufferManager(capacity=4)
        for page in range(50):
            buffer.touch(page, write=(page % 3 == 0))
        assert buffer.resident_count == 4
        assert buffer.stats.misses == 50

    def test_flush_clears_dirtiness(self):
        buffer = BufferManager(capacity=2)
        buffer.touch(1, write=True)
        buffer.touch(2, write=True)
        assert buffer.flush() == 2
        assert buffer.flush() == 0  # nothing left dirty
        buffer.touch(3)  # evicts 1 — already written back, no new writeback
        assert buffer.stats.writebacks == 2

    def test_evict_all_is_writeback_free(self):
        buffer = BufferManager(capacity=3)
        buffer.touch(1, write=True)
        buffer.touch(2)
        buffer.evict_all()
        assert buffer.resident_count == 0
        assert buffer.stats.writebacks == 0
        # The dropped dirty page does not haunt later evictions either.
        for page in (3, 4, 5, 6):
            buffer.touch(page)
        assert buffer.stats.writebacks == 0

    def test_redirtied_page_writes_back_once_per_eviction(self):
        buffer = BufferManager(capacity=1)
        buffer.touch(1, write=True)
        buffer.touch(2)  # evicts dirty 1 → writeback
        buffer.touch(1, write=True)  # re-load and re-dirty
        buffer.touch(3)  # evicts dirty 1 again → second writeback
        assert buffer.stats.writebacks == 2

    def test_eviction_interacts_with_cost_model(self):
        buffer = BufferManager(capacity=1)
        model = CostModel()
        buffer.touch(1, write=True)
        buffer.touch(2)
        expensive = model.cost(buffer.stats)
        clean = BufferManager(capacity=2)
        clean.touch(1)
        clean.touch(2)
        assert expensive > model.cost(clean.stats)
