"""Close/repair discipline of the WAL classes.

Satellite coverage for the storage-fault PR: ``close()`` must be
idempotent and exception-safe on both WAL classes (double-close and
close-after-failed-flush used to raise), ``repair()`` must truncate a
torn tail back to the last durable frame boundary, and a broken log
must refuse appends until repaired.
"""

from __future__ import annotations

import pytest

from repro.storage.wal import (
    ShardedWriteAheadLog,
    WalError,
    WriteAheadLog,
    read_records,
    read_records_merged,
    segment_path,
)

from tests._faults import FaultPlan, InjectedIOError, wal_file_factory


def test_double_close_is_a_noop(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "w.log"))
    wal.append({"kind": "txn_begin"})
    wal.close()
    wal.close()  # must not raise (double-close used to ValueError)


def test_close_after_failed_flush_does_not_raise(tmp_path):
    plan = FaultPlan().fail("flush", mode="persistent")
    wal = WriteAheadLog(
        str(tmp_path / "w.log"), file_factory=wal_file_factory(plan)
    )
    with pytest.raises(InjectedIOError):
        wal.append({"kind": "txn_begin"})
    assert wal.broken
    wal.close()  # swallowed: already-flushed appends are durable
    wal.close()


def test_close_fault_is_swallowed(tmp_path):
    plan = FaultPlan().fail("close", mode="persistent")
    wal = WriteAheadLog(
        str(tmp_path / "w.log"), file_factory=wal_file_factory(plan)
    )
    wal.append({"kind": "txn_begin"})
    wal.close()
    assert plan.fired, "the close fault must actually have fired"


def test_append_after_close_raises(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "w.log"))
    wal.close()
    with pytest.raises(WalError, match="closed"):
        wal.append({"kind": "txn_begin"})


def test_broken_log_refuses_appends_until_repaired(tmp_path):
    path = str(tmp_path / "w.log")
    plan = FaultPlan().fail("write", at=1, mode="torn", torn_bytes=5)
    wal = WriteAheadLog(path, file_factory=wal_file_factory(plan))
    wal.append({"kind": "txn_begin"})
    with pytest.raises(InjectedIOError):
        wal.append({"kind": "txn_commit"})
    assert wal.broken
    with pytest.raises(WalError, match="broken"):
        wal.append({"kind": "txn_commit"})
    wal.repair()
    assert not wal.broken
    wal.append({"kind": "txn_commit"})
    wal.close()
    # The torn bytes were truncated before the retried append landed:
    # *both* records must be readable (an unrepaired tail would have
    # cut the reader at the torn frame, silently losing the retry).
    assert [r["kind"] for r in read_records(path)] == [
        "txn_begin",
        "txn_commit",
    ]


def test_repair_on_a_healthy_log_is_a_noop(tmp_path):
    path = str(tmp_path / "w.log")
    wal = WriteAheadLog(path)
    wal.append({"kind": "txn_begin"})
    wal.repair()
    wal.append({"kind": "txn_commit"})
    wal.close()
    assert len(read_records(path)) == 2


def test_truncate_doubles_as_full_repair(tmp_path):
    path = str(tmp_path / "w.log")
    plan = FaultPlan().fail("write", at=1, mode="torn", torn_bytes=3)
    wal = WriteAheadLog(path, file_factory=wal_file_factory(plan))
    wal.append({"kind": "txn_begin"})
    with pytest.raises(InjectedIOError):
        wal.append({"kind": "txn_commit"})
    assert wal.broken
    wal.truncate()
    assert not wal.broken
    wal.append({"kind": "txn_begin"})
    wal.close()
    assert [r["kind"] for r in read_records(path)] == ["txn_begin"]


def test_sharded_double_close_is_a_noop(tmp_path):
    wal = ShardedWriteAheadLog(str(tmp_path / "w.log"), 4)
    wal.append({"kind": "txn_begin"})
    wal.close()
    wal.close()


def test_sharded_close_survives_a_failing_shard(tmp_path):
    base = str(tmp_path / "w.log")
    plan = FaultPlan().fail("close", shard=1, mode="persistent")
    wal = ShardedWriteAheadLog(base, 4, file_factory=wal_file_factory(plan))
    wal.append({"kind": "txn_begin"})
    wal.close()  # shard 1's close fault must not strand shards 2..3
    assert [event.shard for event in plan.fired] == [1]


def test_sharded_failed_append_does_not_burn_a_seq(tmp_path):
    """A refused append must not leave a permanent gap in the global
    sequence — the merge reader cuts at the first gap, so a burned seq
    would silently discard every later record of every shard."""
    base = str(tmp_path / "w.log")
    plan = FaultPlan()
    wal = ShardedWriteAheadLog(base, 4, file_factory=wal_file_factory(plan))
    wal.append({"kind": "set", "oid": 1, "attr": "X", "value": 1.0})
    # Fail the next append wherever it routes (all shards armed).
    for shard in range(4):
        plan.fail("write", shard=shard, mode="once")
    with pytest.raises(InjectedIOError):
        wal.append({"kind": "set", "oid": 2, "attr": "X", "value": 2.0})
    plan.clear()
    wal.repair()
    wal.append({"kind": "set", "oid": 3, "attr": "X", "value": 3.0})
    wal.close()
    merged = read_records_merged(base)
    assert [record["oid"] for record in merged] == [1, 3]


def test_sharded_repair_truncates_the_torn_segment(tmp_path):
    base = str(tmp_path / "w.log")
    plan = FaultPlan()
    wal = ShardedWriteAheadLog(base, 2, file_factory=wal_file_factory(plan))
    wal.append({"kind": "txn_begin"})  # marker -> segment 0
    # Markers route to segment 0, which already holds one frame: tear
    # its *second* write.
    plan.fail("write", at=1, shard=0, mode="torn", torn_bytes=4)
    with pytest.raises(InjectedIOError):
        wal.append({"kind": "txn_commit"})
    assert wal.broken
    plan.clear()
    wal.repair()
    assert not wal.broken
    wal.append({"kind": "txn_commit"})
    wal.close()
    assert [r["kind"] for r in read_records_merged(base)] == [
        "txn_begin",
        "txn_commit",
    ]
    # The torn bytes really were written before the repair: segment 0
    # must parse cleanly to exactly two frames now.
    assert len(read_records(segment_path(base, 0))) == 2
