"""Unit tests for the grid file (the paper's MDS)."""

import pytest

from repro.storage.gridfile import GridFile
from repro.storage.pages import BufferManager, PageStore


class TestBasics:
    def test_insert_and_exact_search(self):
        grid = GridFile(2, bucket_capacity=4)
        grid.insert((1.0, 2.0), "a")
        assert grid.search((1.0, 2.0)) == ["a"]
        assert grid.search((2.0, 1.0)) == []

    def test_duplicate_points(self):
        grid = GridFile(2, bucket_capacity=4)
        grid.insert((1.0, 2.0), "a")
        grid.insert((1.0, 2.0), "b")
        assert sorted(grid.search((1.0, 2.0))) == ["a", "b"]

    def test_remove(self):
        grid = GridFile(1, bucket_capacity=4)
        grid.insert((5,), "x")
        assert grid.remove((5,), "x") is True
        assert grid.remove((5,), "x") is False
        assert len(grid) == 0

    def test_dimension_mismatch(self):
        grid = GridFile(2)
        with pytest.raises(ValueError):
            grid.insert((1.0,), "a")

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            GridFile(0)

    def test_splitting_grows_scales(self):
        grid = GridFile(2, bucket_capacity=4)
        for index in range(50):
            grid.insert((float(index), float(index % 7)), index)
        assert any(grid.scales)
        assert len(grid) == 50
        for index in range(50):
            assert grid.search((float(index), float(index % 7))) == [index]

    def test_identical_points_overflow_allowed(self):
        # All points equal: no boundary can separate them; the bucket is
        # allowed to exceed capacity rather than loop forever.
        grid = GridFile(2, bucket_capacity=2)
        for index in range(10):
            grid.insert((1.0, 1.0), index)
        assert len(grid.search((1.0, 1.0))) == 10


class TestQueries:
    @pytest.fixture
    def grid(self):
        grid = GridFile(2, bucket_capacity=4)
        for x in range(10):
            for y in range(10):
                grid.insert((x, y), (x, y))
        return grid

    def test_wildcard_query_returns_everything(self, grid):
        assert len(list(grid.query([None, None]))) == 100

    def test_exact_coordinate_condition(self, grid):
        results = [value for _, value in grid.query([3, None])]
        assert sorted(results) == [(3, y) for y in range(10)]

    def test_range_condition(self, grid):
        results = [value for _, value in grid.query([(2, 4), (7, 8)])]
        expected = [(x, y) for x in (2, 3, 4) for y in (7, 8)]
        assert sorted(results) == expected

    def test_open_range(self, grid):
        results = [value for _, value in grid.query([(8, None), None])]
        assert sorted(results) == [(x, y) for x in (8, 9) for y in range(10)]

    def test_point_query_via_conditions(self, grid):
        results = list(grid.query([5, 5]))
        assert results == [((5, 5), (5, 5))]

    def test_items(self, grid):
        assert len(list(grid.items())) == 100


class TestBufferCharging:
    def test_exact_search_touches_one_bucket(self):
        store = PageStore()
        buffer = BufferManager(capacity=200)
        grid = GridFile(2, store, buffer, bucket_capacity=8)
        for x in range(20):
            for y in range(20):
                grid.insert((x, y), x * 100 + y)
        buffer.reset_stats()
        grid.search((7, 7))
        assert buffer.stats.logical_reads == 1

    def test_partial_match_touches_fewer_buckets_than_full_scan(self):
        store = PageStore()
        buffer = BufferManager(capacity=500)
        grid = GridFile(2, store, buffer, bucket_capacity=8)
        for x in range(20):
            for y in range(20):
                grid.insert((x, y), x)
        buffer.reset_stats()
        list(grid.query([(3, 4), None]))
        partial = buffer.stats.logical_reads
        buffer.reset_stats()
        list(grid.query([None, None]))
        assert partial < buffer.stats.logical_reads
