"""Unit tests for the grid file (the paper's MDS)."""

import pytest

from repro.storage.gridfile import GridFile
from repro.storage.pages import BufferManager, PageStore


class TestBasics:
    def test_insert_and_exact_search(self):
        grid = GridFile(2, bucket_capacity=4)
        grid.insert((1.0, 2.0), "a")
        assert grid.search((1.0, 2.0)) == ["a"]
        assert grid.search((2.0, 1.0)) == []

    def test_duplicate_points(self):
        grid = GridFile(2, bucket_capacity=4)
        grid.insert((1.0, 2.0), "a")
        grid.insert((1.0, 2.0), "b")
        assert sorted(grid.search((1.0, 2.0))) == ["a", "b"]

    def test_remove(self):
        grid = GridFile(1, bucket_capacity=4)
        grid.insert((5,), "x")
        assert grid.remove((5,), "x") is True
        assert grid.remove((5,), "x") is False
        assert len(grid) == 0

    def test_dimension_mismatch(self):
        grid = GridFile(2)
        with pytest.raises(ValueError):
            grid.insert((1.0,), "a")

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            GridFile(0)

    def test_splitting_grows_scales(self):
        grid = GridFile(2, bucket_capacity=4)
        for index in range(50):
            grid.insert((float(index), float(index % 7)), index)
        assert any(grid.scales)
        assert len(grid) == 50
        for index in range(50):
            assert grid.search((float(index), float(index % 7))) == [index]

    def test_identical_points_overflow_allowed(self):
        # All points equal: no boundary can separate them; the bucket is
        # allowed to exceed capacity rather than loop forever.
        grid = GridFile(2, bucket_capacity=2)
        for index in range(10):
            grid.insert((1.0, 1.0), index)
        assert len(grid.search((1.0, 1.0))) == 10


class TestQueries:
    @pytest.fixture
    def grid(self):
        grid = GridFile(2, bucket_capacity=4)
        for x in range(10):
            for y in range(10):
                grid.insert((x, y), (x, y))
        return grid

    def test_wildcard_query_returns_everything(self, grid):
        assert len(list(grid.query([None, None]))) == 100

    def test_exact_coordinate_condition(self, grid):
        results = [value for _, value in grid.query([3, None])]
        assert sorted(results) == [(3, y) for y in range(10)]

    def test_range_condition(self, grid):
        results = [value for _, value in grid.query([(2, 4), (7, 8)])]
        expected = [(x, y) for x in (2, 3, 4) for y in (7, 8)]
        assert sorted(results) == expected

    def test_open_range(self, grid):
        results = [value for _, value in grid.query([(8, None), None])]
        assert sorted(results) == [(x, y) for x in (8, 9) for y in range(10)]

    def test_point_query_via_conditions(self, grid):
        results = list(grid.query([5, 5]))
        assert results == [((5, 5), (5, 5))]

    def test_items(self, grid):
        assert len(list(grid.items())) == 100


class TestBufferCharging:
    def test_exact_search_touches_one_bucket(self):
        store = PageStore()
        buffer = BufferManager(capacity=200)
        grid = GridFile(2, store, buffer, bucket_capacity=8)
        for x in range(20):
            for y in range(20):
                grid.insert((x, y), x * 100 + y)
        buffer.reset_stats()
        grid.search((7, 7))
        assert buffer.stats.logical_reads == 1

    def test_partial_match_touches_fewer_buckets_than_full_scan(self):
        store = PageStore()
        buffer = BufferManager(capacity=500)
        grid = GridFile(2, store, buffer, bucket_capacity=8)
        for x in range(20):
            for y in range(20):
                grid.insert((x, y), x)
        buffer.reset_stats()
        list(grid.query([(3, 4), None]))
        partial = buffer.stats.logical_reads
        buffer.reset_stats()
        list(grid.query([None, None]))
        assert partial < buffer.stats.logical_reads


class TestSplitPaths:
    """Direct coverage of the region/grid split machinery."""

    def test_region_split_runs_after_grid_refinement(self):
        # Capacity 2 with collinear-ish points forces a grid split whose
        # remap leaves a two-cell bucket, which then region-splits.
        grid = GridFile(2, bucket_capacity=2)
        points = [(float(i), float(i % 3)) for i in range(12)]
        for index, point in enumerate(points):
            grid.insert(point, index)
        assert len(grid) == 12
        buckets = {id(bucket) for bucket in grid._directory.values()}
        assert len(buckets) > 1, "splits must have created new buckets"
        for index, point in enumerate(points):
            assert index in grid.search(point)

    def test_directory_remap_preserves_every_entry(self):
        grid = GridFile(3, bucket_capacity=3)
        points = [
            (float(x), float(y), float(z))
            for x in range(3)
            for y in range(3)
            for z in range(2)
        ]
        for point in points:
            grid.insert(point, point)
        # Every cell in the remapped directory agrees with its bucket.
        for cell, bucket in grid._directory.items():
            assert cell in bucket.cells
        recovered = sorted(point for point, _ in grid.items())
        assert recovered == sorted(points)

    def test_split_uses_numeric_midpoints_when_values_sit_on_scales(self):
        grid = GridFile(1, bucket_capacity=2)
        # 0.0 and 1.0 become scale boundaries; further inserts of the
        # same two values can only be separated by the 0.5 midpoint.
        for index in range(8):
            grid.insert((float(index % 2),), index)
        assert len(grid) == 8
        assert len(grid.search((0.0,))) == 4
        assert len(grid.search((1.0,))) == 4
        assert any(0.0 < s < 1.0 for s in grid.scales[0]), (
            "expected a midpoint boundary between the duplicate clusters"
        )

    def test_string_scales_split(self):
        grid = GridFile(1, bucket_capacity=2)
        for name in ["iron", "gold", "copper", "zinc", "tin", "lead"]:
            grid.insert((name,), name)
        assert len(grid.scales[0]) >= 1
        for name in ["iron", "gold", "copper", "zinc", "tin", "lead"]:
            assert grid.search((name,)) == [name]

    def test_remove_after_heavy_splitting(self):
        grid = GridFile(2, bucket_capacity=2)
        points = [(float(x), float(y)) for x in range(5) for y in range(5)]
        for point in points:
            grid.insert(point, point)
        for point in points[::2]:
            assert grid.remove(point, point)
        assert len(grid) == len(points) - len(points[::2])
        for point in points[::2]:
            assert grid.search(point) == []
        for point in points[1::2]:
            assert grid.search(point) == [point]

    def test_query_matches_brute_force_after_splits(self):
        grid = GridFile(2, bucket_capacity=3)
        points = [((i * 7) % 11 + 0.5, (i * 3) % 5 + 0.25) for i in range(40)]
        for index, point in enumerate(points):
            grid.insert(point, index)
        conditions = [(2.0, 8.0), None]
        expected = sorted(
            index
            for index, point in enumerate(points)
            if 2.0 <= point[0] <= 8.0
        )
        got = sorted(value for _, value in grid.query(conditions))
        assert got == expected

    def test_duplicate_overflow_then_separable_insert_splits(self):
        grid = GridFile(2, bucket_capacity=2)
        for index in range(5):
            grid.insert((1.0, 1.0), index)  # overflow bucket, no split
        scales_before = [list(s) for s in grid.scales]
        grid.insert((9.0, 9.0), "far")  # now separable: split happens
        assert grid.search((9.0, 9.0)) == ["far"]
        assert len(grid.search((1.0, 1.0))) == 5
        assert [list(s) for s in grid.scales] != scales_before
