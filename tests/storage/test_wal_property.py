"""Property-based durability: random update/batch/transaction/crash
sequences always converge to the committed-prefix state.

The machine drives two bases in lockstep — one WAL-attached (the
process that will "crash"), one plain reference — through a random
interleaving of elementary updates, batch scopes, transactions and
checkpoints.  At any point a ``crash_and_recover`` rule snapshots the
WAL bytes (optionally appending a torn-garbage tail), recovers a fresh
base from checkpoint + log, and requires digest equality with the
reference; the recovered base then *becomes* the process and the
sequence continues, so recovery composes with further updates and later
crashes (multi-generation recovery).
"""

from __future__ import annotations

import os
import shutil
import tempfile

from hypothesis import HealthCheck, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
    run_state_machine_as_test,
)

from repro import ObjectBase, Strategy, WriteAheadLog, base_state, recover
from repro.gom.oid import Oid
from repro.persistence import checkpoint

_STRATEGIES = [Strategy.IMMEDIATE, Strategy.LAZY, Strategy.DEFERRED]
_VALUES = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def _schema(db: ObjectBase) -> None:
    db.define_tuple_type("Point", {"X": "float", "Y": "float"})
    db.define_operation(
        "Point",
        "norm",
        [],
        "float",
        lambda self: (self.X * self.X + self.Y * self.Y) ** 0.5,
    )
    db.define_set_type("Cluster", "Point")


class DurabilityMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.directory = tempfile.mkdtemp(prefix="wal-machine-")
        self.generation = 0
        self.batch_scopes: tuple | None = None  # (walled scope, reference scope)

    def _both(self, action) -> None:
        action(self.walled)
        action(self.reference)

    @initialize(strategy=st.sampled_from(_STRATEGIES))
    def setup(self, strategy) -> None:
        self.ckpt = os.path.join(self.directory, "checkpoint.json")
        self.log_path = os.path.join(self.directory, "wal.log")
        self.walled = ObjectBase()
        self.reference = ObjectBase()
        self.oids: list[int] = []
        self.cluster_oid: int | None = None
        for db in (self.walled, self.reference):
            _schema(db)
            points = [
                db.new("Point", X=float(i), Y=float(-i)) for i in range(3)
            ]
            cluster = db.new_collection("Cluster", points[:2])
            db.materialize([("Point", "norm")], strategy=strategy)
            self.cluster_oid = cluster.oid.value
        self.oids = [
            h.oid.value for h in self.walled.extension("Point")
        ]
        self.walled.attach_wal(WriteAheadLog(self.log_path))
        checkpoint(self.walled, self.ckpt)

    # -- elementary updates (mirrored) -----------------------------------------

    @rule(index=st.integers(min_value=0), attr=st.sampled_from(["X", "Y"]), value=_VALUES)
    def set_coordinate(self, index, attr, value) -> None:
        if not self.oids:
            return
        oid = Oid(self.oids[index % len(self.oids)])
        self._both(lambda db: db.set_attr(oid, attr, value))

    @rule(x=_VALUES, y=_VALUES)
    def create_point(self, x, y) -> None:
        created = []
        self._both(lambda db: created.append(db.new("Point", X=x, Y=y)))
        assert created[0].oid == created[1].oid, "OID sequences must mirror"
        self.oids.append(created[0].oid.value)

    @rule(index=st.integers(min_value=0))
    def delete_point(self, index) -> None:
        if len(self.oids) <= 1:
            return
        oid = Oid(self.oids.pop(index % len(self.oids)))
        self._both(lambda db: db.delete(oid))

    @rule(index=st.integers(min_value=0))
    def cluster_insert(self, index) -> None:
        if not self.oids:
            return
        element = Oid(self.oids[index % len(self.oids)])
        cluster = Oid(self.cluster_oid)
        self._both(lambda db: db.collection_insert(cluster, element))

    @rule(index=st.integers(min_value=0))
    def cluster_remove(self, index) -> None:
        if not self.oids:
            return
        element = Oid(self.oids[index % len(self.oids)])
        cluster = Oid(self.cluster_oid)
        self._both(lambda db: db.collection_remove(cluster, element))

    # -- transactions (self-contained per rule) --------------------------------

    @rule(
        updates=st.lists(
            st.tuples(st.integers(min_value=0), st.sampled_from(["X", "Y"]), _VALUES),
            min_size=1,
            max_size=4,
        ),
        abort=st.booleans(),
    )
    def transaction(self, updates, abort) -> None:
        if not self.oids:
            return
        for db in (self.walled, self.reference):
            with db.transaction() as txn:
                for index, attr, value in updates:
                    db.set_attr(Oid(self.oids[index % len(self.oids)]), attr, value)
                if abort:
                    txn.abort()

    # -- batch scopes (kept in lockstep) ---------------------------------------

    @precondition(lambda self: self.batch_scopes is None)
    @rule()
    def open_batch(self) -> None:
        left, right = self.walled.batch(), self.reference.batch()
        left.__enter__()
        right.__enter__()
        self.batch_scopes = (left, right)

    @precondition(lambda self: self.batch_scopes is not None)
    @rule()
    def close_batch(self) -> None:
        left, right = self.batch_scopes
        self.batch_scopes = None
        left.__exit__(None, None, None)
        right.__exit__(None, None, None)

    # -- durability ------------------------------------------------------------

    @precondition(lambda self: self.batch_scopes is None)
    @rule()
    def take_checkpoint(self) -> None:
        checkpoint(self.walled, self.ckpt)

    @rule(garbage=st.binary(max_size=24))
    def crash_and_recover(self, garbage) -> None:
        self.generation += 1
        # The crash loses the open batch scope; the reference finishes
        # its own scope (recovery flushes+closes the logged one).
        if self.batch_scopes is not None:
            _, right = self.batch_scopes
            self.batch_scopes = None
            right.__exit__(None, None, None)
        survivor = os.path.join(
            self.directory, f"wal-gen{self.generation}.log"
        )
        shutil.copyfile(self.log_path, survivor)
        torn = survivor + ".torn"
        with open(survivor, "rb") as handle:
            payload = handle.read()
        with open(torn, "wb") as handle:
            handle.write(payload + garbage)

        recovered = ObjectBase()
        _schema(recovered)
        recover(recovered, self.ckpt, torn)

        left, right = base_state(recovered), base_state(self.reference)
        for key in left:
            assert left[key] == right[key], (
                f"gen {self.generation}, {key!r}: {left[key]!r} != {right[key]!r}"
            )

        # The recovered base becomes the process.  Recovery *consumed*
        # the log tail (open scopes closed, uncommitted suffix dropped),
        # so service resumes behind a fresh checkpoint + empty log — the
        # old log must never be extended, or later replays would see
        # post-recovery records inside the scope recovery already closed.
        self.log_path = os.path.join(
            self.directory, f"wal-gen{self.generation}-live.log"
        )
        recovered.attach_wal(WriteAheadLog(self.log_path))
        checkpoint(recovered, self.ckpt)
        self.walled = recovered

    @invariant()
    def object_counts_mirror(self) -> None:
        if not hasattr(self, "walled"):
            return
        assert len(self.walled.objects) == len(self.reference.objects)

    def teardown(self) -> None:
        shutil.rmtree(self.directory, ignore_errors=True)


def test_durability_state_machine() -> None:
    run_state_machine_as_test(
        DurabilityMachine,
        settings=settings(
            max_examples=15,
            stateful_step_count=20,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        ),
    )
