"""Property-based tests: the grid file behaves like a point multiset."""

from hypothesis import given, settings, strategies as st

from repro.storage.gridfile import GridFile

_points = st.lists(
    st.tuples(
        st.integers(min_value=-20, max_value=20),
        st.integers(min_value=-20, max_value=20),
    ),
    max_size=200,
)


@given(points=_points, capacity=st.integers(min_value=2, max_value=16))
@settings(max_examples=100, deadline=None)
def test_exact_search_after_inserts(points, capacity):
    grid = GridFile(2, bucket_capacity=capacity)
    for index, point in enumerate(points):
        grid.insert(point, index)
    assert len(grid) == len(points)
    for index, point in enumerate(points):
        assert index in grid.search(point)
    # Every stored entry is found by a full wildcard query exactly once.
    values = sorted(value for _, value in grid.query([None, None]))
    assert values == list(range(len(points)))


@given(
    points=_points,
    low_x=st.integers(min_value=-20, max_value=20),
    high_x=st.integers(min_value=-20, max_value=20),
    y_exact=st.integers(min_value=-20, max_value=20),
)
@settings(max_examples=100, deadline=None)
def test_partial_match_equals_filter(points, low_x, high_x, y_exact):
    grid = GridFile(2, bucket_capacity=4)
    for index, point in enumerate(points):
        grid.insert(point, index)
    result = sorted(value for _, value in grid.query([(low_x, high_x), y_exact]))
    expected = sorted(
        index
        for index, (x, y) in enumerate(points)
        if low_x <= x <= high_x and y == y_exact
    )
    assert result == expected


@given(points=_points)
@settings(max_examples=60, deadline=None)
def test_insert_remove_roundtrip(points):
    grid = GridFile(2, bucket_capacity=4)
    for index, point in enumerate(points):
        grid.insert(point, index)
    for index, point in enumerate(points):
        assert grid.remove(point, index)
    assert len(grid) == 0
    assert list(grid.query([None, None])) == []
