"""Layout differential suite: columnar vs. rows, same logical GMR.

The columnar store is a physical re-layout of the GMR — bit-for-bit
logical equivalence with the row store is its entire contract.  This
suite replays the Fig. 7 cuboid workload and every checked-in fuzz
corpus script under ``layout="columnar"`` and ``layout="rows"`` and
requires identical extensions, identical ``explain()`` rows, and
identical checkpoint → crash → recover digests.
"""

import dataclasses

import pytest

from repro.bench.cuboid import CuboidApplication, CuboidConfig
from repro.bench.runner import WITH_GMR
from repro.bench.workload import OperationMix
from repro.core.gmr import GMR
from repro.errors import GMRDefinitionError
from repro.gom.database import ObjectBase
from repro.observe.config import MaterializationConfig
from repro.persistence import base_state, verify_recovery
from repro.storage.gmr_store import ColumnarGMRStore, GMRStore
from repro.util.rng import DeterministicRng

LAYOUTS = ("rows", "columnar")


def _layout_config(layout: str, **kwargs) -> MaterializationConfig:
    return MaterializationConfig(layout=layout, **kwargs)


def _store_digest(gmr) -> dict:
    """Everything the logical GMR contract promises, canonically ordered."""
    rows = []
    for row in sorted(gmr.store.rows(), key=lambda r: repr(r.args)):
        rows.append(
            (
                row.args,
                tuple(row.results),
                tuple(row.valid),
                tuple(row.error),
            )
        )
    n_fids = len(gmr.fids)
    return {
        "len": len(gmr.store),
        "rows": rows,
        "args": sorted(gmr.store.args(), key=repr),
        "invalid": [
            sorted(gmr.store.invalid_args(i), key=repr)
            for i in range(n_fids)
        ],
        "errors": [
            sorted(gmr.store.error_args(i), key=repr) for i in range(n_fids)
        ],
    }


def _explain_digest(gmr) -> list:
    report = gmr.explain()
    return [
        (
            section.fid,
            section.valid,
            section.invalid,
            section.error,
            sorted(
                (row.args, row.state, row.note) for row in section.rows
            ),
        )
        for section in report.fids
    ]


# ---------------------------------------------------------------------------
# Store selection
# ---------------------------------------------------------------------------


class TestLayoutSelection:
    def test_layout_picks_the_store_class(self):
        db_rows = ObjectBase(config=_layout_config("rows"))
        db_col = ObjectBase(config=_layout_config("columnar"))
        from repro.domains.geometry import build_geometry_schema

        for db, store_cls in (
            (db_rows, GMRStore),
            (db_col, ColumnarGMRStore),
        ):
            build_geometry_schema(db)
            gmr = db.materialize([("Cuboid", "volume")])
            assert type(gmr.store) is store_cls
            assert gmr.layout == gmr.store.layout

    def test_unknown_layout_is_rejected(self):
        with pytest.raises(ValueError):
            MaterializationConfig(layout="diagonal")
        db = ObjectBase()
        from repro.domains.geometry import build_geometry_schema

        build_geometry_schema(db)
        with pytest.raises(GMRDefinitionError):
            db.materialize([("Cuboid", "volume")], layout="diagonal")


# ---------------------------------------------------------------------------
# Fig. 7 cuboid workload, both layouts in lockstep
# ---------------------------------------------------------------------------


def _run_fig7_app(layout: str) -> CuboidApplication:
    application = CuboidApplication(
        WITH_GMR,
        CuboidConfig(
            cuboids=60,
            seed=7,
            materialization=_layout_config(layout),
        ),
    )
    mix = OperationMix(
        queries=[(0.5, "Qbw"), (0.5, "Qfw")],
        updates=[(0.5, "I"), (0.5, "S")],
        update_probability=0.5,
        operations=80,
    )
    application.run_mix(mix, DeterministicRng(7).fork(1000))
    return application


class TestFig7Differential:
    @pytest.fixture(scope="class")
    def apps(self):
        return {layout: _run_fig7_app(layout) for layout in LAYOUTS}

    def test_extensions_identical(self, apps):
        digests = {
            layout: _store_digest(app.gmr) for layout, app in apps.items()
        }
        assert digests["columnar"] == digests["rows"]

    def test_explain_rows_identical(self, apps):
        explains = {
            layout: _explain_digest(app.gmr) for layout, app in apps.items()
        }
        assert explains["columnar"] == explains["rows"]

    def test_queries_agree_after_the_mix(self, apps):
        rng = {layout: DeterministicRng(99) for layout in LAYOUTS}
        for _ in range(25):
            answers = {
                layout: (
                    app.q_forward(rng[layout]),
                    app.q_backward(rng[layout]),
                )
                for layout, app in apps.items()
            }
            assert answers["columnar"] == answers["rows"]

    def test_backward_index_agrees(self, apps):
        backwards = {
            layout: sorted(
                (args for args, _row in app.gmr.store.backward(0, 100.0, 400.0)),
                key=repr,
            )
            for layout, app in apps.items()
        }
        assert backwards["columnar"] == backwards["rows"]


# ---------------------------------------------------------------------------
# Fuzz corpus, both layouts in lockstep
# ---------------------------------------------------------------------------


def _corpus_scripts():
    import os

    corpus = os.path.join(
        os.path.dirname(__file__), os.pardir, "gomql", "corpus"
    )
    return sorted(
        name for name in os.listdir(corpus) if name.endswith(".json")
    )


class TestCorpusDifferential:
    @pytest.mark.parametrize("name", _corpus_scripts())
    def test_corpus_replay_layout_invariant(self, name):
        import os

        from repro.fuzz import script_from_json
        from repro.fuzz.replay import Replayer, results_equal

        path = os.path.join(
            os.path.dirname(__file__), os.pardir, "gomql", "corpus", name
        )
        with open(path, encoding="utf-8") as fh:
            script = script_from_json(fh.read())
        results = {
            layout: Replayer(
                script, config=_layout_config(layout, workers=0)
            ).run()
            for layout in LAYOUTS
        }
        rows_result, col_result = results["rows"], results["columnar"]
        assert col_result.violations == rows_result.violations == []
        assert len(col_result.queries) == len(rows_result.queries)
        for i, (col, ref) in enumerate(
            zip(col_result.queries, rows_result.queries)
        ):
            assert results_equal(col, ref), f"query #{i} diverged in {name}"
        assert results_equal(
            {"extensions": col_result.extensions},
            {"extensions": rows_result.extensions},
        ), f"extensions diverged in {name}"


# ---------------------------------------------------------------------------
# Durability: checkpoint → crash → recover
# ---------------------------------------------------------------------------


def _build_geometry_base(layout: str) -> ObjectBase:
    from repro.domains.geometry import (
        build_geometry_schema,
        create_cuboid,
        create_material,
    )

    db = ObjectBase(config=_layout_config(layout))
    build_geometry_schema(db)
    iron = create_material(db, "iron", 0.78)
    db._cuboids = [
        create_cuboid(
            db,
            origin=(float(i), 0.0, 0.0),
            dims=(1.0 + i % 3, 2.0, 1.0),
            material=iron,
            value=float(i),
            cuboid_id=i,
        )
        for i in range(12)
    ]
    db.materialize(
        [("Cuboid", "volume"), ("Cuboid", "weight")],
    )
    return db


def _mutate(db: ObjectBase) -> None:
    from repro.domains.geometry import create_vertex

    factor = create_vertex(db, 1.5, 1.0, 1.0)
    for cuboid in db._cuboids[::3]:
        cuboid.scale(factor)


class TestRecoveryDifferential:
    def test_recovery_preserves_columnar_layout(self):
        from repro.domains.geometry import build_geometry_schema

        db = _build_geometry_base("columnar")
        recovered = verify_recovery(
            db, build_geometry_schema, mutate=_mutate
        )
        for gmr in recovered.gmr_manager.gmrs():
            assert type(gmr.store) is ColumnarGMRStore
            assert gmr.layout == "columnar"

    def test_recovered_digests_identical_across_layouts(self):
        from repro.domains.geometry import build_geometry_schema

        digests = {}
        for layout in LAYOUTS:
            db = _build_geometry_base(layout)
            recovered = verify_recovery(
                db, build_geometry_schema, mutate=_mutate
            )
            digests[layout] = base_state(recovered)
        assert digests["columnar"] == digests["rows"]
