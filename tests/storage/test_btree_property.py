"""Property-based tests: the B+ tree behaves like a sorted multimap."""

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.storage.btree import BPlusTree

# (op, key, value) triples: insert or remove.
_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "remove"]),
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=300,
)


@given(ops=_ops, order=st.integers(min_value=3, max_value=8))
@settings(max_examples=120, deadline=None)
def test_matches_reference_multimap(ops, order):
    tree = BPlusTree(order=order)
    reference: dict[int, list[int]] = defaultdict(list)
    for op, key, value in ops:
        if op == "insert":
            tree.insert(key, value)
            reference[key].append(value)
        else:
            expected = value in reference[key]
            assert tree.remove(key, value) == expected
            if expected:
                reference[key].remove(value)
    tree.check_invariants()
    live = {key: values for key, values in reference.items() if values}
    assert len(tree) == sum(len(values) for values in live.values())
    for key, values in live.items():
        assert sorted(tree.search(key)) == sorted(values)
    assert list(tree.keys()) == sorted(live)


@given(
    keys=st.lists(st.integers(min_value=-100, max_value=100), max_size=200),
    low=st.integers(min_value=-100, max_value=100),
    high=st.integers(min_value=-100, max_value=100),
    include_low=st.booleans(),
    include_high=st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_range_scan_matches_filter(keys, low, high, include_low, include_high):
    tree = BPlusTree(order=4)
    for key in keys:
        tree.insert(key, key)
    scanned = [
        key
        for key, _ in tree.range_scan(
            low, high, include_low=include_low, include_high=include_high
        )
    ]
    expected = sorted(
        key
        for key in keys
        if (key > low or (include_low and key == low))
        and (key < high or (include_high and key == high))
    )
    assert scanned == expected
