"""Unit tests for the hash index."""

from repro.storage.hashindex import HashIndex
from repro.storage.pages import BufferManager, PageStore


class TestHashIndex:
    def test_insert_search(self):
        index = HashIndex()
        index.insert(("a", 1), "v1")
        assert index.search(("a", 1)) == ["v1"]
        assert index.search(("a", 2)) == []

    def test_duplicates(self):
        index = HashIndex()
        index.insert("k", 1)
        index.insert("k", 2)
        assert sorted(index.search("k")) == [1, 2]

    def test_remove_specific_value(self):
        index = HashIndex()
        index.insert("k", 1)
        index.insert("k", 2)
        assert index.remove("k", 1) is True
        assert index.search("k") == [2]
        assert index.remove("k", 1) is False

    def test_remove_all(self):
        index = HashIndex()
        for value in range(5):
            index.insert("k", value)
        index.insert("other", 99)
        assert index.remove_all("k") == 5
        assert index.search("k") == []
        assert index.search("other") == [99]

    def test_contains_key(self):
        index = HashIndex()
        index.insert(7, "x")
        assert index.contains_key(7)
        assert not index.contains_key(8)

    def test_growth_preserves_entries(self):
        index = HashIndex()
        for key in range(1000):
            index.insert(key, key * 2)
        assert len(index) == 1000
        for key in range(1000):
            assert index.search(key) == [key * 2]

    def test_items(self):
        index = HashIndex()
        index.insert("a", 1)
        index.insert("b", 2)
        assert sorted(index.items()) == [("a", 1), ("b", 2)]

    def test_buffer_charging(self):
        store = PageStore()
        buffer = BufferManager(capacity=100)
        index = HashIndex(store, buffer)
        index.insert("k", 1)
        before = buffer.stats.logical_reads
        index.search("k")
        assert buffer.stats.logical_reads == before + 1
