"""Property test: the buffer manager implements exact LRU with
write-back-on-eviction, checked against a reference model."""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.storage.pages import BufferManager

_ACCESSES = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30), st.booleans()),
    max_size=400,
)


@given(accesses=_ACCESSES, capacity=st.integers(min_value=1, max_value=8))
@settings(max_examples=150, deadline=None)
def test_matches_reference_lru(accesses, capacity):
    buffer = BufferManager(capacity=capacity)

    resident: OrderedDict[int, bool] = OrderedDict()  # page -> dirty
    hits = misses = writebacks = 0
    for page, write in accesses:
        expected_hit = page in resident
        if expected_hit:
            hits += 1
            resident.move_to_end(page)
            if write:
                resident[page] = True
        else:
            misses += 1
            resident[page] = write
            if len(resident) > capacity:
                _evicted, dirty = resident.popitem(last=False)
                if dirty:
                    writebacks += 1
        assert buffer.touch(page, write=write) == expected_hit

    assert buffer.stats.hits == hits
    assert buffer.stats.misses == misses
    assert buffer.stats.writebacks == writebacks
    assert buffer.resident_count == len(resident)
    assert buffer.stats.logical_reads == len(accesses)
    assert buffer.stats.logical_writes == sum(1 for _, w in accesses if w)
