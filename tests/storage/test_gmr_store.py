"""Unit tests for the GMR physical store (both MDS and column modes)."""

import pytest

from repro.storage.gmr_store import GMRStore, MDS_DIMENSION_LIMIT


@pytest.fixture(params=["mds", "columns"])
def store(request):
    return GMRStore("test", arg_count=1, fct_count=2, storage=request.param)


class TestRowLifecycle:
    def test_ensure_row_starts_invalid(self, store):
        row = store.ensure_row(("o1",))
        assert row.valid == [False, False]
        assert row.results == [None, None]
        assert store.invalid_args(0) == {("o1",)}

    def test_ensure_row_idempotent(self, store):
        first = store.ensure_row(("o1",))
        second = store.ensure_row(("o1",))
        assert first is second
        assert len(store) == 1

    def test_get_missing(self, store):
        assert store.get(("nope",)) is None

    def test_remove_row(self, store):
        store.set_result(("o1",), 0, 1.0)
        assert store.remove_row(("o1",)) is True
        assert store.get(("o1",)) is None
        assert store.remove_row(("o1",)) is False

    def test_remove_clears_invalid_tracking(self, store):
        store.ensure_row(("o1",))
        store.remove_row(("o1",))
        assert store.invalid_args(0) == set()


class TestValidity:
    def test_set_result_validates(self, store):
        store.set_result(("o1",), 0, 10.0)
        row = store.get(("o1",))
        assert row.valid == [True, False]
        assert row.results[0] == 10.0
        assert not store.has_invalid(0)

    def test_mark_invalid(self, store):
        store.set_result(("o1",), 0, 10.0)
        assert store.mark_invalid(("o1",), 0) is True
        assert store.get(("o1",)).valid[0] is False
        assert store.invalid_args(0) == {("o1",)}

    def test_mark_invalid_already_invalid(self, store):
        store.ensure_row(("o1",))
        assert store.mark_invalid(("o1",), 0) is False

    def test_mark_invalid_missing_row(self, store):
        assert store.mark_invalid(("ghost",), 0) is False

    def test_revalidation_roundtrip(self, store):
        store.set_result(("o1",), 0, 1.0)
        store.mark_invalid(("o1",), 0)
        store.set_result(("o1",), 0, 2.0)
        assert store.get(("o1",)).results[0] == 2.0
        assert store.get(("o1",)).valid[0] is True


class TestBackward:
    @pytest.fixture(params=["mds", "columns"])
    def filled(self, request):
        store = GMRStore("bw", arg_count=1, fct_count=2, storage=request.param)
        for index in range(20):
            store.set_result((f"o{index}",), 0, float(index))
            store.set_result((f"o{index}",), 1, float(index * 10))
        return store

    def test_range(self, filled):
        hits = sorted(value for value, _ in filled.backward(0, 5.0, 8.0))
        assert hits == [5.0, 6.0, 7.0, 8.0]

    def test_exclusive_bounds(self, filled):
        hits = sorted(
            value
            for value, _ in filled.backward(
                0, 5.0, 8.0, include_low=False, include_high=False
            )
        )
        assert hits == [6.0, 7.0]

    def test_second_function_column(self, filled):
        hits = sorted(value for value, _ in filled.backward(1, 100.0, 120.0))
        assert hits == [100.0, 110.0, 120.0]

    def test_invalid_rows_not_returned(self, filled):
        filled.mark_invalid(("o6",), 0)
        hits = sorted(value for value, _ in filled.backward(0, 5.0, 8.0))
        assert hits == [5.0, 7.0, 8.0]

    def test_partially_valid_row_still_found(self, filled):
        # Invalidate f1 but not f0: f0's backward query must still see it.
        filled.mark_invalid(("o6",), 1)
        hits = sorted(value for value, _ in filled.backward(0, 5.0, 8.0))
        assert hits == [5.0, 6.0, 7.0, 8.0]

    def test_update_moves_entry(self, filled):
        filled.set_result(("o6",), 0, 100.0)
        hits = [value for value, _ in filled.backward(0, 99.0, 101.0)]
        assert hits == [100.0]
        assert all(value != 6.0 for value, _ in filled.backward(0, 5.0, 8.0))

    def test_removed_row_not_returned(self, filled):
        filled.remove_row(("o6",))
        hits = sorted(value for value, _ in filled.backward(0, 5.0, 8.0))
        assert hits == [5.0, 7.0, 8.0]


class TestStorageSelection:
    def test_auto_prefers_mds_for_low_arity(self):
        store = GMRStore("x", arg_count=1, fct_count=2, storage="auto")
        assert store.storage == "mds"
        assert 1 + 2 <= MDS_DIMENSION_LIMIT

    def test_auto_uses_columns_for_high_arity(self):
        store = GMRStore("x", arg_count=3, fct_count=3, storage="auto")
        assert store.storage == "columns"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            GMRStore("x", arg_count=1, fct_count=1, storage="magic")

    def test_non_scalar_results_supported(self):
        store = GMRStore("x", arg_count=1, fct_count=1, storage="mds")
        store.set_result(("o1",), 0, ("complex", "value"))
        assert store.get(("o1",)).results[0] == ("complex", "value")
        # Non-scalar results are simply absent from range queries.
        assert list(store.backward(0, None, None)) == []
