"""Unit tests for the WAL frame codec and committed-prefix scan."""

import struct

import pytest

from repro.gom.oid import Oid
from repro.storage.wal import (
    WalError,
    WriteAheadLog,
    committed_prefix,
    decode_value,
    encode_frame,
    encode_value,
    iter_frames,
    read_records,
)


class TestValueCodec:
    def test_oid_round_trip(self):
        assert decode_value(encode_value(Oid(7))) == Oid(7)

    def test_atomics_pass_through(self):
        for value in (1, 2.5, "x", True, None):
            assert decode_value(encode_value(value)) == value

    def test_unrepresentable_value_rejected(self):
        with pytest.raises(WalError):
            encode_value(object())


class TestFrames:
    def test_round_trip(self):
        records = [
            {"kind": "set", "oid": 1, "attr": "X", "value": 2.0},
            {"kind": "create", "oid": 9, "type": "Point", "data": {}},
        ]
        data = b"".join(encode_frame(r) for r in records)
        assert [r for _, r in iter_frames(data)] == records

    def test_torn_header_stops_scan(self):
        data = encode_frame({"kind": "txn_begin"})
        assert [r for _, r in iter_frames(data + b"\x00\x00")] == [
            {"kind": "txn_begin"}
        ]

    def test_torn_payload_stops_scan(self):
        good = encode_frame({"kind": "txn_begin"})
        torn = encode_frame({"kind": "set", "oid": 1, "attr": "X", "value": 1.0})
        data = good + torn[:-3]
        assert [r for _, r in iter_frames(data)] == [{"kind": "txn_begin"}]

    def test_corrupt_checksum_stops_scan(self):
        good = encode_frame({"kind": "txn_begin"})
        bad = bytearray(encode_frame({"kind": "txn_commit"}))
        bad[-1] ^= 0xFF  # flip a payload byte: CRC no longer matches
        data = good + bytes(bad) + good
        # The scan must stop at the corrupt frame, not resynchronize.
        assert [r for _, r in iter_frames(data)] == [{"kind": "txn_begin"}]

    def test_absurd_length_treated_as_corruption(self):
        data = struct.pack(">II", 1 << 30, 0) + b"xx"
        assert list(iter_frames(data)) == []

    def test_offsets_are_frame_starts(self):
        first = encode_frame({"kind": "txn_begin"})
        second = encode_frame({"kind": "txn_commit"})
        offsets = [offset for offset, _ in iter_frames(first + second)]
        assert offsets == [0, len(first)]


class TestCommittedPrefix:
    def test_plain_records_are_durable(self):
        records = [{"kind": "set", "oid": 1, "attr": "X", "value": 1.0}]
        assert committed_prefix(records) == (records, 0)

    def test_unterminated_transaction_discarded(self):
        records = [
            {"kind": "set", "oid": 1, "attr": "X", "value": 1.0},
            {"kind": "txn_begin"},
            {"kind": "set", "oid": 1, "attr": "Y", "value": 2.0},
        ]
        durable, discarded = committed_prefix(records)
        assert durable == records[:1]
        assert discarded == 2

    def test_nested_transaction_commits_at_outermost(self):
        records = [
            {"kind": "txn_begin"},
            {"kind": "txn_begin"},
            {"kind": "set", "oid": 1, "attr": "X", "value": 1.0},
            {"kind": "txn_commit"},
            {"kind": "set", "oid": 1, "attr": "Y", "value": 2.0},
        ]
        durable, discarded = committed_prefix(records)
        assert durable == []
        assert discarded == 5
        durable, discarded = committed_prefix(
            records + [{"kind": "txn_commit"}]
        )
        assert len(durable) == 6
        assert discarded == 0

    def test_aborted_transaction_stays_in_stream(self):
        records = [
            {"kind": "txn_begin"},
            {"kind": "set", "oid": 1, "attr": "X", "value": 9.0},
            {"kind": "set", "oid": 1, "attr": "X", "value": 1.0},  # inverse
            {"kind": "txn_abort"},
        ]
        durable, discarded = committed_prefix(records)
        assert durable == records
        assert discarded == 0


class TestWriteAheadLog:
    def test_append_and_truncate(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path)
        log.append({"kind": "txn_begin"})
        log.append({"kind": "txn_commit"})
        assert len(read_records(path)) == 2
        log.truncate()
        assert read_records(path) == []
        log.append({"kind": "batch_begin"})
        assert read_records(path) == [{"kind": "batch_begin"}]
        log.close()

    def test_reopen_appends(self, tmp_path):
        path = str(tmp_path / "wal.log")
        first = WriteAheadLog(path)
        first.append({"kind": "txn_begin"})
        first.close()
        second = WriteAheadLog(path)
        second.append({"kind": "txn_commit"})
        second.close()
        assert [r["kind"] for r in read_records(path)] == [
            "txn_begin",
            "txn_commit",
        ]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_records(str(tmp_path / "absent.log")) == []

    def test_needs_path_or_fileobj(self):
        with pytest.raises(WalError):
            WriteAheadLog()
