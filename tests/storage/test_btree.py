"""Unit tests for the B+ tree."""

import pytest

from repro.storage.btree import BPlusTree
from repro.storage.pages import BufferManager, PageStore


def make_tree(order=4):
    return BPlusTree(order=order)


class TestInsertSearch:
    def test_empty_search(self):
        tree = make_tree()
        assert tree.search(5) == []

    def test_single_insert(self):
        tree = make_tree()
        tree.insert(5, "a")
        assert tree.search(5) == ["a"]

    def test_many_inserts_split(self):
        tree = make_tree(order=3)
        for key in range(100):
            tree.insert(key, key * 10)
        for key in range(100):
            assert tree.search(key) == [key * 10]
        assert tree.height > 1
        tree.check_invariants()

    def test_duplicate_keys(self):
        tree = make_tree()
        tree.insert(7, "a")
        tree.insert(7, "b")
        assert sorted(tree.search(7)) == ["a", "b"]
        assert len(tree) == 2

    def test_reverse_insert_order(self):
        tree = make_tree(order=3)
        for key in reversed(range(50)):
            tree.insert(key, key)
        assert list(tree.keys()) == list(range(50))
        tree.check_invariants()

    def test_string_keys(self):
        tree = make_tree()
        for word in ["pear", "apple", "mango", "fig"]:
            tree.insert(word, word.upper())
        assert tree.search("mango") == ["MANGO"]
        assert list(tree.keys()) == sorted(["pear", "apple", "mango", "fig"])

    def test_contains(self):
        tree = make_tree()
        tree.insert(1, "x")
        assert tree.contains(1, "x")
        assert not tree.contains(1, "y")
        assert not tree.contains(2, "x")

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)


class TestRangeScan:
    @pytest.fixture
    def tree(self):
        tree = make_tree(order=4)
        for key in range(0, 100, 2):  # even keys 0..98
            tree.insert(key, f"v{key}")
        return tree

    def test_full_scan(self, tree):
        assert [key for key, _ in tree.range_scan()] == list(range(0, 100, 2))

    def test_bounded_scan(self, tree):
        keys = [key for key, _ in tree.range_scan(10, 20)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_exclusive_bounds(self, tree):
        keys = [
            key
            for key, _ in tree.range_scan(
                10, 20, include_low=False, include_high=False
            )
        ]
        assert keys == [12, 14, 16, 18]

    def test_open_low(self, tree):
        keys = [key for key, _ in tree.range_scan(None, 6)]
        assert keys == [0, 2, 4, 6]

    def test_open_high(self, tree):
        keys = [key for key, _ in tree.range_scan(94, None)]
        assert keys == [94, 96, 98]

    def test_bounds_between_keys(self, tree):
        keys = [key for key, _ in tree.range_scan(11, 19)]
        assert keys == [12, 14, 16, 18]

    def test_empty_range(self, tree):
        assert list(tree.range_scan(11, 11)) == []

    def test_scan_includes_duplicates(self):
        tree = make_tree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        tree.insert(6, "c")
        assert [value for _, value in tree.range_scan(5, 6)] == ["a", "b", "c"]


class TestRemove:
    def test_remove_existing(self):
        tree = make_tree()
        tree.insert(1, "a")
        assert tree.remove(1, "a") is True
        assert tree.search(1) == []
        assert len(tree) == 0

    def test_remove_missing_key(self):
        tree = make_tree()
        assert tree.remove(1, "a") is False

    def test_remove_missing_value(self):
        tree = make_tree()
        tree.insert(1, "a")
        assert tree.remove(1, "b") is False
        assert len(tree) == 1

    def test_remove_one_duplicate(self):
        tree = make_tree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.remove(1, "a")
        assert tree.search(1) == ["b"]

    def test_remove_many_with_rebalancing(self):
        tree = make_tree(order=3)
        for key in range(200):
            tree.insert(key, key)
        for key in range(0, 200, 2):
            assert tree.remove(key, key)
        tree.check_invariants()
        assert list(tree.keys()) == list(range(1, 200, 2))

    def test_remove_all(self):
        tree = make_tree(order=3)
        for key in range(50):
            tree.insert(key, key)
        for key in range(50):
            assert tree.remove(key, key)
        assert len(tree) == 0
        assert list(tree.keys()) == []


class TestBufferedTree:
    def test_searches_touch_pages(self):
        store = PageStore()
        buffer = BufferManager(capacity=100)
        tree = BPlusTree(store, buffer, order=4)
        for key in range(100):
            tree.insert(key, key)
        before = buffer.stats.logical_reads
        tree.search(50)
        assert buffer.stats.logical_reads > before

    def test_deep_tree_touches_more_pages_than_shallow(self):
        store = PageStore()
        buffer = BufferManager(capacity=1000)
        shallow = BPlusTree(store, buffer, order=512)
        deep = BPlusTree(store, buffer, order=4)
        for key in range(300):
            shallow.insert(key, key)
            deep.insert(key, key)
        buffer.reset_stats()
        shallow.search(250)
        shallow_reads = buffer.stats.logical_reads
        buffer.reset_stats()
        deep.search(250)
        assert buffer.stats.logical_reads > shallow_reads
