"""Sharded recovery when whole WAL segment files are *missing*.

PR 2's sharded crash matrix tears the tail of one segment; a storage
fault can also take out an entire segment file (deleted, or unreadable
and excluded from the merge).  The merge reader's contract then is
declared truncation, never reordering: replay the longest contiguous
``seq`` prefix of what survives and drop everything after the first
gap — a record replayed without the missing records that preceded it
would be the silent out-of-context corruption the oracle hunts.
"""

from __future__ import annotations

import os

import pytest

from repro import ObjectBase, base_state, recover
from repro.observe.config import MaterializationConfig
from repro.persistence import checkpoint, load_object_base
from repro.storage.wal import (
    ShardedWriteAheadLog,
    read_records,
    read_records_merged,
    segment_path,
    segment_paths,
)

from tests._faults import apply_records

SHARDS = 4


def _point_schema(db: ObjectBase) -> None:
    db.define_tuple_type(
        "Point", {"X": "float", "Y": "float", "Label": "string"}
    )
    db.define_operation(
        "Point",
        "norm",
        [],
        "float",
        lambda self: (self.X * self.X + self.Y * self.Y) ** 0.5,
    )


def _build_point_base() -> ObjectBase:
    db = ObjectBase(config=MaterializationConfig(shards=SHARDS))
    _point_schema(db)
    for i in range(8):
        db.new("Point", X=float(i + 1), Y=float((i * 3) % 5), Label=f"p{i}")
    db.materialize([("Point", "norm")])
    return db


def _script(db: ObjectBase) -> None:
    points = db.extension("Point")
    for index, point in enumerate(points):
        point.set_X(10.0 + index)
    for point in points[:5]:
        point.set_Y(1.0)


def test_segment_paths_scans_past_a_deleted_segment(tmp_path):
    base = str(tmp_path / "w.log")
    wal = ShardedWriteAheadLog(base, SHARDS)
    wal.append({"kind": "txn_begin"})
    wal.close()
    os.remove(segment_path(base, 1))
    found = segment_paths(base)
    # The old dense index-probe stopped at the .s1 gap and hid .s2/.s3;
    # the directory scan must report every survivor.
    assert found == [segment_path(base, shard) for shard in (0, 2, 3)]


def test_merged_reader_requires_the_seq_zero_prefix(tmp_path):
    """A log whose earliest surviving record is seq > 0 has lost its
    prefix; replaying the remainder out of context is forbidden."""
    base = str(tmp_path / "w.log")
    wal = ShardedWriteAheadLog(base, SHARDS)
    for i in range(12):
        wal.append({"kind": "set", "oid": i, "attr": "X", "value": float(i)})
    wal.close()

    # Find the segment owning seq 0 and delete it.
    owner = next(
        path
        for path in segment_paths(base)
        if any(record.get("seq") == 0 for record in read_records(path))
    )
    os.remove(owner)
    assert read_records_merged(base) == []


@pytest.mark.parametrize("victim_shard", range(SHARDS))
def test_recovery_with_a_deleted_segment_is_declared_truncation(
    victim_shard, tmp_path
):
    ckpt = str(tmp_path / "checkpoint.json")
    base_path = str(tmp_path / "wal.log")

    db = _build_point_base()
    db.attach_wal(ShardedWriteAheadLog(base_path, SHARDS))
    checkpoint(db, ckpt)
    _script(db)
    db.wal.close()

    victim = segment_path(base_path, victim_shard)
    victim_seqs = [
        record["seq"] for record in read_records(victim)
    ]
    os.remove(victim)

    merged = read_records_merged(base_path)
    if victim_seqs:
        # Declared truncation: everything before the victim's first seq
        # survives, nothing at or after it does.
        assert len(merged) == min(victim_seqs)
    # Whatever survived replays cleanly and matches a reference base
    # applying the same declared prefix through the public API.
    recovered = ObjectBase(config=MaterializationConfig(shards=SHARDS))
    _point_schema(recovered)
    report = recover(recovered, ckpt, base_path)
    assert report.records_replayed <= report.records_scanned

    reference = ObjectBase(config=MaterializationConfig(shards=SHARDS))
    _point_schema(reference)
    load_object_base(reference, ckpt)
    apply_records(reference, merged)

    left, right = base_state(recovered), base_state(reference)
    for key in left:
        assert left[key] == right[key], (
            f"deleted segment {victim_shard}: divergence in {key!r}"
        )


def test_deleted_vs_torn_segment(tmp_path):
    """A torn segment keeps its durable prefix; a deleted one loses it
    all — both cut the merged stream at their first missing seq."""
    base_path = str(tmp_path / "wal.log")
    wal = ShardedWriteAheadLog(base_path, SHARDS)
    for i in range(16):
        wal.append({"kind": "set", "oid": i, "attr": "X", "value": float(i)})
    wal.close()

    # Pick a victim segment that holds at least two records and does
    # not own seq 0 (so the distinction is visible in the merge).
    victim = None
    for shard in range(SHARDS):
        records = read_records(segment_path(base_path, shard))
        seqs = [record["seq"] for record in records]
        if len(seqs) >= 2 and 0 not in seqs:
            victim = (shard, seqs)
            break
    assert victim is not None, "expected a multi-record non-zero segment"
    shard, seqs = victim
    victim_path = segment_path(base_path, shard)
    with open(victim_path, "rb") as handle:
        victim_bytes = handle.read()

    # Torn: cut the victim mid-way through its last frame.
    with open(victim_path, "wb") as handle:
        handle.write(victim_bytes[:-5])
    torn_merged = read_records_merged(base_path)
    # The victim's last record is gone; the merge cuts at its seq.
    assert len(torn_merged) == seqs[-1]

    # Deleted: the victim's *first* seq now ends the merged stream.
    os.remove(victim_path)
    deleted_merged = read_records_merged(base_path)
    assert len(deleted_merged) == seqs[0]
    assert deleted_merged == torn_merged[: seqs[0]]
