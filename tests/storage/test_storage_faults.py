"""The storage-fault matrix: every injected I/O fault lands in a
declared state, and recovery from whatever survived passes the oracle.

This is the integration half of the robustness layer (the state machine
itself is unit-tested in ``tests/core/test_health.py``).  The contract
under test, per ISSUE:

* a ``write`` / ``flush`` / ``fsync`` fault during a WAL append refuses
  the update *before* any in-memory mutation and trips
  ``DEGRADED_READ_ONLY``;
* a transient (``once`` / ``torn``) fault re-arms through the probe
  path on the next update — repair truncates any torn tail first, so
  the retried append lands on a frame boundary;
* a persistent fault keeps the base degraded (or escalates to FAILED
  when even ``repair()`` cannot run); updates keep raising
  :class:`StorageUnavailableError` without touching GMR/RRR state,
  while forward queries still answer (valid rows served, invalid rows
  by direct evaluation);
* checkpoint faults never damage the previous snapshot; a truncation
  failure *after* the atomic rename is the one unrecoverable pairing
  and must land in FAILED;
* recovery from the surviving checkpoint + log always reproduces the
  live base exactly — an acknowledged update is never silently lost,
  a refused update never resurrects.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import ObjectBase, Strategy, base_state, recover
from repro.core.health import HealthState
from repro.errors import StorageUnavailableError
from repro.observe.config import MaterializationConfig, ObserveConfig
from repro.persistence import checkpoint, dump_object_base, load_object_base
from repro.storage.wal import (
    ShardedWriteAheadLog,
    WriteAheadLog,
    read_records_merged,
)

from tests._faults import (
    FaultInjectingFileSystem,
    FaultPlan,
    check_consistency,
    wal_file_factory,
)

STRATEGIES = [Strategy.IMMEDIATE, Strategy.LAZY, Strategy.DEFERRED]

#: Fault-site matrix: (op, mode, extra fail() kwargs).  ``close`` is
#: exercised separately — it only fires at disposal time, where the
#: declared behaviour is "swallow" (appends are already durable).
FAULTS = [
    pytest.param("write", "once", {}, id="write-once"),
    pytest.param("write", "persistent", {}, id="write-persistent"),
    pytest.param("write", "torn", {"torn_bytes": 6}, id="write-torn"),
    pytest.param("flush", "once", {}, id="flush-once"),
    pytest.param("flush", "persistent", {}, id="flush-persistent"),
    pytest.param("fsync", "once", {}, id="fsync-once"),
    pytest.param("fsync", "persistent", {}, id="fsync-persistent"),
]

#: Injection call indices per shard count.  The script below logs nine
#: records; with four shards the busiest segment is only guaranteed
#: ``ceil(9 / 4) = 3`` appends, so the sharded axis probes indices that
#: are certain to be reached on *some* segment.
ATS = {1: (0, 7), 4: (0, 2)}


def _point_schema(db: ObjectBase) -> None:
    db.define_tuple_type(
        "Point", {"X": "float", "Y": "float", "Label": "string"}
    )
    db.define_operation(
        "Point",
        "norm",
        [],
        "float",
        lambda self: (self.X * self.X + self.Y * self.Y) ** 0.5,
    )


def _build_point_base(strategy: Strategy, shards: int, **config) -> ObjectBase:
    db = ObjectBase(config=MaterializationConfig(shards=shards, **config))
    _point_schema(db)
    for i in range(4):
        db.new("Point", X=float(i + 1), Y=float((i * 3) % 5), Label=f"p{i}")
    db.materialize([("Point", "norm")], strategy=strategy)
    return db


def _attach_faulty_wal(db, wal_path: str, plan: FaultPlan, shards: int) -> None:
    """Attach a fsync'ing WAL whose files consult ``plan``, and make the
    probe window immediate so transient faults re-arm on the next update."""
    factory = wal_file_factory(plan)
    if shards == 1:
        wal = WriteAheadLog(wal_path, fsync=True, file_factory=factory)
    else:
        wal = ShardedWriteAheadLog(
            wal_path, shards, fsync=True, file_factory=factory
        )
    db.attach_wal(wal)
    db.health.rearm_cooldown = 0.0


def _update_ops(db):
    """Nine independent elementary updates — one WAL record each."""
    points = db.extension("Point")[:4]
    ops = []
    for index, point in enumerate(points):
        ops.append(lambda point=point, index=index: point.set_X(20.0 + index))
    ops.append(lambda: db.new("Point", X=5.0, Y=12.0, Label="q"))
    for index, point in enumerate(points):
        ops.append(lambda point=point, index=index: point.set_Y(2.0 + index))
    return ops


def _assert_recovers_exactly(db, ckpt: str, wal_path: str, shards: int, context: str):
    """The Def. 3.2 oracle half: the live base must be reconstructible
    from the surviving on-disk state, bit for bit."""
    live = base_state(db)
    assert check_consistency(db) == [], f"{context}: live base inconsistent"
    db.wal.close()
    recovered = ObjectBase(config=MaterializationConfig(shards=shards))
    _point_schema(recovered)
    recover(recovered, ckpt, wal_path)
    rebuilt = base_state(recovered)
    for key in live:
        assert rebuilt[key] == live[key], (
            f"{context}: recovered base diverges from the live base in "
            f"{key!r}:\n{rebuilt[key]!r}\n!=\n{live[key]!r}"
        )


def _run_fault_scenario(op, mode, extra, strategy, shards, at, tmp_path):
    tag = f"{op}-{mode}-{strategy.name}-s{shards}-at{at}"
    ckpt = str(tmp_path / f"ckpt-{tag}.json")
    wal_path = str(tmp_path / f"wal-{tag}.log")

    db = _build_point_base(strategy, shards)
    checkpoint(db, ckpt)  # clean snapshot before the WAL exists
    plan = FaultPlan()
    _attach_faulty_wal(db, wal_path, plan, shards)
    plan.fail(op, at=at, mode=mode, **extra)

    refused = 0
    for update in _update_ops(db):
        try:
            update()
        except StorageUnavailableError:
            refused += 1

    if mode in ("once", "torn"):
        # One more update: if the fault fired on the script's last
        # record, this is the probe that repairs and re-arms.
        db.extension("Point")[0].set_Label("probe")
        assert plan.fired, f"{tag}: the fault never fired"
        assert refused >= 1, f"{tag}: the faulted append was not refused"
        assert db.health.state is HealthState.HEALTHY, (
            f"{tag}: a transient fault must re-arm, got {db.health.state}"
        )
        assert db.health.io_errors >= 1
    else:
        assert plan.fired, f"{tag}: the fault never fired"
        assert refused >= 1
        # ``repair()`` flushes; a persistently failing flush therefore
        # kills the probe path itself and escalates to FAILED.  Every
        # other persistent fault leaves the probe retrying forever.
        expected = (
            HealthState.FAILED
            if op == "flush"
            else HealthState.DEGRADED_READ_ONLY
        )
        assert db.health.state is expected, (
            f"{tag}: expected {expected}, got {db.health.state}"
        )
        # Declared read-only: further updates raise *without mutating*.
        before = base_state(db)
        with pytest.raises(StorageUnavailableError):
            db.extension("Point")[1].set_X(123.0)
        after = base_state(db)
        for key in before:
            assert after[key] == before[key], (
                f"{tag}: a refused update mutated {key!r}"
            )
        plan.clear()  # the disk heals before the recovery half

    _assert_recovers_exactly(db, ckpt, wal_path, shards, tag)


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
@pytest.mark.parametrize("op,mode,extra", FAULTS)
def test_fault_matrix(op, mode, extra, strategy, shards, tmp_path):
    # A "persistent" fault armed at a later per-segment call index is
    # not persistent across shards (a probe routed to a quieter segment
    # would land and legitimately re-arm), so that mode pins ``at=0``.
    ats = (0,) if mode == "persistent" else ATS[shards]
    for at in ats:
        _run_fault_scenario(op, mode, extra, strategy, shards, at, tmp_path)


@pytest.mark.parametrize("shards", [1, 4])
def test_close_fault_is_declared_harmless(shards, tmp_path):
    """A fault at disposal time loses nothing: every append was made
    durable at append time, so ``close()`` swallows and health stays
    HEALTHY — and recovery still sees every record."""
    ckpt = str(tmp_path / "ckpt.json")
    wal_path = str(tmp_path / "wal.log")
    db = _build_point_base(Strategy.IMMEDIATE, shards)
    checkpoint(db, ckpt)
    plan = FaultPlan()
    _attach_faulty_wal(db, wal_path, plan, shards)
    for update in _update_ops(db):
        update()
    plan.fail("close", mode="persistent")

    live = base_state(db)
    db.wal.close()
    assert plan.fired, "the close fault must actually have fired"
    assert db.health.state is HealthState.HEALTHY

    recovered = ObjectBase(config=MaterializationConfig(shards=shards))
    _point_schema(recovered)
    recover(recovered, ckpt, wal_path)
    rebuilt = base_state(recovered)
    for key in live:
        assert rebuilt[key] == live[key]


# -- degraded read path -------------------------------------------------------------


def _degrade(db, plan: FaultPlan) -> None:
    """Trip DEGRADED_READ_ONLY via a genuinely refused update."""
    plan.fail("write", mode="persistent")
    with pytest.raises(StorageUnavailableError):
        db.extension("Point")[3].set_Label("doomed")
    assert db.health.read_only


def test_degraded_base_serves_valid_rows_from_the_gmr(tmp_path):
    db = _build_point_base(Strategy.IMMEDIATE, 1)
    plan = FaultPlan()
    _attach_faulty_wal(db, str(tmp_path / "wal.log"), plan, 1)
    point = db.extension("Point")[0]
    expected = point.norm()

    _degrade(db, plan)

    stats = db.gmr_manager.stats
    hits = stats.forward_hits
    degraded = stats.degraded_forward_calls
    # The row is still valid (the update that would have invalidated it
    # was refused), so the materialized result is served as usual.
    assert point.norm() == expected
    assert stats.forward_hits == hits + 1
    assert stats.degraded_forward_calls == degraded


def test_degraded_base_answers_invalid_rows_by_direct_evaluation(tmp_path):
    db = _build_point_base(Strategy.LAZY, 1)
    gmr = db.gmr_manager._gmr_of_fid["Point.norm"]
    plan = FaultPlan()
    _attach_faulty_wal(db, str(tmp_path / "wal.log"), plan, 1)
    point = db.extension("Point")[0]
    point.set_X(30.0)  # acknowledged: invalidates the norm row
    assert gmr.entry_state((point.oid,), "Point.norm") == "invalid"

    _degrade(db, plan)

    stats = db.gmr_manager.stats
    degraded = stats.degraded_forward_calls
    assert point.norm() == pytest.approx((30.0**2 + point.Y**2) ** 0.5)
    assert stats.degraded_forward_calls == degraded + 1
    # Direct evaluation, Sec. 3.2 style: the GMR row was *not* committed
    # — a rematerialization whose maintenance trail cannot be logged
    # must leave GMR/RRR untouched.
    assert gmr.entry_state((point.oid,), "Point.norm") == "invalid"


# -- checkpoint fault sites ---------------------------------------------------------


@pytest.mark.parametrize(
    "op", ["write", "flush", "fsync", "close", "replace", "fsync_dir"]
)
def test_checkpoint_fault_leaves_the_previous_snapshot_usable(op, tmp_path):
    ckpt = str(tmp_path / "ckpt.json")
    wal_path = str(tmp_path / "wal.log")
    db = _build_point_base(Strategy.IMMEDIATE, 1)
    db.attach_wal(WriteAheadLog(wal_path, fsync=True))
    db.health.rearm_cooldown = 0.0
    checkpoint(db, ckpt)
    with open(ckpt, "r", encoding="utf-8") as handle:
        before = handle.read()

    db.extension("Point")[0].set_X(99.0)

    plan = FaultPlan().fail(op, mode="once")
    with pytest.raises(StorageUnavailableError, match="intact"):
        checkpoint(db, ckpt, fs=FaultInjectingFileSystem(plan))
    assert plan.fired
    assert db.health.state is HealthState.DEGRADED_READ_ONLY

    # The snapshot at ``path`` is never torn: either the old bytes
    # (fault before the rename) or the complete new document (only
    # ``fsync_dir``, which fires after the rename landed).
    with open(ckpt, "r", encoding="utf-8") as handle:
        content = handle.read()
    json.loads(content)
    if op != "fsync_dir":
        assert content == before

    # The WAL was NOT truncated behind the failed checkpoint: the
    # acknowledged update is still replayable.
    assert any(
        record["kind"] == "set" for record in read_records_merged(wal_path)
    )

    # Probe, re-arm, retry with the real file system: back to normal.
    db.extension("Point")[1].set_Y(7.0)
    assert db.health.state is HealthState.HEALTHY
    checkpoint(db, ckpt)

    live = base_state(db)
    db.wal.close()
    recovered = ObjectBase(config=MaterializationConfig())
    _point_schema(recovered)
    recover(recovered, ckpt, wal_path)
    rebuilt = base_state(recovered)
    for key in live:
        assert rebuilt[key] == live[key]


def test_wal_truncate_failure_after_rename_fails_the_base(tmp_path):
    """The one unrecoverable pairing: the new snapshot is durable but
    the stale log could not be truncated behind it — replaying the pair
    would double-apply absorbed updates, so the base must land FAILED
    and refuse everything that could compound the damage."""
    ckpt = str(tmp_path / "ckpt.json")
    wal_path = str(tmp_path / "wal.log")
    plan = FaultPlan()
    db = _build_point_base(Strategy.IMMEDIATE, 1)
    _attach_faulty_wal(db, wal_path, plan, 1)
    checkpoint(db, ckpt)
    db.extension("Point")[0].set_X(42.0)

    plan.fail("flush", mode="persistent")  # truncate() flushes
    with pytest.raises(StorageUnavailableError, match="double-replay"):
        checkpoint(db, ckpt)
    assert db.health.state is HealthState.FAILED

    # FAILED is terminal: updates, re-arm and further checkpoints all
    # refuse, even after the disk heals.
    plan.clear()
    with pytest.raises(StorageUnavailableError):
        db.extension("Point")[1].set_X(1.0)
    with pytest.raises(StorageUnavailableError, match="re-armed"):
        db.health.rearm()
    with pytest.raises(StorageUnavailableError, match="refusing to checkpoint"):
        checkpoint(db, ckpt)

    # ...but the state is still exportable for forensics, and the FAILED
    # verdict survives the round trip — a dead base cannot resurrect
    # itself as HEALTHY through its own snapshot.
    dump = str(tmp_path / "postmortem.json")
    dump_object_base(db, dump)
    fresh = ObjectBase(config=MaterializationConfig())
    _point_schema(fresh)
    load_object_base(fresh, dump)
    assert fresh.health.state is HealthState.FAILED
    with pytest.raises(StorageUnavailableError):
        fresh.health.rearm()


def test_degraded_health_round_trips_through_checkpoint(tmp_path):
    ckpt = str(tmp_path / "ckpt.json")
    wal_path = str(tmp_path / "wal.log")
    plan = FaultPlan()
    db = _build_point_base(Strategy.LAZY, 1)
    _attach_faulty_wal(db, wal_path, plan, 1)
    _degrade(db, plan)
    errors = db.health.io_errors

    # A degraded base may checkpoint (consistent in-memory state is
    # exactly what to preserve while the log refuses appends)...
    checkpoint(db, ckpt)
    recovered = ObjectBase(config=MaterializationConfig())
    _point_schema(recovered)
    recover(recovered, ckpt, str(tmp_path / "no-such.log"))
    # ...and the recovered base knows it came from a degraded one.
    assert recovered.health.state is HealthState.DEGRADED_READ_ONLY
    assert recovered.health.io_errors == errors


# -- batch interplay ----------------------------------------------------------------


def test_mid_batch_flush_fault_requeues_the_batch(tmp_path):
    """A fault on the ``batch_flush`` marker refuses the flush *before*
    any queued event drains; the events stay queued and the flush
    converges once a probe re-arms the log."""
    wal_path = str(tmp_path / "wal.log")
    plan = FaultPlan()
    db = _build_point_base(Strategy.LAZY, 1)
    _attach_faulty_wal(db, wal_path, plan, 1)
    point = db.extension("Point")[0]

    with db.batch():
        point.set_X(33.0)
        point.set_Y(44.0)
        plan.fail("write", mode="persistent")
        # The forward query forces a mid-batch flush, whose marker
        # cannot be logged: refused, events re-queued.
        with pytest.raises(StorageUnavailableError):
            point.norm()
        assert db.health.read_only
        assert len(db.gmr_manager._queue), "batch events must stay queued"
        plan.clear()
        # Disk healed: the next query probes, re-arms and flushes.
        assert point.norm() == pytest.approx((33.0**2 + 44.0**2) ** 0.5)
        assert db.health.state is HealthState.HEALTHY
    assert check_consistency(db) == []


def test_batch_enter_fault_does_not_leak_the_maintenance_lock(tmp_path):
    wal_path = str(tmp_path / "wal.log")
    plan = FaultPlan()
    db = _build_point_base(Strategy.LAZY, 1)
    _attach_faulty_wal(db, wal_path, plan, 1)

    plan.fail("write", mode="persistent")
    with pytest.raises(StorageUnavailableError):
        with db.batch():
            pytest.fail("the batch body must never run")  # pragma: no cover
    assert db.gmr_manager._batch_depth == 0
    lock = db.gmr_manager._maint_lock
    if hasattr(lock, "_is_owned"):
        assert not lock._is_owned()

    # The aborted scope left no half-open batch behind: after the disk
    # heals, a probe re-arms and a fresh batch works end to end.
    plan.clear()
    point = db.extension("Point")[0]
    with db.batch():
        point.set_X(55.0)
    assert db.health.state is HealthState.HEALTHY
    assert point.norm() == pytest.approx((55.0**2 + point.Y**2) ** 0.5)
    assert check_consistency(db) == []


# -- drain pausing ------------------------------------------------------------------


def test_scheduler_sweep_pauses_while_degraded():
    db = _build_point_base(Strategy.DEFERRED, 1)
    point = db.extension("Point")[0]
    point.set_X(17.0)
    scheduler = db.gmr_manager.scheduler
    assert scheduler.pending() > 0

    db.health.record_io_error(OSError("injected"), site="wal.append")
    assert scheduler.revalidate() == 0
    assert scheduler.pending() > 0, "degraded sweeps must keep the queue"

    db.health.rearm()
    assert scheduler.revalidate() > 0
    assert scheduler.pending() == 0
    assert check_consistency(db) == []


def test_worker_pool_pauses_while_degraded():
    db = _build_point_base(Strategy.DEFERRED, 1, workers=1)
    try:
        # Degrade first; the base has no WAL, so updates still succeed
        # and queue rematerializations the paused pool must not touch.
        db.health.record_io_error(OSError("injected"), site="wal.append")
        for index, point in enumerate(db.extension("Point")):
            point.set_X(60.0 + index)
        scheduler = db.gmr_manager.scheduler
        pending = scheduler.pending()
        assert pending > 0
        deadline = time.time() + 0.25
        while time.time() < deadline:
            assert scheduler.pending() == pending, (
                "a drain committed while the base was degraded"
            )
            time.sleep(0.02)

        db.health.rearm()
        assert db.quiesce(timeout=10.0)
        assert scheduler.pending() == 0
        assert check_consistency(db) == []
    finally:
        db.close()


# -- observability ------------------------------------------------------------------


def test_health_gauges_traces_and_explain(tmp_path):
    wal_path = str(tmp_path / "wal.log")
    plan = FaultPlan()
    db = ObjectBase(
        config=MaterializationConfig(observe=ObserveConfig(trace=True))
    )
    _point_schema(db)
    point = db.new("Point", X=3.0, Y=4.0, Label="p")
    db.materialize([("Point", "norm")], strategy=Strategy.LAZY)
    _attach_faulty_wal(db, wal_path, plan, 1)

    metrics = db.observe.metrics
    assert metrics.gauge("health.state").value == 0

    plan.fail("write", mode="once")
    with pytest.raises(StorageUnavailableError):
        point.set_X(5.0)
    assert metrics.gauge("health.state").value == 1
    assert metrics.gauge("storage.io_errors").value == 1

    report = db.explain()
    assert report.health == "degraded_read_only"
    assert report.io_errors == 1
    assert "health: degraded_read_only io_errors=1" in report.render()

    point.set_X(5.0)  # probes, re-arms, lands
    assert metrics.gauge("health.state").value == 0
    assert db.explain().health == "healthy"

    names = [event.name for event in db.observe.events()]
    assert "health.degrade" in names
    assert "health.rearm" in names
    degrade = next(
        event for event in db.observe.events() if event.name == "health.degrade"
    )
    assert degrade.fields["old"] == "healthy"
    assert degrade.fields["new"] == "degraded_read_only"
    assert "wal.append" in degrade.fields["reason"]
