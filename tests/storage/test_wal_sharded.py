"""Multi-segment WAL recovery: a crash tearing one shard's segment must
not lose committed frames on any other shard.

Extends the single-log crash matrix of ``test_wal_recovery.py`` to
:class:`~repro.storage.wal.ShardedWriteAheadLog`:

* **Routing/merge units** — records land on ``stable_hash(oid) %
  shards``'s segment (markers on segment 0), and
  ``read_records_merged`` reconstructs exactly the appended order from
  the per-segment ``seq`` stamps.
* **Torn-segment semantics** — truncating one segment mid-frame drops
  that frame and everything *globally after* it (the seq-gap cut:
  replaying a record whose predecessor is missing would reorder the
  update stream), while every committed frame before the tear survives
  on every shard.
* **Crash matrix** — a victim base whose shard-``k`` segment dies at
  each byte budget is recovered from checkpoint + merged segments and
  compared (``base_state``) against a reference base applying the
  independently-merged durable prefix — the merge oracle here is a
  second implementation built on ``tests/_faults.parse_records``, not
  the production reader.
"""

from __future__ import annotations

import pytest

from repro import ObjectBase, base_state, recover
from repro.concurrency.sharding import stable_hash
from repro.gom.oid import Oid
from repro.observe.config import MaterializationConfig
from repro.persistence import checkpoint, load_object_base
from repro.storage.wal import (
    ShardedWriteAheadLog,
    WalError,
    WriteAheadLog,
    iter_frames,
    read_records,
    read_records_merged,
    segment_path,
    segment_paths,
)

from tests._faults import (
    CrashingFile,
    SimulatedCrash,
    apply_records,
    committed_records,
    crash_points,
    parse_records,
)

SHARDS = 3


def _merged_reference(base_path: str) -> list[dict]:
    """Independent merge oracle: parse each segment with the test-local
    frame parser, order by seq, cut at the first gap, strip the stamps."""
    stamped = []
    for path in segment_paths(base_path):
        with open(path, "rb") as handle:
            for record in parse_records(handle.read()):
                if isinstance(record.get("seq"), int):
                    stamped.append((record["seq"], record))
    stamped.sort(key=lambda item: item[0])
    merged = []
    expected = None
    for seq, record in stamped:
        if expected is not None and seq != expected:
            break
        expected = seq + 1
        record = dict(record)
        record.pop("seq")
        merged.append(record)
    return merged


# ---------------------------------------------------------------------------
# Routing and merge units
# ---------------------------------------------------------------------------


class TestShardedLogUnits:
    def test_requires_at_least_two_shards(self, tmp_path):
        with pytest.raises(WalError):
            ShardedWriteAheadLog(str(tmp_path / "w.log"), 1)

    def test_records_route_by_stable_oid_hash(self, tmp_path):
        base = str(tmp_path / "w.log")
        log = ShardedWriteAheadLog(base, SHARDS)
        oids = list(range(1, 20))
        for oid in oids:
            log.append({"kind": "set", "oid": oid, "attr": "X", "value": 1})
        log.append({"kind": "txn_begin"})  # marker: no oid -> segment 0
        log.close()
        for shard in range(SHARDS):
            for record in read_records(segment_path(base, shard)):
                oid = record.get("oid")
                if oid is None:
                    assert shard == 0
                else:
                    assert stable_hash(Oid(oid)) % SHARDS == shard

    def test_merged_read_restores_append_order(self, tmp_path):
        base = str(tmp_path / "w.log")
        log = ShardedWriteAheadLog(base, SHARDS)
        appended = [
            {"kind": "set", "oid": i % 7 + 1, "attr": "X", "value": i}
            for i in range(25)
        ]
        for record in appended:
            log.append(record)
        log.close()
        assert len(segment_paths(base)) == SHARDS
        merged = read_records_merged(base)
        assert merged == appended  # seq stamps stripped, order exact
        assert merged == _merged_reference(base)

    def test_merged_read_falls_back_to_single_log(self, tmp_path):
        path = str(tmp_path / "plain.log")
        log = WriteAheadLog(path)
        log.append({"kind": "set", "oid": 1, "attr": "X", "value": 2})
        log.close()
        assert read_records_merged(path) == read_records(path)

    def test_truncate_resets_every_segment_and_seq(self, tmp_path):
        base = str(tmp_path / "w.log")
        log = ShardedWriteAheadLog(base, SHARDS)
        for i in range(10):
            log.append({"kind": "set", "oid": i + 1, "attr": "X", "value": i})
        log.truncate()
        log.append({"kind": "set", "oid": 1, "attr": "X", "value": 99})
        log.close()
        merged = read_records_merged(base)
        assert merged == [{"kind": "set", "oid": 1, "attr": "X", "value": 99}]

    def test_seq_gap_cuts_later_records_on_all_shards(self, tmp_path):
        base = str(tmp_path / "w.log")
        log = ShardedWriteAheadLog(base, SHARDS)
        appended = [
            {"kind": "set", "oid": i % 7 + 1, "attr": "X", "value": i}
            for i in range(25)
        ]
        for record in appended:
            log.append(record)
        log.close()
        # Tear one victim segment down to its first frame: every record
        # of that segment after the tear is gone, and the seq-gap cut
        # must also drop the *other* shards' records that were appended
        # after the first lost one.
        victim = segment_path(base, 1)
        with open(victim, "rb") as handle:
            data = handle.read()
        starts = [offset for offset, _ in iter_frames(data)]
        assert len(starts) >= 2, "victim segment needs >= 2 frames"
        keep_until = starts[1]
        with open(victim, "wb") as handle:
            handle.write(data[: keep_until + 3])  # + a torn header
        merged = read_records_merged(base)
        surviving = parse_records(data[:keep_until])
        first_lost_seq = parse_records(data)[1]["seq"]
        assert merged == appended[:first_lost_seq]
        # Committed frames before the tear survived — including the
        # victim's own first record.
        assert surviving[0]["seq"] < first_lost_seq


# ---------------------------------------------------------------------------
# Crash matrix: one torn segment, full recovery differential
# ---------------------------------------------------------------------------


def _point_schema(db: ObjectBase) -> None:
    db.define_tuple_type(
        "Point", {"X": "float", "Y": "float", "Label": "string"}
    )
    db.define_operation(
        "Point",
        "norm",
        [],
        "float",
        lambda self: (self.X * self.X + self.Y * self.Y) ** 0.5,
    )
    db.define_set_type("Cluster", "Point")


def _build_point_base() -> ObjectBase:
    db = ObjectBase(config=MaterializationConfig(shards=SHARDS))
    _point_schema(db)
    points = [
        db.new("Point", X=float(i + 1), Y=float((i * 3) % 5), Label=f"p{i}")
        for i in range(6)
    ]
    db.new_collection("Cluster", points[:4])
    db.materialize([("Point", "norm")])
    return db


def _script(db: ObjectBase) -> None:
    points = db.extension("Point")
    cluster = db.extension("Cluster")[0]
    for index, point in enumerate(points):
        point.set_X(10.0 + index)
    fresh = db.new("Point", X=5.0, Y=12.0, Label="q")
    cluster.insert(fresh)
    with db.batch():
        points[1].set_Y(3.0)
        points[2].set_Y(4.0)
    with db.transaction():
        points[3].set_X(2.5)
        cluster.remove(points[0])
    for point in points[:4]:
        point.set_Y(1.0)


def _attach_sharded(db, base_path, *, crash_shard=None, budget=None):
    fileobjs = []
    for shard in range(SHARDS):
        raw = open(segment_path(base_path, shard), "wb")
        if shard == crash_shard:
            raw = CrashingFile(raw, budget)
        fileobjs.append(raw)
    wal = ShardedWriteAheadLog(base_path, SHARDS, fileobjs=fileobjs)
    db.attach_wal(wal)
    return fileobjs


@pytest.mark.parametrize("crash_shard", range(SHARDS))
def test_torn_segment_crash_matrix(crash_shard, tmp_path):
    ckpt = str(tmp_path / "checkpoint.json")

    # Clean run: capture each segment's full byte stream.
    clean_base = str(tmp_path / "clean.log")
    clean = _build_point_base()
    _attach_sharded(clean, clean_base)
    checkpoint(clean, ckpt)
    _script(clean)
    clean.detach_wal().close()
    with open(segment_path(clean_base, crash_shard), "rb") as handle:
        shard_bytes = handle.read()
    assert shard_bytes, "every shard must see WAL traffic in this script"

    crash_base = str(tmp_path / "crash.log")
    offsets = crash_points(shard_bytes)
    assert len(offsets) >= 8, "expected a dense per-segment crash matrix"

    for offset in offsets:
        victim = _build_point_base()
        files = _attach_sharded(
            victim, crash_base, crash_shard=crash_shard, budget=offset
        )
        crashed = False
        try:
            _script(victim)
        except SimulatedCrash:
            crashed = True
        finally:
            for fileobj in files:
                fileobj.close()
        assert crashed, f"shard {crash_shard} offset {offset} must crash"

        with open(segment_path(crash_base, crash_shard), "rb") as handle:
            durable = handle.read()
        assert durable == shard_bytes[:offset]

        # Production recovery from checkpoint + merged torn segments.
        recovered = ObjectBase()
        _point_schema(recovered)
        report = recover(recovered, ckpt, crash_base)
        assert report.records_replayed <= report.records_scanned

        # Reference: independently merged committed prefix, applied live.
        reference = ObjectBase()
        _point_schema(reference)
        load_object_base(reference, ckpt)
        apply_records(
            reference, committed_records(_merged_reference(crash_base))
        )

        left = base_state(recovered)
        right = base_state(reference)
        for key in left:
            assert left[key] == right[key], (
                f"shard {crash_shard} @ offset {offset}: recovered base "
                f"diverges in {key!r}"
            )

        # The headline guarantee: committed frames on the *other*
        # shards' segments are never lost — every durable record up to
        # the first seq owned by the torn frame was replayed.
        merged = _merged_reference(crash_base)
        assert report.records_scanned == len(merged)


def test_sharded_base_round_trips_through_sharded_wal(tmp_path):
    """End-to-end: sharded engine + sharded WAL + checkpoint/recover."""
    base_path = str(tmp_path / "w.log")
    ckpt = str(tmp_path / "ck.json")
    db = _build_point_base()
    db.attach_wal(ShardedWriteAheadLog(base_path, SHARDS))
    checkpoint(db, ckpt)
    _script(db)
    assert db.quiesce(timeout=30.0) is True
    db.detach_wal().close()

    recovered = ObjectBase(config=MaterializationConfig(shards=SHARDS))
    _point_schema(recovered)
    recover(recovered, ckpt, base_path)
    assert recovered.quiesce(timeout=30.0) is True
    for gmr in recovered.gmr_manager.gmrs():
        assert gmr.check_consistency(recovered) == []

    db.quiesce(timeout=30.0)
    left = base_state(db)
    right = base_state(recovered)
    for key in ("objects", "gmrs", "rrr", "obj_dep"):
        assert left[key] == right[key], f"round-trip diverges in {key!r}"
