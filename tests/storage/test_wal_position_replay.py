"""Differential regression: WAL replay of position-carrying inserts.

``collection_insert(..., position=k)`` logs ``record["pos"]`` and list
semantics make the position load-bearing: recovery must re-insert at
exactly that index or the recovered list's element *order* (and every
order-sensitive derived value) silently diverges.  Positions enter the
log from two sources — explicit positional inserts and transaction
rollbacks re-inserting a removed element where it was — so both are
exercised, inside and outside transaction scopes.
"""

from __future__ import annotations

from repro import ObjectBase, WriteAheadLog, base_state, recover
from repro.persistence import checkpoint


def _schema(db: ObjectBase) -> None:
    db.define_tuple_type("Item", {"V": "float"})
    db.define_list_type("Sequence", "Item")

    def total(self):
        result = 0.0
        for item in self:
            result = result + item.V
        return result

    def head(self):
        for item in self:
            return item.V
        return 0.0

    db.define_operation("Sequence", "total", [], "float", total)
    db.define_operation("Sequence", "head", [], "float", head)


def _values(sequence) -> list[float]:
    return [item.V for item in sequence]


def test_positional_insert_replay(tmp_path):
    ckpt = str(tmp_path / "ckpt.json")
    log = str(tmp_path / "wal.log")

    db = ObjectBase()
    _schema(db)
    items = [db.new("Item", V=float(i)) for i in range(6)]
    sequence = db.new_collection("Sequence", [items[0], items[2], items[4]])
    # head() is order-sensitive: a misplaced replay flips its value.
    db.materialize([("Sequence", "total"), ("Sequence", "head")])
    db.attach_wal(WriteAheadLog(log))
    checkpoint(db, ckpt)

    # -- position-carrying traffic ------------------------------------------
    # 1. explicit positional inserts outside any transaction
    db.collection_insert(sequence, items[1], position=1)
    db.collection_insert(sequence, items[3], position=3)
    assert _values(sequence) == [0.0, 1.0, 2.0, 3.0, 4.0]

    # 2. a committed transaction with a positional insert
    with db.transaction():
        db.collection_insert(sequence, items[5], position=0)
    assert _values(sequence) == [5.0, 0.0, 1.0, 2.0, 3.0, 4.0]

    # 3. a rolled-back transaction: the mid-list remove is undone by a
    #    position-carrying re-insert logged in the rollback suffix
    with db.transaction() as txn:
        db.collection_remove(sequence, items[2])
        assert _values(sequence) == [5.0, 0.0, 1.0, 3.0, 4.0]
        txn.abort()
    assert _values(sequence) == [5.0, 0.0, 1.0, 2.0, 3.0, 4.0]

    # 4. remove + positional re-insert at a *different* slot, committed
    with db.transaction():
        db.collection_remove(sequence, items[5])
        db.collection_insert(sequence, items[5], position=2)
    want = [0.0, 1.0, 5.0, 2.0, 3.0, 4.0]
    assert _values(sequence) == want
    wal = db.detach_wal()
    wal.close()

    # -- crash: rebuild from checkpoint + log --------------------------------
    recovered_db = ObjectBase()
    _schema(recovered_db)
    report = recover(recovered_db, ckpt, log)
    assert report.records_replayed > 0

    # Full-state digest first (queries below perturb frequency counters).
    left = base_state(recovered_db)
    right = base_state(db)
    for key in left:
        assert left[key] == right[key], f"state diverges in {key!r}"

    recovered_seq = recovered_db.extension("Sequence")[0]
    assert _values(recovered_seq) == want
    assert recovered_seq.head() == 0.0
    assert recovered_seq.total() == sum(want)


def test_positional_insert_replay_uncommitted_suffix(tmp_path):
    """A crash *inside* a transaction discards its positional inserts."""
    ckpt = str(tmp_path / "ckpt.json")
    log = str(tmp_path / "wal.log")

    db = ObjectBase()
    _schema(db)
    items = [db.new("Item", V=float(i)) for i in range(4)]
    sequence = db.new_collection("Sequence", [items[0], items[3]])
    db.attach_wal(WriteAheadLog(log))
    checkpoint(db, ckpt)

    db.collection_insert(sequence, items[1], position=1)
    # Open a transaction and "crash" before it terminates: the logged
    # positional insert inside it must be discarded on recovery.
    db.transactions.begin()
    db.collection_insert(sequence, items[2], position=2)
    assert _values(sequence) == [0.0, 1.0, 2.0, 3.0]
    wal = db.detach_wal()
    wal.close()  # crash point: txn_begin + insert are on disk, no commit

    recovered_db = ObjectBase()
    _schema(recovered_db)
    report = recover(recovered_db, ckpt, log)
    assert report.records_discarded >= 1

    recovered_seq = recovered_db.extension("Sequence")[0]
    assert _values(recovered_seq) == [0.0, 1.0, 3.0]
