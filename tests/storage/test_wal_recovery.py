"""Fault-injection recovery matrix: crash at every WAL offset, recover,
compare against a committed-prefix reference — across strategies.

The harness mirrors ``tests/core/test_batch_equivalence.py``'s
differential pattern, applied to durability:

1. one *clean* run executes a deterministic update script against a
   WAL-attached base and keeps the full log bytes;
2. every crash offset (each frame boundary plus mid-frame torn writes,
   enumerated by the independent parser in ``tests/_faults.py``) is
   simulated by re-running the same script against a fresh base whose
   WAL dies at that byte budget;
3. ``recover()`` rebuilds a base from checkpoint + torn log, and a
   *reference* base applies the independently-computed committed prefix
   live through the public API;
4. the two must agree on the :func:`repro.persistence.base_state`
   digest — objects, GMR extensions, validity flags, RRR, ObjDepFct,
   scheduler queue and manager counters.

EAGER (= ``Strategy.IMMEDIATE``), LAZY and DEFERRED all go through the
full matrix.
"""

from __future__ import annotations

import pytest

from repro import ObjectBase, Strategy, WriteAheadLog, base_state, recover
from repro.persistence import checkpoint, load_object_base
from repro.storage import wal as wal_module
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_vertex,
)

from tests._faults import (
    CrashingFile,
    SimulatedCrash,
    apply_records,
    committed_records,
    crash_points,
    parse_records,
)

STRATEGIES = [Strategy.IMMEDIATE, Strategy.LAZY, Strategy.DEFERRED]


def _point_schema(db: ObjectBase) -> None:
    db.define_tuple_type(
        "Point", {"X": "float", "Y": "float", "Label": "string"}
    )
    db.define_operation(
        "Point",
        "norm",
        [],
        "float",
        lambda self: (self.X * self.X + self.Y * self.Y) ** 0.5,
    )
    db.define_operation(
        "Point",
        "manhattan",
        [],
        "float",
        lambda self: abs(self.X) + abs(self.Y),
    )
    db.define_set_type("Cluster", "Point")


def _build_point_base(strategy: Strategy) -> ObjectBase:
    db = ObjectBase()
    _point_schema(db)
    points = [
        db.new("Point", X=float(i + 1), Y=float((i * 3) % 5), Label=f"p{i}")
        for i in range(4)
    ]
    db.new_collection("Cluster", points[:3])
    db.materialize(
        [("Point", "norm"), ("Point", "manhattan")], strategy=strategy
    )
    return db


def _script(db: ObjectBase) -> None:
    """Deterministic update script covering every WAL record kind."""
    points = db.extension("Point")
    cluster = db.extension("Cluster")[0]
    p0, p1, p2, p3 = points[:4]
    p0.set_X(9.0)
    p1.set_Label("renamed")
    fresh = db.new("Point", X=5.0, Y=12.0, Label="q")
    cluster.insert(fresh)
    with db.batch():
        p1.set_Y(3.0)
        p2.set_X(7.0)
        # A query inside the open batch forces a mid-batch flush, which
        # the WAL records as a batch_flush marker.
        assert p2.norm() >= 0.0
        p2.set_Y(2.0)
    with db.transaction():
        p3.set_X(2.5)
        cluster.remove(p0)
    with db.transaction() as txn:
        p3.set_Y(8.0)
        cluster.remove(p1)  # rollback re-inserts with an explicit position
        txn.abort()
    doomed = db.new("Point", X=0.5, Y=0.5, Label="tmp")
    doomed.set_X(1.5)
    db.delete(doomed)
    p0.set_Y(4.0)


def _assert_same_state(recovered: ObjectBase, reference: ObjectBase, context: str):
    left = base_state(recovered)
    right = base_state(reference)
    for key in left:
        assert left[key] == right[key], (
            f"{context}: recovered base diverges from the committed-prefix "
            f"reference in {key!r}:\n{left[key]!r}\n!=\n{right[key]!r}"
        )


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
def test_crash_matrix(strategy, tmp_path):
    ckpt = str(tmp_path / "checkpoint.json")

    # Clean run: capture the full WAL byte stream.
    clean_log = str(tmp_path / "clean.log")
    clean = _build_point_base(strategy)
    clean.attach_wal(WriteAheadLog(clean_log))
    checkpoint(clean, ckpt)
    _script(clean)
    with open(clean_log, "rb") as handle:
        full = handle.read()
    assert full, "the script must produce WAL traffic"

    offsets = crash_points(full)
    assert len(offsets) >= 40, "expected a dense crash matrix"
    crash_log = str(tmp_path / "crash.log")

    for offset in offsets:
        victim = _build_point_base(strategy)
        raw = open(crash_log, "wb")
        victim.attach_wal(
            WriteAheadLog(path=crash_log, fileobj=CrashingFile(raw, offset))
        )
        crashed = False
        try:
            _script(victim)
        except SimulatedCrash:
            crashed = True
        finally:
            raw.close()
        assert crashed, f"offset {offset} should kill the run mid-script"

        with open(crash_log, "rb") as handle:
            durable = handle.read()
        # The simulated disk holds exactly the byte prefix of the clean
        # run's log: deterministic scripts make the streams identical.
        assert durable == full[:offset], f"offset {offset}: torn tail differs"

        recovered = ObjectBase()
        _point_schema(recovered)
        report = recover(recovered, ckpt, crash_log)
        assert report.records_replayed <= report.records_scanned

        reference = ObjectBase()
        _point_schema(reference)
        load_object_base(reference, ckpt)
        apply_records(reference, committed_records(parse_records(durable)))

        _assert_same_state(
            recovered, reference, f"{strategy.name} @ offset {offset}"
        )


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
def test_reader_agrees_with_independent_parser(strategy, tmp_path):
    """The production log reader and the test-local parser must decode
    the identical record list from the identical bytes."""
    log_path = str(tmp_path / "wal.log")
    db = _build_point_base(strategy)
    db.attach_wal(WriteAheadLog(log_path))
    _script(db)
    production = wal_module.read_records(log_path)
    with open(log_path, "rb") as handle:
        independent = parse_records(handle.read())
    assert production == independent
    durable, _ = wal_module.committed_prefix(production)
    assert durable == committed_records(independent)


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
def test_geometry_checkpoint_crash_recover(strategy, tmp_path):
    """Full checkpoint→crash→recover on the paper's Figure 2 base:
    validity flags and RRR must survive bit-for-bit."""
    db = ObjectBase()
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    db.materialize(
        [("Cuboid", "volume"), ("Cuboid", "weight")], strategy=strategy
    )
    ckpt = str(tmp_path / "geo.json")
    log_path = str(tmp_path / "geo.log")
    db.attach_wal(WriteAheadLog(log_path))
    checkpoint(db, ckpt)

    c0, c1, _ = fixture.cuboids
    c0.scale(create_vertex(db, 1.5, 1.0, 1.0))
    c1.set_Mat(fixture.gold)
    with db.transaction() as txn:
        c1.scale(create_vertex(db, 3.0, 1.0, 1.0))
        txn.abort()

    with open(log_path, "rb") as handle:
        full = handle.read()

    # Recover the full log and two torn variants: a frame boundary in
    # the middle of the scale's elementary updates and a mid-frame tear.
    boundaries = crash_points(full)
    probe_offsets = [len(full), boundaries[len(boundaries) // 2], boundaries[3] + 5]
    for offset in probe_offsets:
        torn = str(tmp_path / f"geo-{offset}.log")
        with open(torn, "wb") as handle:
            handle.write(full[:offset])

        recovered = ObjectBase()
        build_geometry_schema(recovered)
        recover(recovered, ckpt, torn)

        reference = ObjectBase()
        build_geometry_schema(reference)
        load_object_base(reference, ckpt)
        apply_records(
            reference, committed_records(parse_records(full[:offset]))
        )

        # The headline acceptance: GMR validity flags and RRR contents
        # bit-for-bit (base_state compares both exactly).
        _assert_same_state(
            recovered, reference, f"geometry {strategy.name} @ {offset}"
        )
        assert sorted(
            recovered.gmr_manager.rrr.triples()
        ) == sorted(reference.gmr_manager.rrr.triples())


def test_recovery_discards_unterminated_transaction(tmp_path):
    db = _build_point_base(Strategy.IMMEDIATE)
    ckpt = str(tmp_path / "ck.json")
    log_path = str(tmp_path / "wal.log")
    db.attach_wal(WriteAheadLog(log_path))
    checkpoint(db, ckpt)
    p0 = db.extension("Point")[0]
    p0.set_X(42.0)
    # Simulate a crash mid-transaction: log records but never terminate.
    db.transactions.begin()
    p0.set_Y(99.0)

    recovered = ObjectBase()
    _point_schema(recovered)
    report = recover(recovered, ckpt, log_path)
    assert report.records_discarded == 2  # txn_begin + the set
    assert recovered.extension("Point")[0].X == 42.0
    assert recovered.extension("Point")[0].Y != 99.0


def test_recovery_closes_open_batch(tmp_path):
    db = _build_point_base(Strategy.LAZY)
    ckpt = str(tmp_path / "ck.json")
    log_path = str(tmp_path / "wal.log")
    db.attach_wal(WriteAheadLog(log_path))
    checkpoint(db, ckpt)
    scope = db.batch()
    scope.__enter__()
    points = db.extension("Point")
    points[0].set_X(11.0)
    points[1].set_Y(13.0)
    # Crash here: batch_begin + two sets are on disk, no batch_end.

    recovered = ObjectBase()
    _point_schema(recovered)
    report = recover(recovered, ckpt, log_path)
    assert report.batches_closed == 1
    assert recovered.gmr_manager._batch_depth == 0
    assert recovered.extension("Point")[0].X == 11.0
