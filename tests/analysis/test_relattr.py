"""End-to-end static analysis tests: RelAttr over real schemas.

The central example is the paper's Sec. 5.1 result:

    RelAttr(volume) = {Cuboid.V1, Cuboid.V2, Cuboid.V4, Cuboid.V5,
                       Vertex.X, Vertex.Y, Vertex.Z}
"""

import pytest

from repro import ObjectBase
from repro.domains.company import build_company_schema
from repro.domains.geometry import build_geometry_schema
from repro.errors import UnsupportedConstructError


@pytest.fixture
def geo():
    db = ObjectBase()
    build_geometry_schema(db)
    return db


def relattr(db, type_name, op_name):
    return db.functions.analyzer.relevant_attributes(type_name, op_name).pairs


class TestPaperExample:
    def test_relattr_volume_paper_example(self, geo):
        assert relattr(geo, "Cuboid", "volume") == {
            ("Cuboid", "V1"),
            ("Cuboid", "V2"),
            ("Cuboid", "V4"),
            ("Cuboid", "V5"),
            ("Vertex", "X"),
            ("Vertex", "Y"),
            ("Vertex", "Z"),
        }

    def test_relattr_length_only_v1_v2(self, geo):
        assert relattr(geo, "Cuboid", "length") == {
            ("Cuboid", "V1"),
            ("Cuboid", "V2"),
            ("Vertex", "X"),
            ("Vertex", "Y"),
            ("Vertex", "Z"),
        }

    def test_relattr_weight_adds_material(self, geo):
        pairs = relattr(geo, "Cuboid", "weight")
        assert ("Cuboid", "Mat") in pairs
        assert ("Material", "SpecWeight") in pairs
        assert ("Material", "Name") not in pairs
        assert pairs >= relattr(geo, "Cuboid", "volume")

    def test_relattr_dist(self, geo):
        assert relattr(geo, "Vertex", "dist") == {
            ("Vertex", "X"),
            ("Vertex", "Y"),
            ("Vertex", "Z"),
        }

    def test_relattr_distance_uses_robot_position(self, geo):
        pairs = relattr(geo, "Cuboid", "distance")
        assert ("Robot", "Pos") in pairs
        assert ("Cuboid", "V1") in pairs
        assert ("Cuboid", "V7") in pairs
        assert ("Cuboid", "V2") not in pairs


class TestCollectionFunctions:
    def test_total_volume_includes_membership(self, geo):
        pairs = relattr(geo, "Workpieces", "total_volume")
        assert ("Workpieces", "__elements__") in pairs
        assert ("Cuboid", "V1") in pairs
        assert ("Vertex", "X") in pairs
        assert ("Cuboid", "Value") not in pairs

    def test_total_value_sees_value_not_geometry(self, geo):
        pairs = relattr(geo, "Valuables", "total_value")
        assert ("Valuables", "__elements__") in pairs
        assert ("Cuboid", "Value") in pairs
        assert ("Vertex", "X") not in pairs


class TestCompanyFunctions:
    @pytest.fixture
    def comp(self):
        db = ObjectBase()
        build_company_schema(db)
        return db

    def test_ranking(self, comp):
        pairs = relattr(comp, "Employee", "ranking")
        assert pairs == {
            ("Employee", "JobHistory"),
            ("Jobs", "__elements__"),
            ("Job", "LinesOfCode"),
            ("Job", "OnTime"),
            ("Job", "WithinBudget"),
        }

    def test_matrix(self, comp):
        pairs = relattr(comp, "Company", "matrix")
        assert ("Company", "Deps") in pairs
        assert ("Company", "Projs") in pairs
        assert ("Departments", "__elements__") in pairs
        assert ("Projects", "__elements__") in pairs
        assert ("Department", "Emps") in pairs
        assert ("Employees", "__elements__") in pairs
        assert ("Project", "Programmers") in pairs
        # Salaries and statuses play no role in the matrix.
        assert ("Employee", "Salary") not in pairs
        assert ("Project", "Status") not in pairs


class TestAnalyzerBehaviour:
    def test_conditionals_union_branches(self, db):
        db.define_tuple_type("T", {"A": "float", "B": "float", "C": "bool"})

        def pick(self):
            if self.C:
                return self.A
            return self.B

        db.define_operation("T", "pick", [], "float", pick)
        assert relattr(db, "T", "pick") == {
            ("T", "A"),
            ("T", "B"),
            ("T", "C"),
        }

    def test_local_variable_aliasing(self, db):
        db.define_tuple_type("Inner", {"V": "float"})
        db.define_tuple_type("Outer", {"Child": "Inner"})

        def peek(self):
            child = self.Child
            return child.V

        db.define_operation("Outer", "peek", [], "float", peek)
        assert relattr(db, "Outer", "peek") == {
            ("Outer", "Child"),
            ("Inner", "V"),
        }

    def test_parameter_paths(self, db):
        db.define_tuple_type("T", {"A": "float"})

        def diff(self, other):
            return self.A - other.A

        db.define_operation("T", "diff", ["T"], "float", diff)
        assert relattr(db, "T", "diff") == {("T", "A")}

    def test_inherited_attribute_keyed_by_declaring_type(self, db):
        db.define_tuple_type("Base", {"A": "float"})
        db.define_tuple_type("Sub", {"B": "float"}, supertype="Base")

        def combine(self):
            return self.A + self.B

        db.define_operation("Sub", "combine", [], "float", combine)
        assert relattr(db, "Sub", "combine") == {
            ("Base", "A"),
            ("Sub", "B"),
        }

    def test_recursion_is_unsupported(self, db):
        db.define_tuple_type("Node", {"Next": "Node", "V": "float"})

        def depth(self):
            return 1.0 + self.Next.depth()

        db.define_operation("Node", "depth", [], "float", depth)
        with pytest.raises(UnsupportedConstructError):
            relattr(db, "Node", "depth")

    def test_unsupported_falls_back_to_none_in_registry(self, db):
        db.define_tuple_type("Node", {"Next": "Node", "V": "float"})

        def depth(self):
            return 1.0 + self.Next.depth()

        db.define_operation("Node", "depth", [], "float", depth)
        info = db.functions.register("Node", "depth")
        assert info.relevant_attrs is None

    def test_explicit_override(self, db):
        db.define_tuple_type("T", {"A": "float"})

        def weird(self):
            return self.A

        db.define_operation("T", "weird", [], "float", weird)
        info = db.functions.register(
            "T", "weird", relevant_attrs=[("T", "A")]
        )
        assert info.relevant_attrs == {("T", "A")}

    def test_static_result_covers_observed_accesses(self, geo):
        """Soundness: the static RelAttr is a superset of any traced run."""
        from repro.domains.geometry import build_figure2_database

        fixture = build_figure2_database(geo)
        static = relattr(geo, "Cuboid", "weight")
        with geo.trace() as tracer:
            with geo.materialization_scope():
                fixture.cuboids[0].weight()
        assert tracer.attributes <= static
