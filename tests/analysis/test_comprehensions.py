"""Static analysis of comprehension-style function bodies."""

import pytest

from repro import ObjectBase


@pytest.fixture
def db():
    database = ObjectBase()
    database.define_set_type("Items", "Item")
    database.define_tuple_type("Item", {"V": "float", "W": "float", "Tag": "string"})
    database.define_tuple_type("Box", {"Contents": "Items", "Label": "string"})
    return database


def relattr(db, type_name, op_name):
    return db.functions.analyzer.relevant_attributes(type_name, op_name).pairs


class TestComprehensions:
    def test_sum_over_generator(self, db):
        def total(self):
            return sum(item.V for item in self.Contents)

        db.define_operation("Box", "total", [], "float", total)
        assert relattr(db, "Box", "total") == {
            ("Box", "Contents"),
            ("Items", "__elements__"),
            ("Item", "V"),
        }

    def test_filtered_comprehension_sees_condition(self, db):
        def heavy_total(self):
            return sum(item.V for item in self.Contents if item.W > 10.0)

        db.define_operation("Box", "heavy_total", [], "float", heavy_total)
        pairs = relattr(db, "Box", "heavy_total")
        assert ("Item", "W") in pairs
        assert ("Item", "V") in pairs
        assert ("Box", "Label") not in pairs

    def test_list_comprehension_assigned_then_iterated(self, db):
        def spread(self):
            values = [item.V for item in self.Contents]
            return max(values) - min(values) if values else 0.0

        db.define_operation("Box", "spread", [], "float", spread)
        pairs = relattr(db, "Box", "spread")
        assert ("Item", "V") in pairs
        assert ("Items", "__elements__") in pairs

    def test_len_of_comprehension(self, db):
        def tagged_count(self):
            return len([item for item in self.Contents if item.Tag == "x"])

        db.define_operation("Box", "tagged_count", [], "int", tagged_count)
        pairs = relattr(db, "Box", "tagged_count")
        assert ("Item", "Tag") in pairs
        assert ("Items", "__elements__") in pairs

    def test_materialized_comprehension_function(self, db):
        """End to end: a comprehension body is maintained correctly."""
        def total(self):
            return sum(item.V for item in self.Contents)

        db.define_operation("Box", "total", [], "float", total)
        items = [db.new("Item", V=float(i), W=1.0) for i in range(4)]
        contents = db.new_collection("Items", items)
        box = db.new("Box", Contents=contents, Label="b")
        gmr = db.materialize([("Box", "total")])
        assert box.total() == 6.0
        items[0].set_V(10.0)
        assert box.total() == 16.0
        contents.remove(items[1])
        assert box.total() == 15.0
        box.set_Label("renamed")  # irrelevant
        assert gmr.check_consistency(db) == []

    def test_multi_generator_unsupported(self, db):
        def cross(self):
            return sum(a.V * b.W for a in self.Contents for b in self.Contents)

        db.define_operation("Box", "cross", [], "float", cross)
        info = db.functions.register("Box", "cross")
        assert info.relevant_attrs is None  # sound fallback
