"""Unit tests for path expressions and the ⊗ calculus (Def. 8.1)."""

from repro.core.analysis.extraction import ExtractionStructure
from repro.core.analysis.paths import (
    PathExpression,
    rewrite_path,
    rewrite_paths,
)


def P(root, *attrs):
    return PathExpression(root, tuple(attrs))


class TestPathExpression:
    def test_str(self):
        assert str(P("self", "V1", "X")) == "self.V1.X"
        assert str(P("v")) == "v"

    def test_extend(self):
        assert P("v").extend("A") == P("v", "A")

    def test_rebase(self):
        assert P("v", "X").rebase(P("self", "V1")) == P("self", "V1", "X")

    def test_length(self):
        assert P("v").length == 0
        assert P("v", "A", "B").length == 2

    def test_hashable_and_equal(self):
        assert P("a", "b") == P("a", "b")
        assert len({P("a", "b"), P("a", "b"), P("a")}) == 2


class TestRewriting:
    def test_no_matching_rule_keeps_path(self):
        assert rewrite_path(P("v", "X"), [("w", P("self"))]) == {P("v", "X")}

    def test_single_rule(self):
        assert rewrite_path(P("v", "X"), [("v", P("self", "V1"))]) == {
            P("self", "V1", "X")
        }

    def test_multiple_rules_for_same_variable(self):
        rules = [("v", P("self", "V1")), ("v", P("self", "V2"))]
        assert rewrite_path(P("v", "X"), rules) == {
            P("self", "V1", "X"),
            P("self", "V2", "X"),
        }

    def test_rewrite_paths_union(self):
        rules = [("v", P("self", "V1"))]
        result = rewrite_paths([P("v", "X"), P("w", "Y")], rules)
        assert result == {P("self", "V1", "X"), P("w", "Y")}


class TestCombine:
    """E1 ⊗ E2 (Def. 8.1)."""

    def test_later_paths_rewritten_by_earlier_rules(self):
        # v := self.V1 ; ... v.X ...
        first = ExtractionStructure.of(set(), {("v", P("self", "V1"))})
        second = ExtractionStructure.of({P("v", "X")})
        combined = first.combine(second)
        assert P("self", "V1", "X") in combined.paths

    def test_earlier_paths_kept(self):
        first = ExtractionStructure.of({P("self", "A")})
        second = ExtractionStructure.of({P("self", "B")})
        combined = first.combine(second)
        assert combined.paths == {P("self", "A"), P("self", "B")}

    def test_rule_chaining(self):
        # v := self.V1 ; w := v — the second rule is rewritten.
        first = ExtractionStructure.of(set(), {("v", P("self", "V1"))})
        second = ExtractionStructure.of(set(), {("w", P("v"))})
        combined = first.combine(second)
        assert ("w", P("self", "V1")) in combined.rules

    def test_reassignment_drops_old_rule(self):
        # v := self.V1 ; v := self.V2
        first = ExtractionStructure.of(set(), {("v", P("self", "V1"))})
        second = ExtractionStructure.of(set(), {("v", P("self", "V2"))})
        combined = first.combine(second)
        assert ("v", P("self", "V1")) not in combined.rules
        assert ("v", P("self", "V2")) in combined.rules

    def test_left_associative_sequence(self):
        # v := self.V1 ; w := v.Sub ; ... w.X ...
        one = ExtractionStructure.of(set(), {("v", P("self", "V1"))})
        two = ExtractionStructure.of(set(), {("w", P("v", "Sub"))})
        three = ExtractionStructure.of({P("w", "X")})
        combined = one.combine(two).combine(three)
        assert P("self", "V1", "Sub", "X") in combined.paths
