"""Unit tests for the Python → IR frontend."""

import pytest

from repro.core.analysis import ir
from repro.core.analysis.python_frontend import lower_callable
from repro.errors import UnsupportedConstructError


class TestLowering:
    def test_simple_return(self):
        def f(self):
            return self.A

        lowered = lower_callable(f)
        assert lowered.params == ()
        assert lowered.body == (ir.Return(ir.Attr(ir.Var("self"), "A")),)

    def test_parameters(self):
        def f(self, a, b):
            return a

        lowered = lower_callable(f)
        assert lowered.params == ("a", "b")

    def test_assignment_and_augassign(self):
        def f(self):
            x = self.A
            x += 1.0
            return x

        lowered = lower_callable(f)
        assert isinstance(lowered.body[0], ir.Assign)
        assert isinstance(lowered.body[1], ir.Assign)
        assert isinstance(lowered.body[1].value, ir.Binary)

    def test_if_else(self):
        def f(self):
            if self.A > 0:
                return self.B
            else:
                return self.C

        lowered = lower_callable(f)
        branch = lowered.body[0]
        assert isinstance(branch, ir.If)
        assert len(branch.then) == 1
        assert len(branch.orelse) == 1

    def test_for_loop(self):
        def f(self):
            total = 0.0
            for item in self.Items:
                total = total + item.V
            return total

        lowered = lower_callable(f)
        loop = lowered.body[1]
        assert isinstance(loop, ir.ForEach)
        assert loop.var == "item"

    def test_docstring_skipped(self):
        def f(self):
            """doc"""
            return self.A

        lowered = lower_callable(f)
        assert len(lowered.body) == 1

    def test_method_call(self):
        def f(self):
            return self.V1.dist(self.V2)

        lowered = lower_callable(f)
        call = lowered.body[0].value
        assert isinstance(call, ir.Call)
        assert call.name == "dist"

    def test_bare_builtin_call(self):
        def f(self):
            return len(self.Items)

        lowered = lower_callable(f)
        call = lowered.body[0].value
        assert isinstance(call, ir.Call)
        assert call.receiver is None
        assert call.name == "len"

    def test_bool_and_compare_chains(self):
        def f(self):
            return 0 < self.A < 10 and self.B

        lowered = lower_callable(f)  # must not raise
        assert isinstance(lowered.body[0], ir.Return)

    def test_ternary(self):
        def f(self):
            return self.A if self.C else self.B

        lowered = lower_callable(f)
        assert isinstance(lowered.body[0].value, ir.Conditional)

    def test_caching(self):
        def f(self):
            return self.A

        assert lower_callable(f) is lower_callable(f)


class TestUnsupported:
    def test_lambda_rejected(self):
        f = lambda self: self.A  # noqa: E731
        with pytest.raises(UnsupportedConstructError):
            lower_callable(f)

    def test_missing_self(self):
        def f(x):
            return x

        with pytest.raises(UnsupportedConstructError):
            lower_callable(f)

    def test_varargs_rejected(self):
        def f(self, *args):
            return args

        with pytest.raises(UnsupportedConstructError):
            lower_callable(f)

    def test_while_rejected(self):
        def f(self):
            while self.A > 0:
                pass
            return 0

        with pytest.raises(UnsupportedConstructError):
            lower_callable(f)

    def test_tuple_assignment_rejected(self):
        def f(self):
            a, b = self.A, self.B
            return a

        with pytest.raises(UnsupportedConstructError):
            lower_callable(f)

    def test_keyword_call_rejected(self):
        def f(self):
            return self.g(x=1)

        with pytest.raises(UnsupportedConstructError):
            lower_callable(f)

    def test_builtin_without_code_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            lower_callable(len)
