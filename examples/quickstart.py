"""Quickstart: materialize a function, update objects, query results.

Run with::

    python examples/quickstart.py
"""

from repro import ObjectBase, Strategy, verify_recovery


def norm(self):
    """Euclidean norm of the point — the function we will materialize."""
    return (self.X * self.X + self.Y * self.Y) ** 0.5


def build_schema(db: ObjectBase) -> None:
    """Define a type and a side-effect-free function on it.

    A named function (not inline in ``main``) so recovery can rebuild
    the schema on a fresh base — code is never persisted.
    """
    db.define_tuple_type("Point", {"X": "float", "Y": "float", "Tag": "string"})
    db.define_operation("Point", "norm", [], "float", norm)


def main() -> None:
    db = ObjectBase()

    # 1. Define the schema (see build_schema above).
    build_schema(db)

    # 2. Create some objects.
    points = [
        db.new("Point", X=3.0, Y=4.0, Tag="a"),
        db.new("Point", X=6.0, Y=8.0, Tag="b"),
        db.new("Point", X=1.0, Y=1.0, Tag="c"),
    ]

    # 3. Materialize: precompute norm for the whole extension.
    gmr = db.materialize([("Point", "norm")], strategy=Strategy.IMMEDIATE)
    print(gmr.extension_table())

    # The static analysis knows norm depends on X and Y but not Tag:
    print("\nRelAttr(norm) =", sorted(db.gmr_manager.relevant_attrs("Point.norm")))

    # 4. Invocations are now forward queries against the GMR.
    print("\nnorm of first point (from the GMR):", points[0].norm())

    # 5. Updates to relevant attributes invalidate + rematerialize ...
    points[0].set_X(9.0)
    print("after set_X(9.0):", points[0].norm())

    # ... while irrelevant updates don't touch the GMR at all.
    points[0].set_Tag("renamed")

    # 6. Backward queries use the GMR's result index.
    big = db.query("range p: Point retrieve p where p.norm > 5.0")
    print("\npoints with norm > 5:", [point.Tag for point in big])

    # 7. Aggregates work too.
    print("total norm:", db.query("range p: Point retrieve sum(p.norm)"))

    # The extension stayed consistent throughout (Def. 3.2):
    assert gmr.check_consistency(db) == []
    print("\nGMR is consistent and complete:", gmr.is_complete(db))

    # 8. Durability: checkpoint, log a few more updates, crash-simulate,
    #    recover — and require the recovered base to match this one
    #    (objects, GMR extension, validity flags, the lot).
    def more_updates(live):
        points[1].set_Y(2.0)
        live.new("Point", X=8.0, Y=15.0, Tag="d")

    verify_recovery(db, build_schema, mutate=more_updates)
    print("checkpoint → crash → recover reproduced the base exactly")


if __name__ == "__main__":
    main()
