"""Restricted GMRs (Sec. 6): partial materialization with predicates.

Three demonstrations:

1. the paper's opening example — materialize volume/weight only for
   *iron* cuboids, with automatic adaptation when materials change;
2. the applicability (cover) test for backward queries — a restricted
   GMR answers only queries whose selection predicate implies the
   restriction (decided via Rosenkrantz–Hunt satisfiability);
3. value-restricted atomic arguments — the paper's "weight on every
   planet" example.

Run with::

    python examples/restricted_materialization.py
"""

from repro import (
    ObjectBase,
    RestrictionSpec,
    ValueRestriction,
    Variable,
    verify_recovery,
)
from repro.domains.geometry import build_figure2_database, build_geometry_schema
from repro.predicates.cover import covers


def iron_only() -> None:
    print("=" * 64)
    print("1. Materialize volume/weight only for iron cuboids")
    print("=" * 64)
    db = ObjectBase()
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    gmr = db.query(
        'range c: Cuboid materialize c.volume, c.weight '
        'where c.Mat.Name = "Iron"'
    )
    print(gmr.extension_table())
    print("\ngold cuboid volume (computed by the normal function):",
          fixture.cuboids[2].volume())

    print("\n→ re-forging the gold cuboid in iron ...")
    fixture.cuboids[2].set_Mat(fixture.iron)
    print(gmr.extension_table())

    # Restriction predicates are code, so recovery takes them by GMR
    # name; the post-checkpoint tail re-forges a cuboid back to gold —
    # predicate maintenance must replay too (the entry drops out again).
    verify_recovery(
        db,
        build_geometry_schema,
        restrictions={gmr.name: gmr.restriction},
        mutate=lambda live: fixture.cuboids[2].set_Mat(fixture.gold),
    )
    print("durability: checkpoint → crash → recover matched exactly")


def cover_test() -> None:
    print()
    print("=" * 64)
    print("2. The applicability (cover) test for backward queries")
    print("=" * 64)
    x = Variable("c", ("volume",))
    name = Variable("c", ("Mat", "Name"))
    restriction = name.eq("Iron")
    covered = (x > 250.0) & name.eq("Iron")
    uncovered = x > 250.0
    print('p ≡ c.Mat.Name = "Iron"')
    print('σ₁ ≡ volume > 250 ∧ Mat.Name = "Iron"  →  covers:',
          covers(restriction, covered))
    print("σ₂ ≡ volume > 250                      →  covers:",
          covers(restriction, uncovered))
    print("(σ₂ must fall back to a scan — the gold cuboids would be missed)")


def planets() -> None:
    print()
    print("=" * 64)
    print("3. Value-restricted atomic argument (Sec. 6.2)")
    print("=" * 64)
    db = ObjectBase()
    build_geometry_schema(db)
    fixture = build_figure2_database(db)

    def weight_at(self, gravitation):
        return self.volume() * self.Mat.SpecWeight * gravitation / 9.81

    db.define_operation("Cuboid", "weight_at", ["float"], "float", weight_at)
    db.make_public("Cuboid", "weight_at")

    planets = {"Earth": 9.81, "Mars": 3.7, "Jupiter": 22.01}
    gmr = db.materialize(
        [("Cuboid", "weight_at")],
        restriction=RestrictionSpec(
            atomic={1: ValueRestriction(tuple(planets.values()))}
        ),
    )
    print(f"⟨⟨weight_at⟩⟩ holds {len(gmr)} entries "
          f"(3 cuboids × {len(planets)} planets)\n")
    c1 = fixture.cuboids[0]
    for planet, gravity in planets.items():
        print(f"  weight of cuboid #1 on {planet:8s}: "
              f"{c1.weight_at(gravity):10.1f}")
    print(f"  weight on the Moon (1.62, not materialized): "
          f"{c1.weight_at(1.62):10.1f}")

    def rebuild(fresh):
        build_geometry_schema(fresh)
        fresh.define_operation(
            "Cuboid", "weight_at", ["float"], "float", weight_at
        )
        fresh.make_public("Cuboid", "weight_at")

    verify_recovery(
        db,
        rebuild,
        restrictions={gmr.name: gmr.restriction},
        mutate=lambda live: fixture.cuboids[1].set_Mat(fixture.gold),
    )
    print("\ndurability: checkpoint → crash → recover matched exactly")


if __name__ == "__main__":
    iron_only()
    cover_test()
    planets()
