"""Administrative application: employee rankings and the project matrix.

Reproduces the Sec. 7.2 scenario: materialize ``Employee.ranking`` for
fast backward queries ("who ranks between 4 and 5?"), keep it consistent
under promotions, and maintain the department × project matrix with a
declared delta handler so that adding a project is cheap.

Run with::

    python examples/company_analytics.py
"""

import time

from repro import ObjectBase, Strategy, verify_recovery
from repro.domains.company import (
    add_random_project,
    build_company_schema,
    define_company_deltas,
    populate_company,
)
from repro.gomql import run_statement
from repro.observe.config import MaterializationConfig
from repro.util.rng import DeterministicRng


def main() -> None:
    db = ObjectBase(config=MaterializationConfig(maintenance="delta"))
    build_company_schema(db)
    rng = DeterministicRng(42)
    fixture = populate_company(
        db,
        rng,
        departments=5,
        employees_per_department=20,
        projects=60,
        jobs_per_employee=6,
    )
    db.create_attr_index("Employee", "EmpNo")
    print(f"populated: {len(fixture.employees)} employees, "
          f"{len(fixture.projects)} projects, {len(fixture.jobs)} jobs")

    # --- ranking ---------------------------------------------------------
    started = time.perf_counter()
    ranking_gmr = db.materialize(
        [("Employee", "ranking")], strategy=Strategy.LAZY
    )
    print(f"materialized ⟨⟨ranking⟩⟩ ({len(ranking_gmr)} entries) "
          f"in {time.perf_counter() - started:.3f}s")

    stars = db.query(
        "range e: Employee retrieve e where e.ranking > 4.0 and e.ranking < 5.0"
    )
    print(f"employees ranking in (4, 5): {len(stars)}")

    some = fixture.employees[0]
    print(f"ranking of employee #{some.EmpNo}:",
          run_statement(db, "range e: Employee retrieve e.ranking "
                            "where e.EmpNo = k", {"k": some.EmpNo})[0])

    # Promote: flip a job's status — only that employee's entry goes stale.
    job = next(iter(some.JobHistory))
    job.set_OnTime(not job.OnTime)
    stale = ranking_gmr.invalid_args("Employee.ranking")
    print(f"after one promotion, stale entries: {len(stale)} "
          f"(lazy: recomputed on next access)")
    print(f"fresh ranking: {some.ranking():.3f}")

    # --- the matrix under delta maintenance -------------------------------
    matrix_gmr = db.materialize([("Company", "matrix")])
    # The generalized successor of register_compensation(increase_matrix):
    # one declaration covers add_project *and* drop_project.
    define_company_deltas(db)
    lines = fixture.company.matrix()
    print(f"\nmatrix holds {len(lines)} department × project lines")

    started = time.perf_counter()
    project = add_random_project(
        db, rng, fixture.company, fixture.employees, programmers=5
    )
    elapsed = time.perf_counter() - started
    print(f"added project {project.PName} via delta patch "
          f"in {elapsed * 1000:.2f}ms (no full recomputation)")
    lines = fixture.company.matrix()
    print(f"matrix now holds {len(lines)} lines; "
          f"consistent: {matrix_gmr.check_consistency(db) == []}")

    # Selection on the matrix (the benchmark's Qsel,m).
    dep0 = fixture.departments[0]
    projects_of_dep0 = sorted(
        line.proj.PName for line in lines if line.dep == dep0
    )
    print(f"department {dep0.DName} participates in "
          f"{len(projects_of_dep0)} projects")

    # --- durability -------------------------------------------------------
    # Checkpoint the whole company (rankings, matrix, stale flags), run
    # one more promotion after the snapshot, crash-simulate, recover,
    # and require digest equality with the live base.
    def promote_another(live):
        other = fixture.employees[1]
        other_job = next(iter(other.JobHistory))
        other_job.set_OnTime(not other_job.OnTime)

    verify_recovery(db, build_company_schema, mutate=promote_another)
    print("\ndurability: checkpoint → crash → recover matched exactly")


if __name__ == "__main__":
    main()
