"""Function materialization as a general incremental-computation engine.

The machinery the paper built for OODB query acceleration is the same
idea modern incremental-computation frameworks (Adapton, Salsa,
Incremental) rediscovered: memoize derived values, track fine-grained
dependencies, and invalidate precisely on change.  This example builds a
tiny spreadsheet on top of the library:

* cells are objects; derived cells compute over the cells they read;
* materializing the ``value`` function caches every derived cell;
* editing one input invalidates exactly the cells that (transitively)
  depend on it — the RRR *is* the dependency graph.

Run with::

    python examples/incremental_spreadsheet.py
"""

from repro import ObjectBase, Strategy, verify_recovery


def cell_value(self):
    """A cell's value: its own Constant plus the sum of its inputs.

    ``Kind`` selects the operation: 'const' cells return Constant,
    'sum' cells add their input cells' values, 'prod' multiplies.
    """
    if self.Kind == "const":
        return self.Constant
    total = 0.0
    if self.Kind == "prod":
        total = 1.0
    for cell in self.Inputs:
        if self.Kind == "prod":
            total = total * cell.value()
        else:
            total = total + cell.value()
    return total


def build_sheet(db):
    db.define_set_type("Cells", "Cell")
    db.define_tuple_type(
        "Cell",
        {"Name": "string", "Kind": "string", "Constant": "float",
         "Inputs": "Cells"},
    )
    db.define_operation("Cell", "value", [], "float", cell_value)


def cell(db, name, kind="const", constant=0.0, inputs=()):
    return db.new(
        "Cell",
        Name=name,
        Kind=kind,
        Constant=float(constant),
        Inputs=db.new_collection("Cells", inputs),
    )


def main() -> None:
    db = ObjectBase()
    build_sheet(db)

    # A1..A3 are inputs; B1 = A1+A2, B2 = A2+A3, C1 = B1*B2.
    a1 = cell(db, "A1", constant=2.0)
    a2 = cell(db, "A2", constant=3.0)
    a3 = cell(db, "A3", constant=4.0)
    b1 = cell(db, "B1", kind="sum", inputs=[a1, a2])
    b2 = cell(db, "B2", kind="sum", inputs=[a2, a3])
    c1 = cell(db, "C1", kind="prod", inputs=[b1, b2])

    gmr = db.materialize([("Cell", "value")], strategy=Strategy.LAZY)
    print("initial sheet:")
    for handle in (a1, a2, a3, b1, b2, c1):
        print(f"  {handle.Name} = {handle.value()}")

    stats = db.gmr_manager.stats
    before = stats.snapshot()
    print("\nedit: A3 := 10  (only B2 and C1 depend on it)")
    a3.set_Constant(10.0)
    stale = {db.handle(args[0]).Name for args in gmr.invalid_args("Cell.value")}
    print("  stale cells:", sorted(stale))

    print("  C1 recomputes on demand:", c1.value())
    delta = stats.delta(before)
    print(f"  rematerializations: {delta.rematerializations} "
          f"(A1, A2, B1 were served from cache)")

    before = stats.snapshot()
    print("\nre-reading the whole sheet costs zero recomputation:")
    for handle in (a1, a2, a3, b1, b2, c1):
        print(f"  {handle.Name} = {handle.value()}")
    delta = stats.delta(before)
    print(f"  rematerializations: {delta.rematerializations}, "
          f"cache hits: {delta.forward_hits}")

    print("\nrewire: C1's inputs become [B1] only")
    c1.Inputs.remove(b2)
    print("  C1 =", c1.value())

    # The old dependency C1 → A3 leaves a *leftover* reverse reference
    # (Sec. 4.1): the next A3 edit still invalidates C1 once — spurious
    # but harmless — and consumes the leftover; after that, A3 edits no
    # longer touch C1 at all.
    a3.set_Constant(99.0)
    stale = {db.handle(args[0]).Name for args in gmr.invalid_args("Cell.value")}
    print("  first A3 edit after rewiring, stale:", sorted(stale),
          "(C1 hit once via a leftover reference)")
    for handle in (b2, c1):
        handle.value()  # revalidate
    a3.set_Constant(7.0)
    stale = {db.handle(args[0]).Name for args in gmr.invalid_args("Cell.value")}
    print("  second A3 edit, stale:", sorted(stale),
          "(the leftover is gone — C1 untouched)")
    assert "C1" not in stale
    assert gmr.check_consistency(db) == []

    # The dependency graph (the RRR) is recoverable state: checkpoint,
    # edit a cell and rewire an input after the snapshot, crash, recover
    # — the fresh sheet must carry identical values, staleness and
    # dependencies.
    def edit_after_snapshot(live):
        a1.set_Constant(6.0)
        c1.Inputs.insert(b2)

    verify_recovery(db, build_sheet, mutate=edit_after_snapshot)
    print("\ndurability: checkpoint → crash → recover reproduced the "
          "sheet (values, staleness and dependencies)")


if __name__ == "__main__":
    main()
