"""The paper's running example: a geometric workshop of cuboids.

Recreates the Figure 2 database, materializes ⟨⟨volume, weight⟩⟩, runs
the paper's backward and forward queries, demonstrates the invalidation
cost difference between plain maintenance and information hiding, and
applies the ``increase_total`` compensating action.

Run with::

    python examples/geometry_workshop.py
"""

from repro import InstrumentationLevel, ObjectBase, Strategy
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_vertex,
    increase_total,
)
from repro.gomql import run_statement


def count_invalidations(db):
    """Wrap the GMR manager to count invalidation calls."""
    counter = {"calls": 0}
    manager = db.gmr_manager
    original = manager.invalidate

    def counting(*args, **kwargs):
        counter["calls"] += 1
        return original(*args, **kwargs)

    manager.invalidate = counting
    return counter


def plain_version() -> None:
    print("=" * 64)
    print("Plain maintenance (OBJ_DEP instrumentation)")
    print("=" * 64)
    db = ObjectBase()
    build_geometry_schema(db)
    fixture = build_figure2_database(db)

    gmr = db.query("range c: Cuboid materialize c.volume, c.weight")
    print(gmr.extension_table())

    heavy = db.query(
        "range c: Cuboid retrieve c "
        "where c.volume > 20.0 and c.weight > 100.0"
    )
    print("\nbackward query (volume > 20, weight > 100):",
          [cuboid.CuboidID for cuboid in heavy])

    total = run_statement(
        db,
        "range c: MyValuableCuboids retrieve sum(c.weight)",
        {"MyValuableCuboids": fixture.valuables},
    )
    print("forward query sum(weight) over Valuables:", total)

    counter = count_invalidations(db)
    fixture.cuboids[0].rotate("z", 0.5)
    print(f"\none rotate triggered {counter['calls']} invalidations "
          f"(the paper's '12 (!)' complaint)")
    counter["calls"] = 0
    fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
    print(f"one scale triggered {counter['calls']} invalidations")
    print("volume after scale:", fixture.cuboids[0].volume())


def info_hiding_version() -> None:
    print()
    print("=" * 64)
    print("Information hiding (strict encapsulation, Sec. 5.3)")
    print("=" * 64)
    db = ObjectBase(level=InstrumentationLevel.INFO_HIDING)
    build_geometry_schema(db, strict_cuboids=True)
    fixture = build_figure2_database(db)
    db.materialize([("Cuboid", "volume")])

    counter = count_invalidations(db)
    fixture.cuboids[0].rotate("z", 0.5)
    print(f"one rotate triggered {counter['calls']} invalidations "
          f"(rotate is known to leave volume invariant)")
    counter["calls"] = 0
    fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
    print(f"one scale triggered {counter['calls']} invalidation")


def compensating_action() -> None:
    print()
    print("=" * 64)
    print("Compensating actions (Sec. 5.4)")
    print("=" * 64)
    db = ObjectBase()
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    gmr = db.materialize([("Workpieces", "total_volume")])
    db.gmr_manager.register_compensation(
        "Workpieces", "insert", ("Workpieces", "total_volume"), increase_total
    )
    print("total_volume before insert:", fixture.workpieces.total_volume())
    fixture.workpieces.insert(fixture.cuboids[2])
    value, valid = gmr.result(
        (fixture.workpieces.oid,), "Workpieces.total_volume"
    )
    print("total_volume after insert (compensated, no recompute):", value)
    assert valid and gmr.check_consistency(db) == []


def lazy_strategy() -> None:
    print()
    print("=" * 64)
    print("Lazy vs immediate rematerialization (Sec. 4.1)")
    print("=" * 64)
    db = ObjectBase()
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    gmr = db.materialize([("Cuboid", "volume")], strategy=Strategy.LAZY)
    fixture.cuboids[0].scale(create_vertex(db, 3.0, 1.0, 1.0))
    print("valid after scale (lazy)?", gmr.is_valid("Cuboid.volume"))
    print("access recomputes on demand:", fixture.cuboids[0].volume())
    print("valid now?", gmr.is_valid("Cuboid.volume"))


if __name__ == "__main__":
    plain_version()
    info_hiding_version()
    compensating_action()
    lazy_strategy()
