"""The paper's running example: a geometric workshop of cuboids.

Recreates the Figure 2 database, materializes ⟨⟨volume, weight⟩⟩, runs
the paper's backward and forward queries, demonstrates the invalidation
cost difference between plain maintenance and information hiding, and
maintains ``total_volume`` with an O(delta) sum patch (the generalized
successor of the ``increase_total`` compensating action).

Run with::

    python examples/geometry_workshop.py
"""

from repro import InstrumentationLevel, ObjectBase, Strategy, verify_recovery
from repro.core.delta import sum_of
from repro.domains.geometry import (
    build_figure2_database,
    build_geometry_schema,
    create_vertex,
)
from repro.gomql import run_statement
from repro.observe.config import MaterializationConfig


def count_invalidations(db):
    """Wrap the GMR manager to count invalidation calls."""
    counter = {"calls": 0}
    manager = db.gmr_manager
    original = manager.invalidate

    def counting(*args, **kwargs):
        counter["calls"] += 1
        return original(*args, **kwargs)

    manager.invalidate = counting
    return counter


def plain_version() -> None:
    print("=" * 64)
    print("Plain maintenance (OBJ_DEP instrumentation)")
    print("=" * 64)
    db = ObjectBase()
    build_geometry_schema(db)
    fixture = build_figure2_database(db)

    gmr = db.query("range c: Cuboid materialize c.volume, c.weight")
    print(gmr.extension_table())

    heavy = db.query(
        "range c: Cuboid retrieve c "
        "where c.volume > 20.0 and c.weight > 100.0"
    )
    print("\nbackward query (volume > 20, weight > 100):",
          [cuboid.CuboidID for cuboid in heavy])

    total = run_statement(
        db,
        "range c: MyValuableCuboids retrieve sum(c.weight)",
        {"MyValuableCuboids": fixture.valuables},
    )
    print("forward query sum(weight) over Valuables:", total)

    counter = count_invalidations(db)
    fixture.cuboids[0].rotate("z", 0.5)
    print(f"\none rotate triggered {counter['calls']} invalidations "
          f"(the paper's '12 (!)' complaint)")
    counter["calls"] = 0
    fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
    print(f"one scale triggered {counter['calls']} invalidations")
    print("volume after scale:", fixture.cuboids[0].volume())

    # Checkpoint → crash → recover: scale once more after the snapshot
    # so recovery has a WAL tail to replay, then compare bit-for-bit.
    verify_recovery(
        db,
        build_geometry_schema,
        mutate=lambda live: fixture.cuboids[1].scale(
            create_vertex(live, 1.0, 2.0, 1.0)
        ),
    )
    print("durability: checkpoint → crash → recover matched exactly")


def info_hiding_version() -> None:
    print()
    print("=" * 64)
    print("Information hiding (strict encapsulation, Sec. 5.3)")
    print("=" * 64)
    db = ObjectBase(level=InstrumentationLevel.INFO_HIDING)
    build_geometry_schema(db, strict_cuboids=True)
    fixture = build_figure2_database(db)
    db.materialize([("Cuboid", "volume")])

    counter = count_invalidations(db)
    fixture.cuboids[0].rotate("z", 0.5)
    print(f"one rotate triggered {counter['calls']} invalidations "
          f"(rotate is known to leave volume invariant)")
    counter["calls"] = 0
    fixture.cuboids[0].scale(create_vertex(db, 2.0, 1.0, 1.0))
    print(f"one scale triggered {counter['calls']} invalidation")

    # Strict public operations replay conservatively (the replayed
    # elementary updates notify individually — see
    # repro.gom.instrumentation), so the post-checkpoint tail mutates
    # through plain object creation only.
    verify_recovery(
        db,
        lambda fresh: build_geometry_schema(fresh, strict_cuboids=True),
        mutate=lambda live: create_vertex(live, 9.0, 9.0, 9.0),
    )
    print("durability: checkpoint → crash → recover matched exactly")


def compensating_action() -> None:
    print()
    print("=" * 64)
    print("Delta maintenance (Sec. 5.4, generalized)")
    print("=" * 64)
    db = ObjectBase(config=MaterializationConfig(maintenance="delta"))
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    gmr = db.materialize([("Workpieces", "total_volume")])
    # The successor of register_compensation(increase_total): declare
    # total_volume as a self-maintainable sum — inserts and removes
    # patch the stored result in O(delta) from the update payload.
    db.define_delta(
        ("Workpieces", "total_volume"),
        aggregate=sum_of(lambda cuboid: cuboid.volume(), name="total_volume"),
    )
    print("total_volume before insert:", fixture.workpieces.total_volume())
    fixture.workpieces.insert(fixture.cuboids[2])
    value, valid = gmr.result(
        (fixture.workpieces.oid,), "Workpieces.total_volume"
    )
    print("total_volume after insert (patched, no recompute):", value)
    assert valid and gmr.check_consistency(db) == []
    assert db.gmr_manager.stats.delta_patches == 1

    # The patched row is plain GMR state by now: it checkpoints and
    # recovers like any other (the tail avoids the patched insert —
    # delta declarations are code and live outside the log).
    verify_recovery(
        db,
        build_geometry_schema,
        mutate=lambda live: fixture.cuboids[0].set_Mat(fixture.gold),
    )
    print("durability: checkpoint → crash → recover matched exactly")


def lazy_strategy() -> None:
    print()
    print("=" * 64)
    print("Lazy vs immediate rematerialization (Sec. 4.1)")
    print("=" * 64)
    db = ObjectBase()
    build_geometry_schema(db)
    fixture = build_figure2_database(db)
    gmr = db.materialize([("Cuboid", "volume")], strategy=Strategy.LAZY)
    fixture.cuboids[0].scale(create_vertex(db, 3.0, 1.0, 1.0))
    print("valid after scale (lazy)?", gmr.is_valid("Cuboid.volume"))
    print("access recomputes on demand:", fixture.cuboids[0].volume())
    print("valid now?", gmr.is_valid("Cuboid.volume"))

    # Lazy invalidity is state too: a post-checkpoint scale leaves a
    # stale entry, and the recovered base must be stale the same way.
    verify_recovery(
        db,
        build_geometry_schema,
        mutate=lambda live: fixture.cuboids[2].scale(
            create_vertex(live, 1.0, 1.0, 2.0)
        ),
    )
    print("durability: checkpoint → crash → recover matched exactly "
          "(including the stale entry)")


if __name__ == "__main__":
    plain_version()
    info_hiding_version()
    compensating_action()
    lazy_strategy()
