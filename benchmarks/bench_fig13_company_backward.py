"""Figure 13: cost of backward queries on ⟨⟨ranking⟩⟩.

Paper shape: for update probabilities below ≈ 0.95 both GMR versions
beat the unsupported program by orders of magnitude, and lazy equals
immediate rematerialization except at Pup = 1.0 (backward queries force
all results valid anyway).
"""

from _support import run_once, total_costs

from repro.bench.company import CompanyConfig, run_figure13


def _config():
    return CompanyConfig(
        departments=4,
        employees_per_department=15,
        projects=80,
        jobs_per_employee=5,
    )


def test_fig13_sweep(benchmark):
    result = run_once(
        benchmark,
        run_figure13,
        config=_config(),
        ops_per_point=8,
        pup_step=0.25,
    )
    totals = total_costs(result)
    assert totals["Immediate"] < totals["WithoutGMR"]
    assert totals["Lazy"] < totals["WithoutGMR"]

    # Lazy ≈ Immediate on every point except possibly the last (Pup=1).
    lazy = result.series_by_name("Lazy").points
    immediate = result.series_by_name("Immediate").points
    for left, right in list(zip(lazy, immediate))[:-1]:
        assert abs(left.logical_reads - right.logical_reads) <= max(
            0.5 * right.logical_reads, 200
        )


def test_fig13_single_backward_query(benchmark, ranking_app_factory):
    from repro.bench.runner import IMMEDIATE
    from repro.util.rng import DeterministicRng

    application = ranking_app_factory(IMMEDIATE)
    rng = DeterministicRng(6)
    benchmark(lambda: application.q_backward(rng))


def test_fig13_single_backward_query_without_gmr(benchmark, ranking_app_factory):
    from repro.bench.runner import WITHOUT_GMR
    from repro.util.rng import DeterministicRng

    application = ranking_app_factory(WITHOUT_GMR)
    rng = DeterministicRng(6)
    benchmark(lambda: application.q_backward(rng))
