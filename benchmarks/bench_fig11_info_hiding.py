"""Figure 11: the benefits of information hiding.

Paper shape: under a pure update mix shifting from rotations to scales,
WithoutGMR and WithGMR stay roughly flat; InfoHiding starts near
WithoutGMR (rotations are free) and climbs towards — but stays below —
WithGMR (one invalidation per scale instead of twelve).
"""

from _support import run_once

from repro.bench.cuboid import run_figure11


def test_fig11_sweep(benchmark):
    result = run_once(
        benchmark,
        run_figure11,
        cuboids=250,
        ops_per_point=40,
        weight_step=0.25,
    )
    hiding = result.series_by_name("InfoHiding")
    with_gmr = result.series_by_name("WithGMR")
    without = result.series_by_name("WithoutGMR")

    # At the all-rotations end InfoHiding is close to WithoutGMR...
    assert hiding.points[0].sim_cost < 0.6 * with_gmr.points[0].sim_cost
    # ... and rises towards WithGMR as scales take over, staying below.
    assert hiding.points[-1].sim_cost > hiding.points[0].sim_cost
    assert hiding.points[-1].sim_cost < with_gmr.points[-1].sim_cost

    # WithGMR pays heavily across the whole sweep.
    assert with_gmr.total_cost() > without.total_cost()


def test_fig11_scale_with_hiding_vs_plain(benchmark, cuboid_app_factory):
    from repro.bench.runner import INFO_HIDING
    from repro.util.rng import DeterministicRng

    application = cuboid_app_factory(INFO_HIDING)
    rng = DeterministicRng(4)
    benchmark(lambda: application.u_scale(rng))
