"""WAL-replay smoke: recovery keeps up with a benchmark-scale workload.

A geometry base of ``_CUBOIDS`` cuboids (8 vertices each) is
checkpointed, then driven through an update burst — ``scale`` calls
fan out into dozens of elementary vertex writes each, plus material
rotations and an aborted transaction — all logged to the WAL.  The
timed section is :func:`repro.persistence.recover`: load the
checkpoint and replay the whole log tail through the instrumented
update paths.  The smoke then asserts the recovered base matches the
live one on the full :func:`repro.persistence.base_state` digest, so
CI exercises durability at a scale the unit matrix never reaches.
"""

from __future__ import annotations

import os

from repro import ObjectBase, Strategy, WriteAheadLog, base_state, recover
from repro.domains.geometry import (
    build_geometry_schema,
    create_cuboid,
    create_material,
    create_vertex,
)
from repro.persistence import checkpoint

_CUBOIDS = 40


def _build(db: ObjectBase):
    build_geometry_schema(db)
    iron = create_material(db, "iron", 0.78)
    gold = create_material(db, "gold", 1.93)
    cuboids = [
        create_cuboid(
            db,
            origin=(float(i), 0.0, 0.0),
            dims=(1.0 + i % 3, 2.0, 1.0),
            material=iron if i % 2 else gold,
            value=float(i),
            cuboid_id=i,
        )
        for i in range(_CUBOIDS)
    ]
    db.materialize(
        [("Cuboid", "volume"), ("Cuboid", "weight")],
        strategy=Strategy.IMMEDIATE,
    )
    return cuboids, iron, gold


def _update_burst(db: ObjectBase, cuboids, iron, gold) -> None:
    for i, cuboid in enumerate(cuboids):
        cuboid.scale(create_vertex(db, 1.0 + (i % 4) * 0.25, 1.0, 1.0))
        if i % 3 == 0:
            cuboid.set_Mat(gold if i % 2 else iron)
    with db.batch():
        for cuboid in cuboids[::5]:
            cuboid.set_Value(cuboid.Value + 10.0)
    with db.transaction() as txn:
        cuboids[0].scale(create_vertex(db, 5.0, 1.0, 1.0))
        txn.abort()


def test_smoke_wal_replay_at_benchmark_scale(benchmark, tmp_path):
    ckpt = str(tmp_path / "checkpoint.json")
    log_path = str(tmp_path / "wal.log")

    live = ObjectBase()
    cuboids, iron, gold = _build(live)
    live.attach_wal(WriteAheadLog(log_path))
    checkpoint(live, ckpt)
    _update_burst(live, cuboids, iron, gold)
    assert os.path.getsize(log_path) > 0

    def replay():
        recovered = ObjectBase()
        build_geometry_schema(recovered)
        report = recover(recovered, ckpt, log_path)
        return recovered, report

    recovered, report = benchmark.pedantic(replay, rounds=1, iterations=1)

    # Every scale writes multiple vertex coordinates: the log must be a
    # genuinely large replay, not a handful of records.
    assert report.records_replayed > _CUBOIDS * 10
    # The aborted transaction is terminated on disk, so nothing is lost
    # to committed-prefix truncation in this clean-shutdown scenario.
    assert report.records_discarded == 0

    left, right = base_state(recovered), base_state(live)
    for key in left:
        assert left[key] == right[key], f"recovery diverged in {key!r}"


def _scheduler_with_queue(entries: int):
    """A detached scheduler holding ``entries`` queued invalidations."""
    from types import SimpleNamespace

    from repro.core.scheduler import RevalidationScheduler

    manager = SimpleNamespace(_now=lambda: 0.0, _obs_on=False)
    scheduler = RevalidationScheduler(manager)
    scheduler.restore_state(
        {
            "heap": [
                (-1, i, "Cuboid.volume", (i, i + 1)) for i in range(entries)
            ],
            "delayed": [
                (0.5, entries + i, "Cuboid.weight", (i,))
                for i in range(entries // 4)
            ],
            "attempts": [
                ("Cuboid.volume", (i, i + 1), 1) for i in range(entries // 4)
            ],
            "seq": entries * 2,
            "frequency": {"Cuboid.volume": 3},
        }
    )
    return scheduler


def _dump_alloc_peak(scheduler) -> int:
    import tracemalloc

    scheduler.dump_state()  # warm any lazy state outside the window
    tracemalloc.start()
    scheduler.dump_state()
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_smoke_scheduler_dump_allocates_linearly():
    """Checkpoint dumps hand out the queue's immutable tuples as-is.

    ``dump_state`` used to rebuild ``list(args)`` per entry, so every
    WAL checkpoint allocated a throwaway copy of each queued argument
    list.  Pin the fixed allocation profile from both ends: scaling the
    queue 8x must scale dump allocations by no more than the same
    factor (plus measurement slack), and the per-entry footprint must
    stay below what any per-entry args copy would cost.
    """
    small, large = 500, 4000
    peak_small = _dump_alloc_peak(_scheduler_with_queue(small))
    peak_large = _dump_alloc_peak(_scheduler_with_queue(large))
    ratio = large / small
    assert peak_large <= peak_small * ratio * 1.5, (
        f"dump allocations grew superlinearly: {peak_small}B for {small} "
        f"entries vs {peak_large}B for {large}"
    )
    # 1.5 queued entries per heap entry (heap + delayed/attempts at a
    # quarter each); a reintroduced per-entry ``list(args)`` copy costs
    # >= 56 bytes of list header alone, which blows this bound.
    per_entry = peak_large / (large * 1.5)
    assert per_entry < 96.0, f"{per_entry:.1f}B per dumped entry"
