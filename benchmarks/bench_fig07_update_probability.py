"""Figure 7: GMR performance under varying update probabilities.

Paper shape: the GMR-supported versions beat the unsupported program up
to an update probability of about 0.9, and information hiding pushes the
break-even point further out (≈ 0.95 at paper scale).
"""

from _support import run_once, total_costs

from repro.bench.cuboid import run_figure07
from repro.bench.runner import WITH_GMR, WITHOUT_GMR, measure
from repro.bench.workload import OperationMix
from repro.util.rng import DeterministicRng


def test_fig07_sweep(benchmark):
    result = run_once(
        benchmark, run_figure07, cuboids=250, ops_per_point=24, pup_step=0.25
    )
    totals = total_costs(result)
    # Query-heavy regime: materialization wins overall.
    assert totals["WithGMR"] < totals["WithoutGMR"]
    assert totals["InfoHiding"] < totals["WithoutGMR"]
    # Information hiding never loses to plain GMR maintenance here.
    assert totals["InfoHiding"] <= totals["WithGMR"] * 1.05


def test_fig07_query_only_point_favors_gmr(benchmark, cuboid_app_factory):
    """At Pup = 0 (pure queries) the GMR version does far less work."""
    mix = OperationMix(
        queries=[(0.5, "Qbw"), (0.5, "Qfw")],
        updates=[(0.5, "I"), (0.5, "S")],
        update_probability=0.0,
        operations=10,
    )
    without = cuboid_app_factory(WITHOUT_GMR)
    with_gmr = cuboid_app_factory(WITH_GMR)
    point_without = measure(
        without.db, lambda: without.run_mix(mix, DeterministicRng(1)), 0.0
    )

    benchmark(lambda: with_gmr.run_mix(mix, DeterministicRng(1)))

    point_with = measure(
        with_gmr.db, lambda: with_gmr.run_mix(mix, DeterministicRng(2)), 0.0
    )
    assert point_with.logical_reads < point_without.logical_reads
