"""Figure 9: the cost of forward queries.

Paper shape: with only forward queries (no updates), exploiting the GMR
is a factor ~4-5 gain, and cost grows linearly with the query count for
both versions.
"""

from _support import run_once, total_costs

from repro.bench.cuboid import run_figure09


def test_fig09_sweep(benchmark):
    result = run_once(
        benchmark, run_figure09, cuboids=250, max_queries=200, step=50
    )
    totals = total_costs(result)
    assert totals["WithGMR"] < totals["WithoutGMR"]
    # The paper reports a gain of about a factor 4 to 5; our simulator
    # lands in the same ballpark (allow a generous band).
    gain = totals["WithoutGMR"] / max(totals["WithGMR"], 1e-9)
    assert gain > 2.0

    # Linear growth: the last point costs roughly 4x the first
    # (4x as many queries) for the unsupported version.
    series = result.series_by_name("WithoutGMR")
    first, last = series.points[0], series.points[-1]
    assert last.logical_reads > 3 * first.logical_reads


def test_fig09_single_forward_query(benchmark, cuboid_app_factory):
    from repro.bench.runner import WITH_GMR
    from repro.util.rng import DeterministicRng

    application = cuboid_app_factory(WITH_GMR)
    rng = DeterministicRng(3)
    benchmark(lambda: application.q_forward(rng))


def test_fig09_single_forward_query_without_gmr(benchmark, cuboid_app_factory):
    from repro.bench.runner import WITHOUT_GMR
    from repro.util.rng import DeterministicRng

    application = cuboid_app_factory(WITHOUT_GMR)
    rng = DeterministicRng(3)
    benchmark(lambda: application.q_forward(rng))
