"""Figure 9: the cost of forward queries.

Paper shape: with only forward queries (no updates), exploiting the GMR
is a factor ~4-5 gain, and cost grows linearly with the query count for
both versions.

The layout gate below additionally runs the sweep under both physical
GMR layouts and writes ``BENCH_fig09.json`` at the repository root so
the forward-query cost trajectory (rows vs. columnar) is tracked across
PRs.  CI runs this module as the perf-smoke job and fails when the
columnar store's gain over WithoutGMR drops below 5x, or when columnar
regresses the rows layout on any sweep point.
"""

import json
import os
import platform

from _support import run_once, total_costs

from repro.bench.cuboid import run_figure09

_BENCH_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "BENCH_fig09.json",
)

#: Columnar must beat the unsupported version by at least this factor
#: on total simulated cost (the ISSUE gate; rows measures ~17x and
#: columnar ~18x at smoke scale, so 5x leaves headroom for CI noise
#: without ever letting a real hot-path regression through).
COLUMNAR_MIN_GAIN = 5.0
#: Per-point tolerance for "columnar never loses to rows": the two
#: layouts share the page-cost model, so anything beyond rounding noise
#: is a genuine regression.
_EPS = 1e-6

_SWEEP = dict(cuboids=250, max_queries=200, step=50)


def test_fig09_sweep(benchmark):
    result = run_once(benchmark, run_figure09, **_SWEEP)
    totals = total_costs(result)
    assert totals["WithGMR"] < totals["WithoutGMR"]
    # The paper reports a gain of about a factor 4 to 5; our simulator
    # measures ~17x at this scale (the simulated buffer keeps the whole
    # GMR hot).  The band is pinned well above the paper's figure so a
    # hot-path regression that halves the gain still fails loudly.
    gain = totals["WithoutGMR"] / max(totals["WithGMR"], 1e-9)
    assert gain > 12.0

    # Linear growth: the last point costs roughly 4x the first
    # (4x as many queries) for the unsupported version.
    series = result.series_by_name("WithoutGMR")
    first, last = series.points[0], series.points[-1]
    assert last.logical_reads > 3 * first.logical_reads


def test_fig09_layout_gate(benchmark):
    """Rows vs. columnar on the identical Fig. 9 sweep, with the CI gate.

    Emits ``BENCH_fig09.json`` as a side effect so the measured band is
    committed alongside the code that produced it.
    """
    results = {
        layout: run_figure09(layout=layout, **_SWEEP)
        for layout in ("rows", "columnar")
    }
    # Timing is informational only; the gate is on simulated cost.
    benchmark.pedantic(
        lambda: run_figure09(layout="columnar", **_SWEEP),
        rounds=1,
        iterations=1,
    )

    payload = {
        "benchmark": "fig09_forward_queries",
        "schema_version": 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "sweep": dict(_SWEEP),
        "layouts": {},
    }
    gains = {}
    for layout, result in results.items():
        totals = total_costs(result)
        gains[layout] = totals["WithoutGMR"] / max(totals["WithGMR"], 1e-9)
        payload["layouts"][layout] = {
            "totals": {name: round(v, 4) for name, v in totals.items()},
            "gain": round(gains[layout], 2),
            "with_gmr_points": [
                {"x": p.x, "sim_cost": round(p.sim_cost, 4)}
                for p in result.series_by_name("WithGMR").points
            ],
        }
    with open(_BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    # Gate 1: the columnar layout must keep the materialized forward
    # query at least 5x cheaper than evaluating from scratch.
    assert gains["columnar"] >= COLUMNAR_MIN_GAIN, (
        f"columnar gain {gains['columnar']:.2f}x fell below the "
        f"{COLUMNAR_MIN_GAIN}x floor"
    )
    # Gate 2: columnar never regresses rows on any sweep point.
    rows_points = results["rows"].series_by_name("WithGMR").points
    col_points = results["columnar"].series_by_name("WithGMR").points
    for rows_pt, col_pt in zip(rows_points, col_points):
        assert col_pt.sim_cost <= rows_pt.sim_cost * (1.0 + _EPS), (
            f"columnar costs {col_pt.sim_cost} at x={col_pt.x}, "
            f"rows costs {rows_pt.sim_cost}"
        )
    # The baseline never touches a GMR: its cost must be bit-identical
    # across layouts (anything else means the layout knob leaked into
    # the unsupported version).
    assert [p.sim_cost for p in results["rows"].series_by_name("WithoutGMR").points] == [
        p.sim_cost for p in results["columnar"].series_by_name("WithoutGMR").points
    ]


def test_fig09_single_forward_query(benchmark, cuboid_app_factory):
    from repro.bench.runner import WITH_GMR
    from repro.util.rng import DeterministicRng

    application = cuboid_app_factory(WITH_GMR)
    rng = DeterministicRng(3)
    benchmark(lambda: application.q_forward(rng))


def test_fig09_single_forward_query_without_gmr(benchmark, cuboid_app_factory):
    from repro.bench.runner import WITHOUT_GMR
    from repro.util.rng import DeterministicRng

    application = cuboid_app_factory(WITHOUT_GMR)
    rng = DeterministicRng(3)
    benchmark(lambda: application.q_forward(rng))
