"""Ablation: the Sec. 5 instrumentation refinements, quantified.

The paper motivates each refinement with a cost it removes:

* Figure 4 (naive): *every* elementary update performs an RRR lookup —
  including updates to objects never involved in any materialization;
* Sec. 5.1 (SchemaDepFct): updates of irrelevant *attributes* stop
  notifying, but updates of "innocent" objects of relevant types (the
  paper's lone Vertex id111) still pay the lookup;
* Sec. 5.2 (ObjDepFct): only updates of objects actually marked as
  involved reach the GMR manager.

This benchmark drives updates of *uninvolved* vertices and counts GMR
manager invocations per level — the quantified version of the paper's
"terrible penalty upon geometric transformations of innocent objects".
"""

from _support import run_once

from repro import InstrumentationLevel, ObjectBase
from repro.domains.geometry import (
    build_geometry_schema,
    build_figure2_database,
    create_vertex,
)


def _manager_calls_for_innocent_updates(level, updates=200):
    db = ObjectBase(level=level)
    build_geometry_schema(db)
    build_figure2_database(db)
    db.materialize([("Cuboid", "volume")])
    lone_vertices = [create_vertex(db, float(i), 0.0, 0.0) for i in range(20)]
    before = db.gmr_manager.stats.snapshot()
    for index in range(updates):
        lone_vertices[index % len(lone_vertices)].set_X(float(index))
    delta = db.gmr_manager.stats.delta(before)
    return delta.invalidate_calls


def test_naive_pays_for_every_update(benchmark):
    calls = benchmark.pedantic(
        lambda: _manager_calls_for_innocent_updates(InstrumentationLevel.NAIVE),
        rounds=1,
        iterations=1,
    )
    assert calls == 200  # one RRR lookup per update


def test_schema_dep_still_pays_for_relevant_types(benchmark):
    calls = benchmark.pedantic(
        lambda: _manager_calls_for_innocent_updates(
            InstrumentationLevel.SCHEMA_DEP
        ),
        rounds=1,
        iterations=1,
    )
    # Vertex.set_X is in SchemaDepFct(volume): innocent vertices still
    # trigger lookups — the problem Sec. 5.2 solves.
    assert calls == 200


def test_obj_dep_eliminates_innocent_lookups(benchmark):
    calls = benchmark.pedantic(
        lambda: _manager_calls_for_innocent_updates(
            InstrumentationLevel.OBJ_DEP
        ),
        rounds=1,
        iterations=1,
    )
    assert calls == 0


def test_schema_dep_skips_irrelevant_attributes(benchmark):
    """set_Value never notifies at SCHEMA_DEP or above (Sec. 5.1)."""

    def run():
        db = ObjectBase(level=InstrumentationLevel.SCHEMA_DEP)
        build_geometry_schema(db)
        fixture = build_figure2_database(db)
        db.materialize([("Cuboid", "volume")])
        before = db.gmr_manager.stats.snapshot()
        for index in range(200):
            fixture.cuboids[index % 3].set_Value(float(index))
        return db.gmr_manager.stats.delta(before).invalidate_calls

    calls = benchmark.pedantic(run, rounds=1, iterations=1)
    assert calls == 0
