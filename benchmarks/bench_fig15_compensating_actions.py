"""Figure 15: the benefits of compensating actions on ⟨⟨matrix⟩⟩.

Paper shape: the version with a compensating action outperforms plain
immediate rematerialization over the whole mixed region (an update
appends the new project's lines instead of recomputing the matrix);
for very high update probabilities lazy rematerialization becomes
competitive because runs of consecutive updates collapse into a single
deferred recomputation.
"""

from _support import run_once, total_costs

from repro.bench.company import CompanyConfig, run_figure15


def test_fig15_sweep(benchmark):
    result = run_once(
        benchmark,
        run_figure15,
        config=CompanyConfig.matrix_shape(),
        ops_per_point=8,
        pup_step=0.25,
    )
    totals = total_costs(result)
    assert totals["CompAction"] < totals["Immediate"]
    assert totals["Lazy"] < totals["Immediate"]
    assert totals["CompAction"] < totals["WithoutGMR"]

    # At Pup = 1.0 (only insertions) Lazy never rematerializes: it must
    # cost no more than Immediate there.
    lazy_last = result.series_by_name("Lazy").points[-1]
    immediate_last = result.series_by_name("Immediate").points[-1]
    assert lazy_last.logical_reads <= immediate_last.logical_reads


def test_fig15_add_project_with_compensation(benchmark):
    from repro.bench.company import CompanyConfig, MatrixApplication
    from repro.bench.runner import COMP_ACTION
    from repro.util.rng import DeterministicRng

    application = MatrixApplication(COMP_ACTION, CompanyConfig.matrix_shape())
    rng = DeterministicRng(10)
    benchmark(lambda: application.u_new_project(rng))


def test_fig15_add_project_with_immediate(benchmark):
    from repro.bench.company import CompanyConfig, MatrixApplication
    from repro.bench.runner import IMMEDIATE
    from repro.util.rng import DeterministicRng

    application = MatrixApplication(IMMEDIATE, CompanyConfig.matrix_shape())
    rng = DeterministicRng(10)
    benchmark(lambda: application.u_new_project(rng))
