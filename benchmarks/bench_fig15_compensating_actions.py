"""Figure 15: the benefits of compensating actions on ⟨⟨matrix⟩⟩.

Paper shape: the version with a compensating action outperforms plain
immediate rematerialization over the whole mixed region (an update
appends the new project's lines instead of recomputing the matrix);
for very high update probabilities lazy rematerialization becomes
competitive because runs of consecutive updates collapse into a single
deferred recomputation.
"""

from _support import run_once, total_costs

from repro.bench.company import CompanyConfig, run_figure15


def test_fig15_sweep(benchmark):
    result = run_once(
        benchmark,
        run_figure15,
        config=CompanyConfig.matrix_shape(),
        ops_per_point=8,
        pup_step=0.25,
    )
    totals = total_costs(result)
    assert totals["CompAction"] < totals["Immediate"]
    assert totals["Lazy"] < totals["Immediate"]
    assert totals["CompAction"] < totals["WithoutGMR"]
    # The generalized delta engine routes the same handler, so it must
    # keep the compensating action's advantage over recomputation.
    assert totals["Delta"] < totals["Immediate"]

    # At Pup = 1.0 (only insertions) Lazy never rematerializes: it must
    # cost no more than Immediate there.
    lazy_last = result.series_by_name("Lazy").points[-1]
    immediate_last = result.series_by_name("Immediate").points[-1]
    assert lazy_last.logical_reads <= immediate_last.logical_reads


def test_fig15_add_project_with_compensation(benchmark):
    from repro.bench.company import CompanyConfig, MatrixApplication
    from repro.bench.runner import COMP_ACTION
    from repro.util.rng import DeterministicRng

    application = MatrixApplication(COMP_ACTION, CompanyConfig.matrix_shape())
    rng = DeterministicRng(10)
    benchmark(lambda: application.u_new_project(rng))


def test_fig15_add_project_with_immediate(benchmark):
    from repro.bench.company import CompanyConfig, MatrixApplication
    from repro.bench.runner import IMMEDIATE
    from repro.util.rng import DeterministicRng

    application = MatrixApplication(IMMEDIATE, CompanyConfig.matrix_shape())
    rng = DeterministicRng(10)
    benchmark(lambda: application.u_new_project(rng))


def test_fig15_delta_probe_reduction():
    """Delta-arm sanity check: O(delta) maintenance, not wall-clock.

    The same project insertions cost the recompute arm a full matrix
    rematerialization each (every department × every project probed),
    while the delta arm patches only the new project's lines — at the
    Figure 15 population that is well over a 10× reduction in logical
    reads.  Both arms must agree line for line, and the patched GMR
    must satisfy the Def. 3.2 recompute-and-compare oracle.
    """
    from repro.bench.company import CompanyConfig, MatrixApplication
    from repro.bench.runner import ProgramVersion
    from repro.util.rng import DeterministicRng

    config = CompanyConfig.matrix_shape()

    def run_arm(maintenance):
        application = MatrixApplication(
            ProgramVersion(maintenance.capitalize(), maintenance=maintenance),
            config,
        )
        rng = DeterministicRng(10)
        before = application.db.buffer.stats.snapshot()
        for _ in range(5):
            application.u_new_project(rng)
        delta = application.db.buffer.stats.delta(before)
        return application, delta.logical_reads

    recompute_app, recompute_reads = run_arm("recompute")
    delta_app, delta_reads = run_arm("delta")

    stats = delta_app.db.gmr_manager.stats
    assert stats.delta_patches >= 5, "delta arm did not patch"
    assert recompute_reads >= 10 * max(1, delta_reads), (
        f"expected >= 10x fewer probes: recompute={recompute_reads} "
        f"delta={delta_reads}"
    )

    assert delta_app.gmr.check_consistency(delta_app.db) == []

    def digest(application):
        return sorted(
            (line.dep.DepNo, line.proj.PName, len(line.emps))
            for line in application.company.matrix()
        )

    assert digest(delta_app) == digest(recompute_app)
