"""Ablation: GMR design choices the paper argues for.

1. **Separate vs. near-argument result storage** (Sec. 3.1): the paper
   chose a separate data structure, citing Jhingran's POSTGRES analysis
   where "separate caching (CS) ... proved to be almost always superior
   to caching within the tuples (CT)".  With rows clustered separately,
   a GMR scan touches few pages; interleaving rows with objects destroys
   that clustering.

2. **MDS (grid file) vs. per-column B+ trees** (Sec. 3.3): for low-arity
   GMRs the paper uses a single multi-dimensional structure; both access
   paths must return identical backward answers.

3. **RRR maintenance policy** (Sec. 4.1): removing entries and letting
   the rematerialization re-insert them vs. the second-chance marking
   algorithm — equal results, comparable costs.
"""

from _support import run_once

from repro import ObjectBase
from repro.bench.runner import measure
from repro.domains.geometry import build_geometry_schema, create_cuboid, create_material
from repro.util.rng import DeterministicRng


def _build(row_placement="separate", storage="auto", cuboids=300, policy="remove"):
    db = ObjectBase(buffer_pages=24)
    build_geometry_schema(db)
    rng = DeterministicRng(13)
    iron = create_material(db, "Iron", 7.86)
    handles = [
        create_cuboid(
            db,
            dims=(rng.uniform(1, 10), rng.uniform(1, 10), rng.uniform(1, 10)),
            material=iron,
            cuboid_id=index,
        )
        for index in range(cuboids)
    ]
    gmr = db.materialize(
        [("Cuboid", "volume")], row_placement=row_placement, storage=storage
    )
    db.gmr_manager.rrr_policy = policy
    return db, handles, gmr


def _row_scan_cost(db, gmr):
    """Cost of scanning every materialized result (e.g. an aggregate
    over all volumes).  This is where clustering matters: backward range
    probes go through the index, but result scans touch the row pages."""

    def work():
        total = 0.0
        for row in gmr.rows():
            if row.valid[0]:
                total += row.results[0]
        return total

    db.buffer.evict_all()
    return measure(db, work, 0.0)


def test_separate_storage_beats_near_argument_scans(benchmark):
    db_separate, _, gmr_separate = _build(row_placement="separate")
    db_near, _, gmr_near = _build(row_placement="with_arguments")
    separate = _row_scan_cost(db_separate, gmr_separate)

    near = benchmark.pedantic(
        lambda: _row_scan_cost(db_near, gmr_near), rounds=1, iterations=1
    )
    # Jhingran's CS vs CT: separate clustering touches far fewer pages.
    assert separate.page_ios < near.page_ios


def test_mds_and_columns_agree(benchmark):
    db_mds, _, gmr_mds = _build(storage="mds", cuboids=120)
    db_col, _, gmr_col = _build(storage="columns", cuboids=120)

    def answers(db):
        return sorted(
            value
            for value, _ in db.gmr_manager.backward_query(
                "Cuboid.volume", 100.0, 400.0
            )
        )

    reference = answers(db_col)
    result = benchmark.pedantic(lambda: answers(db_mds), rounds=1, iterations=1)
    assert result == reference
    assert len(reference) > 0


def test_rrr_policies_cost_comparably(benchmark):
    """Second-chance marking never does more GMR work than removal."""
    from repro.domains.geometry import create_vertex

    costs = {}
    for policy in ("remove", "second_chance"):
        db, handles, gmr = _build(policy=policy, cuboids=150)
        rng = DeterministicRng(3)
        param = create_vertex(db, 1.0, 1.0, 1.0)

        def updates(db=db, handles=handles, rng=rng, param=param):
            for _ in range(60):
                cuboid = rng.choice(handles)
                param.set_X(rng.uniform(0.9, 1.1))
                cuboid.scale(param)

        if policy == "second_chance":
            point = benchmark.pedantic(
                lambda: measure(db, updates, 0.0), rounds=1, iterations=1
            )
        else:
            point = measure(db, updates, 0.0)
        costs[policy] = db.gmr_manager.stats.rematerializations
        assert gmr.check_consistency(db) == []
    # Identical rematerialization counts: the policies differ only in
    # RRR bookkeeping.
    assert costs["remove"] == costs["second_chance"]
