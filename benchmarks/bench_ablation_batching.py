"""Ablation: batched invalidation vs. per-update invalidation.

The paper's cost model (Sec. 5, Figs. 7–11) charges every elementary
update one RRR probe; a single ``scale`` performs a dozen vertex-
coordinate writes against the *same* four vertices, so most of those
probes are redundant.  This ablation runs the Figure 7 update-
probability workload (Qmix = {0.5 Qbw, 0.5 Qfw}, Umix = {0.5 I, 0.5 S})
through the same ``CuboidApplication`` twice — once with per-update
maintenance, once with the operation stream chunked into ``db.batch()``
scopes — and asserts the batched run

* coalesces measurably (``ManagerStats.rrr_probes_saved`` > 0),
* bothers the manager strictly less often (fewer ``invalidate_calls``
  and fewer physical RRR probes), and
* ends in the *identical* GMR extension (the differential equivalence
  guarantee, spot-checked at benchmark scale).

The ``DEFERRED`` smoke additionally drains the revalidation scheduler
— the paper's "load falls below a predefined threshold" case — after an
update burst and checks the extension returns to full validity.
"""

from __future__ import annotations

from repro.bench.cuboid import CuboidApplication, CuboidConfig
from repro.bench.runner import WITH_GMR, ProgramVersion
from repro.bench.workload import OperationMix
from repro.core.strategies import Strategy
from repro.util.rng import DeterministicRng

_FIG7_MIX = dict(
    queries=[(0.5, "Qbw"), (0.5, "Qfw")],
    updates=[(0.5, "I"), (0.5, "S")],
)

DEFERRED = ProgramVersion("Deferred", strategy=Strategy.DEFERRED)


def _run_fig7(
    *,
    batch_size: int | None,
    version: ProgramVersion = WITH_GMR,
    update_probability: float = 0.9,
    operations: int = 40,
    cuboids: int = 80,
):
    """One Figure 7 point; returns (application, stats delta, RRR probes)."""
    application = CuboidApplication(
        version, CuboidConfig(cuboids=cuboids, seed=7)
    )
    mix = OperationMix(
        update_probability=update_probability,
        operations=operations,
        **_FIG7_MIX,
    )
    manager = application.db.gmr_manager
    stats_before = manager.stats.snapshot()
    probes_before = manager.rrr.probes
    application.run_mix(
        mix, DeterministicRng(11), batch_size=batch_size
    )
    delta = manager.stats.delta(stats_before)
    return application, delta, manager.rrr.probes - probes_before


def _gmr_state(application):
    return sorted(
        (row.args[0].value, tuple(row.valid), tuple(row.results))
        for row in application.gmr.rows()
    )


def test_smoke_batched_flush_saves_rrr_probes(benchmark):
    plain, plain_delta, plain_probes = _run_fig7(batch_size=None)
    batched, batched_delta, batched_probes = benchmark.pedantic(
        lambda: _run_fig7(batch_size=8), rounds=1, iterations=1
    )
    # Measurably fewer probes: coalescing is reported per saved probe...
    assert batched_delta.rrr_probes_saved > 0
    assert batched_delta.batch_flushes > 0
    # ...and shows up as strictly fewer manager invocations and fewer
    # physical RRR bucket accesses than per-update maintenance.
    assert batched_delta.invalidate_calls < plain_delta.invalidate_calls
    assert batched_probes < plain_probes
    # The optimisation must not change the materialized extension.
    assert _gmr_state(batched) == _gmr_state(plain)


def test_smoke_savings_grow_with_update_probability(benchmark):
    def sweep():
        saved = []
        for pup in (0.2, 1.0):
            _, delta, _ = _run_fig7(
                batch_size=8, update_probability=pup, operations=30
            )
            saved.append(delta.rrr_probes_saved)
        return saved

    light, heavy = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # The update-dominated end of Figure 7 is where batching pays: an
    # update-only stream coalesces (strictly) more than a query-heavy
    # one, whose interleaved queries force early flushes.
    assert heavy > light


def test_smoke_update_only_burst_coalesces_per_object(benchmark):
    """A pure scale burst: every scale writes 12+ coordinates of the
    same vertices, so one batch of N scales must probe the RRR far
    fewer times than the 12·N elementary updates."""

    def run():
        application = CuboidApplication(
            WITH_GMR, CuboidConfig(cuboids=60, seed=7)
        )
        mix = OperationMix(
            queries=[],
            updates=[(1.0, "S")],
            update_probability=1.0,
            operations=24,
        )
        manager = application.db.gmr_manager
        before = manager.stats.snapshot()
        application.run_mix(mix, DeterministicRng(13), batch_size=24)
        return manager.stats.delta(before)

    delta = benchmark.pedantic(run, rounds=1, iterations=1)
    assert delta.batch_flushes == 1
    # At least half of the elementary notifications must have merged
    # into pending events instead of paying their own probe.
    assert delta.rrr_probes_saved >= delta.batched_invalidations // 2


def test_smoke_deferred_scheduler_drains_after_burst(benchmark):
    def run():
        application, delta, _ = _run_fig7(
            batch_size=8,
            version=DEFERRED,
            update_probability=1.0,
            operations=30,
        )
        manager = application.db.gmr_manager
        drained = manager.scheduler.revalidate()
        return application, delta, drained

    application, delta, drained = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert delta.rrr_probes_saved > 0
    assert drained > 0
    assert application.db.gmr_manager.stats.scheduler_revalidations == drained
    assert application.db.gmr_manager.scheduler.pending() == 0
    for _args, valid, _values in _gmr_state(application):
        assert all(valid)
