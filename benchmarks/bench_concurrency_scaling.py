"""Concurrency scaling: reader throughput and the ``workers=0`` bill.

Two contracts from the concurrency PR:

* **``workers=0`` is free.**  The single-threaded configuration must
  keep the pre-concurrency code paths bit-for-bit: the update lock is a
  shared ``nullcontext``, no striped entry locks are armed, no pool
  exists, and the scheduler has no ready hook.  That is asserted
  structurally (the trace-equivalence suite asserts behaviour); the
  Figure 7 mix here additionally bounds the *converged state*: a
  ``workers=1`` run must end in the identical GMR extension after
  quiesce, and its wall-clock must stay within a loose smoke bound of
  the single-threaded run (the GIL serializes compute, so background
  draining must not cost multiples).

* **Readers do not collapse under threads.**  Forward queries on a
  fully valid GMR take only a striped read lock.  Under CPython's GIL
  they cannot speed up, but adding reader threads must not fall off a
  cliff either — aggregate throughput at 8 threads is bounded below
  against the single-thread figure.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext

from repro.bench.cuboid import CuboidApplication, CuboidConfig
from repro.bench.runner import ProgramVersion
from repro.bench.workload import OperationMix
from repro.core.strategies import Strategy
from repro.observe.config import MaterializationConfig
from repro.util.rng import DeterministicRng

DEFERRED_VERSION = ProgramVersion("Deferred", strategy=Strategy.DEFERRED)

_FIG7_MIX = dict(
    queries=[(0.5, "Qbw"), (0.5, "Qfw")],
    updates=[(0.5, "I"), (0.5, "S")],
)


def _run_fig7(workers: int, *, operations: int = 60, cuboids: int = 80):
    application = CuboidApplication(
        DEFERRED_VERSION,
        CuboidConfig(
            cuboids=cuboids,
            seed=7,
            materialization=MaterializationConfig(
                strategy=Strategy.DEFERRED, workers=workers
            ),
        ),
    )
    mix = OperationMix(
        update_probability=0.9, operations=operations, **_FIG7_MIX
    )
    start = time.perf_counter()
    application.run_mix(mix, DeterministicRng(11))
    elapsed = time.perf_counter() - start
    # Converge: drain everything still queued, on either path.
    assert application.db.quiesce(timeout=60.0)
    return application, elapsed


def _best_of(runs: int, workers: int):
    best = None
    application = None
    for _ in range(runs):
        if application is not None:
            application.db.close()
        application, elapsed = _run_fig7(workers)
        best = elapsed if best is None else min(best, elapsed)
    return application, best


def _gmr_state(application):
    return sorted(
        (row.args[0].value, tuple(row.valid), tuple(row.results))
        for row in application.gmr.rows()
    )


def test_smoke_workers_zero_is_structurally_free():
    application, _ = _run_fig7(0, operations=10, cuboids=20)
    db = application.db
    assert isinstance(db._update_lock, nullcontext)
    assert db.worker_pool is None
    assert db.gmr_manager.scheduler.on_ready is None
    assert application.gmr.store.locks is None
    assert db.gmr_manager._entry_locks is None


def test_smoke_workers_zero_overhead(benchmark):
    single, single_seconds = _best_of(3, 0)
    pooled, pooled_seconds = benchmark.pedantic(
        lambda: _best_of(3, 1), rounds=1, iterations=1
    )
    try:
        # Background draining must not be observable in the converged
        # extension: values, validity bits and row set all identical.
        assert _gmr_state(pooled) == _gmr_state(single)
        # Loose smoke bound, not a microbenchmark: locking and handoff
        # may cost, but not multiples of the single-threaded run.
        assert pooled_seconds <= single_seconds * 3.0 + 0.5
    finally:
        pooled.db.close()
        single.db.close()


QUERIES_TOTAL = 800


def _reader_throughput(application, threads: int) -> float:
    cuboids = list(application.cuboids)
    per_thread = QUERIES_TOTAL // threads
    errors: list[BaseException] = []
    barrier = threading.Barrier(threads + 1)

    def reader(seed: int) -> None:
        rng = DeterministicRng(seed)
        try:
            barrier.wait()
            for _ in range(per_thread):
                volume = rng.choice(cuboids).volume()
                assert volume is not None
        except BaseException as exc:  # noqa: BLE001 - collected
            errors.append(exc)

    workers = [
        threading.Thread(target=reader, args=(40 + index,))
        for index in range(threads)
    ]
    for worker in workers:
        worker.start()
    barrier.wait()
    start = time.perf_counter()
    for worker in workers:
        worker.join(60.0)
    elapsed = time.perf_counter() - start
    assert errors == []
    assert all(not worker.is_alive() for worker in workers)
    return (per_thread * threads) / elapsed


def test_smoke_reader_scaling(benchmark):
    application, _ = _run_fig7(1, operations=30, cuboids=40)
    try:
        assert application.db.quiesce(timeout=60.0)
        throughput = {}
        for threads in (1, 2, 4, 8):
            throughput[threads] = _reader_throughput(application, threads)
        benchmark.pedantic(
            lambda: _reader_throughput(application, 4), rounds=1, iterations=1
        )
        # CPython's GIL forbids speedup; the contract is *no collapse*:
        # the entry read locks are uncontended on a valid extension, so
        # threaded aggregate throughput stays within a small factor of
        # the single-threaded figure.
        for threads in (2, 4, 8):
            assert throughput[threads] >= throughput[1] * 0.2, (
                f"reader throughput collapsed at {threads} threads: "
                f"{throughput}"
            )
    finally:
        application.db.close()
