"""Concurrency scaling: reader/writer throughput and the ``workers=0`` bill.

Three contracts from the concurrency and sharding PRs:

* **``workers=0`` is free.**  The single-threaded configuration must
  keep the pre-concurrency code paths bit-for-bit: the update lock is a
  shared ``nullcontext``, no striped entry locks are armed, no pool
  exists, and the scheduler has no ready hook.  That is asserted
  structurally (the trace-equivalence suite asserts behaviour); the
  Figure 7 mix here additionally bounds the *converged state*: a
  ``workers=1`` run must end in the identical GMR extension after
  quiesce, and its wall-clock must stay within a loose smoke bound of
  the single-threaded run (the GIL serializes compute, so background
  draining must not cost multiples).

* **Readers do not collapse under threads.**  Forward queries on a
  fully valid GMR take only a striped read lock.  Under CPython's GIL
  they cannot speed up, but adding reader threads must not fall off a
  cliff either — aggregate throughput at 8 threads is bounded below
  against the single-thread figure.

* **Sharding buys write throughput.**  With ``shards=1`` a background
  drain holds the *global* update lock for a whole batch, stalling
  every foreground writer; with ``shards=N`` drains take only their
  shard's lock, so writers wait on nothing but the GIL.  The write mix
  below must show update throughput not *decreasing* from 1 → 2 → 4
  shards (tolerant monotone bounds — the GIL caps the upside), with the
  converged extensions identical to a sequential ``shards=1,
  workers=0`` run — and ``shards=1`` must be structurally free, exactly
  like ``workers=0``.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from contextlib import nullcontext

import pytest

from repro.bench.cuboid import CuboidApplication, CuboidConfig
from repro.bench.runner import ProgramVersion
from repro.bench.workload import OperationMix
from repro.core.strategies import Strategy
from repro.observe.config import MaterializationConfig
from repro.util.rng import DeterministicRng

DEFERRED_VERSION = ProgramVersion("Deferred", strategy=Strategy.DEFERRED)

# ---------------------------------------------------------------------------
# Machine-readable results: every smoke test records its measured
# throughput here, and the module-scoped fixture below dumps the lot to
# ``BENCH_concurrency.json`` at the repository root so the concurrency
# perf trajectory is tracked across PRs.  The numbers are smoke-scale
# and CI-noisy — the JSON records the *shape* (which config wins, by
# roughly how much), not microbenchmark truth.
# ---------------------------------------------------------------------------

_RESULTS: list[dict] = []
_BENCH_JSON = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "BENCH_concurrency.json",
)


def _record(metric: str, config: dict, ops_per_second: float) -> None:
    _RESULTS.append(
        {
            "metric": metric,
            "config": config,
            "ops_per_second": round(ops_per_second, 2),
        }
    )


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Write whatever this module measured, even under ``-k`` filters."""
    yield
    if not _RESULTS:
        return
    payload = {
        "benchmark": "concurrency_scaling",
        "schema_version": 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": sorted(
            _RESULTS, key=lambda row: (row["metric"], repr(row["config"]))
        ),
    }
    with open(_BENCH_JSON, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

_FIG7_MIX = dict(
    queries=[(0.5, "Qbw"), (0.5, "Qfw")],
    updates=[(0.5, "I"), (0.5, "S")],
)


def _run_fig7(workers: int, *, operations: int = 60, cuboids: int = 80):
    application = CuboidApplication(
        DEFERRED_VERSION,
        CuboidConfig(
            cuboids=cuboids,
            seed=7,
            materialization=MaterializationConfig(
                strategy=Strategy.DEFERRED, workers=workers
            ),
        ),
    )
    mix = OperationMix(
        update_probability=0.9, operations=operations, **_FIG7_MIX
    )
    start = time.perf_counter()
    application.run_mix(mix, DeterministicRng(11))
    elapsed = time.perf_counter() - start
    # Converge: drain everything still queued, on either path.
    assert application.db.quiesce(timeout=60.0)
    return application, elapsed


def _best_of(runs: int, workers: int):
    best = None
    application = None
    for _ in range(runs):
        if application is not None:
            application.db.close()
        application, elapsed = _run_fig7(workers)
        best = elapsed if best is None else min(best, elapsed)
    return application, best


def _gmr_state(application):
    return sorted(
        (row.args[0].value, tuple(row.valid), tuple(row.results))
        for row in application.gmr.rows()
    )


def test_smoke_workers_zero_is_structurally_free():
    application, _ = _run_fig7(0, operations=10, cuboids=20)
    db = application.db
    assert isinstance(db._update_lock, nullcontext)
    assert db.worker_pool is None
    assert db.gmr_manager.scheduler.on_ready is None
    assert application.gmr.store.locks is None
    assert db.gmr_manager._entry_locks is None


def test_smoke_shards_one_is_structurally_free():
    # The sharding analogue of the workers=0 contract: shards=1 must
    # arm no shard locks, build no sibling schedulers, keep the no-op
    # update lock — today's single-threaded paths bit-for-bit.
    application, _ = _run_fig7(0, operations=10, cuboids=20)
    db = application.db
    manager = db.gmr_manager
    assert db._shard_locks is None
    assert manager._shard_locks is None
    assert manager.schedulers == (manager.scheduler,)
    assert isinstance(db._update_lock, nullcontext)
    assert db.explain().shards == ()


def test_smoke_workers_zero_overhead(benchmark):
    single, single_seconds = _best_of(3, 0)
    pooled, pooled_seconds = benchmark.pedantic(
        lambda: _best_of(3, 1), rounds=1, iterations=1
    )
    try:
        # Background draining must not be observable in the converged
        # extension: values, validity bits and row set all identical.
        assert _gmr_state(pooled) == _gmr_state(single)
        # Loose smoke bound, not a microbenchmark: locking and handoff
        # may cost, but not multiples of the single-threaded run.
        assert pooled_seconds <= single_seconds * 3.0 + 0.5
        _record(
            "fig7_mix",
            {"workers": 0, "shards": 1, "operations": 60},
            60 / single_seconds,
        )
        _record(
            "fig7_mix",
            {"workers": 1, "shards": 1, "operations": 60},
            60 / pooled_seconds,
        )
    finally:
        pooled.db.close()
        single.db.close()


QUERIES_TOTAL = 800


def _reader_throughput(application, threads: int) -> float:
    cuboids = list(application.cuboids)
    per_thread = QUERIES_TOTAL // threads
    errors: list[BaseException] = []
    barrier = threading.Barrier(threads + 1)

    def reader(seed: int) -> None:
        rng = DeterministicRng(seed)
        try:
            barrier.wait()
            for _ in range(per_thread):
                volume = rng.choice(cuboids).volume()
                assert volume is not None
        except BaseException as exc:  # noqa: BLE001 - collected
            errors.append(exc)

    workers = [
        threading.Thread(target=reader, args=(40 + index,))
        for index in range(threads)
    ]
    for worker in workers:
        worker.start()
    barrier.wait()
    start = time.perf_counter()
    for worker in workers:
        worker.join(60.0)
    elapsed = time.perf_counter() - start
    assert errors == []
    assert all(not worker.is_alive() for worker in workers)
    return (per_thread * threads) / elapsed


# ---------------------------------------------------------------------------
# Write throughput vs shard count
# ---------------------------------------------------------------------------

N_CUBOIDS = 24
N_WRITERS = 3
ROUNDS = 4


def _build_sharded(workers: int, shards: int):
    from repro import ObjectBase
    from repro.domains.geometry import build_geometry_schema, create_cuboid

    config = MaterializationConfig(
        strategy=Strategy.DEFERRED, workers=workers, shards=shards
    )
    db = ObjectBase(config=config)
    build_geometry_schema(db)
    iron = db.new("Material", Name="Iron", SpecWeight=7.86)
    cuboids = [
        create_cuboid(
            db,
            origin=(float(i), 0.0, 0.0),
            dims=(1.0 + i, 2.0, 3.0),
            material=iron,
            cuboid_id=i,
        )
        for i in range(N_CUBOIDS)
    ]
    db.materialize(
        [("Cuboid", "volume"), ("Cuboid", "weight")],
        strategy=Strategy.DEFERRED,
    )
    params = {
        "grow": db.new("Vertex", X=2.0, Y=1.0, Z=1.0),
        "shrink": db.new("Vertex", X=0.5, Y=1.0, Z=1.0),
        "fwd": db.new("Vertex", X=1.0, Y=2.0, Z=3.0),
        "back": db.new("Vertex", X=-1.0, Y=-2.0, Z=-3.0),
    }
    return db, cuboids, params


def _write_script(cuboid, params):
    for _ in range(ROUNDS):
        cuboid.scale(params["grow"])
        cuboid.translate(params["fwd"])
        cuboid.scale(params["shrink"])
        cuboid.translate(params["back"])


def _sharded_extensions(db):
    manager = db.gmr_manager
    return {
        gmr.name: sorted(
            (
                (row.args, tuple(row.results), tuple(row.valid))
                for row in gmr.store.rows()
            ),
            key=repr,
        )
        for gmr in manager.gmrs()
    }


def _write_run(shards: int) -> tuple[float, dict]:
    """One threaded write mix; returns (updates/second, extensions)."""
    db, cuboids, params = _build_sharded(workers=2, shards=shards)
    try:
        errors: list[BaseException] = []
        barrier = threading.Barrier(N_WRITERS + 1)

        def writer(partition):
            try:
                barrier.wait()
                for cuboid in partition:
                    _write_script(cuboid, params)
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(cuboids[i::N_WRITERS],))
            for i in range(N_WRITERS)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join(120.0)
        elapsed = time.perf_counter() - start
        assert errors == []
        assert all(not thread.is_alive() for thread in threads)
        assert db.quiesce(timeout=60.0)
        operations = N_CUBOIDS * ROUNDS * 4
        return operations / elapsed, _sharded_extensions(db)
    finally:
        db.close()


def test_smoke_write_throughput_scales_with_shards(benchmark):
    # Sequential reference: the converged-state oracle for every run.
    seq_db, seq_cuboids, seq_params = _build_sharded(workers=0, shards=1)
    for cuboid in seq_cuboids:
        _write_script(cuboid, seq_params)
    seq_db.gmr_manager.scheduler.revalidate()
    assert seq_db.quiesce(timeout=60.0)
    want = _sharded_extensions(seq_db)
    seq_db.close()

    throughput: dict[int, float] = {}
    for shards in (1, 2, 4):
        best = 0.0
        for _ in range(4):
            rate, extensions = _write_run(shards)
            assert extensions == want, (
                f"shards={shards}: converged extensions diverge from the "
                "sequential reference"
            )
            best = max(best, rate)
        throughput[shards] = best
    benchmark.pedantic(lambda: _write_run(4), rounds=1, iterations=1)

    # Tolerant monotone bounds: sharded drains skip the global update
    # lock, so more shards must never *cost* writers; the GIL caps the
    # upside and run-to-run noise on shared CI hardware exceeds the
    # true delta, so every bound carries a 10% allowance — this is a
    # no-collapse contract, not a linear-speedup one (EXPERIMENTS.md
    # records the measured monotone curve from a quiet machine).
    assert throughput[2] >= throughput[1] * 0.9, throughput
    assert throughput[4] >= throughput[2] * 0.9, throughput
    assert throughput[4] >= throughput[1] * 0.9, throughput
    for shards, rate in throughput.items():
        _record(
            "write_throughput",
            {"workers": 2, "shards": shards, "writer_threads": N_WRITERS},
            rate,
        )


def test_smoke_reader_scaling(benchmark):
    application, _ = _run_fig7(1, operations=30, cuboids=40)
    try:
        assert application.db.quiesce(timeout=60.0)
        throughput = {}
        for threads in (1, 2, 4, 8):
            throughput[threads] = _reader_throughput(application, threads)
        benchmark.pedantic(
            lambda: _reader_throughput(application, 4), rounds=1, iterations=1
        )
        # CPython's GIL forbids speedup; the contract is *no collapse*:
        # the entry read locks are uncontended on a valid extension, so
        # threaded aggregate throughput stays within a small factor of
        # the single-threaded figure.
        for threads in (2, 4, 8):
            assert throughput[threads] >= throughput[1] * 0.2, (
                f"reader throughput collapsed at {threads} threads: "
                f"{throughput}"
            )
        for threads, rate in throughput.items():
            _record(
                "reader_throughput",
                {"workers": 1, "shards": 1, "reader_threads": threads},
                rate,
            )
    finally:
        application.db.close()
