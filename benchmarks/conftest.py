"""Shared benchmark fixtures.

Each ``bench_fig*.py`` file regenerates one figure of the paper's
evaluation section at a reduced scale (so the whole suite runs in
minutes) and asserts the figure's qualitative *shape* — who wins, where
break-even points fall.  ``python -m repro.bench --figure N`` runs the
full sweeps; ``--paper-scale`` restores the published sizes.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def cuboid_app_factory():
    from repro.bench.cuboid import CuboidApplication, CuboidConfig

    def make(version, cuboids=200, seed=7):
        return CuboidApplication(version, CuboidConfig(cuboids=cuboids, seed=seed))

    return make


@pytest.fixture
def ranking_app_factory():
    from repro.bench.company import CompanyConfig, RankingApplication

    def make(version):
        config = CompanyConfig(
            departments=4,
            employees_per_department=15,
            projects=80,
            jobs_per_employee=5,
        )
        return RankingApplication(version, config)

    return make
