"""Helpers shared by the benchmark files."""

from __future__ import annotations


def total_costs(result) -> dict[str, float]:
    """Total simulated cost per program version."""
    return {series.version: series.total_cost() for series in result.series}


def total_seconds(result) -> dict[str, float]:
    return {series.version: series.total_seconds() for series in result.series}


def run_once(benchmark, fn, **kwargs):
    """Run a figure sweep exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
