"""Ablation: Access Support Relations vs. function materialization.

The paper introduces function materialization as "a dual approach" to
Access Support Relations: ASRs materialize *path expressions*, GMRs
materialize *computed function results*.  For a pure attribute path both
techniques apply; this benchmark runs the same associative query three
ways and checks the expected cost ordering:

    scan  ≫  ASR probe ≈ restricted-GMR probe

For a *computed* value (volume) only function materialization applies —
the duality the paper builds on.
"""

from _support import run_once

from repro import ObjectBase
from repro.bench.runner import measure
from repro.domains.geometry import (
    build_geometry_schema,
    create_cuboid,
    create_material,
)
from repro.util.rng import DeterministicRng


def _build(cuboids=300):
    db = ObjectBase(buffer_pages=24)
    build_geometry_schema(db)
    rng = DeterministicRng(21)
    materials = [
        create_material(db, name, weight)
        for name, weight in (("Iron", 7.86), ("Gold", 19.0), ("Copper", 8.96))
    ]
    handles = [
        create_cuboid(
            db,
            dims=(rng.uniform(1, 10), rng.uniform(1, 10), rng.uniform(1, 10)),
            material=rng.choice(materials),
            cuboid_id=index,
        )
        for index in range(cuboids)
    ]
    return db, handles, materials


def _scan_cost(db):
    def work():
        return [
            cuboid
            for cuboid in db.extension("Cuboid")
            if cuboid.Mat is not None and cuboid.Mat.Name == "Iron"
        ]

    db.buffer.evict_all()
    return measure(db, work, 0.0), work()


def test_asr_probe_beats_scan(benchmark):
    db, handles, _ = _build()
    asr = db.asr_manager.materialize_path("Cuboid", "Mat", "Name")

    scan_point, scan_result = _scan_cost(db)

    def probe():
        db.buffer.evict_all()
        return measure(db, lambda: asr.backward_exact("Iron"), 0.0)

    probe_point = benchmark.pedantic(probe, rounds=1, iterations=1)
    assert probe_point.logical_reads < scan_point.logical_reads / 5
    # Identical answers.
    assert set(asr.backward_exact("Iron")) == {c.oid for c in scan_result}


def test_restricted_gmr_answers_same_membership(benchmark):
    db, handles, _ = _build(cuboids=150)
    asr = db.asr_manager.materialize_path("Cuboid", "Mat", "Name")
    gmr = db.query(
        'range c: Cuboid materialize c.volume where c.Mat.Name = "Iron"'
    )

    def compare():
        return set(asr.backward_exact("Iron")) == {
            args[0] for args in gmr.args()
        }

    assert benchmark.pedantic(compare, rounds=1, iterations=1)


def test_asr_maintenance_under_updates(benchmark):
    """Updating references keeps the ASR consistent at bounded cost."""
    db, handles, materials = _build(cuboids=150)
    asr = db.asr_manager.materialize_path("Cuboid", "Mat", "Name")
    rng = DeterministicRng(5)

    def churn():
        for _ in range(100):
            cuboid = rng.choice(handles)
            cuboid.set_Mat(rng.choice(materials))

    benchmark.pedantic(churn, rounds=1, iterations=1)
    assert asr.check_consistency() == []
