"""Figure 10: invalidation overhead incurred by materialized volume.

Paper shape: under an all-rotations profile the plain WithGMR version
pays close to an order of magnitude over the unsupported program (12
invalidations + immediate rematerializations per rotate), while both the
pre-invalidated Lazy configuration and InfoHiding track WithoutGMR
closely.
"""

from _support import run_once, total_costs

from repro.bench.cuboid import run_figure10


def test_fig10_sweep(benchmark):
    result = run_once(
        benchmark, run_figure10, cuboids=250, max_rotations=150, step=50
    )
    totals = total_costs(result)
    # WithGMR is by far the most expensive version.
    assert totals["WithGMR"] > 3 * totals["WithoutGMR"]
    # Lazy and InfoHiding stay close to the unsupported program.
    assert totals["Lazy"] < 1.5 * totals["WithoutGMR"] + 5
    assert totals["InfoHiding"] < 1.5 * totals["WithoutGMR"] + 5


def test_fig10_single_rotation_with_gmr(benchmark, cuboid_app_factory):
    from repro.bench.runner import WITH_GMR
    from repro.util.rng import DeterministicRng

    application = cuboid_app_factory(WITH_GMR)
    rng = DeterministicRng(5)
    benchmark(lambda: application.u_rotate(rng))


def test_fig10_single_rotation_info_hiding(benchmark, cuboid_app_factory):
    from repro.bench.runner import INFO_HIDING
    from repro.util.rng import DeterministicRng

    application = cuboid_app_factory(INFO_HIDING)
    rng = DeterministicRng(5)
    benchmark(lambda: application.u_rotate(rng))
