"""Ablation: immediate vs. lazy vs. snapshot maintenance disciplines.

The paper's Sec. 4.1 tuning choice (immediate/lazy) plus the related-work
snapshot discipline [Adiba/Lindsay], measured on one update-then-query
profile:

* *immediate* pays at update time,
* *lazy* pays at (first) query time,
* *snapshot* pays never — until an explicit refresh recomputes all —
  at the price of stale answers in between.
"""

from _support import run_once

from repro import ObjectBase, Strategy
from repro.bench.runner import measure
from repro.domains.geometry import (
    build_geometry_schema,
    create_cuboid,
    create_material,
    create_vertex,
)
from repro.util.rng import DeterministicRng


def _build(strategy, cuboids=200):
    db = ObjectBase(buffer_pages=48)
    build_geometry_schema(db)
    rng = DeterministicRng(31)
    iron = create_material(db, "Iron", 7.86)
    handles = [
        create_cuboid(
            db,
            dims=(rng.uniform(1, 10), rng.uniform(1, 10), rng.uniform(1, 10)),
            material=iron,
            cuboid_id=index,
        )
        for index in range(cuboids)
    ]
    gmr = db.materialize([("Cuboid", "volume")], strategy=strategy)
    return db, handles, gmr


def _update_phase(db, handles, updates=60):
    rng = DeterministicRng(8)
    param = create_vertex(db, 1.0, 1.0, 1.0)

    def work():
        for _ in range(updates):
            cuboid = rng.choice(handles)
            param.set_X(rng.uniform(0.9, 1.1))
            cuboid.scale(param)

    return measure(db, work, 0.0)


def _query_phase(db, handles, queries=60):
    rng = DeterministicRng(9)

    def work():
        for _ in range(queries):
            rng.choice(handles).volume()

    return measure(db, work, 0.0)


def test_update_cost_ordering(benchmark):
    """snapshot < lazy < immediate at update time."""
    costs = {}
    for strategy in (Strategy.IMMEDIATE, Strategy.LAZY, Strategy.SNAPSHOT):
        db, handles, _ = _build(strategy)
        if strategy is Strategy.SNAPSHOT:
            point = benchmark.pedantic(
                lambda db=db, handles=handles: _update_phase(db, handles),
                rounds=1,
                iterations=1,
            )
        else:
            point = _update_phase(db, handles)
        costs[strategy] = point.logical_reads
    assert costs[Strategy.SNAPSHOT] <= costs[Strategy.LAZY]
    assert costs[Strategy.LAZY] < costs[Strategy.IMMEDIATE]


def test_query_cost_ordering(benchmark):
    """After an update burst, lazy pays at query time; snapshot stays
    cheap but answers from the past until refreshed."""
    results = {}
    for strategy in (Strategy.IMMEDIATE, Strategy.LAZY, Strategy.SNAPSHOT):
        db, handles, gmr = _build(strategy)
        _update_phase(db, handles)
        if strategy is Strategy.LAZY:
            point = benchmark.pedantic(
                lambda db=db, handles=handles: _query_phase(db, handles),
                rounds=1,
                iterations=1,
            )
        else:
            point = _query_phase(db, handles)
        results[strategy] = (db, handles, gmr, point)

    lazy_reads = results[Strategy.LAZY][3].logical_reads
    immediate_reads = results[Strategy.IMMEDIATE][3].logical_reads
    snapshot_reads = results[Strategy.SNAPSHOT][3].logical_reads
    assert immediate_reads < lazy_reads       # immediate already paid
    assert snapshot_reads < lazy_reads        # snapshot never pays...

    # ... but the snapshot is stale until refreshed.
    db, handles, gmr, _ = results[Strategy.SNAPSHOT]
    stale = gmr.check_consistency(db)
    assert stale, "updates must have outdated the snapshot"
    db.gmr_manager.refresh_snapshot(gmr)
    assert gmr.check_consistency(db) == []
