"""Ablation: precompiled invalidation plans vs. the per-update scan.

``MaterializationConfig.invalidation_plans`` gates the hot-path rebuild
of Sec. 5's update notification: with plans on, each elementary update
resolves one cached ``UpdatePlan`` (a dict hit) instead of rebuilding
``SchemaDepFct(t.set_A)`` as a fresh frozenset and re-deriving each
function's GMR, predicate-fid and strategy flags inside the
invalidation loop.

Three checks at benchmark scale:

* **wide fan-out** — vertex-coordinate updates hitting five
  materialized functions at once: the planned path must win (this is
  where the per-fid rediscovery cost is multiplied);
* **irrelevant updates** — ``Value`` writes with an empty
  ``SchemaDepFct``: the planned path must at least not regress;
* **equivalence** — both paths must leave byte-identical GMR
  extensions, answer queries identically, and stay Def. 3.2 clean
  (the differential-fuzzer guarantee, spot-checked here).

Timing assertions use min-of-N wall clock with deliberately generous
margins; the fuzz suite, not this file, is the correctness net.
"""

from __future__ import annotations

import time

from repro import ObjectBase
from repro.core.strategies import Strategy
from repro.domains.geometry import (
    build_geometry_schema,
    create_cuboid,
    create_material,
)
from repro.observe.config import MaterializationConfig

_CUBOIDS = 40
_ROUNDS = 40
_REPEATS = 7

_WIDE_FUNCTIONS = [
    ("Cuboid", "volume"),
    ("Cuboid", "weight"),
    ("Cuboid", "length"),
    ("Cuboid", "width"),
    ("Cuboid", "height"),
]


def _build(plans: bool):
    db = ObjectBase(
        config=MaterializationConfig(
            invalidation_plans=plans,
            # LAZY keeps rematerialization out of the loop, so the
            # notification dispatch itself dominates what we time.
            strategy=Strategy.LAZY,
        )
    )
    build_geometry_schema(db)
    iron = create_material(db, "Iron", 7.86)
    cuboids = [
        create_cuboid(
            db,
            dims=(2.0, 3.0, 4.0),
            material=iron,
            value=10.0 + i,
            cuboid_id=i,
        )
        for i in range(_CUBOIDS)
    ]
    db.materialize(_WIDE_FUNCTIONS)
    vertices = [db.objects.get(c.oid).data["V1"] for c in cuboids]
    return db, cuboids, vertices


def _wide_fanout(db, vertices, rounds=_ROUNDS):
    """Each write invalidates all five functions of its cuboid."""
    for round_no in range(rounds):
        x = float(round_no)
        for vertex in vertices:
            db.set_attr(vertex, "X", x)


def _irrelevant(db, cuboids, rounds=_ROUNDS):
    """Each write has an empty SchemaDepFct — the common no-op case."""
    for round_no in range(rounds):
        value = float(round_no)
        for cuboid in cuboids:
            db.set_attr(cuboid.oid, "Value", value)


def _best_of(plans: bool, workload: str) -> float:
    best = float("inf")
    for _ in range(_REPEATS):
        db, cuboids, vertices = _build(plans)
        try:
            started = time.perf_counter()
            if workload == "wide":
                _wide_fanout(db, vertices)
            else:
                _irrelevant(db, cuboids)
            best = min(best, time.perf_counter() - started)
        finally:
            db.close()
    return best


def _final_state(plans: bool):
    db, cuboids, vertices = _build(plans)
    try:
        _wide_fanout(db, vertices, rounds=6)
        _irrelevant(db, cuboids, rounds=6)
        volumes = sorted(db.query("range c:Cuboid retrieve c.volume"))
        weights = sorted(db.query("range c:Cuboid retrieve c.weight"))
        rows = sorted(
            (gmr.name, row.args[0].value, tuple(row.valid), tuple(row.results))
            for gmr in db.gmr_manager.gmrs()
            for row in gmr.rows()
        )
        violations = []
        for gmr in db.gmr_manager.gmrs():
            violations.extend(gmr.check_consistency(db))
        return volumes, weights, rows, violations
    finally:
        db.close()


def test_smoke_wide_fanout_planned_beats_scan(benchmark):
    scanned = _best_of(False, "wide")
    planned = benchmark.pedantic(
        lambda: _best_of(True, "wide"), rounds=1, iterations=1
    )
    # The planned path must win where fan-out multiplies the per-fid
    # rediscovery cost.  Allow a whisker of noise above parity.
    assert planned <= scanned * 1.02, (
        f"planned {planned * 1e3:.2f}ms vs scanned {scanned * 1e3:.2f}ms"
    )


def test_smoke_irrelevant_updates_do_not_regress(benchmark):
    scanned = _best_of(False, "irrelevant")
    planned = benchmark.pedantic(
        lambda: _best_of(True, "irrelevant"), rounds=1, iterations=1
    )
    assert planned <= scanned * 1.10, (
        f"planned {planned * 1e3:.2f}ms vs scanned {scanned * 1e3:.2f}ms"
    )


def test_smoke_planned_and_scanned_results_identical(benchmark):
    planned = benchmark.pedantic(
        lambda: _final_state(True), rounds=1, iterations=1
    )
    scanned = _final_state(False)
    p_volumes, p_weights, p_rows, p_violations = planned
    s_volumes, s_weights, s_rows, s_violations = scanned
    assert p_violations == [] and s_violations == []
    assert p_volumes == s_volumes
    assert p_weights == s_weights
    assert p_rows == s_rows
