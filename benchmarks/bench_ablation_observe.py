"""Ablation: observability overhead on the Figure 7 workload.

The tentpole's contract is *zero overhead when disabled*: every trace
site guards on ``tracer.enabled`` and every metrics site on the
manager's ``_obs_on`` flag / pre-bound ``NULL_METRIC``, so a run with
observability off must match the pre-observability baseline.  This
ablation runs the Figure 7 cuboid mix three ways over identical seeds —
tracing ON (ring sink), the default (metrics ON, tracing OFF), and
everything OFF — and asserts

* all three runs end in the identical GMR extension (observability
  never perturbs maintenance),
* the disabled runs record no trace events at all,
* the default configuration stays within 5% (plus a fixed jitter
  allowance) of the everything-off baseline, and
* even full tracing stays within a loose smoke bound (it buffers one
  small record per maintenance step, it does not re-evaluate anything).
"""

from __future__ import annotations

import time

from repro.bench.cuboid import CuboidApplication, CuboidConfig
from repro.bench.runner import WITH_GMR
from repro.bench.workload import OperationMix
from repro.observe.config import MaterializationConfig, ObserveConfig
from repro.util.rng import DeterministicRng

_FIG7_MIX = dict(
    queries=[(0.5, "Qbw"), (0.5, "Qfw")],
    updates=[(0.5, "I"), (0.5, "S")],
)


def _run_fig7(observe: ObserveConfig, *, operations: int = 60, cuboids: int = 80):
    """One Figure 7 point under the given observe settings; returns
    (application, seconds)."""
    application = CuboidApplication(
        WITH_GMR,
        CuboidConfig(
            cuboids=cuboids,
            seed=7,
            materialization=MaterializationConfig(observe=observe),
        ),
    )
    mix = OperationMix(
        update_probability=0.9, operations=operations, **_FIG7_MIX
    )
    start = time.perf_counter()
    application.run_mix(mix, DeterministicRng(11))
    elapsed = time.perf_counter() - start
    return application, elapsed


def _best_of(runs: int, observe: ObserveConfig):
    application, best = _run_fig7(observe)
    for _ in range(runs - 1):
        application, elapsed = _run_fig7(observe)
        best = min(best, elapsed)
    return application, best


def _gmr_state(application):
    return sorted(
        (row.args[0].value, tuple(row.valid), tuple(row.results))
        for row in application.gmr.rows()
    )


def test_smoke_observe_disabled_is_free(benchmark):
    off, off_seconds = _best_of(3, ObserveConfig(trace=False, metrics=False))
    default, default_seconds = benchmark.pedantic(
        lambda: _best_of(3, ObserveConfig()), rounds=1, iterations=1
    )

    # Observability must not perturb the materialized extension.
    assert _gmr_state(default) == _gmr_state(off)
    # Nothing traced in either run: no sinks, no events.
    assert off.db.observe.events() == []
    assert default.db.observe.events() == []
    assert default.db.observe.tracer.sinks == []
    # The default path (metrics on, tracing off) pays pre-bound counter
    # increments and tally updates — within 5% of the everything-off
    # baseline, plus a fixed allowance for timer jitter on short runs.
    assert default_seconds <= off_seconds * 1.05 + 0.05


def test_smoke_observe_tracing_is_bounded(benchmark):
    off, off_seconds = _best_of(3, ObserveConfig(trace=False, metrics=False))
    traced, traced_seconds = benchmark.pedantic(
        lambda: _best_of(
            3, ObserveConfig(trace=True, metrics=True, ring_buffer=1024)
        ),
        rounds=1,
        iterations=1,
    )

    assert _gmr_state(traced) == _gmr_state(off)
    # The traced run really recorded the maintenance chain...
    events = traced.db.observe.events()
    assert len(events) > 0
    names = {event.name for event in events}
    assert "invalidate.wave" in names
    assert "update" in names
    # ...at a cost bounded by buffering one record per step: a loose
    # smoke bound against pathological overhead, not a microbenchmark.
    assert traced_seconds <= off_seconds * 3 + 0.1
