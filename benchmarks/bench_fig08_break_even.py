"""Figure 8: determining the break-even point of function materialization.

Paper shape: with only backward queries and scales, the supported
versions lose their advantage only at very high update probabilities
(≈ 0.96 for WithGMR and ≈ 0.975 for InfoHiding at paper scale), and the
InfoHiding break-even always lies beyond the WithGMR one.
"""

from _support import run_once, total_costs

from repro.bench.cuboid import CuboidConfig, run_figure08


def test_fig08_sweep(benchmark):
    result = run_once(
        benchmark, run_figure08, cuboids=250, ops_per_point=60
    )
    # The break-even of InfoHiding lies at a higher update probability
    # than that of WithGMR (or beyond the sweep for either).
    cross_gmr = result.crossover("WithGMR", "WithoutGMR")
    cross_hiding = result.crossover("InfoHiding", "WithoutGMR")
    if cross_hiding is not None:
        assert cross_gmr is not None
        assert cross_hiding >= cross_gmr
    totals = total_costs(result)
    assert totals["InfoHiding"] <= totals["WithGMR"] * 1.05


def test_fig08_pure_update_point_favors_unsupported(benchmark, cuboid_app_factory):
    """At Pup = 1.0 (scales only), maintaining the GMR costs extra."""
    from repro.bench.runner import WITH_GMR, WITHOUT_GMR, measure
    from repro.bench.workload import OperationMix
    from repro.util.rng import DeterministicRng

    mix = OperationMix(
        queries=[(1.0, "Qbw")],
        updates=[(1.0, "S")],
        update_probability=1.0,
        operations=20,
    )
    without = cuboid_app_factory(WITHOUT_GMR)
    with_gmr = cuboid_app_factory(WITH_GMR)
    point_without = measure(
        without.db, lambda: without.run_mix(mix, DeterministicRng(1)), 1.0
    )

    benchmark(lambda: with_gmr.run_mix(mix, DeterministicRng(1)))

    point_with = measure(
        with_gmr.db, lambda: with_gmr.run_mix(mix, DeterministicRng(2)), 1.0
    )
    assert point_with.logical_reads > point_without.logical_reads
