"""Figure 14: cost of forward queries on ⟨⟨ranking⟩⟩.

Paper shape: lazy rematerialization clearly beats immediate across the
mixed region (the paper reports a factor 2-12): invalidated rankings are
only recomputed when a forward query actually touches them.
"""

from _support import run_once, total_costs

from repro.bench.company import CompanyConfig, run_figure14


def _config():
    return CompanyConfig(
        departments=4,
        employees_per_department=15,
        projects=80,
        jobs_per_employee=5,
    )


def test_fig14_sweep(benchmark):
    result = run_once(
        benchmark,
        run_figure14,
        config=_config(),
        ops_per_point=80,
        pup_step=0.25,
    )
    totals = total_costs(result)
    assert totals["Lazy"] < totals["Immediate"]

    # In the mixed middle region Lazy does strictly less work.
    lazy = result.series_by_name("Lazy").points
    immediate = result.series_by_name("Immediate").points
    middle = slice(1, -1)
    lazy_mid = sum(point.logical_reads for point in lazy[middle])
    immediate_mid = sum(point.logical_reads for point in immediate[middle])
    assert lazy_mid < immediate_mid


def test_fig14_promotion_under_lazy(benchmark, ranking_app_factory):
    from repro.bench.runner import LAZY_COMPANY
    from repro.util.rng import DeterministicRng

    application = ranking_app_factory(LAZY_COMPANY)
    rng = DeterministicRng(8)
    benchmark(lambda: application.u_promote(rng))


def test_fig14_promotion_under_immediate(benchmark, ranking_app_factory):
    from repro.bench.runner import IMMEDIATE
    from repro.util.rng import DeterministicRng

    application = ranking_app_factory(IMMEDIATE)
    rng = DeterministicRng(8)
    benchmark(lambda: application.u_promote(rng))
