"""Ablation: execution-guard overhead on the success path.

The fault-tolerance pipeline (guard → ERROR state → retry → breaker)
must be paid for only when a function actually misbehaves.  This
ablation runs the Figure 7 workload (Qmix = {0.5 Qbw, 0.5 Qfw},
Umix = {0.5 I, 0.5 S}) twice over the same ``CuboidApplication`` —
once with ``FaultPolicy.enabled = False`` (the seed's raw call path)
and once with the guard armed — and asserts

* the guarded run never trips (no failures, no timeouts, no retries,
  no breaker transitions: geometry bodies are healthy),
* both runs end in the *identical* GMR extension, and
* the guarded run's wall clock stays within noise of the raw run
  (generous bound: the guard adds one clock read and one ``try`` per
  body call, not a second evaluation).
"""

from __future__ import annotations

import time

from repro.bench.cuboid import CuboidApplication, CuboidConfig
from repro.bench.runner import WITH_GMR
from repro.bench.workload import OperationMix
from repro.util.rng import DeterministicRng

_FIG7_MIX = dict(
    queries=[(0.5, "Qbw"), (0.5, "Qfw")],
    updates=[(0.5, "I"), (0.5, "S")],
)


def _run_fig7(*, guarded: bool, operations: int = 60, cuboids: int = 80):
    """One Figure 7 point; returns (application, stats delta, seconds)."""
    application = CuboidApplication(
        WITH_GMR, CuboidConfig(cuboids=cuboids, seed=7)
    )
    manager = application.db.gmr_manager
    manager.fault_policy.enabled = guarded
    mix = OperationMix(
        update_probability=0.9, operations=operations, **_FIG7_MIX
    )
    before = manager.stats.snapshot()
    start = time.perf_counter()
    application.run_mix(mix, DeterministicRng(11))
    elapsed = time.perf_counter() - start
    return application, manager.stats.delta(before), elapsed


def _gmr_state(application):
    return sorted(
        (row.args[0].value, tuple(row.valid), tuple(row.results))
        for row in application.gmr.rows()
    )


def test_smoke_guard_is_free_on_the_success_path(benchmark):
    raw, raw_delta, raw_seconds = _run_fig7(guarded=False)
    guarded, guarded_delta, guarded_seconds = benchmark.pedantic(
        lambda: _run_fig7(guarded=True), rounds=1, iterations=1
    )
    # A healthy workload exercises none of the fault machinery.
    for counter in (
        "guard_failures",
        "guard_timeouts",
        "retries_scheduled",
        "retries_exhausted",
        "breaker_opens",
        "degraded_forward_calls",
    ):
        assert getattr(guarded_delta, counter) == 0, counter
    # The guard must not perturb the materialized extension...
    assert _gmr_state(guarded) == _gmr_state(raw)
    assert not guarded.db.gmr_manager.breaker.quarantined_fids()
    # ...and its per-call cost (a monotonic read plus a try frame) must
    # drown in workload noise.  3x + 50ms is deliberately loose: this is
    # a smoke bound against pathological overhead (e.g. accidentally
    # re-evaluating bodies), not a microbenchmark.
    assert guarded_seconds < raw_seconds * 3 + 0.05


def test_smoke_guard_overhead_scales_linearly(benchmark):
    def sweep():
        seconds = []
        for operations in (20, 60):
            _, delta, elapsed = _run_fig7(
                guarded=True, operations=operations
            )
            assert delta.guard_failures == 0
            seconds.append(elapsed)
        return seconds

    small, large = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Tripling the operation count must not blow up superlinearly; the
    # slack absorbs scheduler warm-up and timer jitter on tiny runs.
    assert large < small * 20 + 0.1
