"""Ablation: complete population vs. incremental (cache-style) setup.

Sec. 3.2: "the database programmer can choose whether the GMR extension
has to be complete or whether the extension may be set up incrementally
(starting with an empty GMR extension)".  The trade-off:

* a *complete* GMR pays the full cross-product materialization up front
  and then answers backward queries from the index alone;
* an *incremental* GMR starts free and fills as forward queries touch
  objects — cheap when only a small working set is ever asked for;
* a *capped* incremental GMR additionally bounds memory via LRU
  replacement, paying recomputations for evicted entries.
"""

from _support import run_once

from repro import ObjectBase
from repro.bench.runner import measure
from repro.domains.geometry import (
    build_geometry_schema,
    create_cuboid,
    create_material,
)
from repro.util.rng import DeterministicRng


def _build(cuboids=300, **materialize_options):
    db = ObjectBase(buffer_pages=48)
    build_geometry_schema(db)
    rng = DeterministicRng(17)
    iron = create_material(db, "Iron", 7.86)
    handles = [
        create_cuboid(
            db,
            dims=(rng.uniform(1, 10), rng.uniform(1, 10), rng.uniform(1, 10)),
            material=iron,
            cuboid_id=index,
        )
        for index in range(cuboids)
    ]
    setup = measure(
        db,
        lambda: db.materialize([("Cuboid", "volume")], **materialize_options),
        0.0,
    )
    return db, handles, setup


def _hot_set_queries(db, handles, queries=200, working_set=20):
    rng = DeterministicRng(4)
    hot = handles[:working_set]

    def work():
        for _ in range(queries):
            rng.choice(hot).volume()

    return measure(db, work, 0.0)


def test_incremental_setup_is_nearly_free(benchmark):
    _, _, complete_setup = _build(complete=True)
    db, handles, incremental_setup = _build(complete=False)
    assert incremental_setup.logical_reads < complete_setup.logical_reads / 50

    point = benchmark.pedantic(
        lambda: _hot_set_queries(db, handles), rounds=1, iterations=1
    )
    gmr = db.gmr_manager.gmrs()[0]
    # Only the hot set was cached.
    assert len(gmr) == 20


def test_hot_set_amortizes_in_cache(benchmark):
    """After warm-up, repeated queries on the hot set are pure hits."""
    db, handles, _ = _build(complete=False)
    _hot_set_queries(db, handles)  # warm-up
    stats = db.gmr_manager.stats
    before = stats.snapshot()
    point = benchmark.pedantic(
        lambda: _hot_set_queries(db, handles), rounds=1, iterations=1
    )
    delta = stats.delta(before)
    assert delta.rematerializations == 0
    assert delta.forward_hits == 200


def test_capped_cache_trades_memory_for_recomputation(benchmark):
    db, handles, _ = _build(complete=False, capacity=10)
    point = benchmark.pedantic(
        lambda: _hot_set_queries(db, handles, working_set=30),
        rounds=1,
        iterations=1,
    )
    gmr = db.gmr_manager.gmrs()[0]
    assert len(gmr) == 10           # capacity held
    assert gmr.evictions > 0        # replacement happened
    stats = db.gmr_manager.stats
    assert stats.rematerializations > 30  # evicted entries recomputed
