"""The fuzz script format: a JSON-serializable workload.

A *script* is a domain name, the seed that generated it, and a flat
list of steps.  Objects are referenced by generator-chosen string
labels (never raw OIDs), so a script replays identically into any
fresh object base — the property the differential oracle and the
delta-debugging minimizer both rely on.

Step vocabulary (each step is a plain dict with an ``"op"`` key):

``new``                ``{"op", "label", "type", "attrs"}`` — create a
                       tuple object; attribute values are JSON scalars
                       or ``{"$ref": label}`` object references.
``new_collection``     ``{"op", "label", "type", "elements"}`` — create
                       a set/list object from a list of labels.
``set``                ``{"op", "target", "attr", "value"}`` — the
                       elementary ``t.set_A`` update.
``insert`` / ``remove``  ``{"op", "target", "value"}`` — collection
                       membership updates.
``delete``             ``{"op", "target"}`` — object deletion.
``call``               ``{"op", "target", "method", "args"}`` — invoke
                       an operation (``scale``, ``rotate``,
                       ``add_project``, ...); args are scalars or refs.
``materialize``        ``{"op", "text"}`` — a GOMql ``materialize``
                       statement; skipped by the unmaterialized
                       reference replay.
``query``              ``{"op", "text"}`` — a GOMql ``retrieve``; its
                       canonicalized result is recorded for the
                       differential comparison.
``batch_begin`` / ``batch_end``  — a batched-maintenance scope.
``quiesce``            — drain every pending deferred revalidation.
``checkpoint_recover`` — checkpoint the base, discard it, and recover
                       into a fresh one (OIDs are preserved).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

SCRIPT_VERSION = 1


@dataclass
class Script:
    """One generated workload (see module docstring for the step shapes)."""

    domain: str
    seed: int
    steps: list[dict] = field(default_factory=list)
    version: int = SCRIPT_VERSION

    def replace_steps(self, steps: list[dict]) -> "Script":
        """A copy with a different step list (used by the minimizer)."""
        return Script(
            domain=self.domain,
            seed=self.seed,
            steps=list(steps),
            version=self.version,
        )

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "domain": self.domain,
            "seed": self.seed,
            "steps": self.steps,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Script":
        return cls(
            domain=data["domain"],
            seed=data.get("seed", 0),
            steps=list(data["steps"]),
            version=data.get("version", SCRIPT_VERSION),
        )


def script_to_json(script: Script, *, indent: int | None = 2) -> str:
    return json.dumps(script.to_dict(), indent=indent, sort_keys=False)


def script_from_json(text: str) -> Script:
    return Script.from_dict(json.loads(text))
