"""Differential GOMql fuzzing (the hot-path overhaul's safety net).

A seeded generator (:mod:`repro.fuzz.generator`) produces JSON
workload *scripts* — populations, elementary updates, batch scopes,
checkpoint/recover cycles, quiesce points and GOMql query strings over
the geometry and company domains.  The differential oracle
(:mod:`repro.fuzz.oracle`) replays each script against an
*unmaterialized* reference base and a matrix of materialized
configurations (instrumentation level × strategy × batching × workers
× invalidation plans × shards) and asserts that

* every query returns the same result everywhere,
* the final object extensions are identical, and
* every GMR satisfies the Def. 3.2 consistency invariant plus the
  RRR ↔ ObjDepFct lockstep of Sec. 5.2.

Failures are shrunk by delta debugging (:mod:`repro.fuzz.minimize`)
into minimal reproduction scripts suitable for the checked-in corpus
(``tests/gomql/corpus/``).  ``python -m repro.fuzz --help`` is the
command-line entry point; see ``docs/TESTING.md``.
"""

from repro.fuzz.generator import FuzzGenerator, generate_script
from repro.fuzz.minimize import minimize_script
from repro.fuzz.oracle import (
    OracleConfig,
    OracleFailure,
    all_configs,
    check_script,
    configs_for_script,
    run_fuzz,
)
from repro.fuzz.replay import Replayer, ReplayResult, ScriptError
from repro.fuzz.script import Script, script_from_json, script_to_json

__all__ = [
    "FuzzGenerator",
    "OracleConfig",
    "OracleFailure",
    "Replayer",
    "ReplayResult",
    "Script",
    "ScriptError",
    "all_configs",
    "check_script",
    "configs_for_script",
    "generate_script",
    "minimize_script",
    "run_fuzz",
    "script_from_json",
    "script_to_json",
]
