"""Seeded random workload generation over the geometry/company domains.

The generator mirrors the GOMql grammar the parser accepts — forward
and backward query shapes, every comparison operator, boolean
connectives, arithmetic with unary minus and parentheses, attribute
paths, operation calls with arguments, ``in`` membership, aggregates,
string/number/boolean literals — and interleaves them with elementary
updates, operation calls, collection updates, deletes, batch scopes,
checkpoint/recover cycles and quiesce points.

Everything is drawn from one :class:`~repro.util.rng.DeterministicRng`,
so ``generate_script(seed, domain)`` is a pure function of its
arguments: a failure reproduces from its seed alone (see
``docs/TESTING.md``).

Hygiene rules the generator maintains (so scripts stay *semantically*
valid and the differential oracle compares behaviour, not error
spelling): objects are deleted only after removing them from every
collection that holds them; attribute-referenced objects (materials,
vertices in use, projects) are never deleted; a function is
materialized at most once per script; checkpoint/quiesce never happen
inside a batch scope.
"""

from __future__ import annotations

from repro.fuzz.script import Script
from repro.util.rng import DeterministicRng

_COMPARISONS = ("=", "!=", "<", "<=", ">", ">=")
_AGGREGATES = ("sum", "count", "avg", "min", "max")


def generate_script(
    seed: int, domain: str = "geometry", *, size: str = "small"
) -> Script:
    """Generate one deterministic script for ``domain`` from ``seed``."""
    return FuzzGenerator(seed, domain, size=size).generate()


class FuzzGenerator:
    """One-shot script builder (create a new instance per script)."""

    def __init__(
        self, seed: int, domain: str = "geometry", *, size: str = "small"
    ) -> None:
        if domain not in ("geometry", "company"):
            raise ValueError(f"unknown fuzz domain {domain!r}")
        self.seed = seed
        self.domain = domain
        self.size = size
        self.rng = DeterministicRng(seed)
        self.steps: list[dict] = []
        self._counter = 0
        #: label -> set of collection labels currently holding it
        self._membership: dict[str, set[str]] = {}
        #: collection label -> element type ("Cuboid", "Employee", ...)
        self._collections: dict[str, str] = {}
        self._materialized: set[str] = set()
        self._in_batch = False

    # -- plumbing -------------------------------------------------------

    def _label(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _emit(self, **step) -> None:
        self.steps.append(step)

    def _ref(self, label: str) -> dict:
        return {"$ref": label}

    def _num(self, low: float, high: float) -> float:
        return round(self.rng.uniform(low, high), 1)

    def _members_of(self, collection: str) -> list[str]:
        return sorted(
            label
            for label, held_in in self._membership.items()
            if collection in held_in
        )

    def _insert(self, collection: str, element: str) -> None:
        self._emit(op="insert", target=collection, value=self._ref(element))
        self._membership.setdefault(element, set()).add(collection)

    def _remove(self, collection: str, element: str) -> None:
        self._emit(op="remove", target=collection, value=self._ref(element))
        self._membership.setdefault(element, set()).discard(collection)

    def _delete(self, label: str) -> None:
        for collection in sorted(self._membership.get(label, set())):
            self._remove(collection, label)
        self._emit(op="delete", target=label)
        self._membership.pop(label, None)

    def _materialize(self, text: str, fids: tuple[str, ...]) -> bool:
        if self._in_batch or any(fid in self._materialized for fid in fids):
            return False
        self._materialized.update(fids)
        self._emit(op="materialize", text=text)
        return True

    def _query(self, text: str) -> None:
        self._emit(op="query", text=text)

    # -- entry point ----------------------------------------------------

    def generate(self) -> Script:
        if self.domain == "geometry":
            self._populate_geometry()
            actions = self._geometry_actions()
        else:
            self._populate_company()
            actions = self._company_actions()
        length = (
            self.rng.randint(12, 24)
            if self.size == "small"
            else self.rng.randint(30, 60)
        )
        for _ in range(length):
            self._draw_action(actions)
        if self._in_batch:  # pragma: no cover - defensive
            self._emit(op="batch_end")
            self._in_batch = False
        # Always end on a settle plus one broad query, so every script
        # exercises the final-state comparison with content.
        self._emit(op="quiesce")
        self._query(self._broad_query())
        return Script(domain=self.domain, seed=self.seed, steps=self.steps)

    def _draw_action(self, actions: list[tuple[float, object]]) -> None:
        total = sum(weight for weight, _ in actions)
        needle = self.rng.random() * total
        for weight, action in actions:
            needle -= weight
            if needle <= 0:
                action()
                return
        actions[-1][1]()  # pragma: no cover - float drift

    def _batch_scope(self, update_actions: list[tuple[float, object]]) -> None:
        if self._in_batch:
            return
        self._emit(op="batch_begin")
        self._in_batch = True
        for _ in range(self.rng.randint(2, 5)):
            self._draw_action(update_actions)
        self._emit(op="batch_end")
        self._in_batch = False

    def _checkpoint_recover(self) -> None:
        if not self._in_batch:
            self._emit(op="checkpoint_recover")

    def _quiesce(self) -> None:
        if not self._in_batch:
            self._emit(op="quiesce")

    # ==================================================================
    # Geometry domain
    # ==================================================================

    def _populate_geometry(self) -> None:
        rng = self.rng
        self.materials = [
            self._new_material() for _ in range(rng.randint(1, 3))
        ]
        self.cuboids: list[str] = []
        self.cuboid_vertices: dict[str, list[str]] = {}
        for _ in range(rng.randint(3, 7)):
            self._new_cuboid()
        self.robots = [self._new_robot() for _ in range(rng.randint(0, 2))]
        for type_name, prefix, count in (
            ("Workpieces", "w", rng.randint(1, 2)),
            ("Valuables", "vl", rng.randint(0, 1)),
        ):
            for _ in range(count):
                label = self._label(prefix)
                members = rng.sample(
                    self.cuboids, rng.randint(0, len(self.cuboids))
                )
                self._emit(
                    op="new_collection",
                    label=label,
                    type=type_name,
                    elements=members,
                )
                self._collections[label] = "Cuboid"
                for member in members:
                    self._membership.setdefault(member, set()).add(label)

    def _new_material(self) -> str:
        label = self._label("m")
        name = self.rng.choice(["Gold", "Iron", "Copper", "Wood", "Lead"])
        self._emit(
            op="new",
            label=label,
            type="Material",
            attrs={"Name": name, "SpecWeight": self._num(0.5, 20.0)},
        )
        return label

    def _new_vertex(self, x: float, y: float, z: float) -> str:
        label = self._label("v")
        self._emit(
            op="new",
            label=label,
            type="Vertex",
            attrs={"X": x, "Y": y, "Z": z},
        )
        return label

    def _new_cuboid(self) -> str:
        rng = self.rng
        ox, oy, oz = self._num(-5, 5), self._num(-5, 5), self._num(-5, 5)
        dx, dy, dz = self._num(1, 6), self._num(1, 6), self._num(1, 6)
        corners = [
            (ox, oy, oz), (ox + dx, oy, oz), (ox + dx, oy + dy, oz),
            (ox, oy + dy, oz), (ox, oy, oz + dz), (ox + dx, oy, oz + dz),
            (ox + dx, oy + dy, oz + dz), (ox, oy + dy, oz + dz),
        ]
        vertices = [self._new_vertex(*corner) for corner in corners]
        label = self._label("c")
        attrs = {
            f"V{i + 1}": self._ref(vertex) for i, vertex in enumerate(vertices)
        }
        attrs["Mat"] = self._ref(rng.choice(self.materials))
        attrs["Value"] = self._num(1, 100)
        attrs["CuboidID"] = rng.randint(1, 500)
        self._emit(op="new", label=label, type="Cuboid", attrs=attrs)
        self.cuboids.append(label)
        self.cuboid_vertices[label] = vertices
        self._membership.setdefault(label, set())
        return label

    def _new_robot(self) -> str:
        pos = self._new_vertex(
            self._num(-10, 10), self._num(-10, 10), self._num(-10, 10)
        )
        label = self._label("r")
        self._emit(
            op="new",
            label=label,
            type="Robot",
            attrs={
                "Name": f"R{self._counter}",
                "Pos": self._ref(pos),
            },
        )
        return label

    def _geometry_updates(self) -> list[tuple[float, object]]:
        return [
            (3.0, self._geo_set_value),
            (2.0, self._geo_set_vertex_coord),
            (1.5, self._geo_transform),
            (1.0, self._geo_set_material),
            (1.0, self._geo_collection_update),
            (0.7, self._geo_set_vertex_ref),
            (0.6, lambda: self._new_cuboid()),
            (0.5, self._geo_delete_cuboid),
        ]

    def _geometry_actions(self) -> list[tuple[float, object]]:
        updates = self._geometry_updates()
        return updates + [
            (3.0, self._geo_query),
            (1.2, self._geo_materialize),
            (0.8, lambda: self._batch_scope(updates + [(1.0, self._geo_query)])),
            (0.4, self._quiesce),
            (0.25, self._checkpoint_recover),
        ]

    def _geo_set_value(self) -> None:
        cuboid = self.rng.choice(self.cuboids)
        if self.rng.random() < 0.5:
            self._emit(
                op="set", target=cuboid, attr="Value",
                value=self._num(1, 100),
            )
        else:
            self._emit(
                op="set", target=cuboid, attr="CuboidID",
                value=self.rng.randint(1, 500),
            )

    def _geo_set_vertex_coord(self) -> None:
        cuboid = self.rng.choice(self.cuboids)
        vertex = self.rng.choice(self.cuboid_vertices[cuboid])
        axis = self.rng.choice(["X", "Y", "Z"])
        self._emit(
            op="set", target=vertex, attr=axis, value=self._num(-8, 8)
        )

    def _geo_set_vertex_ref(self) -> None:
        cuboid = self.rng.choice(self.cuboids)
        slot = self.rng.randint(1, 8)
        vertex = self._new_vertex(
            self._num(-5, 5), self._num(-5, 5), self._num(-5, 5)
        )
        self.cuboid_vertices[cuboid][slot - 1] = vertex
        self._emit(
            op="set", target=cuboid, attr=f"V{slot}", value=self._ref(vertex)
        )

    def _geo_set_material(self) -> None:
        material = self.rng.choice(self.materials)
        if self.rng.random() < 0.7:
            self._emit(
                op="set", target=material, attr="SpecWeight",
                value=self._num(0.5, 20.0),
            )
        else:
            self._emit(
                op="set", target=material, attr="Name",
                value=self.rng.choice(["Gold", "Iron", "Tin"]),
            )

    def _geo_transform(self) -> None:
        cuboid = self.rng.choice(self.cuboids)
        kind = self.rng.choice(["scale", "translate", "rotate"])
        if kind == "rotate":
            self._emit(
                op="call", target=cuboid, method="rotate",
                args=[self.rng.choice(["x", "y", "z"]),
                      self._num(-1.5, 1.5)],
            )
        else:
            low, high = (0.5, 2.0) if kind == "scale" else (-3.0, 3.0)
            argument = self._new_vertex(
                self._num(low, high), self._num(low, high),
                self._num(low, high),
            )
            self._emit(
                op="call", target=cuboid, method=kind,
                args=[self._ref(argument)],
            )

    def _geo_collection_update(self) -> None:
        if not self._collections:
            return
        collection = self.rng.choice(sorted(self._collections))
        members = self._members_of(collection)
        outside = [c for c in self.cuboids if c not in members]
        if members and (not outside or self.rng.random() < 0.5):
            self._remove(collection, self.rng.choice(members))
        elif outside:
            self._insert(collection, self.rng.choice(outside))

    def _geo_delete_cuboid(self) -> None:
        if len(self.cuboids) <= 2:
            return
        cuboid = self.rng.choice(self.cuboids)
        self.cuboids.remove(cuboid)
        del self.cuboid_vertices[cuboid]
        self._delete(cuboid)

    def _geo_materialize(self) -> None:
        rng = self.rng
        candidates = [
            ("range c:Cuboid materialize c.volume, c.weight",
             ("Cuboid.volume", "Cuboid.weight")),
            ("range c:Cuboid materialize c.volume", ("Cuboid.volume",)),
            ("range c:Cuboid materialize c.length", ("Cuboid.length",)),
            ("range w:Workpieces materialize w.total_volume, w.total_weight",
             ("Workpieces.total_volume", "Workpieces.total_weight")),
            ("range v:Valuables materialize v.total_value",
             ("Valuables.total_value",)),
            ("range c:Cuboid, r:Robot materialize c.distance(r)",
             ("Cuboid.distance",)),
            (f"range c:Cuboid materialize c.volume "
             f"where c.Value <= {self._num(20, 90)}",
             ("Cuboid.volume",)),
            (f"range c:Cuboid materialize c.weight "
             f"where c.CuboidID < {rng.randint(100, 400)} "
             f"and c.Value > {self._num(5, 40)}",
             ("Cuboid.weight",)),
            ("range c:Cuboid materialize c.height "
             "where c.Mat.Name != 'Gold'",
             ("Cuboid.height",)),
        ]
        text, fids = rng.choice(candidates)
        self._materialize(text, fids)

    def _geo_numeric_expr(self) -> str:
        rng = self.rng
        base = rng.choice(
            ["c.volume", "c.weight", "c.length", "c.width", "c.height",
             "c.Value", "c.CuboidID", "c.Mat.SpecWeight"]
        )
        roll = rng.random()
        if roll < 0.55:
            return base
        if roll < 0.7:
            return f"-{base}"
        operator = rng.choice(["+", "-", "*", "/"])
        constant = rng.randint(1, 9)  # nonzero: division stays total
        if roll < 0.85:
            return f"{base} {operator} {constant}"
        return f"({base} + {constant}) * {rng.randint(1, 4)}"

    def _geo_predicate(self) -> str:
        rng = self.rng

        def comparison() -> str:
            roll = rng.random()
            if roll < 0.15:
                name = rng.choice(["Gold", "Iron", "Copper"])
                return f"c.Mat.Name {rng.choice(['=', '!='])} '{name}'"
            left = self._geo_numeric_expr()
            return f"{left} {rng.choice(_COMPARISONS)} {self._num(-50, 400)}"

        roll = rng.random()
        if roll < 0.5:
            return comparison()
        if roll < 0.7:
            return f"{comparison()} and {comparison()}"
        if roll < 0.9:
            return f"{comparison()} or {comparison()}"
        return f"not ({comparison()})"

    def _geo_query(self) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.3:
            projection = rng.choice(
                ["c.volume", "c.weight", "c.Value", "c.CuboidID",
                 "c.CuboidID, c.volume", "c", "c.Mat.Name", "c.Mat"]
            )
            self._query(f"range c:Cuboid retrieve {projection}")
        elif roll < 0.6:
            projection = rng.choice(
                ["c.CuboidID", "c.Value", "c.CuboidID, c.weight"]
            )
            self._query(
                f"range c:Cuboid retrieve {projection} "
                f"where {self._geo_predicate()}"
            )
        elif roll < 0.75:
            aggregate = rng.choice(_AGGREGATES)
            argument = rng.choice(["c.volume", "c.Value", "c.weight"])
            text = f"range c:Cuboid retrieve {aggregate}({argument})"
            if rng.random() < 0.5:
                text += f" where {self._geo_predicate()}"
            self._query(text)
        elif roll < 0.85:
            self._query(
                "range c:Cuboid, d:Cuboid retrieve c.CuboidID, d.CuboidID "
                f"where c.volume {rng.choice(['<', '<=', '>'])} d.volume"
            )
        elif roll < 0.95 and self.robots:
            self._query(
                "range c:Cuboid, r:Robot retrieve c.CuboidID, r.Name "
                f"where c.distance(r) <= {self._num(1, 40)}"
            )
        elif self._collections:
            collection_type = self.rng.choice(["Workpieces", "Valuables"])
            self._query(
                f"range c:Cuboid, w:{collection_type} "
                "retrieve c.CuboidID where c in w"
            )
        else:
            self._query("range c:Cuboid retrieve c.volume")

    # ==================================================================
    # Company domain
    # ==================================================================

    def _populate_company(self) -> None:
        rng = self.rng
        self.projects: list[str] = []
        self.project_programmers: dict[str, str] = {}
        for _ in range(rng.randint(2, 5)):
            self._new_project()
        self.departments: list[str] = []
        self.department_emps: dict[str, str] = {}
        self.employees: list[str] = []
        self.employee_history: dict[str, str] = {}
        self.jobs: list[str] = []
        emp_no = 0
        for _ in range(rng.randint(1, 3)):
            emps = self._label("es")
            self._emit(
                op="new_collection", label=emps, type="Employees", elements=[]
            )
            self._collections[emps] = "Employee"
            department = self._label("d")
            self._emit(
                op="new",
                label=department,
                type="Department",
                attrs={
                    "DName": f"D{self._counter}",
                    "DepNo": len(self.departments),
                    "Emps": self._ref(emps),
                },
            )
            self.departments.append(department)
            self.department_emps[department] = emps
            for _ in range(rng.randint(2, 4)):
                emp_no += 1
                employee = self._new_employee(emp_no)
                self._insert(emps, employee)
                for _ in range(rng.randint(0, 3)):
                    self._new_job(employee)
        deps = self._label("ds")
        self._emit(
            op="new_collection",
            label=deps,
            type="Departments",
            elements=list(self.departments),
        )
        projs = self._label("ps")
        self.company_projects = list(self.projects)
        self._emit(
            op="new_collection",
            label=projs,
            type="Projects",
            elements=list(self.projects),
        )
        self.company = self._label("co")
        self._emit(
            op="new",
            label=self.company,
            type="Company",
            attrs={
                "CName": "ACME",
                "Deps": self._ref(deps),
                "Projs": self._ref(projs),
            },
        )

    def _new_project(self) -> str:
        programmers = self._label("pg")
        self._emit(
            op="new_collection",
            label=programmers,
            type="Employees",
            elements=[],
        )
        self._collections[programmers] = "Employee"
        label = self._label("p")
        self._emit(
            op="new",
            label=label,
            type="Project",
            attrs={
                "PName": f"P{self._counter}",
                "Status": self._num(-1000, 1000),
                "Size": self.rng.randint(1_000, 100_000),
                "Programmers": self._ref(programmers),
            },
        )
        self.projects.append(label)
        self.project_programmers[label] = programmers
        return label

    def _new_employee(self, emp_no: int) -> str:
        history = self._label("jh")
        self._emit(
            op="new_collection", label=history, type="Jobs", elements=[]
        )
        self._collections[history] = "Job"
        label = self._label("e")
        self._emit(
            op="new",
            label=label,
            type="Employee",
            attrs={
                "Name": f"E{emp_no}",
                "EmpNo": emp_no,
                "Salary": self._num(30_000, 120_000),
                "JobHistory": self._ref(history),
            },
        )
        self.employees.append(label)
        self.employee_history[label] = history
        return label

    def _new_job(self, employee: str) -> str:
        rng = self.rng
        project = rng.choice(self.projects)
        label = self._label("j")
        self._emit(
            op="new",
            label=label,
            type="Job",
            attrs={
                "Proj": self._ref(project),
                "LinesOfCode": rng.randint(100, 20_000),
                "OnTime": rng.random() < 0.6,
                "WithinBudget": rng.random() < 0.6,
            },
        )
        self.jobs.append(label)
        self._insert(self.employee_history[employee], label)
        self._insert(self.project_programmers[project], employee)
        return label

    def _company_updates(self) -> list[tuple[float, object]]:
        return [
            (3.0, self._co_set_numeric),
            (1.5, self._co_set_flag),
            (1.0, self._co_collection_update),
            (0.8, self._co_new_job),
            (0.6, self._co_project_membership),
            (0.5, self._co_delete_job),
            (0.3, self._co_delete_employee),
        ]

    def _company_actions(self) -> list[tuple[float, object]]:
        updates = self._company_updates()
        return updates + [
            (3.0, self._co_query),
            (1.2, self._co_materialize),
            (0.8, lambda: self._batch_scope(updates + [(1.0, self._co_query)])),
            (0.4, self._quiesce),
            (0.25, self._checkpoint_recover),
        ]

    def _co_set_numeric(self) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.35 and self.jobs:
            self._emit(
                op="set", target=rng.choice(self.jobs), attr="LinesOfCode",
                value=rng.randint(100, 20_000),
            )
        elif roll < 0.6 and self.employees:
            self._emit(
                op="set", target=rng.choice(self.employees), attr="Salary",
                value=self._num(30_000, 120_000),
            )
        elif roll < 0.85:
            self._emit(
                op="set", target=rng.choice(self.projects), attr="Status",
                value=self._num(-1000, 1000),
            )
        else:
            self._emit(
                op="set", target=rng.choice(self.projects), attr="Size",
                value=rng.randint(1_000, 100_000),
            )

    def _co_set_flag(self) -> None:
        if not self.jobs:
            return
        self._emit(
            op="set",
            target=self.rng.choice(self.jobs),
            attr=self.rng.choice(["OnTime", "WithinBudget"]),
            value=self.rng.random() < 0.5,
        )

    def _co_collection_update(self) -> None:
        rng = self.rng
        if not self.employees:
            return
        department = rng.choice(self.departments)
        emps = self.department_emps[department]
        members = self._members_of(emps)
        outside = [e for e in self.employees if e not in members]
        if members and (not outside or rng.random() < 0.5):
            self._remove(emps, rng.choice(members))
        elif outside:
            self._insert(emps, rng.choice(outside))

    def _co_new_job(self) -> None:
        if self.employees:
            self._new_job(self.rng.choice(self.employees))

    def _co_project_membership(self) -> None:
        """``add_project`` / ``drop_project`` through the operation API."""
        rng = self.rng
        inside = [p for p in self.projects if p in self.company_projects]
        outside = [p for p in self.projects if p not in self.company_projects]
        if outside and rng.random() < 0.6:
            project = rng.choice(outside)
            self._emit(
                op="call", target=self.company, method="add_project",
                args=[self._ref(project)],
            )
            self.company_projects.append(project)
        elif len(inside) > 1:
            project = rng.choice(inside)
            self._emit(
                op="call", target=self.company, method="drop_project",
                args=[self._ref(project)],
            )
            self.company_projects.remove(project)

    def _co_delete_job(self) -> None:
        if len(self.jobs) <= 1:
            return
        job = self.rng.choice(self.jobs)
        self.jobs.remove(job)
        self._delete(job)

    def _co_delete_employee(self) -> None:
        if len(self.employees) <= 2:
            return
        employee = self.rng.choice(self.employees)
        self.employees.remove(employee)
        del self.employee_history[employee]
        self._delete(employee)

    def _co_materialize(self) -> None:
        rng = self.rng
        candidates = [
            ("range e:Employee materialize e.ranking", ("Employee.ranking",)),
            ("range j:Job materialize j.assessment", ("Job.assessment",)),
            ("range co:Company materialize co.matrix", ("Company.matrix",)),
            (f"range e:Employee materialize e.ranking "
             f"where e.Salary >= {self._num(40_000, 100_000)}",
             ("Employee.ranking",)),
            (f"range j:Job materialize j.assessment "
             f"where j.LinesOfCode < {rng.randint(5_000, 18_000)}",
             ("Job.assessment",)),
        ]
        text, fids = rng.choice(candidates)
        self._materialize(text, fids)

    def _co_predicate(self, var: str) -> str:
        rng = self.rng
        choices = {
            "e": [
                lambda: f"e.Salary {rng.choice(_COMPARISONS)} "
                        f"{self._num(30_000, 120_000)}",
                lambda: f"e.ranking {rng.choice(['<', '>=', '>'])} "
                        f"{self._num(0, 20)}",
                lambda: f"e.EmpNo {rng.choice(['=', '!=', '<='])} "
                        f"{rng.randint(1, 12)}",
            ],
            "j": [
                lambda: f"j.OnTime = {rng.choice(['true', 'false'])}",
                lambda: f"j.WithinBudget != {rng.choice(['true', 'false'])}",
                lambda: f"j.LinesOfCode {rng.choice(_COMPARISONS)} "
                        f"{rng.randint(100, 20_000)}",
                lambda: f"j.Proj.Size > {rng.randint(1_000, 90_000)}",
            ],
            "p": [
                lambda: f"p.Status {rng.choice(_COMPARISONS)} "
                        f"{self._num(-900, 900)}",
                lambda: f"p.Size / 2 < {rng.randint(1_000, 50_000)}",
                lambda: f"p.PName != 'P1'",
            ],
        }
        parts = [rng.choice(choices[var])()]
        if rng.random() < 0.35:
            connective = rng.choice([" and ", " or "])
            parts.append(rng.choice(choices[var])())
            combined = connective.join(parts)
            return f"not ({combined})" if rng.random() < 0.2 else combined
        return parts[0]

    def _co_query(self) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < 0.25:
            projection = rng.choice(
                ["e.ranking", "e.Salary", "e.EmpNo, e.ranking", "e.Name"]
            )
            text = f"range e:Employee retrieve {projection}"
            if rng.random() < 0.6:
                text += f" where {self._co_predicate('e')}"
            self._query(text)
        elif roll < 0.5:
            projection = rng.choice(
                ["j.assessment", "j.LinesOfCode", "j.Proj.PName"]
            )
            text = f"range j:Job retrieve {projection}"
            if rng.random() < 0.6:
                text += f" where {self._co_predicate('j')}"
            self._query(text)
        elif roll < 0.65:
            self._query(
                f"range p:Project retrieve p.PName "
                f"where {self._co_predicate('p')}"
            )
        elif roll < 0.8:
            aggregate = rng.choice(_AGGREGATES)
            argument = rng.choice(
                ["e.Salary", "e.ranking", "e.EmpNo"]
            )
            self._query(
                f"range e:Employee retrieve {aggregate}({argument})"
            )
        elif roll < 0.9:
            self._query(
                "range e:Employee, d:Department retrieve e.EmpNo, d.DName "
                "where e in d.Emps"
            )
        else:
            self._query("range p:Person retrieve p.Name")

    # -- shared ---------------------------------------------------------

    def _broad_query(self) -> str:
        if self.domain == "geometry":
            return "range c:Cuboid retrieve c.CuboidID, c.volume, c.weight"
        return "range e:Employee retrieve e.EmpNo, e.ranking"
