"""Storage-fault fuzzing: one random transient I/O fault per script.

The differential oracle in :mod:`repro.fuzz.oracle` assumes a healthy
disk; this axis assumes a *flaky* one.  Each generated script replays
against a WAL-attached base whose log files fail exactly one ``write``,
``flush`` or ``fsync`` call (drawn deterministically from the fault
seed, optionally as a torn partial write), and the oracle then checks
the robustness contract instead of the reference diff:

1. **Declared, never silent** — the only way an injected fault may
   surface is a :class:`~repro.errors.StorageUnavailableError` on the
   update that could not be logged; any other exception is a failure.
2. **Re-arm** — after the (transient) fault, a probe append must bring
   the base back to HEALTHY; ending DEGRADED means the probe path is
   broken.  FAILED is accepted only for the declared unrecoverable
   pairing (WAL truncation failing behind a durable checkpoint).
3. **Def. 3.2 invariants** hold on the live base after it settles.
4. **Recovery equivalence** — rebuilding a fresh base from the last
   checkpoint plus the surviving log reproduces the live object graph
   exactly: no acknowledged update lost, no refused update resurrected.

Entry point: ``python -m repro.fuzz --io-faults`` (the nightly CI axis).
"""

from __future__ import annotations

import os
import tempfile
import time
import traceback
from typing import Callable, Sequence

from repro.core.health import HealthState
from repro.errors import StorageUnavailableError
from repro.fuzz.generator import generate_script
from repro.fuzz.oracle import (
    FuzzReport,
    OracleConfig,
    OracleFailure,
    configs_for_script,
)
from repro.fuzz.replay import SCHEMA_BUILDERS, Replayer, check_invariants
from repro.fuzz.script import Script
from repro.gom.database import ObjectBase
from repro.persistence import base_state, checkpoint, recover
from repro.storage.faultfs import FaultPlan, wal_file_factory
from repro.storage.wal import ShardedWriteAheadLog, WriteAheadLog
from repro.util.rng import DeterministicRng

#: The fault sites a script may draw.  ``close`` is excluded: disposal
#: faults are declared harmless (appends are durable at append time)
#: and would never fire mid-script anyway.
_FAULT_OPS = ("write", "flush", "fsync")

#: Upper bound on the drawn call index.  Small scripts may never reach
#: it — a fault that does not fire degrades the run to a clean replay,
#: which must still pass the recovery-equivalence check.
_MAX_FAULT_INDEX = 40


def plan_for_seed(fault_seed: int) -> FaultPlan:
    """One deterministic transient fault drawn from ``fault_seed``."""
    rng = DeterministicRng(fault_seed)
    op = rng.choice(_FAULT_OPS)
    at = rng.randint(0, _MAX_FAULT_INDEX)
    plan = FaultPlan()
    if op == "write" and rng.random() < 0.5:
        plan.fail(op, at=at, mode="torn", torn_bytes=rng.randint(1, 7))
    else:
        plan.fail(op, at=at, mode="once")
    return plan


class IoFaultReplayer(Replayer):
    """Replay one script against a base whose WAL suffers ``plan``.

    Every generation of the base (the initial one, plus each rebuild a
    ``checkpoint_recover`` step performs) gets its own log file and a
    *baseline* checkpoint, so the final recovery-equivalence check
    always has a coherent (checkpoint, log) pair to rebuild from.
    """

    def __init__(
        self,
        script: Script,
        *,
        config=None,
        plan: FaultPlan,
        workdir: str,
    ) -> None:
        super().__init__(script, config=config, materialized=True)
        self.plan = plan
        self.refusals: list[tuple[str, str]] = []
        self._ghosts: set = set()
        self._workdir = workdir
        self._generation = 0
        self._ckpt_path: str | None = None
        self._wal_path: str | None = None
        self._needs_baseline = False
        self._anchored = False

    # -- plumbing -------------------------------------------------------

    def _build_db(self) -> ObjectBase:
        db = super()._build_db()
        self._generation += 1
        self._wal_path = os.path.join(
            self._workdir, f"wal-{self._generation}.log"
        )
        factory = wal_file_factory(self.plan)
        if self.config.shards > 1:
            wal = ShardedWriteAheadLog(
                self._wal_path,
                self.config.shards,
                fsync=True,
                file_factory=factory,
            )
        else:
            wal = WriteAheadLog(
                self._wal_path, fsync=True, file_factory=factory
            )
        db.attach_wal(wal)
        db.health.rearm_cooldown = 0.0
        self._needs_baseline = True
        return db

    def _baseline(self) -> None:
        """Anchor recovery: checkpoint the current generation.

        A fault can hit the baseline itself (its WAL truncation goes
        through the injected files); the run then continues un-anchored
        and the recovery-equivalence check is skipped for this script.
        """
        self._needs_baseline = False
        self._anchored = False
        self._ckpt_path = os.path.join(
            self._workdir, f"ckpt-{self._generation}.json"
        )
        checkpoint(self.db, self._ckpt_path)
        self._anchored = True

    @staticmethod
    def _references(step: dict) -> set:
        """Every label a step resolves through ``_oid``/``_value``."""
        refs: set = set()

        def scan(value) -> None:
            if isinstance(value, dict):
                if set(value) == {"$ref"}:
                    refs.add(value["$ref"])
                else:
                    for inner in value.values():
                        scan(inner)
            elif isinstance(value, (list, tuple)):
                for inner in value:
                    scan(inner)

        if "target" in step:
            refs.add(step["target"])
        for label in step.get("elements", ()) or ():
            refs.add(label)
        scan(step.get("attrs"))
        scan(step.get("args"))
        scan(step.get("value"))
        return refs

    def _apply(self, step: dict) -> None:
        # A refused ``new`` never bound its label; every later step
        # referencing it is a *cascade* of the declared refusal, not a
        # malformed script — skip it (and propagate the ghost through
        # creations built on top of it).
        if self._ghosts and self._references(step) & self._ghosts:
            if "label" in step:
                self._ghosts.add(step["label"])
            return
        try:
            if self._needs_baseline:
                self._baseline()
            super()._apply(step)
        except StorageUnavailableError as exc:
            # The declared refusal: the update could not be logged and
            # was not applied.  Nothing to roll back; keep replaying.
            self.refusals.append((step.get("op", "?"), str(exc)))
            if step.get("op") == "batch_begin":
                self._batch = None  # the scope never opened
            if "label" in step:
                self._ghosts.add(step["label"])
            if step.get("op") in ("insert", "remove"):
                # The membership update did not happen, so the script's
                # hygiene invariants about this element (removed from
                # every collection before its delete, present when
                # removed) no longer hold — retire the label.
                value = step.get("value")
                if isinstance(value, dict) and set(value) == {"$ref"}:
                    self._ghosts.add(value["$ref"])

    def _op_batch_end(self, step: dict) -> None:
        if self._batch is None and self.refusals:
            return  # the matching batch_begin was refused
        super()._op_batch_end(step)

    def _op_checkpoint_recover(self, step: dict) -> None:
        super()._op_checkpoint_recover(step)
        # Re-anchor at the rebuilt base (its fresh WAL starts empty).
        self._baseline()

    def _op_quiesce(self, step: dict) -> None:
        # A drain sweep is the natural place to notice the disk healed;
        # without the probe a degraded pool would just time the quiesce
        # out (drains are paused while read-only).
        self._probe()
        if self.db.health.writable:
            super()._op_quiesce(step)

    # -- the robustness oracle ------------------------------------------

    def _settle(self) -> None:
        self._probe()
        if self.db.health.writable:
            super()._settle()
        self._verify_health()
        self._verify_recovery()

    def _probe(self) -> None:
        """One explicit re-arm attempt before the verdict: a pair of
        replay-neutral transaction markers through the ordinary logging
        funnel (repair + append + re-arm)."""
        health = self.db.health
        if health.state is not HealthState.DEGRADED_READ_ONLY:
            return
        try:
            self.db._wal_log({"kind": "txn_begin"})
            self.db._wal_log({"kind": "txn_abort"})
        except StorageUnavailableError as exc:
            self.refusals.append(("probe", str(exc)))

    def _verify_health(self) -> None:
        state = self.db.health.state
        if state is HealthState.HEALTHY:
            return
        if state is HealthState.FAILED and self.refusals:
            # Declared terminal (truncate-behind-checkpoint); acceptable
            # as long as the failure surfaced as a refusal.
            return
        self._result.violations.append(
            f"base ended {state.value} after a single transient fault "
            f"(refusals: {self.refusals!r})"
        )

    def _verify_recovery(self) -> None:
        if not self._anchored:
            return
        if self.db.health.state is HealthState.FAILED:
            # Declared unrecoverable: a WAL truncation failed behind a
            # durable checkpoint, so the on-disk (checkpoint, log) pair
            # is explicitly untrustworthy — that is what FAILED *means*,
            # and _verify_health already required the refusals that
            # declared it.  Demanding recovery equivalence here would
            # test the absence of the very state the machine reported.
            return
        db = self.db
        restrictions = {}
        if db.has_gmr_manager:
            for gmr in db.gmr_manager.gmrs():
                if gmr.restriction is not None:
                    restrictions[gmr.name] = gmr.restriction
        live_objects = base_state(db)["objects"]
        rebuilt = ObjectBase(config=self.config)
        try:
            SCHEMA_BUILDERS[self.script.domain](rebuilt)
            recover(
                rebuilt,
                self._ckpt_path,
                self._wal_path,
                restrictions=restrictions or None,
            )
            if base_state(rebuilt)["objects"] != live_objects:
                self._result.violations.append(
                    "recovered object graph diverges from the live base "
                    "(acknowledged update lost or refused update "
                    "resurrected)"
                )
            if rebuilt.has_gmr_manager:
                self._result.violations.extend(
                    f"recovered base: {violation}"
                    for violation in check_invariants(rebuilt)
                )
        finally:
            rebuilt.close()


def check_script_with_iofault(
    script: Script, config: OracleConfig, fault_seed: int
) -> tuple[list[OracleFailure], bool]:
    """Replay ``script`` under one injected fault.

    Returns ``(failures, fired)`` — ``fired`` reports whether the drawn
    fault was actually reached (a short script may never make the
    injected call index; that run still checks recovery equivalence,
    but only as a clean replay).
    """
    plan = plan_for_seed(fault_seed)
    failures: list[OracleFailure] = []
    with tempfile.TemporaryDirectory(prefix="repro-iofuzz-") as workdir:
        replayer = IoFaultReplayer(
            script, config=config.to_config(), plan=plan, workdir=workdir
        )
        try:
            result = replayer.run()
        except Exception:
            failures.append(
                OracleFailure(
                    script, config, "exception", traceback.format_exc()
                )
            )
            return failures, bool(plan.fired)
    for violation in result.violations:
        failures.append(OracleFailure(script, config, "invariant", violation))
    return failures, bool(plan.fired)


def run_iofault_fuzz(
    count: int,
    *,
    base_seed: int = 0,
    domains: Sequence[str] = ("geometry", "company"),
    time_budget: float | None = None,
    stop_on_first: bool = False,
    progress: Callable[[str], None] | None = None,
) -> FuzzReport:
    """The ``--io-faults`` campaign: ``count`` scripts, one fault each.

    Script ``i`` uses seed ``base_seed + i`` for both the workload and
    the fault draw, and takes the first configuration of the standard
    rotating window — deterministic end to end, like :func:`run_fuzz`.
    """
    report = FuzzReport()
    fired = 0
    started = time.monotonic()
    for i in range(count):
        if time_budget is not None and time.monotonic() - started > time_budget:
            if progress is not None:
                progress(
                    f"time budget of {time_budget:.0f}s exhausted after "
                    f"{report.scripts_run} scripts"
                )
            break
        seed = base_seed + i
        domain = domains[i % len(domains)]
        script = generate_script(seed, domain)
        config = configs_for_script(i, 1)[0]
        failures, did_fire = check_script_with_iofault(script, config, seed)
        report.scripts_run += 1
        report.configs_run += 1
        fired += int(did_fire)
        if failures:
            report.failures.extend(failures)
            if progress is not None:
                for failure in failures:
                    progress(str(failure))
            if stop_on_first:
                break
        elif progress is not None and (i + 1) % 25 == 0:
            progress(
                f"{i + 1}/{count} scripts ok "
                f"({fired} injected faults fired)"
            )
    if progress is not None:
        # No silent coverage gaps: say how many draws actually bit.
        progress(
            f"{fired}/{report.scripts_run} scripts reached their "
            f"injected fault"
        )
    report.elapsed = time.monotonic() - started
    return report
