"""The differential oracle: one script, many configurations, one truth.

Each script is replayed once against an *unmaterialized* reference base
(``materialize`` steps skipped — every query evaluates from scratch)
and then against a rotating subset of the full configuration matrix:

    level × strategy × batching × workers × plans × maintenance × layout × shards
    {NAIVE, SCHEMA_DEP,  {IMMEDIATE, {on,off} {0, 2} {on,off} {recompute, {rows,     {1, 4}
     OBJ_DEP,             LAZY,                                delta}      columnar}
     INFO_HIDING}         DEFERRED}

(``NONE`` never notifies and ``SNAPSHOT`` is stale by design — both
would trivially diverge, so neither belongs in a correctness oracle.)

A configuration *fails* when any query result differs from the
reference, the final object extensions differ, a Def. 3.2 /
lockstep violation is found, or the replay raises.  Failures carry
enough context (seed, config, detail) to reproduce and minimize.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Sequence

from repro.core.strategies import Strategy
from repro.fuzz.generator import generate_script
from repro.fuzz.replay import Replayer, ReplayResult, results_equal
from repro.fuzz.script import Script
from repro.gom.instrumentation import InstrumentationLevel
from repro.observe.config import MaterializationConfig

_LEVELS = (
    InstrumentationLevel.NAIVE,
    InstrumentationLevel.SCHEMA_DEP,
    InstrumentationLevel.OBJ_DEP,
    InstrumentationLevel.INFO_HIDING,
)
_STRATEGIES = (Strategy.IMMEDIATE, Strategy.LAZY, Strategy.DEFERRED)


@dataclass(frozen=True)
class OracleConfig:
    """One point of the differential matrix."""

    level: InstrumentationLevel
    strategy: Strategy
    batching: bool
    workers: int
    plans: bool
    shards: int = 1
    maintenance: str = "compensate"
    layout: str = "rows"

    @property
    def name(self) -> str:
        return (
            f"{self.level.name.lower()}/{self.strategy.name.lower()}"
            f"/batch={'on' if self.batching else 'off'}"
            f"/workers={self.workers}"
            f"/plans={'on' if self.plans else 'off'}"
            f"/maint={self.maintenance}"
            f"/layout={self.layout}"
            f"/shards={self.shards}"
        )

    def to_config(self) -> MaterializationConfig:
        return MaterializationConfig(
            level=self.level,
            strategy=self.strategy,
            batching=self.batching,
            workers=self.workers,
            invalidation_plans=self.plans,
            shards=self.shards,
            maintenance=self.maintenance,
            layout=self.layout,
        )


@dataclass
class OracleFailure:
    """One confirmed divergence (or crash) on one configuration."""

    script: Script
    config: OracleConfig | None
    kind: str  # "exception" | "query" | "extensions" | "invariant"
    detail: str

    def __str__(self) -> str:
        where = self.config.name if self.config else "reference"
        return (
            f"[seed={self.script.seed} domain={self.script.domain} "
            f"config={where}] {self.kind}: {self.detail}"
        )


def all_configs() -> tuple[OracleConfig, ...]:
    """The full matrix (768 configurations), in a fixed order.

    The shards axis is the innermost factor, so the first half of every
    rotating window pairs each ``shards=1`` point with its ``shards=4``
    sibling — a corpus replayed on any contiguous slice exercises both
    the unsharded and the sharded engine for the same level/strategy
    combination.  The layout axis sits just outside it: ``"rows"`` is
    the classic per-row GMR store, ``"columnar"`` the array-backed
    struct-of-arrays store — any contiguous 4-wide window pairs each
    rows point with its columnar sibling, so a smoke run differentially
    exercises both physical layouts for the same logical configuration.
    Outside that sits maintenance: ``"recompute"`` is pure
    invalidate-then-recompute, ``"delta"`` patches aggregate GMR
    entries in place via the delta engine (the replayer declares the
    domains' default deltas) — both must agree with the unmaterialized
    reference under the Def. 3.2 oracle.
    """
    return tuple(
        OracleConfig(
            level=level,
            strategy=strategy,
            batching=batching,
            workers=workers,
            plans=plans,
            maintenance=maintenance,
            layout=layout,
            shards=shards,
        )
        for level, strategy, batching, workers, plans, maintenance, layout,
        shards in product(
            _LEVELS,
            _STRATEGIES,
            (True, False),
            (0, 2),
            (True, False),
            ("recompute", "delta"),
            ("rows", "columnar"),
            (1, 4),
        )
    )


def configs_for_script(index: int, per_script: int = 4) -> tuple[OracleConfig, ...]:
    """A rotating window over the matrix.

    Consecutive script indices cover disjoint (mod 768) windows, so a
    ~192-script smoke run at the default width visits every
    configuration at least once.
    """
    matrix = all_configs()
    start = index * per_script
    return tuple(matrix[(start + j) % len(matrix)] for j in range(per_script))


def _replay(script: Script, config: OracleConfig | None) -> ReplayResult:
    if config is None:
        return Replayer(script, materialized=False).run()
    return Replayer(script, config=config.to_config()).run()


def check_script(
    script: Script,
    configs: Sequence[OracleConfig] | None = None,
    *,
    stop_on_first: bool = False,
) -> list[OracleFailure]:
    """Replay ``script`` differentially; return every confirmed failure.

    :class:`~repro.fuzz.replay.ScriptError` propagates — a malformed
    script is the *caller's* bug (or, during minimization, an invalid
    candidate), never a system-under-test failure.
    """
    if configs is None:
        configs = all_configs()
    reference = _replay(script, None)
    failures: list[OracleFailure] = []
    for config in configs:
        try:
            result = _replay(script, config)
        except Exception:
            failures.append(
                OracleFailure(
                    script, config, "exception", traceback.format_exc()
                )
            )
            if stop_on_first:
                return failures
            continue
        failures.extend(_compare(script, config, reference, result))
        if failures and stop_on_first:
            return failures
    return failures


def _compare(
    script: Script,
    config: OracleConfig,
    reference: ReplayResult,
    result: ReplayResult,
) -> list[OracleFailure]:
    failures: list[OracleFailure] = []
    for violation in result.violations:
        failures.append(OracleFailure(script, config, "invariant", violation))
    if len(result.queries) != len(reference.queries):
        failures.append(
            OracleFailure(
                script,
                config,
                "query",
                f"recorded {len(result.queries)} query results, "
                f"reference recorded {len(reference.queries)}",
            )
        )
        return failures
    for i, (got, expected) in enumerate(
        zip(result.queries, reference.queries)
    ):
        if not results_equal(got, expected):
            failures.append(
                OracleFailure(
                    script,
                    config,
                    "query",
                    f"query #{i} diverged:\n  got:      {got!r}\n"
                    f"  expected: {expected!r}",
                )
            )
    if not results_equal(
        {"extensions": result.extensions},
        {"extensions": reference.extensions},
    ):
        failures.append(
            OracleFailure(
                script,
                config,
                "extensions",
                "final object extensions diverged from the "
                "unmaterialized reference",
            )
        )
    return failures


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` campaign."""

    scripts_run: int = 0
    configs_run: int = 0
    failures: list[OracleFailure] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def run_fuzz(
    count: int,
    *,
    base_seed: int = 0,
    domains: Sequence[str] = ("geometry", "company"),
    configs_per_script: int = 4,
    time_budget: float | None = None,
    stop_on_first: bool = False,
    progress: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Generate-and-check ``count`` scripts; honour an optional time box.

    Script ``i`` uses seed ``base_seed + i``, alternates domains, and
    is checked against :func:`configs_for_script`'s rotating window —
    deterministic end to end, so any reported failure reproduces from
    ``(base_seed + i, domain)`` alone.
    """
    report = FuzzReport()
    started = time.monotonic()
    for i in range(count):
        if time_budget is not None and time.monotonic() - started > time_budget:
            if progress is not None:
                progress(
                    f"time budget of {time_budget:.0f}s exhausted after "
                    f"{report.scripts_run} scripts"
                )
            break
        seed = base_seed + i
        domain = domains[i % len(domains)]
        script = generate_script(seed, domain)
        configs = configs_for_script(i, configs_per_script)
        failures = check_script(script, configs, stop_on_first=stop_on_first)
        report.scripts_run += 1
        report.configs_run += len(configs)
        if failures:
            report.failures.extend(failures)
            if progress is not None:
                for failure in failures:
                    progress(str(failure))
            if stop_on_first:
                break
        elif progress is not None and (i + 1) % 25 == 0:
            progress(f"{i + 1}/{count} scripts ok")
    report.elapsed = time.monotonic() - started
    return report
