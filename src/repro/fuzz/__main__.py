"""Command-line entry point: ``python -m repro.fuzz``.

Examples::

    # CI smoke: 200 scripts, rotating 4-wide config window
    python -m repro.fuzz --count 200 --seed 0

    # Nightly: time-boxed, minimize and save any failures
    python -m repro.fuzz --count 100000 --seed 20260808 \\
        --time-budget 1200 --minimize --out fuzz-failures

    # Reproduce one script against the full 192-config matrix
    python -m repro.fuzz --count 1 --seed 1234 --domain company --all-configs
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.fuzz.generator import generate_script
from repro.fuzz.minimize import minimize_script
from repro.fuzz.oracle import (
    all_configs,
    check_script,
    run_fuzz,
)
from repro.fuzz.script import script_to_json


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential GOMql fuzzer (see docs/TESTING.md).",
    )
    parser.add_argument("--count", type=int, default=50,
                        help="number of scripts to generate (default 50)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; script i uses seed+i (default 0)")
    parser.add_argument("--domain", choices=["geometry", "company", "both"],
                        default="both")
    parser.add_argument("--configs-per-script", type=int, default=4,
                        help="width of the rotating config window (default 4)")
    parser.add_argument("--all-configs", action="store_true",
                        help="check every script against the full 192-config "
                             "matrix (slow; for reproductions)")
    parser.add_argument("--time-budget", type=float, default=None,
                        help="stop generating after this many seconds")
    parser.add_argument("--minimize", action="store_true",
                        help="delta-debug each failing script before saving")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write failing (minimized) scripts as JSON here")
    parser.add_argument("--stop-on-first", action="store_true",
                        help="abort the campaign at the first failure")
    parser.add_argument("--io-faults", action="store_true",
                        help="inject one random transient storage fault "
                             "per script and check the robustness oracle "
                             "(declared degradation, probe re-arm, "
                             "recovery equivalence) instead of the "
                             "reference diff")
    args = parser.parse_args(argv)

    domains = (
        ("geometry", "company") if args.domain == "both" else (args.domain,)
    )
    if args.io_faults:
        from repro.fuzz.iofaults import run_iofault_fuzz

        report = run_iofault_fuzz(
            args.count,
            base_seed=args.seed,
            domains=domains,
            time_budget=args.time_budget,
            stop_on_first=args.stop_on_first,
            progress=lambda line: print(line, flush=True),
        )
    elif args.all_configs:
        report = _run_all_configs(args, domains)
    else:
        report = run_fuzz(
            args.count,
            base_seed=args.seed,
            domains=domains,
            configs_per_script=args.configs_per_script,
            time_budget=args.time_budget,
            stop_on_first=args.stop_on_first,
            progress=lambda line: print(line, flush=True),
        )

    print(
        f"ran {report.scripts_run} scripts / {report.configs_run} replays "
        f"in {report.elapsed:.1f}s: "
        f"{'OK' if report.ok else f'{len(report.failures)} failure(s)'}",
        flush=True,
    )
    if report.ok:
        return 0

    failing_scripts = {}
    for failure in report.failures:
        failing_scripts.setdefault(
            (failure.script.seed, failure.script.domain), failure.script
        )
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    for (seed, domain), script in sorted(failing_scripts.items()):
        if args.minimize and args.io_faults:
            print("(--minimize is ignored with --io-faults: the fault "
                  "draw depends on the script seed, so failures "
                  "reproduce from the seed alone)", flush=True)
        elif args.minimize:
            print(f"minimizing seed={seed} domain={domain} "
                  f"({len(script.steps)} steps)...", flush=True)
            script = minimize_script(
                script,
                all_configs() if args.all_configs else None,
            )
            print(f"  -> {len(script.steps)} steps", flush=True)
        if args.out:
            path = os.path.join(args.out, f"{domain}-seed{seed}.json")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(script_to_json(script))
                fh.write("\n")
            print(f"  saved {path}", flush=True)
    return 1


def _run_all_configs(args, domains):
    """--all-configs: every script against the whole matrix."""
    from repro.fuzz.oracle import FuzzReport
    import time

    report = FuzzReport()
    matrix = all_configs()
    started = time.monotonic()
    for i in range(args.count):
        if (
            args.time_budget is not None
            and time.monotonic() - started > args.time_budget
        ):
            break
        seed = args.seed + i
        domain = domains[i % len(domains)]
        script = generate_script(seed, domain)
        failures = check_script(
            script, matrix, stop_on_first=args.stop_on_first
        )
        report.scripts_run += 1
        report.configs_run += len(matrix)
        for failure in failures:
            print(str(failure), flush=True)
        report.failures.extend(failures)
        if failures and args.stop_on_first:
            break
    report.elapsed = time.monotonic() - started
    return report


if __name__ == "__main__":
    sys.exit(main())
