"""Replay a fuzz script into a live object base.

The replayer is deliberately dumb: it applies steps in order through
the public :class:`~repro.gom.database.ObjectBase` API, resolving
labels to OIDs as objects are created.  Structural problems — a label
that was never created, an unbalanced batch scope, a checkpoint inside
a batch — raise :class:`ScriptError`, which the minimizer treats as
"this candidate subset is not a valid script" (distinct from a real
library failure, which is what we are hunting).
"""

from __future__ import annotations

import math
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any

from repro.domains.company import build_company_schema, define_company_deltas
from repro.domains.geometry import build_geometry_schema, define_geometry_deltas
from repro.errors import QueryError
from repro.fuzz.script import Script
from repro.gom.database import ObjectBase
from repro.gom.handles import Handle
from repro.gom.oid import Oid
from repro.observe.config import MaterializationConfig

SCHEMA_BUILDERS = {
    "geometry": build_geometry_schema,
    "company": build_company_schema,
}

#: Default delta declarations per domain — applied after each
#: ``materialize`` step (and after a recovery) when the configuration
#: runs ``maintenance="delta"``, so the fuzz axis actually exercises
#: the delta engine against the unmaterialized reference.
DELTA_BUILDERS = {
    "geometry": define_geometry_deltas,
    "company": define_company_deltas,
}

#: Wall-clock budget for draining worker pools at settle points.
QUIESCE_TIMEOUT = 30.0


class ScriptError(Exception):
    """The script itself is malformed (not a system-under-test failure)."""


@dataclass
class ReplayResult:
    """Everything the differential oracle compares."""

    #: One canonicalized entry per ``query`` step, in script order:
    #: ``{"kind": "rows", "rows": [...]}`` (multiset-sorted),
    #: ``{"kind": "scalar", "value": ...}`` or ``{"kind": "error"}``.
    queries: list[dict] = field(default_factory=list)
    #: Canonical digest of the final object graph (labels, not OIDs).
    extensions: list[dict] = field(default_factory=list)
    #: Def. 3.2 / lockstep violations found after the final settle.
    violations: list[str] = field(default_factory=list)


def _approx_equal(a: Any, b: Any) -> bool:
    """Recursive equality with float tolerance.

    Per-row values are bitwise identical across replays (same pure
    functions over the same object states); only *accumulated* floats
    (aggregate sums over differently-ordered domains) may drift by an
    ulp, which is what the tolerance absorbs.

    NaN compares equal to NaN here.  Two replays of the same script
    produce *distinct* NaN objects; ``math.isclose(nan, nan)`` is False,
    so without the explicit check an aggregate that legitimately yields
    NaN on both sides would be reported as a divergence.
    """
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            _approx_equal(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(
            _approx_equal(v, b[k]) for k, v in a.items()
        )
    return a == b


def results_equal(a: dict, b: dict) -> bool:
    """Compare two canonical query-result entries."""
    if a == b:
        return True
    return _approx_equal(a, b)


class Replayer:
    """Replay one script into a fresh object base.

    ``materialized=False`` skips every ``materialize`` step — the
    unmaterialized reference side of the differential harness.
    """

    def __init__(
        self,
        script: Script,
        *,
        config: MaterializationConfig | None = None,
        materialized: bool = True,
    ) -> None:
        if script.domain not in SCHEMA_BUILDERS:
            raise ScriptError(f"unknown domain {script.domain!r}")
        self.script = script
        self.config = config or MaterializationConfig()
        self.materialized = materialized
        self.db: ObjectBase | None = None
        self._labels: dict[str, Oid] = {}
        self._label_of: dict[Oid, str] = {}
        self._batch = None
        self._result = ReplayResult()

    # -- label / value resolution --------------------------------------

    def _oid(self, label: str) -> Oid:
        try:
            return self._labels[label]
        except KeyError:
            raise ScriptError(f"unknown label {label!r}") from None

    def _handle(self, label: str) -> Handle:
        return self.db.handle(self._oid(label))

    def _value(self, raw: Any) -> Any:
        """Decode a step value: ``{"$ref": label}`` or a JSON scalar."""
        if isinstance(raw, dict):
            if set(raw) == {"$ref"}:
                return self._handle(raw["$ref"])
            raise ScriptError(f"unintelligible value {raw!r}")
        return raw

    # -- canonicalization ----------------------------------------------

    def _canonical(self, value: Any) -> Any:
        if isinstance(value, Handle):
            value = value.oid
        if isinstance(value, Oid):
            label = self._label_of.get(value)
            return f"@{label}" if label is not None else f"@oid:{value.value}"
        if isinstance(value, (list, tuple)):
            return [self._canonical(item) for item in value]
        if isinstance(value, (set, frozenset)):
            items = [self._canonical(item) for item in value]
            items.sort(key=repr)
            return {"$set": items}
        if isinstance(value, float) and math.isnan(value):
            # Canonical NaN token: distinct NaN objects are unequal (and
            # container equality's identity shortcut makes the result
            # depend on *which* NaN object ended up where), so digests
            # holding raw NaN floats would never compare stably.
            return {"$nan": True}
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        if hasattr(value, "dep") and hasattr(value, "proj"):
            # MatrixLine (company domain) — flatten to a plain record.
            return {
                "$line": [
                    self._canonical(value.dep),
                    self._canonical(value.proj),
                    self._canonical(value.emps),
                ]
            }
        return repr(value)

    def _bind(self, label: str, oid: Oid) -> None:
        self._labels[label] = oid
        self._label_of[oid] = label

    # -- lifecycle ------------------------------------------------------

    def _build_db(self) -> ObjectBase:
        db = ObjectBase(config=self.config)
        SCHEMA_BUILDERS[self.script.domain](db)
        return db

    def run(self) -> ReplayResult:
        self.db = self._build_db()
        try:
            for step in self.script.steps:
                self._apply(step)
            if self._batch is not None:
                raise ScriptError("unclosed batch scope at end of script")
            self._settle()
            if self.materialized and self.db.has_gmr_manager:
                self._result.violations.extend(check_invariants(self.db))
            self._result.extensions = self._extensions_digest()
            return self._result
        finally:
            db, self.db = self.db, None
            if db is not None:
                db.close()

    def _settle(self) -> None:
        if not self.db.quiesce(QUIESCE_TIMEOUT):
            self._result.violations.append(
                f"quiesce did not settle within {QUIESCE_TIMEOUT}s"
            )

    def _extensions_digest(self) -> list[dict]:
        digest = []
        for obj in sorted(
            self.db.objects.iter_objects(), key=lambda o: o.oid.value
        ):
            digest.append(
                {
                    "object": self._canonical(obj.oid),
                    "type": obj.type_name,
                    "data": (
                        {
                            attr: self._canonical(value)
                            for attr, value in sorted(obj.data.items())
                        }
                        if obj.data is not None
                        else None
                    ),
                    "elements": (
                        sorted(
                            (self._canonical(e) for e in obj.elements),
                            key=repr,
                        )
                        if obj.elements is not None
                        else None
                    ),
                }
            )
        return digest

    # -- step dispatch --------------------------------------------------

    def _apply(self, step: dict) -> None:
        op = step.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ScriptError(f"unknown step op {op!r}")
        handler(step)

    def _op_new(self, step: dict) -> None:
        attrs = {
            name: self._value(raw) for name, raw in step.get("attrs", {}).items()
        }
        handle = self.db.new(step["type"], **attrs)
        self._bind(step["label"], handle.oid)

    def _op_new_collection(self, step: dict) -> None:
        elements = [self._handle(label) for label in step.get("elements", [])]
        handle = self.db.new_collection(step["type"], elements)
        self._bind(step["label"], handle.oid)

    def _op_set(self, step: dict) -> None:
        self.db.set_attr(
            self._oid(step["target"]), step["attr"], self._value(step["value"])
        )

    def _op_insert(self, step: dict) -> None:
        self.db.collection_insert(
            self._oid(step["target"]), self._value(step["value"])
        )

    def _op_remove(self, step: dict) -> None:
        self.db.collection_remove(
            self._oid(step["target"]), self._value(step["value"])
        )

    def _op_delete(self, step: dict) -> None:
        self.db.delete(self._oid(step["target"]))

    def _op_call(self, step: dict) -> None:
        handle = self._handle(step["target"])
        arguments = [self._value(raw) for raw in step.get("args", [])]
        getattr(handle, step["method"])(*arguments)

    def _op_materialize(self, step: dict) -> None:
        if self.materialized:
            self.db.query(step["text"])
            self._define_deltas()

    def _define_deltas(self) -> None:
        if (
            self.config.maintenance == "delta"
            and self.db.has_gmr_manager
            and self.script.domain in DELTA_BUILDERS
        ):
            DELTA_BUILDERS[self.script.domain](self.db)

    def _op_query(self, step: dict) -> None:
        try:
            result = self.db.query(step["text"])
        except QueryError:
            self._result.queries.append({"kind": "error"})
            return
        if isinstance(result, list):
            rows = [self._canonical(row) for row in result]
            rows.sort(key=repr)
            self._result.queries.append({"kind": "rows", "rows": rows})
        else:
            self._result.queries.append(
                {"kind": "scalar", "value": self._canonical(result)}
            )

    def _op_batch_begin(self, step: dict) -> None:
        if self._batch is not None:
            raise ScriptError("nested batch_begin")
        self._batch = self.db.batch()
        self._batch.__enter__()

    def _op_batch_end(self, step: dict) -> None:
        if self._batch is None:
            raise ScriptError("batch_end without batch_begin")
        scope, self._batch = self._batch, None
        scope.__exit__(None, None, None)

    def _op_quiesce(self, step: dict) -> None:
        self.db.quiesce(QUIESCE_TIMEOUT)

    def _op_checkpoint_recover(self, step: dict) -> None:
        if self._batch is not None:
            raise ScriptError("checkpoint_recover inside an open batch")
        from repro.persistence import checkpoint, recover

        restrictions = {}
        if self.db.has_gmr_manager:
            for gmr in self.db.gmr_manager.gmrs():
                if gmr.restriction is not None:
                    restrictions[gmr.name] = gmr.restriction
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as directory:
            path = os.path.join(directory, "checkpoint.json")
            checkpoint(self.db, path)
            self.db.close()
            fresh = self._build_db()
            recover(fresh, path, None, restrictions=restrictions or None)
            self.db = fresh
            # Delta declarations are runtime state; re-declare them so
            # post-recovery updates keep patching instead of silently
            # downgrading to invalidation.
            if self.materialized:
                self._define_deltas()


def check_invariants(db: ObjectBase) -> list[str]:
    """The Def. 3.2 / Sec. 5.2 oracle over every non-snapshot GMR.

    Recompute-and-compare each GMR extension, require error flags only
    on error-state entries, and verify the RRR ↔ ObjDepFct lockstep.
    (The tests' fault-injection oracle implements the same checks; this
    copy lives in the library so ``python -m repro.fuzz`` needs nothing
    from the test tree.)
    """
    from repro.core.strategies import Strategy

    violations: list[str] = []
    manager = db.gmr_manager
    for gmr in manager.gmrs():
        if gmr.strategy is Strategy.SNAPSHOT:
            continue  # stale by design (refreshed, never invalidated)
        violations.extend(gmr.check_consistency(db))
        for fid in gmr.fids:
            for args in gmr.error_args(fid):
                if gmr.entry_state(args, fid) != "error":
                    violations.append(
                        f"{gmr.name}{args!r}.{fid}: error flag on a "
                        f"{gmr.entry_state(args, fid)} entry"
                    )
    violations.extend(manager.verify_lockstep())
    return violations
