"""Delta-debugging minimization of failing fuzz scripts.

Classic ddmin over the step list: partition into ``n`` chunks, try
each complement, keep any complement that still fails, refine the
granularity until single steps survive.  A candidate that raises
:class:`~repro.fuzz.replay.ScriptError` (dangling label, unbalanced
batch, ...) is simply *invalid* — it neither passes nor fails, the
search moves on.

The default failure predicate is "the differential oracle still
reports at least one failure on the given configurations", which keeps
the minimized script failing for the same observable reason class; a
custom ``check`` callable can pin the predicate tighter (e.g. "query
#3 still diverges on exactly this config").
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.fuzz.oracle import OracleConfig, check_script
from repro.fuzz.replay import ScriptError
from repro.fuzz.script import Script


def minimize_script(
    script: Script,
    configs: Sequence[OracleConfig] | None = None,
    *,
    check: Callable[[Script], bool] | None = None,
    max_rounds: int = 200,
) -> Script:
    """Return a 1-minimal (per ddmin) failing subset of ``script``.

    ``check(candidate) -> bool`` must return ``True`` while the
    candidate still fails; the default runs the differential oracle on
    ``configs`` (treating ``ScriptError`` as "invalid candidate").
    ``script`` itself must fail the predicate, else it is returned
    unchanged.
    """
    if check is None:
        def check(candidate: Script) -> bool:
            try:
                return bool(
                    check_script(candidate, configs, stop_on_first=True)
                )
            except ScriptError:
                return False

    steps = list(script.steps)
    if not check(script.replace_steps(steps)):
        return script

    n = 2
    rounds = 0
    while len(steps) >= 2 and rounds < max_rounds:
        chunk = max(1, len(steps) // n)
        reduced = False
        for start in range(0, len(steps), chunk):
            rounds += 1
            complement = steps[:start] + steps[start + chunk:]
            if not complement:
                continue
            if check(script.replace_steps(complement)):
                steps = complement
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(steps):
                break
            n = min(n * 2, len(steps))
    return script.replace_steps(steps)
