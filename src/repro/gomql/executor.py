"""GOMql execution: scans, GMR-backed plans, aggregates, materialize.

``run_statement`` is the entry point used by
:meth:`repro.gom.database.ObjectBase.query`.  External objects (the
paper's ``id99``, ``comp``, ``MyValuableCuboids``) are supplied through
the ``params`` mapping and referenced by bare identifiers; a range clause
may range over a type extension *or* over a parameter bound to a
set/list object ("the variable could also be bound to some set- or
list-structured object").
"""

from __future__ import annotations

from typing import Any

from repro.errors import (
    ExecutionError,
    InternalError,
    NotListStructuredError,
    NotSetStructuredError,
    QueryError,
    TypeCheckError,
    UnknownAttributeError,
    UnknownOperationError,
)
from repro.gom.handles import Handle, unwrap
from repro.gom.oid import Oid
from repro.gomql.ast import (
    MaterializeStmt,
    QAgg,
    QAnd,
    QAttr,
    QBin,
    QCall,
    QCmp,
    QConst,
    QExpr,
    QIn,
    QName,
    QNeg,
    QNot,
    QOr,
    QPred,
    Query,
    RangeDecl,
)
from repro.gomql.parser import parse_statement
from repro.gomql.planner import (
    find_backward_plan,
    find_index_plan,
    stash_range_type,
)
from repro.predicates.ast import (
    And as PAnd,
    Comparison,
    Not as PNot,
    Or as POr,
    Predicate,
    Variable,
)

_CMP = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def run_statement(db, text: str, params: dict[str, Any] | None = None) -> Any:
    """Parse and execute one GOMql statement."""
    return execute(db, parse_statement(text), params)


def execute(db, stmt, params: dict[str, Any] | None = None) -> Any:
    environment = dict(params or {})
    if isinstance(stmt, Query):
        return _execute_query(db, stmt, environment)
    if isinstance(stmt, MaterializeStmt):
        return _execute_materialize(db, stmt, environment)
    raise QueryError(f"cannot execute {stmt!r}")


# ---------------------------------------------------------------------------
# Expression / predicate evaluation
# ---------------------------------------------------------------------------


def eval_expr(expr: QExpr, env: dict[str, Any]) -> Any:
    if isinstance(expr, QConst):
        return expr.value
    if isinstance(expr, QName):
        try:
            return env[expr.name]
        except KeyError:
            raise ExecutionError(f"unbound identifier {expr.name!r}") from None
    if isinstance(expr, QAttr):
        base = eval_expr(expr.base, env)
        value = _member(base, expr.name)
        if isinstance(base, Handle) and callable(value):
            # GOM invokes parameterless functions without parentheses:
            # ``c.volume`` denotes the invocation, not the callable.
            return value()
        return value
    if isinstance(expr, QCall):
        base = eval_expr(expr.base, env)
        arguments = [eval_expr(argument, env) for argument in expr.args]
        target = _member(base, expr.name)
        try:
            return target(*arguments)
        except (TypeError, TypeCheckError) as exc:
            raise ExecutionError(
                f"cannot call {expr.name!r} with {len(arguments)} "
                f"argument(s): {exc}"
            ) from exc
    if isinstance(expr, QBin):
        left = eval_expr(expr.left, env)
        right = eval_expr(expr.right, env)
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left / right
        except ZeroDivisionError as exc:
            raise ExecutionError("division by zero in query expression") from exc
        except TypeError as exc:
            raise ExecutionError(
                f"operator {expr.op!r} not applicable to "
                f"{type(left).__name__} and {type(right).__name__}"
            ) from exc
        raise ExecutionError(f"unknown operator {expr.op}")
    if isinstance(expr, QNeg):
        value = eval_expr(expr.operand, env)
        try:
            return -value
        except TypeError as exc:
            raise ExecutionError(
                f"unary minus not applicable to {type(value).__name__}"
            ) from exc
    raise ExecutionError(f"cannot evaluate {expr!r}")


def _member(base: Any, name: str) -> Any:
    """``base.name`` with query-level error categorization.

    An unknown attribute/operation is a *query* mistake, so the schema's
    complaint (or a plain ``AttributeError`` on a non-object value) is
    reported as :class:`ExecutionError`; anything else — encapsulation
    violations, materialization faults — keeps its own type.
    """
    try:
        return getattr(base, name)
    except (AttributeError, UnknownAttributeError, UnknownOperationError) as exc:
        raise ExecutionError(
            f"no attribute or operation {name!r} on {_describe(base)}"
        ) from exc


def _describe(value: Any) -> str:
    if isinstance(value, Handle):
        return f"{value.type_name} object"
    return f"value of type {type(value).__name__}"


def eval_pred(pred: QPred, env: dict[str, Any]) -> bool:
    if isinstance(pred, QCmp):
        left = eval_expr(pred.left, env)
        right = eval_expr(pred.right, env)
        try:
            return _CMP[pred.op](left, right)
        except TypeError as exc:
            raise ExecutionError(
                f"cannot compare {type(left).__name__} {pred.op} "
                f"{type(right).__name__}"
            ) from exc
    if isinstance(pred, QIn):
        item = eval_expr(pred.item, env)
        collection = eval_expr(pred.collection, env)
        try:
            if isinstance(collection, Handle):
                return collection.contains(item)
            return item in collection
        except (TypeError, NotSetStructuredError, NotListStructuredError) as exc:
            raise ExecutionError(
                f"'in' target is not a collection: {_describe(collection)}"
            ) from exc
    if isinstance(pred, QAnd):
        return all(eval_pred(part, env) for part in pred.parts)
    if isinstance(pred, QOr):
        return any(eval_pred(part, env) for part in pred.parts)
    if isinstance(pred, QNot):
        return not eval_pred(pred.part, env)
    raise ExecutionError(f"cannot evaluate predicate {pred!r}")


# ---------------------------------------------------------------------------
# retrieve
# ---------------------------------------------------------------------------


def _domain(db, decl: RangeDecl, env: dict[str, Any]) -> tuple[list[Handle], str]:
    """Resolve a range declaration to (candidates, element type)."""
    type_name = decl.type_name
    if db.schema.has_type(type_name):
        return db.extension(type_name), type_name
    bound = env.get(type_name)
    if isinstance(bound, Handle):
        definition = db.schema.type(bound.type_name)
        if definition.is_collection():
            return list(bound), definition.element_type or "ANY"
    if isinstance(bound, (list, tuple, set)):
        element_type = "ANY"
        items = list(bound)
        if items and isinstance(items[0], Handle):
            element_type = items[0].type_name
        return items, element_type
    raise QueryError(
        f"range target {type_name!r} is neither a type nor a bound collection"
    )


def _execute_query(db, query: Query, env: dict[str, Any]) -> Any:
    domains: list[tuple[RangeDecl, list[Handle]]] = []
    for index, decl in enumerate(query.ranges):
        candidates, element_type = _domain(db, decl, env)
        stash_range_type(env, decl.var, element_type)
        if index == 0 and db.schema.has_type(decl.type_name):
            # Plan the outermost variable; conjuncts referencing inner
            # (still unbound) variables are ignored by the planner and
            # re-checked by the residual predicate evaluation.
            planned = _plan_candidates(db, decl, element_type, query.where, env)
            if planned is not None:
                candidates = planned
        domains.append((decl, candidates))

    aggregates = [
        projection for projection in query.projections if isinstance(projection, QAgg)
    ]
    if aggregates and len(aggregates) != len(query.projections):
        raise QueryError("aggregate and plain projections cannot be mixed")

    rows: list[tuple] = []
    agg_values: list[list[Any]] = [[] for _ in query.projections]

    def recurse(position: int) -> None:
        if position == len(domains):
            if query.where is not None and not eval_pred(query.where, env):
                return
            if aggregates:
                for slot, projection in enumerate(query.projections):
                    if not isinstance(projection, QAgg):
                        raise InternalError(
                            "mixed aggregate and plain projections "
                            "survived validation"
                        )
                    agg_values[slot].append(eval_expr(projection.arg, env))
            else:
                rows.append(
                    tuple(
                        eval_expr(projection, env)
                        for projection in query.projections
                    )
                )
            return
        decl, candidates = domains[position]
        for candidate in candidates:
            env[decl.var] = candidate
            recurse(position + 1)
        env.pop(decl.var, None)

    recurse(0)

    if aggregates:
        results = tuple(
            _aggregate(projection.func, values)  # type: ignore[union-attr]
            for projection, values in zip(query.projections, agg_values)
        )
        return results[0] if len(results) == 1 else results
    if len(query.projections) == 1:
        return [row[0] for row in rows]
    return rows


def _aggregate(func: str, values: list[Any]) -> Any:
    try:
        if func == "count":
            return len(values)
        if func == "sum":
            return sum(values)
        if func == "avg":
            return sum(values) / len(values) if values else 0.0
        if func == "min":
            return min(values) if values else None
        if func == "max":
            return max(values) if values else None
    except TypeError as exc:
        raise ExecutionError(
            f"aggregate {func}() not applicable to these values"
        ) from exc
    raise QueryError(f"unknown aggregate {func}")


def _plan_candidates(
    db, decl: RangeDecl, element_type: str, where: QPred | None, env: dict[str, Any]
) -> list[Handle] | None:
    def evaluator(expr: QExpr, environment: dict[str, Any]) -> Any:
        return eval_expr(expr, environment)

    backward = find_backward_plan(db, decl.var, element_type, where, env, evaluator)
    if backward is not None:
        manager = db.gmr_manager
        matches = manager.backward_query(
            backward.fid,
            backward.bounds.low,
            backward.bounds.high,
            include_low=backward.bounds.include_low,
            include_high=backward.bounds.include_high,
        )
        oids: list[Handle] = []
        for _value, args in matches:
            if tuple(args[1:]) != backward.fixed_args:
                continue
            if isinstance(args[0], Oid) and db.objects.exists(args[0]):
                oids.append(db.handle(args[0]))
        return oids
    indexed = find_index_plan(db, decl.var, element_type, where, env, evaluator)
    if indexed is not None:
        return [db.handle(oid) for oid in indexed if db.objects.exists(oid)]
    return None


# ---------------------------------------------------------------------------
# materialize
# ---------------------------------------------------------------------------


def _execute_materialize(db, stmt: MaterializeStmt, env: dict[str, Any]):
    from repro.core.restricted import RestrictionSpec

    var_types = {decl.var: decl.type_name for decl in stmt.ranges}
    for decl in stmt.ranges:
        if not db.schema.has_type(decl.type_name):
            raise QueryError(
                f"materialize ranges must be type extensions; "
                f"{decl.type_name!r} is not a type"
            )

    receiver: str | None = None
    arg_vars: tuple[str, ...] | None = None
    functions: list[tuple[str, str]] = []
    for target in stmt.targets:
        if not isinstance(target.base, QName) or target.base.name not in var_types:
            raise QueryError("materialize targets must be calls on range variables")
        this_receiver = target.base.name
        these_args: list[str] = []
        for argument in target.args:
            if not isinstance(argument, QName) or argument.name not in var_types:
                raise QueryError(
                    "materialize target arguments must be range variables"
                )
            these_args.append(argument.name)
        if receiver is None:
            receiver, arg_vars = this_receiver, tuple(these_args)
        elif (receiver, arg_vars) != (this_receiver, tuple(these_args)):
            raise QueryError(
                "all targets of one materialize statement must share their "
                "argument variables"
            )
        functions.append((var_types[this_receiver], target.name))

    if receiver is None or arg_vars is None:
        raise QueryError("materialize statement names no target functions")
    var_names = (receiver,) + arg_vars
    restriction = None
    if stmt.where is not None:
        predicate = _to_restriction_predicate(stmt.where, set(var_names), env)
        restriction = RestrictionSpec(predicate=predicate, var_names=var_names)
    return db.gmr_manager.materialize(functions, restriction=restriction)


def _to_restriction_predicate(
    pred: QPred, var_names: set[str], env: dict[str, Any]
) -> Predicate:
    """Translate a GOMql where clause into a restriction predicate."""
    if isinstance(pred, QCmp):
        left = _to_term(pred.left, var_names, env)
        right = _to_term(pred.right, var_names, env)
        if isinstance(left, Variable) and isinstance(right, Variable):
            return Comparison(left, pred.op, right)
        if isinstance(left, Variable):
            return Comparison(left, pred.op, None, constant=right)
        if isinstance(right, Variable):
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
            return Comparison(right, flip[pred.op], None, constant=left)
        raise QueryError(
            f"restriction comparison {pred!r} references no range variable"
        )
    if isinstance(pred, QAnd):
        return PAnd(
            tuple(_to_restriction_predicate(p, var_names, env) for p in pred.parts)
        )
    if isinstance(pred, QOr):
        return POr(
            tuple(_to_restriction_predicate(p, var_names, env) for p in pred.parts)
        )
    if isinstance(pred, QNot):
        return PNot(_to_restriction_predicate(pred.part, var_names, env))
    raise QueryError(f"unsupported restriction predicate {pred!r}")


def _to_term(expr: QExpr, var_names: set[str], env: dict[str, Any]):
    path: list[str] = []
    node = expr
    while isinstance(node, QAttr):
        path.append(node.name)
        node = node.base
    if isinstance(node, QName) and node.name in var_names:
        return Variable(node.name, tuple(reversed(path)))
    value = eval_expr(expr, env)
    return unwrap(value)
