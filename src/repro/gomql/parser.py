"""Recursive-descent parser for GOMql statements."""

from __future__ import annotations

from repro.errors import ParseError
from repro.gomql.ast import (
    AGGREGATES,
    MaterializeStmt,
    QAgg,
    QAnd,
    QAttr,
    QBin,
    QCall,
    QCmp,
    QConst,
    QExpr,
    QIn,
    QName,
    QNeg,
    QNot,
    QOr,
    QPred,
    Query,
    RangeDecl,
)
from repro.gomql.lexer import Token, tokenize


def parse_statement(text: str) -> Query | MaterializeStmt:
    """Parse one GOMql statement (``retrieve`` query or ``materialize``)."""
    return _Parser(tokenize(text)).statement()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ----------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._index += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self._current
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            wanted = text or kind
            actual = self._current.text or self._current.kind
            raise ParseError(
                f"expected {wanted!r}, found {actual!r} "
                f"(offset {self._current.position})"
            )
        return token

    # -- grammar -------------------------------------------------------------------

    def statement(self) -> Query | MaterializeStmt:
        ranges = self._ranges()
        if self._accept("keyword", "retrieve"):
            projections = [self._projection()]
            while self._accept("symbol", ","):
                projections.append(self._projection())
            where = self._where()
            self._expect("eof")
            return Query(tuple(ranges), tuple(projections), where)
        if self._accept("keyword", "materialize"):
            targets = [self._materialize_target()]
            while self._accept("symbol", ","):
                targets.append(self._materialize_target())
            where = self._where()
            self._expect("eof")
            return MaterializeStmt(tuple(ranges), tuple(targets), where)
        raise ParseError("expected 'retrieve' or 'materialize' after range clause")

    def _ranges(self) -> list[RangeDecl]:
        self._expect("keyword", "range")
        ranges = [self._range_decl()]
        while self._accept("symbol", ","):
            ranges.append(self._range_decl())
        return ranges

    def _range_decl(self) -> RangeDecl:
        var = self._expect("ident").text
        self._expect("symbol", ":")
        type_name = self._expect("ident").text
        return RangeDecl(var, type_name)

    def _where(self) -> QPred | None:
        if self._accept("keyword", "where"):
            return self._or_pred()
        return None

    def _projection(self) -> QExpr:
        if (
            self._current.kind == "ident"
            and self._current.text in AGGREGATES
            and self._tokens[self._index + 1].kind == "symbol"
            and self._tokens[self._index + 1].text == "("
        ):
            func = self._advance().text
            self._expect("symbol", "(")
            argument = self._expr()
            self._expect("symbol", ")")
            return QAgg(func, argument)
        return self._expr()

    def _materialize_target(self) -> QCall:
        expr = self._expr()
        if isinstance(expr, QAttr):
            # ``materialize c.volume`` — the paper writes the parentheses
            # optional; normalize to a call with no arguments.
            expr = QCall(expr.base, expr.name, ())
        if not isinstance(expr, QCall):
            raise ParseError(
                "materialize targets must be function invocations "
                "such as c.volume or c.distance(r)"
            )
        return expr

    # -- predicates -----------------------------------------------------------------

    def _or_pred(self) -> QPred:
        parts = [self._and_pred()]
        while self._accept("keyword", "or"):
            parts.append(self._and_pred())
        return parts[0] if len(parts) == 1 else QOr(tuple(parts))

    def _and_pred(self) -> QPred:
        parts = [self._not_pred()]
        while self._accept("keyword", "and"):
            parts.append(self._not_pred())
        return parts[0] if len(parts) == 1 else QAnd(tuple(parts))

    def _not_pred(self) -> QPred:
        if self._accept("keyword", "not"):
            return QNot(self._not_pred())
        return self._primary_pred()

    def _primary_pred(self) -> QPred:
        # Parenthesized predicates vs parenthesized expressions are
        # disambiguated by backtracking: try a predicate first.
        if self._check("symbol", "("):
            mark = self._index
            self._advance()
            try:
                inner = self._or_pred()
                self._expect("symbol", ")")
                return inner
            except ParseError:
                self._index = mark
        left = self._expr()
        if self._accept("keyword", "in"):
            return QIn(left, self._expr())
        for op in ("<=", ">=", "!=", "<", ">", "="):
            if self._accept("symbol", op):
                return QCmp(op, left, self._expr())
        raise ParseError(
            f"expected a comparison operator "
            f"(offset {self._current.position})"
        )

    # -- expressions -----------------------------------------------------------------

    def _expr(self) -> QExpr:
        left = self._term()
        while True:
            if self._accept("symbol", "+"):
                left = QBin("+", left, self._term())
            elif self._accept("symbol", "-"):
                left = QBin("-", left, self._term())
            else:
                return left

    def _term(self) -> QExpr:
        left = self._factor()
        while True:
            if self._accept("symbol", "*"):
                left = QBin("*", left, self._factor())
            elif self._accept("symbol", "/"):
                left = QBin("/", left, self._factor())
            else:
                return left

    def _factor(self) -> QExpr:
        if self._accept("symbol", "-"):
            return QNeg(self._factor())
        token = self._current
        if token.kind == "number":
            self._advance()
            return QConst(token.value)
        if token.kind == "string":
            self._advance()
            return QConst(token.value)
        if token.kind == "symbol" and token.text == "(":
            self._advance()
            inner = self._expr()
            self._expect("symbol", ")")
            return self._postfix(inner)
        if token.kind == "ident":
            self._advance()
            return self._postfix(QName(token.text))
        raise ParseError(
            f"unexpected token {token.text or token.kind!r} "
            f"(offset {token.position})"
        )

    def _postfix(self, base: QExpr) -> QExpr:
        while self._accept("symbol", "."):
            name = self._expect("ident").text
            if self._accept("symbol", "("):
                args: list[QExpr] = []
                if not self._check("symbol", ")"):
                    args.append(self._expr())
                    while self._accept("symbol", ","):
                        args.append(self._expr())
                self._expect("symbol", ")")
                base = QCall(base, name, tuple(args))
            else:
                base = QAttr(base, name)
        return base
