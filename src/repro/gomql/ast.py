"""GOMql abstract syntax."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

AGGREGATES = ("sum", "count", "avg", "min", "max")


class QExpr:
    __slots__ = ()


@dataclass(frozen=True, slots=True)
class QConst(QExpr):
    value: Any


@dataclass(frozen=True, slots=True)
class QName(QExpr):
    """A bare identifier: a range variable or an external parameter."""

    name: str


@dataclass(frozen=True, slots=True)
class QAttr(QExpr):
    base: QExpr
    name: str


@dataclass(frozen=True, slots=True)
class QCall(QExpr):
    """An operation invocation ``base.name(args)``."""

    base: QExpr
    name: str
    args: tuple[QExpr, ...]


@dataclass(frozen=True, slots=True)
class QBin(QExpr):
    op: str  # + - * /
    left: QExpr
    right: QExpr


@dataclass(frozen=True, slots=True)
class QNeg(QExpr):
    operand: QExpr


@dataclass(frozen=True, slots=True)
class QAgg(QExpr):
    func: str  # one of AGGREGATES
    arg: QExpr


class QPred:
    __slots__ = ()


@dataclass(frozen=True, slots=True)
class QCmp(QPred):
    op: str  # = != < <= > >=
    left: QExpr
    right: QExpr


@dataclass(frozen=True, slots=True)
class QIn(QPred):
    item: QExpr
    collection: QExpr


@dataclass(frozen=True, slots=True)
class QAnd(QPred):
    parts: tuple[QPred, ...]


@dataclass(frozen=True, slots=True)
class QOr(QPred):
    parts: tuple[QPred, ...]


@dataclass(frozen=True, slots=True)
class QNot(QPred):
    part: QPred


@dataclass(frozen=True, slots=True)
class RangeDecl:
    """``range var: TypeName`` — binds ``var`` to the type extension."""

    var: str
    type_name: str


@dataclass(frozen=True, slots=True)
class Query:
    ranges: tuple[RangeDecl, ...]
    projections: tuple[QExpr, ...]
    where: QPred | None


@dataclass(frozen=True, slots=True)
class MaterializeStmt:
    ranges: tuple[RangeDecl, ...]
    targets: tuple[QCall, ...]
    where: QPred | None


def conjuncts(pred: QPred | None) -> list[QPred]:
    """Flatten a top-level conjunction into its conjuncts."""
    if pred is None:
        return []
    if isinstance(pred, QAnd):
        result: list[QPred] = []
        for part in pred.parts:
            result.extend(conjuncts(part))
        return result
    return [pred]


def variables_of(expr: QExpr | QPred) -> set[str]:
    """Names of all bare identifiers appearing in an expression."""
    if isinstance(expr, QName):
        return {expr.name}
    if isinstance(expr, QConst):
        return set()
    if isinstance(expr, QAttr):
        return variables_of(expr.base)
    if isinstance(expr, QCall):
        result = variables_of(expr.base)
        for argument in expr.args:
            result |= variables_of(argument)
        return result
    if isinstance(expr, QBin):
        return variables_of(expr.left) | variables_of(expr.right)
    if isinstance(expr, QNeg):
        return variables_of(expr.operand)
    if isinstance(expr, QAgg):
        return variables_of(expr.arg)
    if isinstance(expr, QCmp):
        return variables_of(expr.left) | variables_of(expr.right)
    if isinstance(expr, QIn):
        return variables_of(expr.item) | variables_of(expr.collection)
    if isinstance(expr, (QAnd, QOr)):
        result = set()
        for part in expr.parts:
            result |= variables_of(part)
        return result
    if isinstance(expr, QNot):
        return variables_of(expr.part)
    raise TypeError(f"unknown node {expr!r}")
