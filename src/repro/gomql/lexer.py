"""GOMql tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexError

KEYWORDS = frozenset(
    {
        "range",
        "retrieve",
        "materialize",
        "where",
        "and",
        "or",
        "not",
        "in",
        "true",
        "false",
    }
)

_SYMBOLS = (
    "<=",
    ">=",
    "!=",
    "<",
    ">",
    "=",
    "(",
    ")",
    ",",
    ".",
    ":",
    "+",
    "-",
    "*",
    "/",
)


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # 'ident' | 'keyword' | 'number' | 'string' | 'symbol' | 'eof'
    text: str
    position: int
    value: object = None


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == '"' or char == "'":
            end = text.find(char, index + 1)
            if end < 0:
                raise LexError("unterminated string literal", index)
            tokens.append(
                Token("string", text[index : end + 1], index, text[index + 1 : end])
            )
            index = end + 1
            continue
        if char.isdecimal():
            # isdecimal(), not isdigit(): characters like '²' count as
            # digits but are not valid int() literals.
            end = index
            seen_dot = False
            while end < length and (
                text[end].isdecimal()
                or (
                    text[end] == "."
                    and not seen_dot
                    and end + 1 < length
                    and text[end + 1].isdecimal()
                )
            ):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            literal = text[index:end]
            value: object = float(literal) if seen_dot else int(literal)
            tokens.append(Token("number", literal, index, value))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            lowered = word.lower()
            if lowered in KEYWORDS:
                if lowered == "true":
                    tokens.append(Token("number", word, index, True))
                elif lowered == "false":
                    tokens.append(Token("number", word, index, False))
                else:
                    tokens.append(Token("keyword", lowered, index))
            else:
                tokens.append(Token("ident", word, index))
            index = end
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, index):
                tokens.append(Token("symbol", symbol, index))
                index += len(symbol)
                break
        else:
            raise LexError(f"unexpected character {char!r}", index)
    tokens.append(Token("eof", "", length))
    return tokens
