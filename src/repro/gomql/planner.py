"""Query planning: deciding how GMRs answer GOMql queries (Sec. 3.2/6).

For single-variable queries the planner recognises:

* **backward queries** — conjuncts comparing a materialized function
  invocation on the range variable against constants.  The candidate set
  comes from the GMR's result index via
  :meth:`~repro.core.manager.GMRManager.backward_query`.  For a
  p-restricted GMR the Sec. 6 applicability test runs first: the
  restriction (instantiated with the query's constant arguments) must
  cover the relevant part ``σ'`` of the selection predicate.
* **indexed forward selections** — ``var.Attr = const`` conjuncts over an
  attribute with an index (the paper's ``CuboidID`` lookup).

Everything else falls back to a scan of the range's extension.  Forward
invocations of materialized functions need no planning at all: operation
dispatch maps them to GMR probes (Sec. 3.2, last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import InternalError
from repro.gom.handles import Handle, unwrap
from repro.gom.oid import Oid
from repro.gomql.ast import (
    QAttr,
    QCall,
    QCmp,
    QConst,
    QExpr,
    QName,
    QPred,
    conjuncts,
    variables_of,
)
from repro.predicates.ast import (
    And,
    Comparison,
    Predicate,
    TRUE,
    Variable,
)
from repro.predicates.cover import covers

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.gmr import GMR
    from repro.gom.database import ObjectBase

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


@dataclass
class Bounds:
    """Accumulated range bounds on one function invocation."""

    low: Any = None
    high: Any = None
    include_low: bool = True
    include_high: bool = True

    def tighten(self, op: str, value: Any) -> bool:
        """Apply ``f(...) op value``; returns False for unusable ops."""
        if op in (">", ">="):
            if self.low is None or value > self.low:
                self.low = value
                self.include_low = op == ">="
            elif value == self.low and op == ">":
                self.include_low = False
            return True
        if op in ("<", "<="):
            if self.high is None or value < self.high:
                self.high = value
                self.include_high = op == "<="
            elif value == self.high and op == "<":
                self.include_high = False
            return True
        if op == "=":
            self.tighten(">=", value)
            self.tighten("<=", value)
            return True
        return False


@dataclass
class BackwardPlan:
    """Answer candidates for one range variable from a GMR index."""

    fid: str
    bounds: Bounds
    fixed_args: tuple  # raw values for argument positions 1..n-1
    var: str


def _try_const(
    expr: QExpr, env: dict[str, Any], evaluator: Callable[[QExpr, dict], Any]
) -> tuple[bool, Any]:
    """Evaluate an expression that must not reference range variables."""
    try:
        return True, evaluator(expr, env)
    except Exception:
        return False, None


def find_backward_plan(
    db: "ObjectBase",
    var: str,
    type_name: str,
    where: QPred | None,
    params: dict[str, Any],
    evaluator: Callable[[QExpr, dict], Any],
) -> BackwardPlan | None:
    """Detect a usable backward-query plan for ``var`` (or None)."""
    if where is None or not db.has_gmr_manager:
        return None
    manager = db.gmr_manager
    candidates: dict[tuple, Bounds] = {}
    calls: dict[tuple, tuple[str, tuple]] = {}
    for conjunct in conjuncts(where):
        if not isinstance(conjunct, QCmp):
            continue
        call, op, other = _orient(db, conjunct, var, params)
        if call is None:
            continue
        if variables_of(other) & {var}:
            continue
        ok, value = _try_const(other, params, evaluator)
        if not ok:
            continue
        signature = _call_signature(db, call, var, params, evaluator)
        if signature is None:
            continue
        key, fid, fixed = signature
        bounds = candidates.setdefault(key, Bounds())
        # Record the call even when the operator is unusable (!=): the
        # key is already in `candidates`, and an unusable-only key must
        # still resolve below (its empty bounds reject it there).
        calls[key] = (fid, fixed)
        if not bounds.tighten(op, value):
            continue

    for key, bounds in candidates.items():
        fid, fixed = calls[key]
        gmr = manager.gmr_of(fid)
        if gmr is None or not gmr.complete:
            continue
        if gmr.is_restricted and not _restricted_applicable(
            db, gmr, var, where, params, evaluator
        ):
            continue
        if bounds.low is None and bounds.high is None:
            continue
        return BackwardPlan(fid=fid, bounds=bounds, fixed_args=fixed, var=var)
    return None


def _orient(
    db: "ObjectBase", conjunct: QCmp, var: str, params: dict[str, Any]
) -> tuple[QCall | None, str, QExpr]:
    """Rewrite the comparison so a call on ``var`` is on the left."""
    left = _coerce_call(db, conjunct.left, var, params)
    right = _coerce_call(db, conjunct.right, var, params)
    if left is not None:
        return left, conjunct.op, conjunct.right
    if right is not None:
        return right, _FLIP[conjunct.op], conjunct.left
    return None, conjunct.op, conjunct.right


def _coerce_call(
    db: "ObjectBase", expr: QExpr, var: str, params: dict[str, Any]
) -> QCall | None:
    """A call on ``var`` — including the paren-free ``c.volume`` form."""
    if (
        isinstance(expr, QCall)
        and isinstance(expr.base, QName)
        and expr.base.name == var
    ):
        return expr
    if (
        isinstance(expr, QAttr)
        and isinstance(expr.base, QName)
        and expr.base.name == var
        and db.schema.has_operation(_range_type(db, var, params), expr.name)
    ):
        return QCall(expr.base, expr.name, ())
    return None


def _call_signature(
    db: "ObjectBase",
    call: QCall,
    var: str,
    params: dict[str, Any],
    evaluator: Callable[[QExpr, dict], Any],
) -> tuple[tuple, str, tuple] | None:
    """Resolve a call on the range variable to a materialized fid."""
    manager = db.gmr_manager
    fixed: list[Any] = []
    for argument in call.args:
        ok, value = _try_const(argument, params, evaluator)
        if not ok:
            return None
        fixed.append(unwrap(value))
    # Resolve the declaring type of the operation from the range type.
    try:
        decl_type, _ = db.schema.resolve_operation(_range_type(db, var, params), call.name)
    except Exception:
        return None
    fid = manager.fid_of_op(decl_type, call.name)
    if fid is None:
        return None
    key = (fid, tuple(fixed))
    return key, fid, tuple(fixed)


# The planner needs the range variable's type; the executor stashes it in
# params under a reserved key so helper functions can reach it without
# widening every signature.
_RANGE_TYPE_KEY = "__range_type__:{var}"


def stash_range_type(params: dict[str, Any], var: str, type_name: str) -> None:
    params[_RANGE_TYPE_KEY.format(var=var)] = type_name


def _range_type(db: "ObjectBase", var: str, params: dict[str, Any]) -> str:
    return params[_RANGE_TYPE_KEY.format(var=var)]


# ---------------------------------------------------------------------------
# Restricted-GMR applicability (Sec. 6)
# ---------------------------------------------------------------------------


def _restricted_applicable(
    db: "ObjectBase",
    gmr: "GMR",
    var: str,
    where: QPred,
    params: dict[str, Any],
    evaluator: Callable[[QExpr, dict], Any],
) -> bool:
    """The cover test: restriction (instantiated) must cover σ'."""
    spec = gmr.restriction
    if spec is None:
        raise InternalError("cover test reached for an unrestricted GMR")
    if spec.predicate is None:
        # Atomic-only restrictions cannot be checked against the selection
        # without argument values; be conservative.
        return False
    restriction = _instantiate_restriction(db, gmr, var, params)
    if restriction is None:
        return False
    sigma = _relevant_selection(var, where, params, evaluator)
    return covers(restriction, sigma)


def _instantiate_restriction(
    db: "ObjectBase", gmr: "GMR", var: str, params: dict[str, Any]
) -> Predicate | None:
    """Rename the restriction's range variables to the query's variable.

    Only single-complex-argument restrictions can be renamed without
    knowing the query's other argument bindings; restrictions over
    several object variables are instantiated conservatively: if any
    variable beyond the receiver occurs, the test is abandoned (the
    executor falls back to a scan, which is always correct).
    """
    spec = gmr.restriction
    if spec is None or spec.predicate is None:
        raise InternalError(
            "restriction instantiation reached without a predicate"
        )
    names = spec.var_names
    if not names:
        return None
    mapping = {names[0]: var}
    extra = spec.predicate_variables() - set(names[:1])
    if extra:
        return None
    return _rename(spec.predicate, mapping)


def _rename(predicate: Predicate, mapping: dict[str, str]) -> Predicate:
    from repro.predicates.ast import And as PAnd, Not as PNot, Or as POr

    if isinstance(predicate, Comparison):
        left = Variable(mapping.get(predicate.left.name, predicate.left.name), predicate.left.path)
        right = predicate.right
        if right is not None:
            right = Variable(mapping.get(right.name, right.name), right.path)
        return Comparison(left, predicate.op, right, predicate.offset, predicate.constant)
    if isinstance(predicate, PAnd):
        return PAnd(tuple(_rename(part, mapping) for part in predicate.parts))
    if isinstance(predicate, POr):
        return POr(tuple(_rename(part, mapping) for part in predicate.parts))
    if isinstance(predicate, PNot):
        return PNot(_rename(predicate.part, mapping))
    return predicate


def _relevant_selection(
    var: str,
    where: QPred,
    params: dict[str, Any],
    evaluator: Callable[[QExpr, dict], Any],
) -> Predicate:
    """σ': the conjuncts mentioning ``var``, translated to comparisons.

    Function invocations become synthetic variables (their results are
    opaque values to the decision procedure); untranslatable conjuncts
    are dropped, which only weakens σ' — a safe direction for the test.
    """
    translated: list[Predicate] = []
    synthetic: dict[str, str] = {}
    for conjunct in conjuncts(where):
        if var not in variables_of(conjunct):
            continue
        if not isinstance(conjunct, QCmp):
            continue
        piece = _translate_cmp(conjunct, var, params, evaluator, synthetic)
        if piece is not None:
            translated.append(piece)
    if not translated:
        return TRUE
    if len(translated) == 1:
        return translated[0]
    return And(tuple(translated))


def _translate_cmp(
    conjunct: QCmp,
    var: str,
    params: dict[str, Any],
    evaluator: Callable[[QExpr, dict], Any],
    synthetic: dict[str, str],
) -> Predicate | None:
    left = _translate_term(conjunct.left, var, params, evaluator, synthetic)
    right = _translate_term(conjunct.right, var, params, evaluator, synthetic)
    if left is None or right is None:
        return None
    op = conjunct.op
    if isinstance(left, Variable):
        if isinstance(right, Variable):
            return Comparison(left, op, right)
        return Comparison(left, op, None, constant=right)
    if isinstance(right, Variable):
        return Comparison(right, _FLIP[op], None, constant=left)
    return None  # constant-vs-constant: uninformative


def _translate_term(
    expr: QExpr,
    var: str,
    params: dict[str, Any],
    evaluator: Callable[[QExpr, dict], Any],
    synthetic: dict[str, str],
) -> Variable | Any | None:
    """A term of σ': a variable (path on ``var`` / synthetic call) or a
    constant value (anything evaluable without the range variable)."""
    if isinstance(expr, QName) and expr.name == var:
        return Variable(var)
    path: list[str] = []
    node = expr
    while isinstance(node, QAttr):
        path.append(node.name)
        node = node.base
    if isinstance(node, QName) and node.name == var:
        return Variable(var, tuple(reversed(path)))
    if isinstance(node, QCall) and var in variables_of(node):
        key = repr(expr)
        name = synthetic.setdefault(key, f"@call{len(synthetic)}")
        if path:
            return None
        return Variable(name)
    if var in variables_of(expr):
        return None
    ok, value = _try_const(expr, params, evaluator)
    if not ok:
        return None
    return unwrap(value)


def find_index_plan(
    db: "ObjectBase",
    var: str,
    type_name: str,
    where: QPred | None,
    params: dict[str, Any],
    evaluator: Callable[[QExpr, dict], Any],
) -> list[Oid] | None:
    """Equality selection over an indexed attribute → candidate OIDs."""
    if where is None:
        return None
    for conjunct in conjuncts(where):
        if not isinstance(conjunct, QCmp) or conjunct.op != "=":
            continue
        for attr_side, const_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if not isinstance(attr_side, QAttr):
                continue
            if not (
                isinstance(attr_side.base, QName) and attr_side.base.name == var
            ):
                continue
            index = db.attr_index(type_name, attr_side.name)
            if index is None:
                continue
            if variables_of(const_side) & {var}:
                continue
            ok, value = _try_const(const_side, params, evaluator)
            if not ok:
                continue
            return list(index.search(unwrap(value)))
    return None
