"""Plan explanation: which access path answers a GOMql query?

The paper's conclusion reports extending the rule-based query optimizer
"to generate query evaluation plans that utilize materialized values
instead of recomputing them".  :func:`explain_statement` surfaces that
decision: for each range variable it reports whether the candidates come
from a GMR's result index (a backward plan), an attribute index, or a
scan of the extension — without executing the query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import InternalError
from repro.gomql.ast import MaterializeStmt, Query
from repro.gomql.executor import eval_expr
from repro.gomql.parser import parse_statement
from repro.gomql.planner import (
    find_backward_plan,
    find_index_plan,
    stash_range_type,
)


@dataclass(frozen=True)
class AccessPath:
    """The chosen access path for one range variable."""

    var: str
    type_name: str
    kind: str  # 'gmr-backward' | 'attr-index' | 'scan' | 'binding'
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.var}: {self.kind}{suffix}"


@dataclass(frozen=True)
class PlanExplanation:
    statement: str  # 'retrieve' | 'materialize'
    paths: tuple[AccessPath, ...]

    def __str__(self) -> str:
        lines = [f"statement: {self.statement}"]
        lines.extend(f"  {path}" for path in self.paths)
        return "\n".join(lines)


def explain_statement(
    db, text: str, params: dict[str, Any] | None = None
) -> PlanExplanation:
    """Explain — without executing — how ``text`` would be evaluated."""
    stmt = parse_statement(text)
    environment = dict(params or {})
    if isinstance(stmt, MaterializeStmt):
        targets = ", ".join(
            f"{target.base.name}.{target.name}" for target in stmt.targets  # type: ignore[union-attr]
        )
        return PlanExplanation(
            "materialize",
            (
                AccessPath(
                    var=stmt.ranges[0].var,
                    type_name=stmt.ranges[0].type_name,
                    kind="materialize",
                    detail=targets,
                ),
            ),
        )
    if not isinstance(stmt, Query):
        raise InternalError(
            f"unexplainable statement kind {type(stmt).__name__}"
        )
    paths: list[AccessPath] = []
    for index, decl in enumerate(stmt.ranges):
        if not db.schema.has_type(decl.type_name):
            paths.append(
                AccessPath(decl.var, decl.type_name, "binding",
                           f"bound collection {decl.type_name}")
            )
            continue
        stash_range_type(environment, decl.var, decl.type_name)
        if index == 0 and db.has_gmr_manager:
            backward = find_backward_plan(
                db, decl.var, decl.type_name, stmt.where, environment, eval_expr
            )
            if backward is not None:
                gmr = db.gmr_manager.gmr_of(backward.fid)
                bounds = backward.bounds
                detail = (
                    f"{gmr.name} on {backward.fid}, range "
                    f"{'[' if bounds.include_low else '('}"
                    f"{bounds.low}, {bounds.high}"
                    f"{']' if bounds.include_high else ')'}"
                )
                paths.append(
                    AccessPath(decl.var, decl.type_name, "gmr-backward", detail)
                )
                continue
        indexed = (
            find_index_plan(
                db, decl.var, decl.type_name, stmt.where, environment, eval_expr
            )
            if index == 0
            else None
        )
        if indexed is not None:
            paths.append(
                AccessPath(
                    decl.var, decl.type_name, "attr-index",
                    f"{len(indexed)} candidate(s)",
                )
            )
            continue
        paths.append(
            AccessPath(decl.var, decl.type_name, "scan",
                       f"extension of {decl.type_name}")
        )
    return PlanExplanation("retrieve", tuple(paths))
