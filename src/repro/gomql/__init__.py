"""GOMql: the QUEL-like query language of GOM.

Supports the statement forms used throughout the paper::

    range c: Cuboid
    retrieve c
    where c.volume > 20.0 and c.weight > 100.0

    range c: MyCuboids retrieve sum(c.weight)

    range c: Cuboid
    materialize c.volume, c.weight
    where c.Mat.Name = "Iron"

``retrieve`` queries return a list of tuples (or a scalar for a single
aggregate); ``materialize`` statements create a GMR (optionally
restricted) and return it.  External objects and collections are passed
to :func:`run_statement` as named parameters referenced by bare
identifiers in the query text.

The planner (Sec. 3.2) exploits GMRs: *backward* queries with range
predicates over materialized function results are answered from the GMR's
result index (after the Sec. 6 cover test for restricted GMRs), *forward*
invocations of materialized functions are mapped to GMR probes by the
operation dispatch itself, and equality predicates over indexed
attributes use the attribute index.
"""

from repro.gomql.parser import parse_statement
from repro.gomql.executor import run_statement, execute
from repro.gomql.explain import explain_statement

__all__ = ["parse_statement", "run_statement", "execute", "explain_statement"]
