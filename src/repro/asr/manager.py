"""ASR maintenance: keeping materialized paths consistent.

The manager subscribes to the object base's elementary-update stream and
refreshes affected chains:

* ``set_A`` on an object at position *i* of some chain recomputes the
  chains of every source object passing through it — found via the
  per-position occurrence index, never by scanning;
* creating an instance of a path's source type adds its chain;
* deleting any object drops the chains through it (and recomputes the
  surviving sources, which simply yields broken chains).

This mirrors the GMR manager's role for function results, restricted to
pure attribute paths — which is exactly why the paper calls the two
techniques dual.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.asr.relation import AccessSupportRelation, PathSpec
from repro.errors import SchemaError
from repro.gom.oid import Oid

if TYPE_CHECKING:  # pragma: no cover
    from repro.gom.database import ObjectBase


class ASRManager:
    """Maintains every Access Support Relation of one object base."""

    def __init__(self, db: "ObjectBase") -> None:
        self._db = db
        self._asrs: dict[str, AccessSupportRelation] = {}
        # (declaring type, attr) → ASRs watching that update.
        self._watchers: dict[tuple[str, str], list[AccessSupportRelation]] = {}
        self._registered = False

    # -- definition --------------------------------------------------------------

    def materialize_path(
        self, source_type: str, *attrs: str
    ) -> AccessSupportRelation:
        """Create and populate ``⟦source_type.attrs...⟧``."""
        spec = PathSpec(self._db, source_type, tuple(attrs))
        name = f"[[{spec}]]"
        if name in self._asrs:
            raise SchemaError(f"{name} is already materialized")
        asr = AccessSupportRelation(self._db, spec)
        self._asrs[name] = asr
        for pair in spec.watched:
            self._watchers.setdefault(pair, []).append(asr)
        if not self._registered:
            self._db.register_update_listener(self._on_update)
            self._registered = True
        asr.populate()
        return asr

    def asr(self, name: str) -> AccessSupportRelation:
        try:
            return self._asrs[name]
        except KeyError:
            raise SchemaError(f"no ASR named {name}") from None

    def asrs(self) -> list[AccessSupportRelation]:
        return list(self._asrs.values())

    # -- the update listener --------------------------------------------------------

    def _on_update(self, kind, oid, type_name, attr, old, new) -> None:
        if kind == "set":
            for asr in self._watchers.get((type_name, attr), ()):
                self._refresh_through(asr, oid)
        elif kind == "create":
            schema = self._db.schema
            for asr in self._asrs.values():
                if schema.is_subtype(type_name, asr.spec.source_type):
                    asr.refresh_source(oid)
        elif kind == "delete":
            for asr in self._asrs.values():
                for source in list(asr.sources_through(oid)):
                    if source == oid:
                        asr.remove_source(source)
                    else:
                        asr.refresh_source(source)
        # Collection membership ('insert'/'remove') cannot affect pure
        # attribute paths.

    def _refresh_through(self, asr: AccessSupportRelation, oid: Oid) -> None:
        sources = asr.sources_through(oid)
        schema = self._db.schema
        if schema.is_subtype(
            self._db.objects.type_of(oid), asr.spec.source_type
        ):
            sources.add(oid)
        for source in sources:
            asr.refresh_source(source)

    # -- validation --------------------------------------------------------------------

    def check_consistency(self) -> list[str]:
        problems: list[str] = []
        for asr in self._asrs.values():
            problems.extend(asr.check_consistency())
        return problems
