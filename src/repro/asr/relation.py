"""One Access Support Relation: a materialized path expression.

For a path ``t0.A1.….An`` the ASR ``⟦t0.A1.….An⟧`` stores one tuple
``[o0, o1, ..., o_{n-1}, v]`` per source object whose chain is complete:
``o_{i} = o_{i-1}.A_i`` for the reference steps and ``v`` the terminal
value (an atomic value, or the OID for an object-valued terminal).
Chains broken by an unset (``None``) reference are absent — this is the
*full extension* variant of Kemper/Moerkotte's ASR taxonomy.

Physical representation mirrors the GMR store: rows on simulated pages,
a B+ tree over the terminal column for backward range queries, and a
per-position occurrence index so maintenance can find every chain an
updated object participates in without scanning.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import SchemaError
from repro.gom.oid import Oid
from repro.gom.types import is_atomic_type
from repro.storage.btree import BPlusTree
from repro.storage.pages import Placement

if TYPE_CHECKING:  # pragma: no cover
    from repro.gom.database import ObjectBase

_ROW_BASE = 16
_FIELD = 10


class PathSpec:
    """A validated path expression ``t0.A1.….An``."""

    def __init__(self, db: "ObjectBase", source_type: str, attrs: tuple[str, ...]):
        if not attrs:
            raise SchemaError("an ASR path needs at least one attribute")
        schema = db.schema
        self.source_type = source_type
        self.attrs = tuple(attrs)
        #: Type of each position 0..n (position 0 = source type).
        self.step_types: list[str] = [source_type]
        current = source_type
        for index, attr in enumerate(self.attrs):
            if is_atomic_type(current):
                raise SchemaError(
                    f"path {self}: {current} is atomic but attribute "
                    f"{attr} follows"
                )
            definition = schema.attribute(current, attr)
            current = definition.type_name
            self.step_types.append(current)
        #: (declaring type, attr) per step — the update events to watch.
        self.watched: list[tuple[str, str]] = []
        current = source_type
        for attr in self.attrs:
            declaring = schema.attribute_declaring_type(current, attr)
            self.watched.append((declaring, attr))
            current = schema.attribute(current, attr).type_name

    @property
    def length(self) -> int:
        return len(self.attrs)

    @property
    def terminal_type(self) -> str:
        return self.step_types[-1]

    def __str__(self) -> str:
        return ".".join((self.source_type,) + self.attrs)


class AccessSupportRelation:
    """The extension of one materialized path."""

    def __init__(self, db: "ObjectBase", spec: PathSpec) -> None:
        self.db = db
        self.spec = spec
        self.name = f"[[{spec}]]"
        # source oid → row tuple (o0, ..., o_{n-1}, terminal value)
        self._rows: dict[Oid, tuple] = {}
        self._placements: dict[Oid, Placement] = {}
        self._terminal_index = BPlusTree(
            db.page_store, db.buffer, segment=f"asr:{self.name}:terminal"
        )
        # position (1..n-1) → oid → set of source oids whose chain passes
        # through that object at that position.
        self._occurrences: list[dict[Oid, set[Oid]]] = [
            {} for _ in range(spec.length)
        ]

    # -- plumbing ----------------------------------------------------------------

    def _touch(self, source: Oid, *, write: bool = False) -> None:
        placement = self._placements.get(source)
        if placement is None:
            placement = self.db.page_store.place(
                f"asr:{self.name}", _ROW_BASE + _FIELD * (self.spec.length + 1)
            )
            self._placements[source] = placement
        self.db.buffer.touch(placement.page_id, write=write)

    def _walk(self, source: Oid) -> tuple | None:
        """Compute the chain from ``source``; None if it is broken."""
        objects = self.db.objects
        chain: list[Any] = [source]
        current: Any = source
        for attr in self.spec.attrs:
            if not isinstance(current, Oid) or not objects.exists(current):
                return None
            value = objects.get(current).data.get(attr)
            self.db.buffer.touch(objects.get(current).placement.page_id)
            if value is None:
                return None
            chain.append(value)
            current = value
        return tuple(chain)

    # -- maintenance ---------------------------------------------------------------

    def refresh_source(self, source: Oid) -> None:
        """(Re)compute the chain of one source object."""
        self.remove_source(source)
        chain = self._walk(source)
        if chain is None:
            return
        self._rows[source] = chain
        self._touch(source, write=True)
        terminal = chain[-1]
        self._terminal_index.insert(_index_key(terminal), source)
        for position in range(1, self.spec.length + 1):
            step = chain[position]
            if isinstance(step, Oid):
                self._occurrences[position - 1].setdefault(step, set()).add(
                    source
                )

    def remove_source(self, source: Oid) -> None:
        chain = self._rows.pop(source, None)
        if chain is None:
            return
        self._touch(source, write=True)
        self._terminal_index.remove(_index_key(chain[-1]), source)
        for position in range(1, self.spec.length + 1):
            step = chain[position]
            if isinstance(step, Oid):
                bucket = self._occurrences[position - 1].get(step)
                if bucket is not None:
                    bucket.discard(source)

    def sources_through(self, oid: Oid) -> set[Oid]:
        """Source objects whose chain passes through ``oid`` anywhere."""
        result: set[Oid] = set()
        if oid in self._rows:
            result.add(oid)
        for per_position in self._occurrences:
            result |= per_position.get(oid, set())
        return result

    def populate(self) -> None:
        for source in self.db.objects.extension(self.spec.source_type):
            self.refresh_source(source)

    # -- queries ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def forward(self, source: Oid | Any) -> Any | None:
        """Terminal value of one source object's chain (None if absent)."""
        from repro.gom.handles import unwrap

        chain = self._rows.get(unwrap(source))
        if chain is None:
            return None
        self._touch(chain[0])
        return chain[-1]

    def backward(
        self,
        low: Any = None,
        high: Any = None,
        *,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[Oid]:
        """Source objects whose terminal value lies in the range."""
        return [
            source
            for _key, source in self._terminal_index.range_scan(
                _index_key(low) if low is not None else None,
                _index_key(high) if high is not None else None,
                include_low=include_low,
                include_high=include_high,
            )
        ]

    def backward_exact(self, value: Any) -> list[Oid]:
        return self._terminal_index.search(_index_key(value))

    def rows(self) -> Iterator[tuple]:
        for source, chain in self._rows.items():
            self._touch(source)
            yield chain

    # -- validation --------------------------------------------------------------------

    def check_consistency(self) -> list[str]:
        """Recompute every chain; report mismatches (test helper)."""
        problems = []
        for source in self.db.objects.extension(self.spec.source_type):
            expected = self._walk(source)
            stored = self._rows.get(source)
            if expected != stored:
                problems.append(
                    f"{self.name}[{source!r}]: stored {stored!r} "
                    f"!= expected {expected!r}"
                )
        extras = set(self._rows) - set(
            self.db.objects.extension(self.spec.source_type)
        )
        for source in extras:
            problems.append(f"{self.name}: stale row for deleted {source!r}")
        return problems


def _index_key(value: Any) -> Any:
    """B+ tree keys must be mutually comparable; OIDs map to their ints."""
    if isinstance(value, Oid):
        return value.value
    return value
