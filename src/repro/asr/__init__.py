"""Access Support Relations — the dual of function materialization.

The paper positions function materialization as "a dual approach to our
previously discussed indexing structures, called Access Support
Relations [12, 11], which constitute materializations of heavily
traversed path expressions that relate objects along attribute chains"
(Kemper & Moerkotte, SIGMOD 1990).  This package implements that
substrate so the two techniques can be compared on the same object base:

* an :class:`~repro.asr.relation.AccessSupportRelation` materializes one
  path expression ``t0.A1.….An`` as a relation ``[S0, S1, ..., Sn]``
  holding, per source object, the chain of references it traverses and
  the terminal value, with a range index over the terminal column;
* the :class:`~repro.asr.manager.ASRManager` keeps every ASR consistent
  under elementary updates (attribute writes, object creation and
  deletion) by listening to the object base's update stream.

A backward path query ("all cuboids whose material is named Iron") is
then an index probe instead of an object-graph traversal — exactly the
access pattern function materialization accelerates for *computed*
values.
"""

from repro.asr.relation import AccessSupportRelation, PathSpec
from repro.asr.manager import ASRManager

__all__ = ["AccessSupportRelation", "PathSpec", "ASRManager"]
