"""The OID intern table: dense ids plus a shared ``stable_hash`` cache.

The columnar GMR layout stores argument columns as arrays of small
integers instead of Python object references; this module owns the
mapping.  Interning buys two things:

* **Compact columns.**  An interned argument cell is one machine word
  (an index into the table), so the simulated page footprint of a key
  column is 8 bytes per argument instead of a full row field.

* **One hash, computed once.**  ``stable_hash`` (the CRC32 of a
  canonical type-tagged encoding, :mod:`repro.concurrency.sharding`)
  is what both the shard router and the striped GMR-entry lock table
  key on.  It is a pure function of the value, so the intern table
  memoizes it: the first time an argument tuple is routed its hash is
  computed and cached; every later shard lookup or stripe acquisition
  for the same tuple is a dict hit.  The cached values are *identical*
  to ``stable_hash`` — the cache never changes routing, only cost.

The table is process-global (:data:`INTERN`): every GMR shares one id
space, exactly like every GMR shares one entry-lock table.  The
per-tuple hash cache is bounded (cleared wholesale at
:data:`_TUPLE_CACHE_LIMIT`) so long-running bases with churning
extensions cannot grow it without bound; the per-element table grows
with the set of distinct argument values, which is bounded by the
object population.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.concurrency.sharding import stable_hash

#: Wholesale-clear threshold of the per-tuple hash cache.
_TUPLE_CACHE_LIMIT = 65536


class InternTable:
    """Dense integer ids for argument values, with cached stable hashes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids: dict[Any, int] = {}
        self._values: list[Any] = []
        self._hashes: list[int] = []
        self._tuple_hashes: dict[tuple, int] = {}

    def __len__(self) -> int:
        return len(self._values)

    def intern(self, value: Any) -> int:
        """The dense id of ``value`` (allocating one on first sight)."""
        iid = self._ids.get(value)
        if iid is not None:
            return iid
        with self._lock:
            iid = self._ids.get(value)
            if iid is None:
                iid = len(self._values)
                self._values.append(value)
                self._hashes.append(stable_hash(value))
                self._ids[value] = iid
            return iid

    def value_of(self, iid: int) -> Any:
        return self._values[iid]

    def hash_of_id(self, iid: int) -> int:
        """The cached ``stable_hash`` of an interned value."""
        return self._hashes[iid]

    def hash_of(self, value: Any) -> int:
        """``stable_hash(value)``, memoized.

        Tuples (GMR argument lists — the shard-router and stripe-lock
        keys) go through a bounded per-tuple cache; scalars and OIDs go
        through the intern table itself.
        """
        if isinstance(value, tuple):
            cached = self._tuple_hashes.get(value)
            if cached is not None:
                return cached
            computed = stable_hash(value)
            with self._lock:
                if len(self._tuple_hashes) >= _TUPLE_CACHE_LIMIT:
                    self._tuple_hashes.clear()
                self._tuple_hashes[value] = computed
            return computed
        return self._hashes[self.intern(value)]


#: The process-global intern table shared by every columnar GMR store,
#: the striped entry-lock layer and the shard router's hot path.
INTERN = InternTable()


def interned_hash(value: Any) -> int:
    """``stable_hash(value)`` through the shared cache (same results)."""
    return INTERN.hash_of(value)


def interned_shard_of(args: Any, shards: int) -> int:
    """:func:`repro.concurrency.sharding.shard_of`, cache-accelerated.

    Bit-identical routing — only the CRC computation is skipped on a
    cache hit.
    """
    if shards <= 1:
        return 0
    return INTERN.hash_of(args) % shards
