"""Deterministic random-number helpers for workloads and tests.

The benchmark harness needs reproducible operation streams: the paper's
operation mix ``M = (Qmix, Umix, Pup, #ops)`` draws weighted operations at
random, and all program versions must see the *same* draw sequence so that
cost differences come from the system under test, not the workload.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Generic, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded wrapper around :class:`random.Random`.

    Exists mostly to make seeding explicit at call sites and to provide the
    handful of draw shapes the workload generator needs.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, salt: int) -> "DeterministicRng":
        """Derive an independent, reproducible sub-stream."""
        return DeterministicRng(hash((self.seed, salt)) & 0x7FFFFFFF)

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        return self._random.sample(items, k)

    def shuffle(self, items: list[T]) -> None:
        self._random.shuffle(items)


class WeightedChoice(Generic[T]):
    """Draw items with fixed relative probabilities.

    Mirrors the paper's weighted query/update mixes: weights must be
    non-negative and sum to a positive value; they are normalised
    internally so callers can pass the paper's weights verbatim.
    """

    def __init__(self, weighted_items: Sequence[tuple[float, T]]) -> None:
        if not weighted_items:
            raise ValueError("WeightedChoice requires at least one item")
        total = sum(weight for weight, _ in weighted_items)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        for weight, _ in weighted_items:
            if weight < 0:
                raise ValueError("weights must be non-negative")
        self._items = [item for _, item in weighted_items]
        self._cumulative: list[float] = []
        running = 0.0
        for weight, _ in weighted_items:
            running += weight / total
            self._cumulative.append(running)
        # Guard against floating-point drift on the last boundary.
        self._cumulative[-1] = 1.0

    def draw(self, rng: DeterministicRng) -> T:
        needle = rng.random()
        for boundary, item in zip(self._cumulative, self._items):
            if needle <= boundary:
                return item
        return self._items[-1]

    @property
    def items(self) -> list[T]:
        return list(self._items)
