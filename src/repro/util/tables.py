"""Plain-text table rendering for GMR dumps and benchmark reports."""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Cells are stringified with ``str``; floats are shown with a compact
    fixed precision so benchmark output stays readable.
    """

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    materialized = [[cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, text in enumerate(row):
            widths[index] = max(widths[index], len(text))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(text.ljust(width) for text, width in zip(cells, widths)).rstrip()

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)
