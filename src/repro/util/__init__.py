"""Small shared utilities: deterministic RNG helpers and table rendering."""

from repro.util.rng import DeterministicRng, WeightedChoice
from repro.util.tables import format_table

__all__ = ["DeterministicRng", "WeightedChoice", "format_table"]
