"""Benchmark harness reproducing the paper's evaluation (Sec. 7).

Each figure of the paper has one entry point returning a
:class:`~repro.bench.runner.FigureResult` with one cost series per
program version:

======  ==================================================================
Figure  Entry point
======  ==================================================================
7       :func:`repro.bench.cuboid.run_figure07`
8       :func:`repro.bench.cuboid.run_figure08`
9       :func:`repro.bench.cuboid.run_figure09`
10      :func:`repro.bench.cuboid.run_figure10`
11      :func:`repro.bench.cuboid.run_figure11`
13      :func:`repro.bench.company.run_figure13`
14      :func:`repro.bench.company.run_figure14`
15      :func:`repro.bench.company.run_figure15`
======  ==================================================================

Run ``python -m repro.bench --figure 7`` (or ``--all``) from the command
line; ``--paper-scale`` restores the published database sizes and
operation counts (the defaults are scaled down to keep a full run in the
minutes range).  Costs are reported both as wall-clock seconds and as
simulated page I/O (buffer misses) — the *shapes* (who wins, where the
break-even points fall) hold under either metric.
"""

from repro.bench.runner import FigureResult, ProgramVersion, Series
from repro.bench.workload import OperationMix

__all__ = ["FigureResult", "ProgramVersion", "Series", "OperationMix"]
