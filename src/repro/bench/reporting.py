"""Rendering figure results and shape summaries.

Besides the raw series tables, :func:`summarize` prints the qualitative
observations the paper's text makes for each figure (break-even points,
who-wins orderings), computed from the measured data — these are the
claims EXPERIMENTS.md checks off.
"""

from __future__ import annotations

from repro.bench.runner import FigureResult


def summarize(result: FigureResult, *, metric: str = "cost") -> str:
    """A figure's table plus computed break-even/ordering notes."""
    lines = [result.to_table(metric=metric), ""]
    lines.extend(shape_notes(result, metric=metric))
    if result.notes:
        lines.append(result.notes)
    return "\n".join(lines)


def shape_notes(result: FigureResult, *, metric: str = "cost") -> list[str]:
    notes: list[str] = []
    names = [series.version for series in result.series]
    if "WithoutGMR" in names:
        for name in names:
            if name == "WithoutGMR":
                continue
            crossover = result.crossover(name, "WithoutGMR", metric=metric)
            if crossover is None:
                notes.append(
                    f"{name} beats WithoutGMR over the whole sweep "
                    f"({result.x_label} up to {result.series[0].xs()[-1]})"
                )
            else:
                notes.append(
                    f"break-even of {name} vs WithoutGMR at "
                    f"{result.x_label} ≈ {crossover}"
                )
    totals = {
        series.version: (
            series.total_cost() if metric == "cost" else series.total_seconds()
        )
        for series in result.series
    }
    ordering = sorted(totals, key=totals.get)  # type: ignore[arg-type]
    notes.append(
        "total-cost ordering (cheapest first): " + " < ".join(ordering)
    )
    return notes
