"""Operation mixes: ``M = (Qmix, Umix, Pup, #ops)`` (Sec. 7.1).

An operation mix draws, for each of ``#ops`` operations, an update with
probability ``Pup`` (choosing among the weighted updates of ``Umix``) or
a query otherwise (choosing among the weighted queries of ``Qmix``).
Operations are identified by the paper's single-letter codes (``Qbw``,
``Qfw``, ``D``, ``I``, ``S``, ``R``, ``T``, ...); the benchmark drivers
map codes to actions.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from repro.util.rng import DeterministicRng, WeightedChoice


@dataclass
class OperationMix:
    """One benchmark operation profile."""

    queries: Sequence[tuple[float, str]]
    updates: Sequence[tuple[float, str]]
    update_probability: float
    operations: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.update_probability <= 1.0:
            raise ValueError("update probability must be within [0, 1]")
        self._query_choice = (
            WeightedChoice(self.queries) if self.queries else None
        )
        self._update_choice = (
            WeightedChoice(self.updates) if self.updates else None
        )

    def draw(self, rng: DeterministicRng) -> str:
        """Draw one operation code."""
        take_update = rng.random() < self.update_probability
        if take_update and self._update_choice is not None:
            return self._update_choice.draw(rng)
        if not take_update and self._query_choice is not None:
            return self._query_choice.draw(rng)
        # Degenerate profiles (Pup=1 with no updates or Pup=0 with no
        # queries) fall back to whichever side exists.
        if self._update_choice is not None:
            return self._update_choice.draw(rng)
        if self._query_choice is not None:
            return self._query_choice.draw(rng)
        raise ValueError("operation mix is empty")

    def stream(self, rng: DeterministicRng) -> Iterator[str]:
        for _ in range(self.operations):
            yield self.draw(rng)
