"""Operation mixes: ``M = (Qmix, Umix, Pup, #ops)`` (Sec. 7.1).

An operation mix draws, for each of ``#ops`` operations, an update with
probability ``Pup`` (choosing among the weighted updates of ``Umix``) or
a query otherwise (choosing among the weighted queries of ``Qmix``).
Operations are identified by the paper's single-letter codes (``Qbw``,
``Qfw``, ``D``, ``I``, ``S``, ``R``, ``T``, ...); the benchmark drivers
map codes to actions.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from repro.util.rng import DeterministicRng, WeightedChoice


@dataclass
class OperationMix:
    """One benchmark operation profile."""

    queries: Sequence[tuple[float, str]]
    updates: Sequence[tuple[float, str]]
    update_probability: float
    operations: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.update_probability <= 1.0:
            raise ValueError("update probability must be within [0, 1]")
        self._query_choice = (
            WeightedChoice(self.queries) if self.queries else None
        )
        self._update_choice = (
            WeightedChoice(self.updates) if self.updates else None
        )

    def draw(self, rng: DeterministicRng) -> str:
        """Draw one operation code."""
        take_update = rng.random() < self.update_probability
        if take_update and self._update_choice is not None:
            return self._update_choice.draw(rng)
        if not take_update and self._query_choice is not None:
            return self._query_choice.draw(rng)
        # Degenerate profiles (Pup=1 with no updates or Pup=0 with no
        # queries) fall back to whichever side exists.
        if self._update_choice is not None:
            return self._update_choice.draw(rng)
        if self._query_choice is not None:
            return self._query_choice.draw(rng)
        raise ValueError("operation mix is empty")

    def stream(self, rng: DeterministicRng) -> Iterator[str]:
        for _ in range(self.operations):
            yield self.draw(rng)

    def chunked_stream(
        self, rng: DeterministicRng, batch_size: int
    ) -> Iterator[Iterator[str]]:
        """The same operation stream, grouped into batches of at most
        ``batch_size`` codes (the batched-maintenance ablation runs each
        chunk inside one ``db.batch()`` scope).

        Each chunk is a *lazy* iterator: codes are drawn as the consumer
        advances it.  Benchmark drivers draw operation parameters from
        the same rng between codes, so eager per-chunk drawing would
        reorder the draw sequence relative to :meth:`stream` and the
        batched run would perform different operations.  Consume each
        chunk fully before requesting the next."""
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        emitted = 0
        while emitted < self.operations:
            take = min(batch_size, self.operations - emitted)
            emitted += take

            def chunk(count: int = take) -> Iterator[str]:
                for _ in range(count):
                    yield self.draw(rng)

            yield chunk()
