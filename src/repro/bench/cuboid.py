"""The Cuboid benchmark (Sec. 7.1) — Figures 7 through 11.

The application profile follows the paper: a database of cuboids (8000
at paper scale), each referencing 8 vertices and a material; queries are
the backward query ``Qbw`` (cuboids whose volume lies in a random
ε-interval) and the forward query ``Qfw`` (the volume of the cuboid with
a random ``CuboidID``, supported by an index); updates are ``D`` (delete
a random cuboid), ``I`` (create one with random dimensions), and ``S`` /
``R`` / ``T`` (scale / rotate / translate a random cuboid).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.bench.runner import (
    FigureResult,
    INFO_HIDING,
    LAZY,
    MeasuredPoint,
    ProgramVersion,
    Series,
    WITH_GMR,
    WITHOUT_GMR,
    measure,
)
from repro.bench.workload import OperationMix
from repro.core.strategies import Strategy
from repro.domains.geometry import (
    build_geometry_schema,
    create_cuboid,
    create_material,
    create_vertex,
)
from repro.gom.database import ObjectBase
from repro.gomql import run_statement
from repro.util.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover
    from repro.observe.config import MaterializationConfig

PAPER_CUBOIDS = 8000
#: Scaled-down default so a full figure run stays in the seconds range.
DEFAULT_CUBOIDS = 500

_VOLUME_MAX = 1000.0  # dims drawn from [1, 10]³
_EPSILON = 5.0


@dataclass
class CuboidConfig:
    cuboids: int = DEFAULT_CUBOIDS
    seed: int = 7
    #: The paper keeps the buffer deliberately small relative to the
    #: database ("a correspondingly small database buffer of 600 kBytes
    #: to compensate for the small database volume"); the quick-scale
    #: default preserves that DB:buffer ratio.
    buffer_pages: int = 32
    #: Optional unified configuration (fault policy, observability, ...)
    #: for the object base; the program version's instrumentation level
    #: always wins over ``materialization.level``.
    materialization: "MaterializationConfig | None" = None


class CuboidApplication:
    """One program version's instance of the Cuboid application."""

    def __init__(self, version: ProgramVersion, config: CuboidConfig) -> None:
        self.version = version
        self.config = config
        if config.materialization is not None:
            base_config = dataclasses.replace(
                config.materialization, level=version.level
            )
            self.db = ObjectBase(
                config=base_config, buffer_pages=config.buffer_pages
            )
        else:
            self.db = ObjectBase(
                level=version.level, buffer_pages=config.buffer_pages
            )
        build_geometry_schema(self.db, strict_cuboids=version.strict)
        data_rng = DeterministicRng(config.seed)
        self.materials = [
            create_material(self.db, "Iron", 7.86),
            create_material(self.db, "Gold", 19.0),
            create_material(self.db, "Copper", 8.96),
        ]
        self.cuboids: list = []
        self.cuboid_ids: list[int] = []
        self._next_id = 1
        for _ in range(config.cuboids):
            self._create_cuboid(data_rng)
        self.db.create_attr_index("Cuboid", "CuboidID")
        # A reusable parameter vertex for the geometric transformations.
        self.param_vertex = create_vertex(self.db, 1.0, 1.0, 1.0)
        self.gmr = None
        if version.use_gmr:
            self.gmr = self.db.materialize(
                [("Cuboid", "volume")], strategy=version.strategy
            )
            if version.pre_invalidate:
                self.db.gmr_manager.force_invalidate_all(self.gmr)

    # -- data helpers ---------------------------------------------------------

    def _create_cuboid(self, rng: DeterministicRng):
        cuboid = create_cuboid(
            self.db,
            origin=(rng.uniform(-50, 50), rng.uniform(-50, 50), rng.uniform(-50, 50)),
            dims=(rng.uniform(1, 10), rng.uniform(1, 10), rng.uniform(1, 10)),
            material=rng.choice(self.materials),
            value=rng.uniform(1.0, 100.0),
            cuboid_id=self._next_id,
        )
        self.cuboids.append(cuboid)
        self.cuboid_ids.append(self._next_id)
        self._next_id += 1
        return cuboid

    def _set_param_vertex(self, x: float, y: float, z: float) -> None:
        self.param_vertex.set_X(x)
        self.param_vertex.set_Y(y)
        self.param_vertex.set_Z(z)

    # -- operations -------------------------------------------------------------

    def q_backward(self, rng: DeterministicRng) -> int:
        center = rng.uniform(0.0, _VOLUME_MAX)
        result = run_statement(
            self.db,
            "range c: Cuboid retrieve c where c.volume > lo and c.volume < hi",
            {"lo": center - _EPSILON, "hi": center + _EPSILON},
        )
        return len(result)

    def q_forward(self, rng: DeterministicRng) -> float | None:
        cuboid_id = rng.choice(self.cuboid_ids)
        result = run_statement(
            self.db,
            "range c: Cuboid retrieve c.volume where c.CuboidID = k",
            {"k": cuboid_id},
        )
        return result[0] if result else None

    def u_insert(self, rng: DeterministicRng) -> None:
        self._create_cuboid(rng)

    def u_delete(self, rng: DeterministicRng) -> None:
        if len(self.cuboids) <= 1:
            return
        index = rng.randint(0, len(self.cuboids) - 1)
        cuboid = self.cuboids.pop(index)
        self.cuboid_ids.pop(index)
        self.db.delete(cuboid)

    def u_scale(self, rng: DeterministicRng) -> None:
        cuboid = rng.choice(self.cuboids)
        self._set_param_vertex(
            rng.uniform(0.8, 1.25), rng.uniform(0.8, 1.25), rng.uniform(0.8, 1.25)
        )
        cuboid.scale(self.param_vertex)

    def u_rotate(self, rng: DeterministicRng) -> None:
        cuboid = rng.choice(self.cuboids)
        cuboid.rotate(rng.choice("xyz"), rng.uniform(0.0, 3.14))

    def u_translate(self, rng: DeterministicRng) -> None:
        cuboid = rng.choice(self.cuboids)
        self._set_param_vertex(
            rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)
        )
        cuboid.translate(self.param_vertex)

    _DISPATCH = {
        "Qbw": q_backward,
        "Qfw": q_forward,
        "I": u_insert,
        "D": u_delete,
        "S": u_scale,
        "R": u_rotate,
        "T": u_translate,
    }

    def run_mix(
        self,
        mix: OperationMix,
        rng: DeterministicRng,
        *,
        batch_size: int | None = None,
    ) -> None:
        """Run the mix; ``batch_size`` groups the operation stream into
        ``db.batch()`` scopes of that many operations (queries inside a
        chunk force a flush, so mixed chunks stay correct)."""
        if batch_size is None:
            for code in mix.stream(rng):
                self._DISPATCH[code](self, rng)
            return
        for chunk in mix.chunked_stream(rng, batch_size):
            with self.db.batch():
                for code in chunk:
                    self._DISPATCH[code](self, rng)


def _sweep(
    versions: list[ProgramVersion],
    config: CuboidConfig,
    points: list[tuple[float, OperationMix]],
    *,
    figure: str,
    title: str,
    x_label: str,
    notes: str = "",
) -> FigureResult:
    """Run every version over the same sweep with identical op streams."""
    series: list[Series] = []
    for version in versions:
        application = CuboidApplication(version, config)
        measured = Series(version.name)
        for index, (x, mix) in enumerate(points):
            rng = DeterministicRng(config.seed).fork(1000 + index)
            point = measure(
                application.db,
                lambda app=application, m=mix, r=rng: app.run_mix(m, r),
                x,
            )
            measured.points.append(point)
        series.append(measured)
    return FigureResult(
        figure=figure,
        title=title,
        x_label=x_label,
        series=series,
        notes=notes,
    )


def _pup_range(start: float, stop: float, step: float) -> list[float]:
    values = []
    current = start
    while current <= stop + 1e-9:
        values.append(round(current, 4))
        current += step
    return values


def run_figure07(
    *,
    cuboids: int = DEFAULT_CUBOIDS,
    ops_per_point: int = 40,
    pup_step: float = 0.1,
    seed: int = 7,
    paper_scale: bool = False,
) -> FigureResult:
    """Figure 7: cost under varying update probabilities.

    Qmix = {0.5 Qbw, 0.5 Qfw}; Umix = {0.5 I, 0.5 S}; Pup 0→1.
    Expected shape: the GMR versions win up to Pup ≈ 0.9; information
    hiding moves the break-even to ≈ 0.95.
    """
    if paper_scale:
        cuboids, ops_per_point, pup_step = PAPER_CUBOIDS, 40, 0.05
    config = CuboidConfig(cuboids=cuboids, seed=seed)
    points = [
        (
            pup,
            OperationMix(
                queries=[(0.5, "Qbw"), (0.5, "Qfw")],
                updates=[(0.5, "I"), (0.5, "S")],
                update_probability=pup,
                operations=ops_per_point,
            ),
        )
        for pup in _pup_range(0.0, 1.0, pup_step)
    ]
    return _sweep(
        [WITHOUT_GMR, WITH_GMR, INFO_HIDING],
        config,
        points,
        figure="7",
        title="Performance of GMR under varying update probabilities",
        x_label="Pup",
    )


def run_figure08(
    *,
    cuboids: int = DEFAULT_CUBOIDS,
    ops_per_point: int = 200,
    seed: int = 7,
    paper_scale: bool = False,
) -> FigureResult:
    """Figure 8: the break-even point — backward queries vs. scales.

    500 operations per point at paper scale; Pup swept through the high
    range 0.94 → 1.0.  Expected: break-even at Pup ≈ 0.96 (WithGMR) and
    ≈ 0.975 (InfoHiding).
    """
    if paper_scale:
        cuboids, ops_per_point = PAPER_CUBOIDS, 500
    config = CuboidConfig(cuboids=cuboids, seed=seed)
    if paper_scale:
        # The published sweep: 0.94, 0.96, then increments of 0.002.
        pups = [0.94, 0.96] + _pup_range(0.962, 1.0, 0.002)
    else:
        # At quick scale the smaller database compresses the gap between
        # query gain and update penalty, which shifts the crossover to a
        # lower update probability — sweep a wider window so it stays
        # visible.
        pups = _pup_range(0.75, 1.0, 0.0125)
    points = [
        (
            pup,
            OperationMix(
                queries=[(1.0, "Qbw")],
                updates=[(1.0, "S")],
                update_probability=pup,
                operations=ops_per_point,
            ),
        )
        for pup in pups
    ]
    return _sweep(
        [WITHOUT_GMR, WITH_GMR, INFO_HIDING],
        config,
        points,
        figure="8",
        title="Determining the break-even point of function materialization",
        x_label="Pup",
    )


def run_figure09(
    *,
    cuboids: int = DEFAULT_CUBOIDS,
    max_queries: int = 500,
    step: int = 50,
    seed: int = 7,
    paper_scale: bool = False,
    layout: str = "rows",
) -> FigureResult:
    """Figure 9: the cost of forward queries (no updates at all).

    Expected: the GMR constitutes a gain of roughly a factor 4–5.
    ``layout`` selects the physical GMR store for the WithGMR version
    (``"rows"`` or ``"columnar"``); the WithoutGMR baseline never
    touches a GMR, so its cost is layout-independent by construction.
    """
    if paper_scale:
        cuboids, max_queries, step = PAPER_CUBOIDS, 2000, 200
    if layout == "rows":
        config = CuboidConfig(cuboids=cuboids, seed=seed)
    else:
        from repro.observe.config import MaterializationConfig

        config = CuboidConfig(
            cuboids=cuboids,
            seed=seed,
            materialization=MaterializationConfig(layout=layout),
        )
    points = [
        (
            float(count),
            OperationMix(
                queries=[(1.0, "Qfw")],
                updates=[],
                update_probability=0.0,
                operations=count,
            ),
        )
        for count in range(step, max_queries + 1, step)
    ]
    return _sweep(
        [WITHOUT_GMR, WITH_GMR],
        config,
        points,
        figure="9",
        title="Cost of forward queries",
        x_label="#Qfw",
    )


def run_figure10(
    *,
    cuboids: int = DEFAULT_CUBOIDS,
    max_rotations: int = 500,
    step: int = 50,
    seed: int = 7,
    paper_scale: bool = False,
) -> FigureResult:
    """Figure 10: invalidation overhead incurred by rotations only.

    Four versions; ``Lazy`` starts with every volume invalidated (RRR and
    ObjDepFct empty w.r.t. the GMR).  Expected: WithoutGMR ≈ Lazy ≈
    InfoHiding; WithGMR pays close to an order of magnitude more.
    """
    if paper_scale:
        cuboids, max_rotations, step = PAPER_CUBOIDS, 2500, 250
    config = CuboidConfig(cuboids=cuboids, seed=seed)
    points = [
        (
            float(count),
            OperationMix(
                queries=[],
                updates=[(1.0, "R")],
                update_probability=1.0,
                operations=count,
            ),
        )
        for count in range(step, max_rotations + 1, step)
    ]
    return _sweep(
        [WITHOUT_GMR, WITH_GMR, LAZY, INFO_HIDING],
        config,
        points,
        figure="10",
        title="Invalidation overhead incurred by materialized volume",
        x_label="#R",
    )


def run_figure11(
    *,
    cuboids: int = DEFAULT_CUBOIDS,
    ops_per_point: int = 80,
    weight_step: float = 0.1,
    seed: int = 7,
    paper_scale: bool = False,
) -> FigureResult:
    """Figure 11: the benefits of information hiding.

    400 update operations at paper scale; the probability of a scale
    rises 0→1 while rotate falls 1→0.  Expected: WithoutGMR and WithGMR
    roughly flat; InfoHiding climbs from near WithoutGMR towards (but
    staying below) WithGMR — one invalidation per scale instead of 12.
    """
    if paper_scale:
        cuboids, ops_per_point, weight_step = PAPER_CUBOIDS, 400, 0.05
    config = CuboidConfig(cuboids=cuboids, seed=seed)
    points = []
    for scale_weight in _pup_range(0.0, 1.0, weight_step):
        mix = OperationMix(
            queries=[],
            updates=[(scale_weight, "S"), (1.0 - scale_weight, "R")],
            update_probability=1.0,
            operations=ops_per_point,
        )
        points.append((round(scale_weight * ops_per_point, 2), mix))
    return _sweep(
        [WITHOUT_GMR, WITH_GMR, INFO_HIDING],
        config,
        points,
        figure="11",
        title="The benefits of information hiding",
        x_label="#S (of #ops)",
    )
