"""Program versions, measured points and figure results.

The paper compares *program versions* — the same application compiled
against different materialization configurations.  A
:class:`ProgramVersion` captures one configuration; the figure drivers
build one object base per version (same seed → identical data and
operation streams) and measure each sweep point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.strategies import Strategy
from repro.gom.instrumentation import InstrumentationLevel
from repro.util.tables import format_table


@dataclass(frozen=True)
class ProgramVersion:
    """One benchmark configuration (a paper 'program version')."""

    name: str
    use_gmr: bool = True
    level: InstrumentationLevel = InstrumentationLevel.OBJ_DEP
    strategy: Strategy = Strategy.IMMEDIATE
    strict: bool = False
    compensation: bool = False
    pre_invalidate: bool = False
    #: Maintenance mode for the object base ("recompute" | "compensate"
    #: | "delta"); "compensate" is the paper's original behaviour.
    maintenance: str = "compensate"


#: The version names used throughout Sec. 7.
WITHOUT_GMR = ProgramVersion(
    "WithoutGMR", use_gmr=False, level=InstrumentationLevel.NONE
)
WITH_GMR = ProgramVersion("WithGMR")
INFO_HIDING = ProgramVersion(
    "InfoHiding", level=InstrumentationLevel.INFO_HIDING, strict=True
)
LAZY = ProgramVersion("Lazy", strategy=Strategy.LAZY, pre_invalidate=True)
IMMEDIATE = ProgramVersion("Immediate")
LAZY_COMPANY = ProgramVersion("Lazy", strategy=Strategy.LAZY)
COMP_ACTION = ProgramVersion("CompAction", compensation=True)
DELTA = ProgramVersion("Delta", maintenance="delta")


@dataclass
class MeasuredPoint:
    """Cost of one sweep point for one version."""

    x: float
    seconds: float
    page_ios: int
    logical_reads: int
    sim_cost: float


@dataclass
class Series:
    """One version's cost curve."""

    version: str
    points: list[MeasuredPoint] = field(default_factory=list)

    def xs(self) -> list[float]:
        return [point.x for point in self.points]

    def seconds(self) -> list[float]:
        return [point.seconds for point in self.points]

    def costs(self) -> list[float]:
        return [point.sim_cost for point in self.points]

    def total_cost(self) -> float:
        return sum(point.sim_cost for point in self.points)

    def total_seconds(self) -> float:
        return sum(point.seconds for point in self.points)


@dataclass
class FigureResult:
    """All series of one reproduced figure."""

    figure: str
    title: str
    x_label: str
    series: list[Series]
    notes: str = ""

    def series_by_name(self, name: str) -> Series:
        for series in self.series:
            if series.version == name:
                return series
        raise KeyError(f"no series named {name} in figure {self.figure}")

    def to_table(self, *, metric: str = "cost") -> str:
        """Render the figure's series like the paper's plots, as a table.

        ``metric`` is ``cost`` (simulated page-I/O based cost), ``seconds``
        or ``ios``.
        """
        headers = [self.x_label] + [series.version for series in self.series]
        rows = []
        xs = self.series[0].xs()
        for index, x in enumerate(xs):
            row: list[object] = [x]
            for series in self.series:
                point = series.points[index]
                if metric == "seconds":
                    row.append(point.seconds)
                elif metric == "ios":
                    row.append(point.page_ios)
                else:
                    row.append(point.sim_cost)
            rows.append(row)
        title = f"Figure {self.figure}: {self.title} [{metric}]"
        return format_table(headers, rows, title=title)

    def crossover(
        self, cheaper: str, reference: str, *, metric: str = "cost"
    ) -> float | None:
        """First x where ``cheaper`` stops beating ``reference``.

        Returns ``None`` when ``cheaper`` wins over the whole sweep —
        i.e. the break-even point lies beyond the measured range.
        """
        first = self.series_by_name(cheaper)
        second = self.series_by_name(reference)
        for point_a, point_b in zip(first.points, second.points):
            value_a = point_a.sim_cost if metric == "cost" else point_a.seconds
            value_b = point_b.sim_cost if metric == "cost" else point_b.seconds
            if value_a > value_b:
                return point_a.x
        return None


def measure(db, action: Callable[[], None], x: float) -> MeasuredPoint:
    """Run ``action`` and capture wall-clock plus buffer-stat deltas."""
    before = db.buffer.stats.snapshot()
    start = time.perf_counter()
    action()
    elapsed = time.perf_counter() - start
    delta = db.buffer.stats.delta(before)
    return MeasuredPoint(
        x=x,
        seconds=elapsed,
        page_ios=delta.misses + delta.writebacks,
        logical_reads=delta.logical_reads,
        sim_cost=db.cost_model.cost(delta),
    )
