"""Command-line entry point: ``python -m repro.bench``.

Examples::

    python -m repro.bench --figure 7
    python -m repro.bench --all --metric seconds
    python -m repro.bench --all --paper-scale --output results.md
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import cuboid, company
from repro.bench.reporting import summarize

_RUNNERS = {
    "7": cuboid.run_figure07,
    "8": cuboid.run_figure08,
    "9": cuboid.run_figure09,
    "10": cuboid.run_figure10,
    "11": cuboid.run_figure11,
    "13": company.run_figure13,
    "14": company.run_figure14,
    "15": company.run_figure15,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the figures of the paper's evaluation section.",
    )
    parser.add_argument(
        "--figure",
        action="append",
        choices=sorted(_RUNNERS, key=int),
        help="figure number to run (repeatable)",
    )
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the published database sizes and operation counts",
    )
    parser.add_argument(
        "--metric",
        choices=["cost", "seconds", "ios"],
        default="cost",
        help="which cost metric to tabulate (default: simulated cost)",
    )
    parser.add_argument(
        "--output", help="also append the report to this file", default=None
    )
    arguments = parser.parse_args(argv)

    figures = sorted(set(arguments.figure or []), key=int)
    if arguments.all:
        figures = sorted(_RUNNERS, key=int)
    if not figures:
        parser.error("pass --figure N (repeatable) or --all")

    chunks: list[str] = []
    for figure in figures:
        start = time.perf_counter()
        result = _RUNNERS[figure](paper_scale=arguments.paper_scale)
        elapsed = time.perf_counter() - start
        report = summarize(result, metric=arguments.metric)
        chunks.append(report + f"\n(ran in {elapsed:.1f}s)\n")
        print(report)
        print(f"(ran in {elapsed:.1f}s)\n")

    if arguments.output:
        with open(arguments.output, "a", encoding="utf-8") as handle:
            handle.write("\n\n".join(chunks))
            handle.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
