"""The Company benchmark (Sec. 7.2) — Figures 13, 14 and 15.

Two applications over the personnel/project schema:

* ``ranking`` — backward queries (Fig. 13) and forward queries (Fig. 14)
  against a materialized ⟨⟨ranking⟩⟩, mixed with promotions (``P``: a
  random employee's job status flags change);
* ``matrix`` — selections on the department × project matrix (``Qsel,m``)
  mixed with project insertions (``N``), comparing *no GMR*, *immediate*,
  *lazy* and *compensating action* maintenance of ⟨⟨matrix⟩⟩ (Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import (
    COMP_ACTION,
    DELTA,
    FigureResult,
    IMMEDIATE,
    LAZY_COMPANY,
    ProgramVersion,
    Series,
    WITHOUT_GMR,
    measure,
)
from repro.bench.workload import OperationMix
from repro.domains.company import (
    add_random_project,
    build_company_schema,
    define_company_deltas,
    increase_matrix,
    populate_company,
)
from repro.gom.database import ObjectBase
from repro.observe.config import MaterializationConfig
from repro.gomql import run_statement
from repro.util.rng import DeterministicRng

_RANKING_EPSILON = 0.3


@dataclass
class CompanyConfig:
    departments: int = 20
    employees_per_department: int = 100
    projects: int = 1000
    jobs_per_employee: int = 10
    seed: int = 11
    buffer_pages: int = 150

    @staticmethod
    def quick() -> "CompanyConfig":
        """Scaled-down population for the default benchmark runs."""
        return CompanyConfig(
            departments=5,
            employees_per_department=20,
            projects=150,
            jobs_per_employee=6,
        )

    @staticmethod
    def matrix_shape() -> "CompanyConfig":
        """The Figure 15 population: 5 departments × 10 employees, 100
        projects, 5 programmers per project."""
        return CompanyConfig(
            departments=5,
            employees_per_department=10,
            projects=100,
            jobs_per_employee=10,
        )


class RankingApplication:
    """Figures 13/14: queries on ``ranking`` plus promotions."""

    def __init__(self, version: ProgramVersion, config: CompanyConfig) -> None:
        self.version = version
        self.config = config
        self.db = ObjectBase(level=version.level, buffer_pages=config.buffer_pages)
        build_company_schema(self.db)
        self.fixture = populate_company(
            self.db,
            DeterministicRng(config.seed),
            departments=config.departments,
            employees_per_department=config.employees_per_department,
            projects=config.projects,
            jobs_per_employee=config.jobs_per_employee,
        )
        self.db.create_attr_index("Employee", "EmpNo")
        self.gmr = None
        if version.use_gmr:
            self.gmr = self.db.materialize(
                [("Employee", "ranking")], strategy=version.strategy
            )
        self._max_ranking = 12.0

    # -- operations ------------------------------------------------------------

    def q_backward(self, rng: DeterministicRng) -> int:
        center = rng.uniform(0.0, self._max_ranking)
        result = run_statement(
            self.db,
            "range e: Employee retrieve e "
            "where e.ranking > lo and e.ranking < hi",
            {"lo": center - _RANKING_EPSILON, "hi": center + _RANKING_EPSILON},
        )
        return len(result)

    def q_forward(self, rng: DeterministicRng) -> float | None:
        employee = rng.choice(self.fixture.employees)
        number = employee.EmpNo
        result = run_statement(
            self.db,
            "range e: Employee retrieve e.ranking where e.EmpNo = k",
            {"k": number},
        )
        return result[0] if result else None

    def u_promote(self, rng: DeterministicRng) -> None:
        """P: promotion/degradation — a random job's status flips."""
        employee = rng.choice(self.fixture.employees)
        jobs = employee.JobHistory.elements()
        if not jobs:
            return
        job = rng.choice(jobs)
        if rng.random() < 0.5:
            job.set_OnTime(not job.OnTime)
        else:
            job.set_WithinBudget(not job.WithinBudget)

    def u_new_employee(self, rng: DeterministicRng) -> None:
        """N: hire a new employee into a random department."""
        department = rng.choice(self.fixture.departments)
        history = self.db.new_collection("Jobs")
        number = len(self.fixture.employees) + 1
        employee = self.db.new(
            "Employee",
            Name=f"E{number}",
            EmpNo=number,
            Salary=rng.uniform(30_000.0, 120_000.0),
            JobHistory=history,
        )
        department.Emps.insert(employee)
        self.fixture.employees.append(employee)

    _DISPATCH = {
        "Qbw": q_backward,
        "Qfw": q_forward,
        "P": u_promote,
        "N": u_new_employee,
    }

    def run_mix(self, mix: OperationMix, rng: DeterministicRng) -> None:
        for code in mix.stream(rng):
            self._DISPATCH[code](self, rng)


class MatrixApplication:
    """Figure 15: matrix selections plus project insertions."""

    def __init__(self, version: ProgramVersion, config: CompanyConfig) -> None:
        self.version = version
        self.config = config
        self.db = ObjectBase(
            config=MaterializationConfig(
                level=version.level, maintenance=version.maintenance
            ),
            buffer_pages=config.buffer_pages,
        )
        build_company_schema(self.db)
        self.fixture = populate_company(
            self.db,
            DeterministicRng(config.seed),
            departments=config.departments,
            employees_per_department=config.employees_per_department,
            projects=config.projects,
            jobs_per_employee=config.jobs_per_employee,
        )
        self.company = self.fixture.company
        self._new_projects = 0
        self.gmr = None
        if version.use_gmr:
            self.gmr = self.db.materialize(
                [("Company", "matrix")], strategy=version.strategy
            )
            if version.maintenance == "delta":
                define_company_deltas(self.db)
            elif version.compensation:
                self.db.gmr_manager.register_compensation(
                    "Company",
                    "add_project",
                    ("Company", "matrix"),
                    increase_matrix,
                )

    # -- operations ------------------------------------------------------------

    def q_select(self, rng: DeterministicRng) -> list:
        """Qsel,m: projects of a random department's matrix lines."""
        dep_no = rng.randint(0, self.config.departments - 1)
        lines = self.company.matrix()
        return [line.proj for line in lines if line.dep.DepNo == dep_no]

    def u_new_project(self, rng: DeterministicRng) -> None:
        """N: create a new project with 5 random programmers."""
        self._new_projects += 1
        add_random_project(
            self.db,
            rng,
            self.company,
            self.fixture.employees,
            programmers=5,
            index=self._new_projects,
        )

    _DISPATCH = {"Qsel": q_select, "N": u_new_project}

    def run_mix(self, mix: OperationMix, rng: DeterministicRng) -> None:
        for code in mix.stream(rng):
            self._DISPATCH[code](self, rng)


def _sweep(
    application_class,
    versions: list[ProgramVersion],
    config: CompanyConfig,
    points: list[tuple[float, OperationMix]],
    *,
    figure: str,
    title: str,
    x_label: str,
) -> FigureResult:
    series: list[Series] = []
    for version in versions:
        application = application_class(version, config)
        measured = Series(version.name)
        for index, (x, mix) in enumerate(points):
            rng = DeterministicRng(config.seed).fork(2000 + index)
            point = measure(
                application.db,
                lambda app=application, m=mix, r=rng: app.run_mix(m, r),
                x,
            )
            measured.points.append(point)
        series.append(measured)
    return FigureResult(
        figure=figure, title=title, x_label=x_label, series=series
    )


def _pups(step: float) -> list[float]:
    values = []
    current = 0.0
    while current <= 1.0 + 1e-9:
        values.append(round(current, 3))
        current += step
    return values


def run_figure13(
    *,
    config: CompanyConfig | None = None,
    ops_per_point: int = 10,
    pup_step: float = 0.1,
    seed: int | None = None,
    paper_scale: bool = False,
) -> FigureResult:
    """Figure 13: cost of backward queries on ⟨⟨ranking⟩⟩ vs. promotions.

    Expected: both GMR versions beat WithoutGMR for Pup < 0.95, and Lazy
    equals Immediate except at Pup = 1.0 (backward queries force all
    results valid anyway).
    """
    config = config or (CompanyConfig() if paper_scale else CompanyConfig.quick())
    if seed is not None:
        config.seed = seed
    points = [
        (
            pup,
            OperationMix(
                queries=[(1.0, "Qbw")],
                updates=[(1.0, "P")],
                update_probability=pup,
                operations=ops_per_point,
            ),
        )
        for pup in _pups(pup_step)
    ]
    return _sweep(
        RankingApplication,
        [WITHOUT_GMR, IMMEDIATE, LAZY_COMPANY],
        config,
        points,
        figure="13",
        title="Cost of backward queries",
        x_label="Pup",
    )


def run_figure14(
    *,
    config: CompanyConfig | None = None,
    ops_per_point: int = 200,
    pup_step: float = 0.1,
    seed: int | None = None,
    paper_scale: bool = False,
) -> FigureResult:
    """Figure 14: cost of forward queries on ⟨⟨ranking⟩⟩ vs. promotions.

    Expected: Lazy beats Immediate by a clear factor across the middle of
    the sweep (invalidated rankings are only recomputed when the forward
    query actually touches them); break-even with WithoutGMR lies at low
    Pup (≈0.1 immediate / ≈0.2 lazy at paper scale).
    """
    config = config or (CompanyConfig() if paper_scale else CompanyConfig.quick())
    if seed is not None:
        config.seed = seed
    if paper_scale:
        ops_per_point = 1000
    points = [
        (
            pup,
            OperationMix(
                queries=[(1.0, "Qfw")],
                updates=[(1.0, "P")],
                update_probability=pup,
                operations=ops_per_point,
            ),
        )
        for pup in _pups(pup_step)
    ]
    return _sweep(
        RankingApplication,
        [WITHOUT_GMR, IMMEDIATE, LAZY_COMPANY],
        config,
        points,
        figure="14",
        title="Cost of forward queries",
        x_label="Pup",
    )


def run_figure15(
    *,
    config: CompanyConfig | None = None,
    ops_per_point: int = 10,
    pup_step: float = 0.1,
    seed: int | None = None,
    paper_scale: bool = False,
) -> FigureResult:
    """Figure 15: the benefits of compensating actions on ⟨⟨matrix⟩⟩.

    Expected: the compensating action wins for 0 < Pup ≤ 0.9; for very
    high update probabilities Lazy becomes superior (subsequent updates
    never trigger a rematerialization); Lazy tracks WithoutGMR closely
    in the 0.5–0.9 region.  The extra Delta arm routes the same handler
    through the generalized maintenance engine
    (``maintenance="delta"``) — it should track CompAction.
    """
    config = config or CompanyConfig.matrix_shape()
    if seed is not None:
        config.seed = seed
    points = [
        (
            pup,
            OperationMix(
                queries=[(1.0, "Qsel")],
                updates=[(1.0, "N")],
                update_probability=pup,
                operations=ops_per_point,
            ),
        )
        for pup in _pups(pup_step)
    ]
    return _sweep(
        MatrixApplication,
        [WITHOUT_GMR, IMMEDIATE, LAZY_COMPANY, COMP_ACTION, DELTA],
        config,
        points,
        figure="15",
        title="The benefits of compensating actions",
        x_label="Pup",
    )
