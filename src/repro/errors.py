"""Exception hierarchy for the function-materialization object base.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


# ---------------------------------------------------------------------------
# Object model (GOM) errors
# ---------------------------------------------------------------------------


class SchemaError(ReproError):
    """A type definition or schema manipulation is invalid."""


class TypeCheckError(SchemaError):
    """A value does not conform to the statically declared type."""


class UnknownTypeError(SchemaError):
    """A type name was referenced that is not part of the schema."""


class DuplicateTypeError(SchemaError):
    """A type with the same name is already defined."""


class UnknownAttributeError(SchemaError):
    """An attribute was referenced that the type does not declare."""


class UnknownOperationError(SchemaError):
    """An operation was invoked that the type does not declare."""


class EncapsulationError(ReproError):
    """A non-public operation was invoked from outside the type."""


class ObjectError(ReproError):
    """Base class for object-manager failures."""


class NoSuchObjectError(ObjectError):
    """An OID does not denote a live object."""


class DeletedObjectError(ObjectError):
    """The object behind an OID has been deleted."""


class NotSetStructuredError(ObjectError):
    """A set operation (insert/remove) was applied to a non-set object."""


class NotListStructuredError(ObjectError):
    """A list operation was applied to a non-list object."""


# ---------------------------------------------------------------------------
# Materialization (GMR) errors
# ---------------------------------------------------------------------------


class MaterializationError(ReproError):
    """Base class for GMR-manager failures."""


class GMRDefinitionError(MaterializationError):
    """A GMR was declared over an invalid function combination."""


class GMRConsistencyError(MaterializationError):
    """A GMR extension violates the consistency invariant (Def. 3.2)."""


class CompensationError(MaterializationError):
    """A compensating action was declared for an illegal operation."""


class AtomicArgumentError(MaterializationError):
    """A function with atomic argument types was materialized without a
    value or range restriction (Sec. 6.2)."""


# ---------------------------------------------------------------------------
# Static analysis (Appendix) errors
# ---------------------------------------------------------------------------


class AnalysisError(ReproError):
    """Base class for path-extraction analysis failures."""


class UnsupportedConstructError(AnalysisError):
    """The function body uses a construct outside the analyzable subset."""


# ---------------------------------------------------------------------------
# Predicate subsystem errors
# ---------------------------------------------------------------------------


class PredicateError(ReproError):
    """Base class for predicate-subsystem failures."""


class PredicateClassError(PredicateError):
    """A predicate falls outside the Rosenkrantz–Hunt decidable subclass."""


# ---------------------------------------------------------------------------
# Query language errors
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for GOMql failures."""


class LexError(QueryError):
    """The query text could not be tokenized."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(QueryError):
    """The token stream does not form a valid GOMql statement."""


class PlanningError(QueryError):
    """No executable plan could be produced for the query."""


class ExecutionError(QueryError):
    """The query plan failed during evaluation."""


# ---------------------------------------------------------------------------
# Storage errors
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-substrate failures."""


class PageFullError(StorageError):
    """A record does not fit into a page."""


class RecordNotFoundError(StorageError):
    """A record id does not denote a stored record."""
