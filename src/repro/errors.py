"""Exception hierarchy for the function-materialization object base.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class InternalError(ReproError):
    """An internal invariant was violated — a library bug, not a usage
    error.

    Replaces production ``assert`` statements on hot paths: unlike an
    assert it survives ``python -O`` (asserts are stripped under
    optimization, silently disabling the check) and it carries a
    message users can report.
    """


# ---------------------------------------------------------------------------
# Object model (GOM) errors
# ---------------------------------------------------------------------------


class SchemaError(ReproError):
    """A type definition or schema manipulation is invalid."""


class TypeCheckError(SchemaError):
    """A value does not conform to the statically declared type."""


class UnknownTypeError(SchemaError):
    """A type name was referenced that is not part of the schema."""


class DuplicateTypeError(SchemaError):
    """A type with the same name is already defined."""


class UnknownAttributeError(SchemaError):
    """An attribute was referenced that the type does not declare."""


class UnknownOperationError(SchemaError):
    """An operation was invoked that the type does not declare."""


class EncapsulationError(ReproError):
    """A non-public operation was invoked from outside the type."""


class ObjectError(ReproError):
    """Base class for object-manager failures."""


class NoSuchObjectError(ObjectError):
    """An OID does not denote a live object."""


class DeletedObjectError(ObjectError):
    """The object behind an OID has been deleted."""


class NotSetStructuredError(ObjectError):
    """A set operation (insert/remove) was applied to a non-set object."""


class NotListStructuredError(ObjectError):
    """A list operation was applied to a non-list object."""


# ---------------------------------------------------------------------------
# Materialization (GMR) errors
# ---------------------------------------------------------------------------


class MaterializationError(ReproError):
    """Base class for GMR-manager failures."""


class GMRDefinitionError(MaterializationError):
    """A GMR was declared over an invalid function combination."""


class GMRConsistencyError(MaterializationError):
    """A GMR extension violates the consistency invariant (Def. 3.2)."""


class CompensationError(MaterializationError):
    """A compensating action was declared for an illegal operation."""


class AtomicArgumentError(MaterializationError):
    """A function with atomic argument types was materialized without a
    value or range restriction (Sec. 6.2)."""


class FunctionExecutionError(MaterializationError):
    """A materialized function's body failed under the execution guard.

    Wraps the user-code exception (``cause``) or a wall-clock budget
    overrun raised while (re-)materializing ``fid(args)``.  The failing
    entry has been demoted to the ERROR validity state and a bounded
    retry has been scheduled before this error surfaces — maintenance
    loops catch it and continue; forward queries propagate it.
    """

    def __init__(
        self,
        fid: str,
        args: tuple = (),
        *,
        cause: "BaseException | None" = None,
        message: str = "",
    ) -> None:
        detail = message or (
            f"{fid}{args!r} failed: {cause!r}" if cause is not None
            else f"{fid}{args!r} failed"
        )
        super().__init__(detail)
        self.fid = fid
        self.args_tuple = args
        self.cause = cause


class FunctionTimeoutError(FunctionExecutionError):
    """A function body overran the guard's wall-clock budget.

    The computed value (if any) is discarded: a function that stalls is
    treated exactly like one that raises, so a wedged body cannot hold
    the maintenance loop hostage.
    """

    def __init__(
        self, fid: str, args: tuple, *, elapsed: float, budget: float
    ) -> None:
        super().__init__(
            fid,
            args,
            message=(
                f"{fid}{args!r} overran its call budget: "
                f"{elapsed:.4f}s > {budget:.4f}s"
            ),
        )
        self.elapsed = elapsed
        self.budget = budget


class FunctionQuarantinedError(MaterializationError):
    """Execution of a function was denied by its open circuit breaker.

    Raised instead of running the body while the function is
    quarantined; readers degrade to direct evaluation (Sec. 3.2
    transparency), maintenance paths degrade to mark-and-schedule.
    """

    def __init__(self, fid: str) -> None:
        super().__init__(f"{fid} is quarantined (circuit breaker open)")
        self.fid = fid


# ---------------------------------------------------------------------------
# Static analysis (Appendix) errors
# ---------------------------------------------------------------------------


class AnalysisError(ReproError):
    """Base class for path-extraction analysis failures."""


class UnsupportedConstructError(AnalysisError):
    """The function body uses a construct outside the analyzable subset."""


# ---------------------------------------------------------------------------
# Predicate subsystem errors
# ---------------------------------------------------------------------------


class PredicateError(ReproError):
    """Base class for predicate-subsystem failures."""


class PredicateClassError(PredicateError):
    """A predicate falls outside the Rosenkrantz–Hunt decidable subclass."""


# ---------------------------------------------------------------------------
# Query language errors
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for GOMql failures."""


class LexError(QueryError):
    """The query text could not be tokenized."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(QueryError):
    """The token stream does not form a valid GOMql statement."""


class PlanningError(QueryError):
    """No executable plan could be produced for the query."""


class ExecutionError(QueryError):
    """The query plan failed during evaluation."""


# ---------------------------------------------------------------------------
# Storage errors
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-substrate failures."""


class StorageUnavailableError(StorageError):
    """Durable storage cannot currently accept writes.

    Raised by update paths while the object base is in the
    DEGRADED_READ_ONLY or FAILED health state (see
    :mod:`repro.core.health`): a write-ahead-log append or repair
    failed, so the update was *not* applied — the in-memory state and
    the durable log still agree.  Forward queries keep serving; updates
    raise this until a probe re-arms the storage (or forever, once
    FAILED).
    """


class PageFullError(StorageError):
    """A record does not fit into a page."""


class RecordNotFoundError(StorageError):
    """A record id does not denote a stored record."""
