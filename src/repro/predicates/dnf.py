"""Negation pushing and disjunctive normal form.

The cover test (Sec. 6) transforms selection predicates into disjunctive
normal form; each disjunct is a conjunction of (possibly negated)
comparisons, and negated comparisons are eliminated by operator flipping
(``¬(x ≤ y)`` becomes ``x > y``).
"""

from __future__ import annotations

from itertools import product

from repro.predicates.ast import (
    And,
    BoolConst,
    Comparison,
    FALSE,
    Not,
    Or,
    Predicate,
    TRUE,
)


def negate(predicate: Predicate) -> Predicate:
    """Push one negation through ``predicate`` (De Morgan + flipping)."""
    if isinstance(predicate, BoolConst):
        return FALSE if predicate.value else TRUE
    if isinstance(predicate, Comparison):
        return predicate.negated()
    if isinstance(predicate, Not):
        return predicate.part
    if isinstance(predicate, And):
        return Or(tuple(negate(part) for part in predicate.parts))
    if isinstance(predicate, Or):
        return And(tuple(negate(part) for part in predicate.parts))
    raise TypeError(f"cannot negate {predicate!r}")


def _nnf(predicate: Predicate) -> Predicate:
    """Negation normal form: negations only on comparisons, then removed."""
    if isinstance(predicate, (BoolConst, Comparison)):
        return predicate
    if isinstance(predicate, Not):
        return _nnf(negate(predicate.part))
    if isinstance(predicate, And):
        return And(tuple(_nnf(part) for part in predicate.parts))
    if isinstance(predicate, Or):
        return Or(tuple(_nnf(part) for part in predicate.parts))
    raise TypeError(f"unknown predicate node {predicate!r}")


def to_dnf(predicate: Predicate) -> list[list[Comparison]]:
    """Disjunctive normal form as a list of conjunctions of comparisons.

    Boolean constants are folded away: an always-true predicate yields
    ``[[]]`` (one empty conjunct — trivially satisfiable) and an
    always-false predicate yields ``[]`` (no disjunct).
    """
    normalized = _nnf(predicate)
    return _dnf(normalized)


def _dnf(predicate: Predicate) -> list[list[Comparison]]:
    if isinstance(predicate, BoolConst):
        return [[]] if predicate.value else []
    if isinstance(predicate, Comparison):
        return [[predicate]]
    if isinstance(predicate, Or):
        result: list[list[Comparison]] = []
        for part in predicate.parts:
            result.extend(_dnf(part))
        return result
    if isinstance(predicate, And):
        branches = [_dnf(part) for part in predicate.parts]
        if any(not branch for branch in branches):
            return []
        result = []
        for combo in product(*branches):
            conjunct: list[Comparison] = []
            for piece in combo:
                conjunct.extend(piece)
            result.append(conjunct)
        return result
    raise TypeError(f"unexpected node in NNF: {predicate!r}")
