"""Evaluating predicates against object bindings.

Restriction predicates are materialized like ordinary functions
(Sec. 6.1): evaluation navigates attribute paths through handles, so a
tracer active during evaluation records exactly the objects the predicate
result depends on — which is what keeps restricted GMRs consistent.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import PredicateError
from repro.predicates.ast import (
    And,
    BoolConst,
    Comparison,
    Not,
    Or,
    Predicate,
    Variable,
)


def _resolve(variable: Variable, binding: Mapping[str, Any]) -> Any:
    try:
        value = binding[variable.name]
    except KeyError:
        raise PredicateError(f"unbound variable {variable.name}") from None
    for attribute in variable.path:
        value = getattr(value, attribute)
    return value


def _compare(op: str, left: Any, right: Any) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise PredicateError(f"unknown operator {op}")


def evaluate(predicate: Predicate, binding: Mapping[str, Any]) -> bool:
    """Evaluate ``predicate`` under ``binding`` (names → handles/values)."""
    if isinstance(predicate, BoolConst):
        return predicate.value
    if isinstance(predicate, Comparison):
        left = _resolve(predicate.left, binding)
        if predicate.right is None:
            right = predicate.constant
        else:
            right = _resolve(predicate.right, binding)
            if predicate.offset:
                right = right + predicate.offset
        return _compare(predicate.op, left, right)
    if isinstance(predicate, And):
        return all(evaluate(part, binding) for part in predicate.parts)
    if isinstance(predicate, Or):
        return any(evaluate(part, binding) for part in predicate.parts)
    if isinstance(predicate, Not):
        return not evaluate(predicate.part, binding)
    raise PredicateError(f"cannot evaluate {predicate!r}")
