"""Predicate subsystem for restricted GMRs (Sec. 6).

Implements the decidable predicate subclass of Rosenkrantz & Hunt used by
the paper to decide whether a ``p``-restricted GMR is applicable to a
backward query: Boolean combinations of comparisons

* Type 1 — ``x θ c`` (variable against constant),
* Type 2 — ``x θ y`` (variable against variable),
* Type 3 — ``x θ y + c`` (variable against variable plus offset),

with ``θ ∈ {=, ≠, <, ≤, ≥, >}``, excluding ``≠`` in Types 2/3.  The
satisfiability of a conjunction is decided in polynomial time with an
all-pairs shortest-path closure; ``σ' ⇒ p`` is decided as the
unsatisfiability of ``¬p ∧ σ'``.
"""

from repro.predicates.ast import (
    And,
    Comparison,
    Constant,
    FALSE,
    Not,
    Or,
    Predicate,
    TRUE,
    Variable,
)
from repro.predicates.dnf import to_dnf, negate
from repro.predicates.satisfiability import is_satisfiable, predicate_satisfiable
from repro.predicates.cover import covers, restriction_applicable
from repro.predicates.evaluate import evaluate

__all__ = [
    "And",
    "Comparison",
    "Constant",
    "FALSE",
    "Not",
    "Or",
    "Predicate",
    "TRUE",
    "Variable",
    "to_dnf",
    "negate",
    "is_satisfiable",
    "predicate_satisfiable",
    "covers",
    "restriction_applicable",
    "evaluate",
]
