"""Predicate AST: terms, comparisons and Boolean combinators.

A :class:`Variable` names a range variable plus an optional attribute
path, so ``c1.V1.X ≤ c2.V1.X`` is a Type-2 comparison between the
variables ``c1.V1.X`` and ``c2.V1.X`` — each distinct (name, path) pair
is one variable of the decision procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Comparison operators (GOM's ``θ ∈ {=, ≠, ≤, <, ≥, >}``).
OPERATORS = ("=", "!=", "<", "<=", ">", ">=")

_NEGATED = {
    "=": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}

_FLIPPED = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}


class Predicate:
    """Base class of predicate nodes."""

    __slots__ = ()

    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True, slots=True)
class Variable:
    """A range variable with an optional attribute path."""

    name: str
    path: tuple[str, ...] = ()

    def attr(self, *attributes: str) -> "Variable":
        return Variable(self.name, self.path + attributes)

    def __str__(self) -> str:
        return ".".join((self.name,) + self.path)

    # -- comparison sugar ----------------------------------------------------

    def _compare(self, op: str, other: Any) -> "Comparison":
        if isinstance(other, Variable):
            return Comparison(self, op, other)
        if isinstance(other, OffsetTerm):
            return Comparison(self, op, other.variable, offset=other.offset)
        return Comparison(self, op, None, constant=other)

    def __lt__(self, other: Any) -> "Comparison":
        return self._compare("<", other)

    def __le__(self, other: Any) -> "Comparison":
        return self._compare("<=", other)

    def __gt__(self, other: Any) -> "Comparison":
        return self._compare(">", other)

    def __ge__(self, other: Any) -> "Comparison":
        return self._compare(">=", other)

    def eq(self, other: Any) -> "Comparison":
        return self._compare("=", other)

    def ne(self, other: Any) -> "Comparison":
        return self._compare("!=", other)

    def plus(self, offset: float) -> "OffsetTerm":
        return OffsetTerm(self, offset)


@dataclass(frozen=True, slots=True)
class OffsetTerm:
    """``y + c`` — the right-hand side of a Type-3 comparison."""

    variable: Variable
    offset: float


@dataclass(frozen=True, slots=True)
class Constant:
    """A literal value (kept for symmetry; comparisons store it inline)."""

    value: Any


@dataclass(frozen=True, slots=True)
class Comparison(Predicate):
    """``left θ right + offset`` or ``left θ constant``.

    * Type 1: ``right is None`` — compare against ``constant``;
    * Type 2: ``right`` set, ``offset == 0``;
    * Type 3: ``right`` set, ``offset != 0``.
    """

    left: Variable
    op: str
    right: Variable | None
    offset: float = 0.0
    constant: Any = None

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    @property
    def comparison_type(self) -> int:
        if self.right is None:
            return 1
        return 2 if self.offset == 0 else 3

    def negated(self) -> "Comparison":
        return Comparison(
            self.left, _NEGATED[self.op], self.right, self.offset, self.constant
        )

    def variables(self) -> set[Variable]:
        result = {self.left}
        if self.right is not None:
            result.add(self.right)
        return result

    def __str__(self) -> str:
        if self.right is None:
            return f"{self.left} {self.op} {self.constant!r}"
        if self.offset:
            return f"{self.left} {self.op} {self.right} + {self.offset}"
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True, slots=True)
class And(Predicate):
    parts: tuple[Predicate, ...]

    def __str__(self) -> str:
        return "(" + " and ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True, slots=True)
class Or(Predicate):
    parts: tuple[Predicate, ...]

    def __str__(self) -> str:
        return "(" + " or ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True, slots=True)
class Not(Predicate):
    part: Predicate

    def __str__(self) -> str:
        return f"not ({self.part})"


@dataclass(frozen=True, slots=True)
class BoolConst(Predicate):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


def all_variables(predicate: Predicate) -> set[Variable]:
    """Collect every variable occurring in ``predicate``."""
    if isinstance(predicate, Comparison):
        return predicate.variables()
    if isinstance(predicate, (And, Or)):
        result: set[Variable] = set()
        for part in predicate.parts:
            result |= all_variables(part)
        return result
    if isinstance(predicate, Not):
        return all_variables(predicate.part)
    return set()
