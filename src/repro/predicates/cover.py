"""The cover test: may a p-restricted GMR answer a backward query?

Sec. 6 of the paper: a ``p``-restricted GMR is applicable to a backward
query with relevant selection part ``σ'`` iff

1. ``¬p`` belongs to the decidable subclass (``p`` contains no ``x = y``
   or ``x = y + c`` comparisons — their negations would be ``≠``),
2. ``σ'`` belongs to the subclass (no ``≠`` between variables), and
3. ``¬p ∧ σ'`` is not satisfiable (every object satisfying ``σ'``
   satisfies ``p``, i.e. ``σ' ⇒ p``).
"""

from __future__ import annotations

from repro.predicates.ast import And, Not, Predicate
from repro.predicates.dnf import to_dnf
from repro.predicates.satisfiability import (
    in_decidable_class,
    is_satisfiable,
)


def covers(restriction: Predicate, selection: Predicate) -> bool:
    """True iff ``selection ⇒ restriction`` (so the GMR covers the query).

    Returns False — never raises — when either predicate falls outside
    the decidable subclass, because inapplicability is always a safe
    answer (the query falls back to a full evaluation).
    """
    if not restriction_applicable(restriction, selection):
        return False
    combined = And((Not(restriction), selection))
    for conjunct in to_dnf(combined):
        try:
            if is_satisfiable(conjunct):
                return False
        except Exception:
            return False
    return True


def restriction_applicable(restriction: Predicate, selection: Predicate) -> bool:
    """Conditions 1 and 2 of the applicability test."""
    try:
        negation_ok = in_decidable_class(Not(restriction))
        selection_ok = in_decidable_class(selection)
    except Exception:
        return False
    return negation_ok and selection_ok
