"""The Rosenkrantz–Hunt satisfiability procedure.

Decides satisfiability of conjunctions of comparisons of Types 1–3 in
polynomial time (the paper cites an O(k³) bound in the number of
variables).  Every comparison is normalized into difference constraints
``v - u ≤ w`` (with a strictness flag); a Floyd–Warshall closure over the
variables plus a pseudo-variable for the constant 0 detects negative (or
zero-but-strict) cycles — the unsatisfiable case.  ``≠`` against a
constant is handled afterwards: it contradicts the conjunction iff the
closure forces the variable to exactly that constant.

``≠`` between variables (Types 2/3) falls outside the decidable subclass
(Rosenkrantz & Hunt show its inclusion makes the problem NP-hard) and
raises :class:`~repro.errors.PredicateClassError`.

By default the decision is made over a dense domain (the reals).  For
discrete domains this over-approximates satisfiability, which is the
*safe* direction for the cover test of Sec. 6 — but it is avoidably
imprecise: ``c < 2 ∧ a > 1 ∧ a < 2 ∧ a < c`` is satisfiable over the
reals yet has no integer solution.  Passing ``integer_vars`` declares
variables integer-typed; every difference constraint between two
integer nodes (the constant-zero pseudo-node counts as integer) is then
*tightened* to an equivalent non-strict integral bound before the
closure — ``a < c`` becomes ``a ≤ c − 1``, ``a ≤ c + 1.5`` becomes
``a ≤ c + 1`` — which makes the procedure exact over the integers for
pure-integer conjunctions (difference-constraint systems with integral
non-strict bounds always admit integral solutions).
"""

from __future__ import annotations

import math
from collections.abc import Collection, Sequence
from typing import Any

from repro.errors import PredicateClassError
from repro.predicates.ast import Comparison, Predicate, Variable
from repro.predicates.dnf import to_dnf

#: Pseudo-variable representing the constant zero.
_ZERO = Variable("@zero")

#: A bound: (weight, strict).  ``(w, False)`` means ``v - u ≤ w``;
#: ``(w, True)`` means ``v - u < w``.
_Bound = tuple[float, bool]

_INF: _Bound = (float("inf"), False)


def _tighter(first: _Bound, second: _Bound) -> _Bound:
    """The more restrictive of two bounds."""
    if first[0] != second[0]:
        return first if first[0] < second[0] else second
    return first if first[1] else second


def _add(first: _Bound, second: _Bound) -> _Bound:
    return (first[0] + second[0], first[1] or second[1])


def _encode_constants(conjunct: Sequence[Comparison]) -> dict[Any, float]:
    """Map Type-1 constants to floats preserving order and equality."""
    numeric: dict[Any, float] = {}
    symbolic: list[Any] = []
    for comparison in conjunct:
        if comparison.right is not None:
            continue
        constant = comparison.constant
        if isinstance(constant, bool):
            numeric[constant] = float(constant)
        elif isinstance(constant, (int, float)):
            numeric[constant] = float(constant)
        elif hasattr(constant, "value") and isinstance(
            getattr(constant, "value"), int
        ):
            # OIDs and similar wrappers: equality/order via the wrapped int.
            numeric[constant] = float(constant.value)
        elif constant not in symbolic:
            symbolic.append(constant)
    # Remaining constants (strings etc.): dense rank encoding.  Order is
    # by type name then repr, which preserves equality and gives *some*
    # total order; order comparisons across incompatible types are the
    # caller's responsibility.
    for rank, constant in enumerate(
        sorted(symbolic, key=lambda item: (type(item).__name__, repr(item)))
    ):
        numeric[constant] = float(rank)
    return numeric


def _is_integer_variable(
    variable: Variable, integer_vars: Collection[Any]
) -> bool:
    """Membership accepts Variable objects or bare variable names."""
    return variable in integer_vars or variable.name in integer_vars


def is_satisfiable(
    conjunct: Sequence[Comparison],
    *,
    integer_vars: Collection[Any] = (),
) -> bool:
    """Decide satisfiability of a conjunction of comparisons.

    ``integer_vars`` (Variables or variable names) restricts the named
    variables to integer values; their bounds are tightened to ``≤``
    form with integral weights before the difference-constraint check
    (see the module docstring).
    """
    constants = _encode_constants(conjunct)
    variables: list[Variable] = [_ZERO]
    index: dict[Variable, int] = {_ZERO: 0}

    def node(variable: Variable) -> int:
        position = index.get(variable)
        if position is None:
            position = len(variables)
            index[variable] = position
            variables.append(variable)
        return position

    edges: dict[tuple[int, int], _Bound] = {}
    disequalities: list[tuple[int, int, float]] = []  # (u, v, c): v - u ≠ c

    def constrain(u: int, v: int, bound: _Bound) -> None:
        key = (u, v)
        existing = edges.get(key)
        edges[key] = bound if existing is None else _tighter(existing, bound)

    for comparison in conjunct:
        left = node(comparison.left)
        if comparison.right is None:
            right = 0  # the zero node
            offset = constants[comparison.constant]
        else:
            right = node(comparison.right)
            offset = float(comparison.offset)
        op = comparison.op
        # All forms reduce to: left θ right + offset.
        if op == "!=":
            if comparison.right is not None:
                raise PredicateClassError(
                    f"≠ between variables is outside the decidable subclass: "
                    f"{comparison}"
                )
            disequalities.append((right, left, offset))
            continue
        if op in ("<", "<="):
            # left - right ≤ offset  →  edge right → left.
            constrain(right, left, (offset, op == "<"))
        elif op in (">", ">="):
            # right - left ≤ -offset  →  edge left → right.
            constrain(left, right, (-offset, op == ">"))
        else:  # "="
            constrain(right, left, (offset, False))
            constrain(left, right, (-offset, False))

    if integer_vars:
        # Integer-domain tightening: between two integer nodes (the zero
        # node is integral by definition) a strict bound ``v - u < w`` is
        # equivalent to ``v - u ≤ ⌈w⌉ − 1`` and a non-strict ``≤ w`` to
        # ``≤ ⌊w⌋``.  With every bound integral and non-strict, the
        # Floyd–Warshall closure is exact over the integers.
        integral = [
            variable is _ZERO
            or _is_integer_variable(variable, integer_vars)
            for variable in variables
        ]
        for (u, v), (weight, strict) in list(edges.items()):
            if not (integral[u] and integral[v]):
                continue
            if strict:
                weight = math.ceil(weight) - 1
            else:
                weight = math.floor(weight)
            edges[(u, v)] = (float(weight), False)

    count = len(variables)
    dist: list[list[_Bound]] = [[_INF] * count for _ in range(count)]
    for position in range(count):
        dist[position][position] = (0.0, False)
    for (u, v), bound in edges.items():
        dist[u][v] = _tighter(dist[u][v], bound)

    for k in range(count):
        dist_k = dist[k]
        for i in range(count):
            via = dist[i][k]
            if via[0] == float("inf"):
                continue
            row = dist[i]
            for j in range(count):
                if dist_k[j][0] == float("inf"):
                    continue
                candidate = _add(via, dist_k[j])
                row[j] = _tighter(row[j], candidate)

    for position in range(count):
        weight, strict = dist[position][position]
        if weight < 0 or (weight == 0 and strict):
            return False

    for u, v, constant in disequalities:
        upper = dist[u][v]
        lower = dist[v][u]
        forced = (
            upper == (constant, False)
            and lower == (-constant, False)
        )
        if forced:
            return False
    return True


def predicate_satisfiable(
    predicate: Predicate, *, integer_vars: Collection[Any] = ()
) -> bool:
    """Satisfiability of an arbitrary Boolean combination (via DNF)."""
    return any(
        is_satisfiable(conjunct, integer_vars=integer_vars)
        for conjunct in to_dnf(predicate)
    )


def in_decidable_class(predicate: Predicate) -> bool:
    """Whether ``predicate``'s DNF is free of ``≠`` in Types 2 and 3."""
    for conjunct in to_dnf(predicate):
        for comparison in conjunct:
            if comparison.op == "!=" and comparison.right is not None:
                return False
    return True
