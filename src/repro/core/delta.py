"""Generalized incremental maintenance: delta patches for GMR entries.

The paper's compensating actions (Defs. 5.4/5.5) patch a stored result
from the *old* result and the update parameters instead of re-running
the function.  This module generalizes them into a maintenance engine
with three capability classes per materialized fid:

* **self-maintainable aggregates** — sum / count / avg / min / max
  shapes over the members of a collection-typed argument, maintained
  from the update payload alone via per-entry support state (the
  *counting* algorithm of the Datalog materialisation-maintenance
  line).  A deletion that exhausts an entry's support falls back to
  Delete/Rederive: a forward re-derivation probe over the remaining
  members rebuilds the result and its support without an invalidation
  wave;
* **user-declared delta handlers** — ``(old_result, update) ->
  new_result`` callables declared once per fid via
  ``db.define_delta(...)`` (the generalized successor of
  ``register_compensation``);
* **opaque** functions — everything else keeps the ordinary
  invalidate/rematerialize path.

The engine runs *before* the elementary update applies (exactly like
compensating actions, so patches can read the old object-base state)
and reports which fids it fully handled; those are excluded from the
post-update invalidation wave.  Any per-entry failure — a moved write
epoch, an exhausted support count, a raising handler — withholds the
fid from the exclusion set, so the ordinary wave invalidates it right
after the update: the fallback lattice is *delta patch → compensating
action → invalidation*, and a discarded patch can never leave a stale
row behind.  ERROR entries are never resurrected by a patch; they are
routed to the retry scheduler instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.gom.oid import Oid

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.compensation import CompensatingAction
    from repro.core.gmr import GMR
    from repro.core.manager import GMRManager

#: Aggregate shapes the engine can self-maintain.
AGGREGATE_KINDS = ("sum", "count", "avg", "min", "max")

#: ``handler(old_result, update) -> new_result``
DeltaHandler = Callable[[Any, "UpdateEvent"], Any]


class SupportExhausted(Exception):
    """A patch cannot be derived from the payload + support state.

    Internal control flow only: the engine catches it, counts a
    fallback, and leaves the entry to the invalidation wave.
    """


class UpdateEvent:
    """What a delta handler sees: one impending elementary update.

    ``receiver`` is a handle on the updated object (pre-update state —
    handlers run before the update applies), ``args`` are the update's
    parameters with OIDs wrapped into handles, and ``entry_args`` is
    the argument tuple of the GMR entry being patched.
    """

    __slots__ = ("receiver", "update_type", "update_op", "args", "entry_args")

    def __init__(
        self,
        receiver: Any,
        update_type: str,
        update_op: str,
        args: tuple,
        entry_args: tuple,
    ) -> None:
        self.receiver = receiver
        self.update_type = update_type
        self.update_op = update_op
        self.args = args
        self.entry_args = entry_args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UpdateEvent({self.update_type}.{self.update_op}"
            f"{self.args!r} -> {self.entry_args!r})"
        )


class AggregateSpec:
    """A self-maintainable aggregate shape.

    ``of`` maps one collection member (wrapped in a handle when it is
    an object) to the numeric value being aggregated; ``kind="count"``
    needs no ``of``.
    """

    __slots__ = ("kind", "of", "name")

    def __init__(
        self,
        kind: str,
        of: Callable[[Any], Any] | None = None,
        *,
        name: str = "",
    ) -> None:
        if kind not in AGGREGATE_KINDS:
            raise ValueError(
                f"unknown aggregate kind {kind!r}; one of {AGGREGATE_KINDS}"
            )
        if kind != "count" and of is None:
            raise ValueError(f"aggregate kind {kind!r} needs an of= metric")
        self.kind = kind
        self.of = of
        self.name = name or kind


def sum_of(of: Callable[[Any], Any], *, name: str = "") -> AggregateSpec:
    """Sum of ``of(member)`` over the collection argument's members."""
    return AggregateSpec("sum", of, name=name)


def count_members(*, name: str = "") -> AggregateSpec:
    """Cardinality of the collection argument."""
    return AggregateSpec("count", name=name)


def avg_of(of: Callable[[Any], Any], *, name: str = "") -> AggregateSpec:
    """Average of ``of(member)`` (support state: running sum + count)."""
    return AggregateSpec("avg", of, name=name)


def min_of(of: Callable[[Any], Any], *, name: str = "") -> AggregateSpec:
    """Minimum of ``of(member)`` with a support count of witnesses."""
    return AggregateSpec("min", of, name=name)


def max_of(of: Callable[[Any], Any], *, name: str = "") -> AggregateSpec:
    """Maximum of ``of(member)`` with a support count of witnesses."""
    return AggregateSpec("max", of, name=name)


class DeltaSpec:
    """Everything declared for one fid: handlers keyed by update
    operation plus an optional aggregate shape (with the update keys it
    self-maintains under)."""

    __slots__ = ("fid", "handlers", "aggregate", "aggregate_keys", "name")

    def __init__(
        self,
        fid: str,
        *,
        handlers: dict[tuple[str, str], DeltaHandler] | None = None,
        aggregate: AggregateSpec | None = None,
        aggregate_keys: Iterable[tuple[str, str]] = (),
        name: str = "",
    ) -> None:
        self.fid = fid
        self.handlers = dict(handlers or {})
        self.aggregate = aggregate
        self.aggregate_keys = frozenset(aggregate_keys)
        self.name = name

    @property
    def keys(self) -> frozenset[tuple[str, str]]:
        return frozenset(self.handlers) | self.aggregate_keys


class DeltaRegistry:
    """Per-fid delta declarations plus the update-key projection.

    The successor of the ``CA`` table: where a compensating action is
    one ``(update_type, update_op, fid)`` row, a :class:`DeltaSpec` is
    declared once per fid and projects onto every update key it can
    maintain under.
    """

    def __init__(self) -> None:
        self._specs: dict[str, DeltaSpec] = {}
        self._by_update: dict[tuple[str, str], set[str]] = {}

    def register(self, spec: DeltaSpec) -> DeltaSpec:
        """Register (or merge into) the declaration for ``spec.fid``."""
        existing = self._specs.get(spec.fid)
        if existing is None:
            self._specs[spec.fid] = existing = spec
        else:
            existing.handlers.update(spec.handlers)
            if spec.aggregate is not None:
                existing.aggregate = spec.aggregate
                existing.aggregate_keys = spec.aggregate_keys
            if spec.name:
                existing.name = spec.name
        for key in existing.keys:
            self._by_update.setdefault(key, set()).add(spec.fid)
        return existing

    def adopt_compensation(self, entry: "CompensatingAction") -> DeltaSpec:
        """Adapt a legacy compensating action into a delta handler."""
        action = entry.action

        def legacy_handler(old: Any, update: UpdateEvent, _action=action) -> Any:
            return _action(update.receiver, *update.args, old)

        return self.register(
            DeltaSpec(
                entry.fid,
                handlers={(entry.update_type, entry.update_op): legacy_handler},
                name=entry.name or entry.update_op,
            )
        )

    def has(self, key: tuple[str, str]) -> bool:
        return key in self._by_update

    def fids_for(self, key: tuple[str, str]) -> frozenset[str]:
        bucket = self._by_update.get(key)
        return frozenset(bucket) if bucket else frozenset()

    def spec_of(self, fid: str) -> DeltaSpec | None:
        return self._specs.get(fid)

    def can_handle(self, fid: str, key: tuple[str, str]) -> bool:
        spec = self._specs.get(fid)
        return spec is not None and key in spec.keys

    def entries(self) -> list[DeltaSpec]:
        return [self._specs[fid] for fid in sorted(self._specs)]


class DeltaEngine:
    """Applies delta patches for one impending elementary update.

    Owned by the :class:`~repro.core.manager.GMRManager`; dispatched
    from its ``compensate()`` when ``maintenance="delta"``.
    """

    def __init__(self, manager: "GMRManager") -> None:
        self._manager = manager
        self.registry = DeltaRegistry()

    # -- dispatch ------------------------------------------------------

    def apply(
        self,
        oid: Oid,
        update_args: tuple,
        decl_type: str,
        update_op: str,
        fids: Iterable[str],
    ) -> set[str]:
        """Patch every GMR entry of ``fids`` referencing ``oid``.

        Returns the fids whose entries were all handled (patched,
        already invalid, or ERROR-routed); callers exclude exactly
        those from the post-update invalidation wave.  A fid with any
        discarded patch is *not* returned — the wave invalidates it.
        """
        manager = self._manager
        key = (decl_type, update_op)
        handled: set[str] = set()
        for fid in sorted(fids):
            spec = self.registry.spec_of(fid)
            gmr = manager._gmr_of_fid.get(fid)
            if spec is None or gmr is None:
                continue
            if manager.tracer.enabled:
                with manager.tracer.span(
                    "delta", fid=fid, op=f"{decl_type}.{update_op}"
                ):
                    ok = self._apply_fid(gmr, spec, fid, key, oid, update_args)
            else:
                ok = self._apply_fid(gmr, spec, fid, key, oid, update_args)
            if ok:
                handled.add(fid)
        return handled

    def _apply_fid(
        self,
        gmr: "GMR",
        spec: DeltaSpec,
        fid: str,
        key: tuple[str, str],
        oid: Oid,
        update_args: tuple,
    ) -> bool:
        manager = self._manager
        db = manager._db
        handler = spec.handlers.get(key)
        aggregate = spec.aggregate if key in spec.aggregate_keys else None
        if handler is None and aggregate is None:
            return False
        receiver = db.handle(oid)
        wrapped = tuple(
            db.handle(argument) if isinstance(argument, Oid) else argument
            for argument in update_args
        )
        ok = True
        for args in manager._rrr_args_of(oid, fid):
            old, valid, error, exists = gmr.entry_cell(args, fid)
            if not exists:
                manager._rrr_remove(oid, fid, args)  # blind reference
                continue
            if error:
                # Never resurrect an ERROR entry from a patch: hand it
                # to the retry scheduler and keep the entry as is.
                manager._scheduler_for(args).schedule(gmr, fid, args)
                self._note_fallback(fid, args, "error entry")
                continue
            if not valid:
                continue  # already invalid; the next access recomputes
            epoch0 = db._write_epoch
            support: Mapping[str, Any] | None = None
            try:
                with db.materialization_scope():
                    with db.trace() as tracer:
                        if handler is not None:
                            # An explicit handler outranks the aggregate
                            # shape for the keys it declares.
                            event = UpdateEvent(
                                receiver, key[0], key[1], wrapped, args
                            )
                            new_value = handler(old, event)
                        else:
                            new_value, support = self._patch_aggregate(
                                gmr, fid, args, aggregate, oid, key[1],
                                update_args, old,
                            )
            except SupportExhausted as exhausted:
                self._note_fallback(fid, args, str(exhausted))
                ok = False
                continue
            except Exception:
                self._note_fallback(fid, args, "handler raised")
                ok = False
                continue
            if db._write_epoch != epoch0:
                # The write epoch moved under the patch (sharded
                # engines): the inputs may be torn — discard rather
                # than risk a stale row.
                self._note_fallback(fid, args, "write epoch moved")
                ok = False
                continue
            gmr.set_result(args, fid, new_value)
            if support is not None:
                gmr.set_support_state(args, fid, dict(support))
            accessed = set(tracer.objects)
            accessed.update(arg for arg in args if isinstance(arg, Oid))
            for touched in accessed:
                manager._rrr_insert(touched, fid, args)
            manager.stats.delta_patches += 1
            if manager._obs_on:
                manager._m_delta_patches.inc()
                manager._tally(fid)["delta_patches"] += 1
                manager._row_notes[(fid, args)] = (
                    f"patched via=delta ({spec.name or key[1]})"
                )
            if manager.tracer.enabled:
                manager.tracer.event(
                    "delta_patch",
                    fid=fid,
                    oid=str(oid),
                    op=f"{key[0]}.{key[1]}",
                )
        return ok

    def _note_fallback(self, fid: str, args: tuple, reason: str) -> None:
        manager = self._manager
        manager.stats.delta_fallbacks += 1
        if manager._obs_on:
            manager._m_delta_fallbacks.inc()
            manager._row_notes[(fid, args)] = f"delta fallback ({reason})"
        if manager.tracer.enabled:
            manager.tracer.event("delta_fallback", fid=fid, reason=reason)

    # -- self-maintainable aggregates ---------------------------------

    def _patch_aggregate(
        self,
        gmr: "GMR",
        fid: str,
        args: tuple,
        aggregate: AggregateSpec,
        oid: Oid,
        update_op: str,
        update_args: tuple,
        old: Any,
    ) -> tuple[Any, dict[str, Any] | None]:
        """One counting-algorithm step; raises :class:`SupportExhausted`
        when the patch is not derivable from payload + support."""
        if oid not in args:
            raise SupportExhausted("receiver not among entry arguments")
        if not update_args:
            raise SupportExhausted("update carries no member payload")
        if not isinstance(old, (int, float)) or isinstance(old, bool):
            raise SupportExhausted("stored result is not numeric")
        member = update_args[0]
        insert = update_op == "insert"
        kind = aggregate.kind
        if kind == "count":
            if insert:
                return old + 1, None
            if old <= 0:
                raise SupportExhausted("support exhausted")
            return old - 1, None
        value = self._member_metric(aggregate, member)
        if kind == "sum":
            return (old + value) if insert else (old - value), None
        if kind == "avg":
            state = gmr.support_state(args, fid)
            if state is None:
                state = self._seed_avg(aggregate, oid)
            total, count = state["sum"], state["n"]
            if insert:
                total, count = total + value, count + 1
            else:
                total, count = total - value, count - 1
                if count <= 0:
                    raise SupportExhausted("support exhausted")
            return total / count, {"sum": total, "n": count}
        # min / max: the stored extremum plus a support count of the
        # members witnessing it (the counting algorithm's derivation
        # counter, specialized to one stratum).
        better = _LT if kind == "min" else _GT
        state = gmr.support_state(args, fid)
        if state is None:
            state = self._seed_extremum(aggregate, oid, old)
        count = state["support"]
        if insert:
            if better(value, old):
                return value, {"support": 1}
            if value == old:
                return old, {"support": count + 1}
            return old, {"support": count}
        if value == old:
            if count > 1:
                return old, {"support": count - 1}
            # Delete/Rederive: the last derivation of the stored
            # extremum disappeared — forward re-derive from the
            # remaining members (no invalidation wave, no RRR probe).
            return self._rederive_extremum(aggregate, oid, member)
        if better(value, old):
            raise SupportExhausted("support state inconsistent")
        return old, {"support": count}

    def _members(self, oid: Oid) -> list:
        obj = self._manager._db.objects.get(oid)
        elements = getattr(obj, "elements", None)
        if elements is None:
            raise SupportExhausted("receiver is not a collection")
        return list(elements)

    def _member_metric(self, aggregate: AggregateSpec, member: Any) -> Any:
        db = self._manager._db
        wrapped = db.handle(member) if isinstance(member, Oid) else member
        value = aggregate.of(wrapped)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SupportExhausted("non-numeric member value")
        return value

    def _seed_avg(self, aggregate: AggregateSpec, oid: Oid) -> dict[str, Any]:
        values = [
            self._member_metric(aggregate, member)
            for member in self._members(oid)
        ]
        if not values:
            raise SupportExhausted("support exhausted")
        return {"sum": sum(values), "n": len(values)}

    def _seed_extremum(
        self, aggregate: AggregateSpec, oid: Oid, old: Any
    ) -> dict[str, Any]:
        support = sum(
            1
            for member in self._members(oid)
            if self._member_metric(aggregate, member) == old
        )
        if support == 0:
            raise SupportExhausted("stored result has no witness")
        return {"support": support}

    def _rederive_extremum(
        self, aggregate: AggregateSpec, oid: Oid, removed: Any
    ) -> tuple[Any, dict[str, Any]]:
        members = self._members(oid)
        try:
            members.remove(removed)  # pre-update state still holds it
        except ValueError:
            raise SupportExhausted("removed member not found") from None
        values = [
            self._member_metric(aggregate, member) for member in members
        ]
        if not values:
            raise SupportExhausted("support exhausted")
        best = min(values) if aggregate.kind == "min" else max(values)
        self._manager.stats.delta_rederivations += 1
        return best, {"support": values.count(best)}


def _LT(a: Any, b: Any) -> bool:
    return a < b


def _GT(a: Any, b: Any) -> bool:
    return a > b
