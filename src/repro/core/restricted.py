"""Restricted GMRs (Sec. 6): predicate and atomic-argument restrictions.

A restriction has two parts:

* an optional *restriction predicate* ``p`` over the complex argument
  objects (e.g. ``c.Mat.Name = "Iron"``), evaluated through handles so a
  tracer can capture its dependencies — the predicate is maintained like
  a materialized Boolean function (Sec. 6.1);
* per-position restrictions on *atomic* argument types (Sec. 6.2):
  ``float`` arguments must be value-restricted, ``int`` arguments may be
  value- or range-restricted — a function with an unrestricted atomic
  argument type cannot be materialized for all values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.errors import AtomicArgumentError
from repro.predicates.ast import Predicate, all_variables
from repro.predicates.evaluate import evaluate

if TYPE_CHECKING:  # pragma: no cover
    from repro.gom.database import ObjectBase
    from repro.gom.oid import Oid


class Restriction:
    """Base class of atomic-argument restrictions."""

    def contains(self, value: Any) -> bool:
        raise NotImplementedError

    def values(self) -> list[Any]:
        raise NotImplementedError


@dataclass(frozen=True)
class ValueRestriction(Restriction):
    """``x = v1 ∨ ... ∨ x = vk`` — a value-restricted atomic argument."""

    allowed: tuple[Any, ...]

    def contains(self, value: Any) -> bool:
        return value in self.allowed

    def values(self) -> list[Any]:
        return list(self.allowed)


@dataclass(frozen=True)
class RangeRestriction(Restriction):
    """``lb ≤ x ≤ ub`` — a range-restricted *int* argument."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise AtomicArgumentError(
                f"empty range restriction [{self.low}, {self.high}]"
            )

    def contains(self, value: Any) -> bool:
        return isinstance(value, int) and self.low <= value <= self.high

    def values(self) -> list[Any]:
        return list(range(self.low, self.high + 1))


@dataclass
class RestrictionSpec:
    """The restriction of a p-restricted GMR ``⟨⟨f1,...,fm⟩⟩p``."""

    predicate: Predicate | None = None
    #: Range-variable names binding argument positions for the predicate.
    var_names: tuple[str, ...] = ()
    #: Restrictions of atomic argument positions (0-based index).
    atomic: dict[int, Restriction] = field(default_factory=dict)

    def predicate_variables(self) -> set[str]:
        if self.predicate is None:
            return set()
        return {variable.name for variable in all_variables(self.predicate)}

    def allows(self, db: "ObjectBase", args: Sequence[Any]) -> bool:
        """Evaluate the restriction for one argument combination.

        Complex arguments are bound as handles so attribute paths in the
        predicate navigate the live object graph (and are traced when a
        tracer is active — this is what keeps the predicate
        materialization consistent, Sec. 6.1).
        """
        for position, restriction in self.atomic.items():
            if not restriction.contains(args[position]):
                return False
        if self.predicate is None:
            return True
        binding: dict[str, Any] = {}
        for name, value in zip(self.var_names, args):
            binding[name] = self._bind(db, value)
        return evaluate(self.predicate, binding)

    @staticmethod
    def _bind(db: "ObjectBase", value: Any) -> Any:
        from repro.gom.oid import Oid

        if isinstance(value, Oid):
            return db.handle(value)
        return value

    def atomic_values(self, position: int) -> list[Any]:
        restriction = self.atomic.get(position)
        if restriction is None:
            raise AtomicArgumentError(
                f"argument position {position} has no atomic restriction"
            )
        return restriction.values()


def validate_atomic_restrictions(
    arg_types: Sequence[str],
    spec: RestrictionSpec | None,
    *,
    atomic_types: Iterable[str] = ("float", "int", "decimal", "string", "bool", "char"),
) -> None:
    """Enforce Sec. 6.2: atomic argument positions must be restricted.

    ``float`` (and ``decimal``) arguments must be *value*-restricted;
    ``int`` arguments may be value- or range-restricted.
    """
    atomic_set = set(atomic_types)
    for position, type_name in enumerate(arg_types):
        if type_name not in atomic_set:
            continue
        restriction = None if spec is None else spec.atomic.get(position)
        if restriction is None:
            raise AtomicArgumentError(
                f"argument {position} of atomic type {type_name} requires a "
                f"value or range restriction (Sec. 6.2)"
            )
        if type_name in ("float", "decimal") and not isinstance(
            restriction, ValueRestriction
        ):
            raise AtomicArgumentError(
                "float-valued arguments must always be value-restricted"
            )
