"""Compensating actions (Defs. 5.4 and 5.5).

A compensating action ``c`` for function ``f`` and update operation
``t.u`` recomputes an invalidated result from the *old* result and the
update parameters instead of re-evaluating ``f`` — e.g. adding one new
cuboid's volume to the stored ``total_volume`` rather than summing the
whole set again.

The GMR manager maintains the ``CA`` table; ``CompensatedFct(t.u)``
(Def. 5.5) is the projection the rewritten update operations consult.
Compensating actions may only be attached to update operations of
*argument types* of the materialized function — the paper shows that
attaching them elsewhere (e.g. ``Cuboid.scale`` for ``total_volume``)
leads to inconsistent extensions; registration enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


#: ``c(receiver_handle, *update_args, old_result) -> new_result``
CompensationBody = Callable[..., Any]


@dataclass(frozen=True)
class CompensatingAction:
    """One ``CA`` table entry ``[Upd_Op, Mat_Fct, Comp_Act]``."""

    update_type: str
    update_op: str
    fid: str
    action: CompensationBody
    name: str = ""

    @property
    def update_key(self) -> tuple[str, str]:
        return (self.update_type, self.update_op)


class CompensationTable:
    """The ``CA`` table of Sec. 5.4."""

    def __init__(self) -> None:
        self._by_update: dict[tuple[str, str], dict[str, CompensatingAction]] = {}

    def register(self, action: CompensatingAction) -> None:
        bucket = self._by_update.setdefault(action.update_key, {})
        bucket[action.fid] = action

    def has(self, update_type: str, update_op: str) -> bool:
        return (update_type, update_op) in self._by_update

    def compensated_fct(self, update_type: str, update_op: str) -> frozenset[str]:
        """``CompensatedFct(t.u)`` — Def. 5.5."""
        bucket = self._by_update.get((update_type, update_op))
        return frozenset(bucket) if bucket else frozenset()

    def action_for(
        self, update_type: str, update_op: str, fid: str
    ) -> CompensatingAction | None:
        bucket = self._by_update.get((update_type, update_op))
        if bucket is None:
            return None
        return bucket.get(fid)

    def entries(self) -> list[CompensatingAction]:
        """All CA entries, sorted by ``(update_type, update_op, fid)``.

        The sort keeps checkpoint digests and ``db.explain()`` output
        stable across runs (dict iteration order would otherwise leak
        registration order into both).
        """
        return sorted(
            (
                action
                for bucket in self._by_update.values()
                for action in bucket.values()
            ),
            key=lambda action: (action.update_type, action.update_op, action.fid),
        )
