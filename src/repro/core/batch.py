"""Batched update notification (the deferred-maintenance pipeline).

The paper's cost analysis (Sec. 5, Figures 7–11) charges every
elementary update one RRR probe.  Under heavy update traffic most of
those probes are redundant: a single ``scale`` touches twelve vertex
coordinates of the same four vertices, and a bulk load touches the same
objects over and over.  Datalog-materialisation maintenance systems
solve this by *batching* deltas and running the maintenance rules once
per batch instead of once per elementary update; this module is the
analogue for the GMR manager.

While a batch is open (``with db.batch(): ...``) the rewritten update
operations do not call :meth:`GMRManager.invalidate` /
:meth:`GMRManager.new_object` / :meth:`GMRManager.forget_object`
directly.  Instead the notifications are appended to an
:class:`InvalidationQueue` which

* **coalesces** repeated ``(oid, fct)`` invalidations — the second and
  later notifications for the same object merge into the first pending
  event, so the flush performs **one** grouped RRR probe per distinct
  object instead of one per elementary update;
* **merges** ``forget_object`` with a pending invalidation of the same
  object — the deletion's wholesale ``pop_object`` probe subsumes the
  invalidation's per-function probes;
* preserves **event order** around extension adaptations: a pending
  ``create``/``forget`` acts as a coalescing *barrier*, because merging
  an invalidation across it would re-order maintenance against the
  adaptation of Sec. 4.2 and change which rows end up invalid.

The flush replays the queue in order, so the final GMR state (values
*and* validity flags) is identical to unbatched maintenance; the
differential update-equivalence suite in
``tests/core/test_batch_equivalence.py`` asserts exactly that across
every instrumentation level and strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.gom.oid import Oid

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import GMRManager


@dataclass(frozen=True, eq=False)
class FlushReport:
    """What :meth:`GMRManager.flush_batch` returns.

    Compatible with the legacy bare-int return (the number of events
    replayed): ``int(report)``, ``report == 3`` and truthiness behave
    exactly as before, plus the replay is broken down by event kind.
    """

    events: int
    invalidations: int = 0
    creates: int = 0
    forgets: int = 0

    def __int__(self) -> int:
        return self.events

    def __index__(self) -> int:
        return self.events

    def __bool__(self) -> bool:
        return self.events > 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FlushReport):
            return (
                self.events,
                self.invalidations,
                self.creates,
                self.forgets,
            ) == (other.events, other.invalidations, other.creates, other.forgets)
        if isinstance(other, int):
            return self.events == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.events, self.invalidations, self.creates, self.forgets))


@dataclass
class InvalidationEvent:
    """One pending (coalesced) ``invalidate`` notification."""

    oid: Oid
    #: Explicitly named function ids (levels SCHEMA_DEP and above).
    fids: set[str] = field(default_factory=set)
    #: True when a NAIVE-level notification asked for "all functions in
    #: the RRR"; resolved against the RRR at flush time (which matches
    #: the unbatched resolution point because the replay is in order).
    all_fids: bool = False
    #: Functions excluded from *every* merged all-fids notification
    #: (compensating actions, Sec. 5.4): the intersection of the
    #: individual excludes — a function is only skipped if every update
    #: that would have probed it was compensated.
    all_exclude: set[str] = field(default_factory=set)
    #: How many elementary notifications merged into this event.
    merged: int = 1

    def absorb(
        self, fcts: Iterable[str] | None, exclude: frozenset[str]
    ) -> None:
        if fcts is None:
            if self.all_fids:
                self.all_exclude &= set(exclude)
            else:
                self.all_fids = True
                self.all_exclude = set(exclude)
        else:
            self.fids.update(set(fcts) - set(exclude))
        self.merged += 1


@dataclass
class CreateEvent:
    """A deferred extension adaptation for a new argument object."""

    oid: Oid
    type_name: str


@dataclass
class ForgetEvent:
    """A deferred ``forget_object``, possibly carrying a folded-in
    invalidation of the same object (one grouped RRR probe serves
    both)."""

    oid: Oid
    folded: InvalidationEvent | None = None
    #: The deleted object's type, captured while it was still alive —
    #: needed to enumerate admissible argument combinations at flush
    #: when both the create and the delete fell inside the batch.
    type_name: str | None = None
    #: True when this delete elided a create pending in the same batch.
    created_elided: bool = False


class InvalidationQueue:
    """Order-preserving queue of deferred GMR maintenance events."""

    def __init__(self) -> None:
        self._events: list[object] = []
        #: Coalescing map: oid → its open InvalidationEvent.  Cleared at
        #: every create/forget barrier.
        self._open_inv: dict[Oid, InvalidationEvent] = {}
        #: Pending create adaptations by oid (for create+delete elision).
        self._creates: dict[Oid, CreateEvent] = {}
        #: Notifications absorbed without a new event (probes saved).
        self.coalesced = 0
        #: Total notifications enqueued (events + coalesced).
        self.notifications = 0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def has_creates(self) -> bool:
        """Whether a create adaptation is pending.

        While one is, the OBJ_DEP/INFO_HIDING update paths must not
        filter notifications through ``ObjDepFct``: the marking of an
        object created inside the batch only materializes at flush, so
        the eager filter would drop invalidations the unbatched pipeline
        performs.  The notification paths fall back to SchemaDepFct
        granularity until the next flush.
        """
        return bool(self._creates)

    # -- enqueueing ------------------------------------------------------------

    def note_invalidate(
        self,
        oid: Oid,
        fcts: Iterable[str] | None,
        exclude: frozenset[str] = frozenset(),
    ) -> bool:
        """Record an ``invalidate`` notification; returns True when it
        merged into an already pending event (an RRR probe saved)."""
        self.notifications += 1
        event = self._open_inv.get(oid)
        if event is not None:
            event.absorb(fcts, exclude)
            self.coalesced += 1
            return True
        event = InvalidationEvent(oid)
        if fcts is None:
            event.all_fids = True
            event.all_exclude = set(exclude)
        else:
            event.fids = set(fcts) - set(exclude)
        self._events.append(event)
        self._open_inv[oid] = event
        return False

    def note_create(self, oid: Oid, type_name: str) -> None:
        """Record a deferred extension adaptation for a new object."""
        self.notifications += 1
        event = CreateEvent(oid, type_name)
        self._events.append(event)
        self._creates[oid] = event
        self._open_inv.clear()  # barrier: no coalescing across adaptations

    def note_forget(self, oid: Oid, type_name: str | None = None) -> bool:
        """Record a deferred ``forget_object``.

        A pending invalidation of the same object folds into the forget
        (its probe is subsumed by the deletion's ``pop_object``); a
        pending *create* of the same object cancels out entirely —
        the object never reached any extension.  Returns True when a
        probe was saved by folding or elision.
        """
        self.notifications += 1
        saved = False
        created = self._creates.pop(oid, None)
        if created is not None:
            self._events.remove(created)
            saved = True
        folded = self._open_inv.pop(oid, None)
        if folded is not None:
            self._events.remove(folded)
            self.coalesced += 1  # the folded event's own probe is saved
            saved = True
        if created is not None:
            # The object's whole lifetime fell inside this batch, so no
            # RRR entry for it can exist at flush time: every pending
            # invalidation of it — even one stranded behind a barrier —
            # is a replay no-op.  Fold them all into the forget so the
            # flush can reconstruct which functions the sequential run
            # consumed (blind-row synthesis in ``_forget_grouped``).
            stranded = [
                pending
                for pending in self._events
                if isinstance(pending, InvalidationEvent)
                and pending.oid == oid
            ]
            for pending in stranded:
                self._events.remove(pending)
                self.coalesced += 1
                saved = True
                if folded is None:
                    folded = pending
                else:
                    folded.absorb(
                        None if pending.all_fids else pending.fids,
                        frozenset(pending.all_exclude),
                    )
        self._events.append(
            ForgetEvent(
                oid,
                folded,
                type_name=type_name,
                created_elided=created is not None,
            )
        )
        self._open_inv.clear()  # barrier, like note_create
        return saved

    # -- draining --------------------------------------------------------------

    def drain(self) -> list[object]:
        """Return the pending events in order and reset the queue."""
        events = self._events
        self._events = []
        self._open_inv = {}
        self._creates = {}
        return events


class UpdateBatch:
    """Context manager opening one batched-maintenance scope.

    Nested batches are re-entrant: only the outermost exit flushes.  The
    flush also runs when the body raises — the elementary updates have
    already been applied physically, so the materializations must be
    brought back in sync regardless.

    Under ``workers > 0`` a batch scope holds the object base's update
    lock for its whole extent: the queue's coalescing maps are not
    thread-safe, and a worker-pool drain landing between two batched
    updates would observe GMR entries that are already stale-on-disk
    but not yet marked.  The lock is re-entrant, so the elementary
    updates inside the scope (which take it per-call) nest cleanly; in
    single-threaded mode the "lock" is a ``nullcontext`` and the scope
    is bit-for-bit the old behaviour.
    """

    def __init__(self, manager: "GMRManager") -> None:
        self._manager = manager
        #: Filled at exit: how many elementary notifications this batch
        #: absorbed and how many RRR probes coalescing saved.
        self.notifications = 0
        self.probes_saved = 0

    def __enter__(self) -> "UpdateBatch":
        manager = self._manager
        manager._maint_lock.__enter__()
        try:
            manager._batch_depth += 1
            if manager._batch_depth == 1:
                manager._db._wal_log({"kind": "batch_begin"})
        except BaseException:
            # A refused batch_begin append (degraded storage) must not
            # leak the scope: Python skips __exit__ when __enter__
            # raises, so the depth and the update lock are unwound here.
            manager._batch_depth -= 1
            manager._maint_lock.__exit__(None, None, None)
            raise
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        manager = self._manager
        try:
            manager._batch_depth -= 1
            if manager._batch_depth == 0:
                queue = manager._queue
                self.notifications = queue.notifications
                self.probes_saved = queue.coalesced
                queue.notifications = 0
                queue.coalesced = 0
                manager.flush_batch()
                # Logged after the flush: the scope's updates are already
                # on disk individually, the marker just reproduces flush
                # timing.
                manager._db._wal_log({"kind": "batch_end"})
        finally:
            manager._maint_lock.__exit__(None, None, None)
