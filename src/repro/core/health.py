"""The storage health state machine: declared degradation, never silence.

The durability layer's contract (fsyncgate discipline): after a failed
durable write the system either retries into a consistent state or
transitions to a *declared* degraded mode — it never limps along
pretending the write happened.  :class:`HealthMonitor` is that
declaration, attached to every :class:`~repro.gom.database.ObjectBase`
as ``db.health``::

                      io error           repair/truncate fails
    HEALTHY ────────────────────▶ DEGRADED_READ_ONLY ────────▶ FAILED
       ▲                                   │
       └───────────────────────────────────┘
            probe append succeeds
            (after ``rearm_cooldown``)

* **HEALTHY** — updates log and apply normally.
* **DEGRADED_READ_ONLY** — a WAL append (or checkpoint write) failed.
  The update that hit the fault was *not* applied: the elementary
  update paths log before they mutate, so in-memory state and the
  durable log still agree.  Forward queries keep serving (valid GMR
  entries from the extension, invalid/missing ones by direct
  evaluation, Sec. 3.2); updates raise
  :class:`~repro.errors.StorageUnavailableError`; maintenance drains
  pause — a rematerialization whose underlying storage is suspect must
  not commit.  After ``rearm_cooldown`` seconds the next update is
  allowed through as a *probe*: the WAL tail is repaired (torn bytes
  truncated back to the last durable frame boundary) and the append
  retried — success re-arms to HEALTHY, failure restarts the cooldown.
* **FAILED** — the log tail could not be restored to a known-good
  state (repair/truncate itself failed), so even the ordering of
  future appends would be unsound.  Terminal: no probe path, and a
  checkpoint that round-trips through :mod:`repro.persistence`
  restores FAILED — a failed base cannot resurrect as HEALTHY by
  restarting.

The monitor is deliberately dumb about *what* failed — callers pass a
site string — and does no I/O of its own; the object base wires
``on_transition`` / ``on_io_error`` to the observability layer
(``health.state`` / ``storage.io_errors`` gauges, trace events).
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable

from repro.errors import StorageUnavailableError


class HealthState(enum.Enum):
    """The declared storage-health states (see module docstring)."""

    HEALTHY = "healthy"
    DEGRADED_READ_ONLY = "degraded_read_only"
    FAILED = "failed"


#: Numeric encoding for the ``health.state`` gauge (monotone severity).
STATE_CODES = {
    HealthState.HEALTHY: 0,
    HealthState.DEGRADED_READ_ONLY: 1,
    HealthState.FAILED: 2,
}


class HealthMonitor:
    """Tracks the storage health state of one object base.

    Thread-safe: elementary updates (under the update lock), background
    drains and checkpoint calls may all observe and transition it.
    Transitions fire ``on_transition(event, old, new, reason)`` with
    ``event`` in ``{"degrade", "rearm", "fail"}``; every recorded I/O
    error fires ``on_io_error(total)``.
    """

    def __init__(
        self,
        *,
        rearm_cooldown: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._lock = threading.RLock()
        self._state = HealthState.HEALTHY
        self._clock = clock
        #: Seconds a degraded base waits before letting an update probe
        #: the storage again.  0 re-probes on the very next update.
        self.rearm_cooldown = rearm_cooldown
        self._degraded_at = 0.0
        #: Total I/O errors recorded over the monitor's lifetime
        #: (survives re-arms; the ``storage.io_errors`` gauge).
        self.io_errors = 0
        #: Human-readable cause of the current non-HEALTHY state.
        self.reason: str | None = None
        self.on_transition: (
            Callable[[str, HealthState, HealthState, str], None] | None
        ) = None
        self.on_io_error: Callable[[int], None] | None = None

    # -- observation -----------------------------------------------------------

    @property
    def state(self) -> HealthState:
        return self._state

    @property
    def writable(self) -> bool:
        """True when updates may log and apply."""
        return self._state is HealthState.HEALTHY

    @property
    def read_only(self) -> bool:
        """True in any declared degraded state (updates must refuse)."""
        return self._state is not HealthState.HEALTHY

    def require_writable(self) -> None:
        """Raise :class:`StorageUnavailableError` unless HEALTHY."""
        state = self._state
        if state is HealthState.HEALTHY:
            return
        raise StorageUnavailableError(
            f"storage is {state.value}: {self.reason or 'unknown cause'}"
        )

    def probe_eligible(self) -> bool:
        """True when a degraded base may let one update probe the disk."""
        with self._lock:
            if self._state is not HealthState.DEGRADED_READ_ONLY:
                return False
            return self._clock() - self._degraded_at >= self.rearm_cooldown

    # -- transitions -----------------------------------------------------------

    def _transition(
        self, event: str, new: HealthState, reason: str
    ) -> None:
        old = self._state
        self._state = new
        self.reason = reason if new is not HealthState.HEALTHY else None
        hook = self.on_transition
        if hook is not None:
            hook(event, old, new, reason)

    def record_io_error(self, exc: BaseException, *, site: str) -> None:
        """One durable write failed at ``site``: count it and degrade.

        HEALTHY trips to DEGRADED_READ_ONLY; an already-degraded base
        stays degraded with its probe cooldown restarted (the failed
        call *was* the probe); a FAILED base just counts.
        """
        with self._lock:
            self.io_errors += 1
            hook = self.on_io_error
            if hook is not None:
                hook(self.io_errors)
            reason = f"{site}: {exc}"
            if self._state is HealthState.HEALTHY:
                self._degraded_at = self._clock()
                self._transition(
                    "degrade", HealthState.DEGRADED_READ_ONLY, reason
                )
            elif self._state is HealthState.DEGRADED_READ_ONLY:
                self._degraded_at = self._clock()
                self.reason = reason

    def fail(self, reason: str) -> None:
        """Escalate to the terminal FAILED state (no probe path back)."""
        with self._lock:
            if self._state is HealthState.FAILED:
                return
            self._transition("fail", HealthState.FAILED, reason)

    def rearm(self) -> None:
        """A probe proved the storage writable: back to HEALTHY.

        Raises :class:`StorageUnavailableError` from FAILED — a failed
        base never resurrects; recover into a fresh one instead.
        """
        with self._lock:
            if self._state is HealthState.FAILED:
                raise StorageUnavailableError(
                    f"storage is failed ({self.reason or 'unknown cause'}) "
                    "and cannot be re-armed; recover into a fresh base"
                )
            if self._state is HealthState.HEALTHY:
                return
            self._transition("rearm", HealthState.HEALTHY, "probe succeeded")

    # -- persistence -----------------------------------------------------------

    def dump_state(self) -> dict:
        """Portable snapshot for the checkpoint document."""
        with self._lock:
            return {
                "state": self._state.value,
                "io_errors": self.io_errors,
                "reason": self.reason,
            }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`dump_state` snapshot (checkpoint recovery).

        Restoring DEGRADED_READ_ONLY starts the probe cooldown afresh;
        restoring FAILED is terminal exactly like reaching it live.
        """
        with self._lock:
            self._state = HealthState(state.get("state", "healthy"))
            self.io_errors = int(state.get("io_errors", 0))
            self.reason = state.get("reason")
            if self._state is HealthState.DEGRADED_READ_ONLY:
                self._degraded_at = self._clock()
